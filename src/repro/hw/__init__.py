"""Hardware specification database and performance models (Table 1)."""

from repro.hw.cpu import CPUSpec
from repro.hw.gpu import GPUSpec
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams, cpu_node_time, gpu_time
from repro.hw.specs import (
    A100,
    CLUSTERS,
    CPU_NODES,
    GPUS,
    INFINIBAND_100G,
    SIMD_FOCUSED_CLUSTER,
    SIMD_FOCUSED_NODE,
    THREAD_FOCUSED_CLUSTER,
    THREAD_FOCUSED_NODE,
    V100,
    ClusterSpec,
    NetworkSpec,
    spec_table_rows,
)

__all__ = [
    "CPUSpec", "GPUSpec", "NetworkSpec", "ClusterSpec",
    "SIMD_FOCUSED_NODE", "THREAD_FOCUSED_NODE", "A100", "V100",
    "SIMD_FOCUSED_CLUSTER", "THREAD_FOCUSED_CLUSTER",
    "INFINIBAND_100G", "CPU_NODES", "GPUS", "CLUSTERS",
    "spec_table_rows",
    "ModelParams", "DEFAULT_PARAMS", "cpu_node_time", "gpu_time",
]

"""CPU hardware descriptions.

Specs carry exactly the architectural parameters the paper's analysis
turns on: core counts (thread-level parallelism), SIMD width and FMA
throughput (data-level parallelism), memory bandwidth, and last-level
cache size.  Peak FLOP/s is *derived* — the derivation reproduces the
paper's Table 1 numbers (4.15 TFLOP/s for a dual Intel 6226 node,
8.19 TFLOP/s for a dual AMD EPYC 7713 node), which validates the spec
entries in :mod:`repro.hw.specs`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CPUSpec"]


@dataclass(frozen=True)
class CPUSpec:
    """One CPU *node* (possibly multi-socket)."""

    name: str
    sockets: int
    cores_per_socket: int
    base_clock_ghz: float
    #: FP32 SIMD lanes per vector unit (AVX-512: 16, AVX2: 8)
    simd_width_f32: int
    #: vector FMA units per core
    fma_units: int
    #: sustained scalar instructions per cycle (per core)
    scalar_ipc: float
    #: node-aggregate DRAM bandwidth, GB/s
    mem_bw_gbs: float
    #: last-level cache per socket, MiB
    llc_mb: float
    year: int
    #: achievable fraction of SIMD peak for compiler-vectorized migrated
    #: code.  Lower on AVX-512 parts: wide-vector frequency licensing and
    #: the masking overhead of outer-loop vectorization (paper section
    #: 8.3) cost Intel more than the narrower AVX2 pipeline costs AMD.
    simd_efficiency: float = 0.45
    #: node power under load (sockets + DRAM + fans), watts — for the
    #: section 8.4 cost/energy discussion
    tdp_w: float = 0.0
    #: node power when idle, watts (the paper's point: idle CPUs burn
    #: non-negligible energy whether or not they run jobs)
    idle_w: float = 0.0

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def peak_flops(self) -> float:
        """Peak FP32 FLOP/s of the node (SIMD width x FMA=2 flops x units)."""
        return (
            self.cores
            * self.base_clock_ghz
            * 1e9
            * self.simd_width_f32
            * self.fma_units
            * 2.0
        )

    @property
    def peak_tflops(self) -> float:
        return self.peak_flops / 1e12

    @property
    def scalar_ops_per_sec_core(self) -> float:
        """Sustained scalar (non-SIMD) op throughput of one core."""
        return self.base_clock_ghz * 1e9 * self.scalar_ipc

    def limited_to_cores(self, cores: int) -> "CPUSpec":
        """A copy of this node restricted to ``cores`` total cores.

        Used by the paper's section 8.2 experiment, which caps the
        Thread-Focused node at 64 cores to equalize theoretical peak with
        the SIMD-Focused node.  Memory bandwidth and LLC are unchanged
        (they are per-node/per-socket resources).
        """
        if cores > self.cores:
            raise ValueError(
                f"{self.name}: cannot limit to {cores} cores (> {self.cores})"
            )
        # express as 1 "socket" of `cores` to keep `cores` exact
        return replace(
            self,
            name=f"{self.name}@{cores}c",
            sockets=1,
            cores_per_socket=cores,
        )

"""GPU hardware descriptions.

As with :mod:`repro.hw.cpu`, peak FLOP/s is derived from SM count, clock
and FP32 lanes, and the derivations reproduce the paper's Table 1
figures (A100: 19.5 TFLOP/s, V100: 15.7 TFLOP/s).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """One GPU device."""

    name: str
    sms: int
    boost_clock_ghz: float
    fp32_cores_per_sm: int
    mem_bw_gbs: float
    l2_mb: float
    #: maximum resident threads per SM (occupancy ceiling)
    max_threads_per_sm: int
    year: int
    #: board power under load, watts (section 8.4)
    tdp_w: float = 0.0

    @property
    def peak_flops(self) -> float:
        return (
            self.sms
            * self.fp32_cores_per_sm
            * self.boost_clock_ghz
            * 1e9
            * 2.0  # FMA
        )

    @property
    def peak_tflops(self) -> float:
        return self.peak_flops / 1e12

    @property
    def sm_flops(self) -> float:
        return self.peak_flops / self.sms

"""Roofline-style performance models for CPU nodes and GPUs.

The simulated cluster executes kernels *functionally* with the SPMD
interpreter; this module converts the interpreter's dynamic operation
counts (:class:`~repro.interp.counters.OpCounters`) into modeled wall
times.  The model captures exactly the mechanisms the paper's analysis
turns on:

* **block-count vs. core-count parallelism** — blocks are scheduled in
  waves of at most one block per core/SM slot, so a node with more cores
  than blocks idles (the KMeans 32-node anomaly, EP/GA on large
  clusters);
* **data-level parallelism** — kernels the vectorizer accepts run at a
  fraction of SIMD peak, others at scalar-issue rate (the SIMD- vs
  Thread-Focused gap of section 8.2);
* **memory bandwidth and last-level cache** — streaming kernels are
  bandwidth-bound, with a bandwidth boost when the touched working set
  fits in LLC (the Transpose discussion of section 7.4.1);
* **barrier-phased execution on GPUs** — kernels that synchronize inside
  a sequential loop (BinomialOption) pay a per-phase latency on the GPU
  that a one-block-per-core CPU execution does not.

Efficiency constants are global (``ModelParams``), not per-benchmark:
the same parameters produce every figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.cpu import CPUSpec
from repro.hw.gpu import GPUSpec
from repro.interp.counters import OpCounters

__all__ = ["ModelParams", "DEFAULT_PARAMS", "cpu_node_time", "gpu_time"]


@dataclass(frozen=True)
class ModelParams:
    """Global efficiency/overhead constants of the performance model."""

    #: fraction of scalar-issue peak sustained by migrated scalar code
    cpu_scalar_eff: float = 0.85
    #: throughput of CuPBoP/CuCC-generated CPU code relative to natively
    #: written CPU code (per-block scheduling, index recomputation and
    #: bounds logic the transformation introduces; CuPBoP reports gaps of
    #: this order vs. hand-written CPU kernels).  Applies to compute
    #: rates; streaming loops still reach memory bandwidth.
    cpu_migration_eff: float = 0.70
    #: fraction of STREAM-like DRAM bandwidth achieved by kernel loops
    cpu_mem_eff: float = 0.80
    #: per-core streaming bandwidth caps: a core issuing scalar loads
    #: cannot keep the memory system busy the way vector loads can, so
    #: few-core nodes lose bandwidth when SIMD is off (the section 8.2
    #: ablation: Thread-Focused with 128 cores still saturates DRAM,
    #: SIMD-Focused with 24 cores does not)
    scalar_stream_bw_per_core: float = 5.5e9
    vector_stream_bw_per_core: float = 16.0e9
    #: bandwidth multiplier when the touched bytes fit in last-level cache
    llc_bw_mult: float = 4.0
    #: fraction of GPU FP32 peak sustained by real kernels
    gpu_compute_eff: float = 0.70
    #: fraction of GPU DRAM bandwidth achieved by coalesced kernels
    gpu_mem_eff: float = 0.78
    #: per-barrier-phase cost on a GPU SM: barrier latency, the dependent
    #: shared-memory turnaround that cannot overlap across the phase
    #: boundary, and the warp-lane underutilization of shrinking tail
    #: phases (binomial's lattice halves its active threads over time,
    #: but inactive lanes still occupy warp slots — the interpreter's
    #: active-lane counters do not charge the GPU for them, this does).
    #: Amortized over the blocks resident on the SM.
    gpu_sync_phase_s: float = 1.0e-6
    #: host-side launch overheads
    cpu_launch_overhead_s: float = 10e-6
    gpu_launch_overhead_s: float = 4e-6


DEFAULT_PARAMS = ModelParams()


def cpu_node_time(
    spec: CPUSpec,
    counters: OpCounters,
    nblocks: int,
    vectorized: bool,
    simd_enabled: bool = True,
    working_set_bytes: float | None = None,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """Modeled time for one CPU node to execute ``nblocks`` GPU blocks.

    ``counters`` are the dynamic counts of exactly those blocks (as
    metered by the interpreter while it ran them on this node's memory).
    ``vectorized`` is the verdict of the SIMD vectorizability analysis;
    ``simd_enabled`` models the paper's "-no-SIMD" ablation (section
    8.2).  ``working_set_bytes`` defaults to the bytes actually touched.
    """
    if nblocks <= 0:
        return 0.0
    if vectorized and simd_enabled:
        core_rate = (spec.peak_flops / spec.cores) * spec.simd_efficiency
    else:
        core_rate = spec.scalar_ops_per_sec_core * params.cpu_scalar_eff
    core_rate *= params.cpu_migration_eff
    ops = counters.weighted_ops
    t_block = (ops / nblocks) / core_rate
    waves = math.ceil(nblocks / spec.cores)
    compute = waves * t_block

    ws = counters.global_bytes if working_set_bytes is None else working_set_bytes
    bw = spec.mem_bw_gbs * 1e9 * params.cpu_mem_eff
    per_core_stream = (
        params.vector_stream_bw_per_core
        if vectorized and simd_enabled
        else params.scalar_stream_bw_per_core
    )
    bw = min(bw, spec.cores * per_core_stream)
    if ws <= spec.llc_mb * spec.sockets * 1e6:
        # working set resident in LLC: cache-bandwidth traffic; broadcast
        # loads (same line for all lanes) cost lines, streaming loads
        # cost elements — take the cheaper consistent estimate
        bw *= params.llc_bw_mult
        traffic = min(
            counters.global_bytes,
            counters.global_line_bytes or counters.global_bytes,
        )
    else:
        # DRAM: pay line-granular traffic (strided access amplifies)
        traffic = counters.global_line_bytes or counters.global_bytes
    mem = traffic / bw if bw > 0 else 0.0

    return max(compute, mem)


def gpu_time(
    gpu: GPUSpec,
    counters: OpCounters,
    nblocks: int,
    threads_per_block: int,
    working_set_bytes: float | None = None,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """Modeled time for a GPU to execute a kernel launch.

    Blocks are scheduled in waves of ``SMs x resident`` slots where
    ``resident`` is the occupancy ceiling for this block size.  Barrier-
    phased kernels additionally pay ``gpu_sync_phase_s`` per phase,
    amortized over the blocks resident on each SM (phases of different
    blocks overlap; phases of one block are a dependency chain).
    """
    if nblocks <= 0:
        return 0.0
    resident_cap = max(1, gpu.max_threads_per_sm // max(1, threads_per_block))
    resident = min(resident_cap, 16, math.ceil(nblocks / gpu.sms))
    slots = gpu.sms * resident
    sm_rate = gpu.sm_flops * params.gpu_compute_eff / resident
    t_block = (counters.weighted_ops / nblocks) / sm_rate
    waves = math.ceil(nblocks / slots)
    compute = waves * t_block

    ws = counters.global_bytes if working_set_bytes is None else working_set_bytes
    bw = gpu.mem_bw_gbs * 1e9 * params.gpu_mem_eff
    if ws <= gpu.l2_mb * 1e6:
        bw *= params.llc_bw_mult
        traffic = min(
            counters.global_bytes,
            counters.global_line_bytes or counters.global_bytes,
        )
    else:
        # uncoalesced access pays sector-granular DRAM traffic (GPU
        # sectors are 32 B; our lines are 64 B — split the difference)
        line = counters.global_line_bytes or counters.global_bytes
        traffic = max(counters.global_bytes, 0.5 * line)
    mem = traffic / bw if bw > 0 else 0.0

    sync = counters.barriers * params.gpu_sync_phase_s / (gpu.sms * resident)

    return params.gpu_launch_overhead_s + max(compute, mem) + sync

"""The hardware database: Table 1 of the paper plus network parameters.

Every evaluation experiment draws its hardware parameters from here, so
the table printed by ``benchmarks/bench_tab01_specs.py`` is by
construction the configuration actually used by the models.

Sources: paper Table 1 for node counts / TFLOP/s / network; public
datasheets for the microarchitectural details (clocks, SIMD widths,
memory channels).  The derived peak TFLOP/s match Table 1:

* dual Intel Xeon Gold 6226 ("SIMD-Focused"): 24 cores, AVX-512,
  2 x 12 x 2.7 GHz x 16 lanes x 2 FMA x 2 flops = **4.15 TFLOP/s**
* dual AMD EPYC 7713 ("Thread-Focused"): 128 cores, AVX2,
  2 x 64 x 2.0 GHz x 8 lanes x 2 FMA x 2 flops = **8.19 TFLOP/s**
* NVIDIA A100: 108 SMs x 64 FP32 x 1.41 GHz x 2 = **19.5 TFLOP/s**
* NVIDIA V100: 80 SMs x 64 FP32 x 1.53 GHz x 2 = **15.7 TFLOP/s**
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cpu import CPUSpec
from repro.hw.gpu import GPUSpec

__all__ = [
    "SIMD_FOCUSED_NODE",
    "THREAD_FOCUSED_NODE",
    "A100",
    "V100",
    "INFINIBAND_100G",
    "NetworkSpec",
    "ClusterSpec",
    "SIMD_FOCUSED_CLUSTER",
    "THREAD_FOCUSED_CLUSTER",
    "CPU_NODES",
    "GPUS",
    "spec_table_rows",
]


@dataclass(frozen=True)
class NetworkSpec:
    """Alpha-beta interconnect model.

    ``alpha_s`` is the per-message latency/software overhead of a
    collective step; ``rma_alpha_s`` the per-operation overhead of a
    fine-grained one-sided remote access (the PGAS path — higher software
    cost per op, amortized injection); ``beta_GBs`` the achievable
    point-to-point bandwidth.
    """

    name: str
    link_gbps: float
    alpha_s: float
    rma_alpha_s: float
    beta_GBs: float
    #: aggregate small-message injection rate per node (ops/s) — caps how
    #: fast many cores can issue fine-grained RMA concurrently
    rma_rate_per_node: float
    #: physical two-level structure (None: the fabric is flat).  A leaf
    #: switch hosts ``switch_radix`` nodes; same-switch traffic sees the
    #: ``intra_*`` alpha-beta pair instead of the spine-crossing
    #: ``alpha_s``/``beta_GBs`` above.  Consumed by
    #: :func:`repro.cluster.topology.fat_tree_from_network`.
    switch_radix: int | None = None
    intra_alpha_s: float | None = None
    intra_beta_GBs: float | None = None

    @property
    def beta_bytes_per_s(self) -> float:
        return self.beta_GBs * 1e9


#: 100 Gb/s InfiniBand (EDR/HDR100-class) with RDMA, as in Table 1.
#: The 32-node partition hangs off 16-port leaf switches in a two-level
#: fat-tree; same-switch messages skip the spine hop (lower latency,
#: slightly better achievable bandwidth).
INFINIBAND_100G = NetworkSpec(
    name="100 Gbps IB",
    link_gbps=100.0,
    alpha_s=2.0e-6,
    rma_alpha_s=1.0e-6,
    beta_GBs=11.0,  # achievable payload bandwidth of a 12.5 GB/s link
    rma_rate_per_node=10e6,
    switch_radix=16,
    intra_alpha_s=1.2e-6,
    intra_beta_GBs=11.6,
)


SIMD_FOCUSED_NODE = CPUSpec(
    name="2x Intel Xeon Gold 6226",
    sockets=2,
    cores_per_socket=12,
    base_clock_ghz=2.7,
    simd_width_f32=16,  # AVX-512
    fma_units=2,
    scalar_ipc=2.0,  # Cascade Lake sustained scalar ILP
    mem_bw_gbs=2 * 140.8,  # 6ch DDR4-2933 per socket
    llc_mb=19.25,
    year=2019,
    simd_efficiency=0.35,  # AVX-512 frequency licensing + masking overhead
    tdp_w=2 * 125 + 60,  # two 125 W sockets + DRAM/board
    idle_w=110.0,
)

THREAD_FOCUSED_NODE = CPUSpec(
    name="2x AMD EPYC 7713",
    sockets=2,
    cores_per_socket=64,
    base_clock_ghz=2.0,
    simd_width_f32=8,  # AVX2
    fma_units=2,
    scalar_ipc=3.0,  # Zen 3 sustained scalar ILP
    mem_bw_gbs=2 * 204.8,  # 8ch DDR4-3200 per socket
    llc_mb=256.0,
    year=2021,
    simd_efficiency=0.50,
    tdp_w=2 * 225 + 90,  # two 225 W sockets + DRAM/board
    idle_w=170.0,
)

A100 = GPUSpec(
    name="NVIDIA A100",
    sms=108,
    boost_clock_ghz=1.41,
    fp32_cores_per_sm=64,
    mem_bw_gbs=1555.0,
    l2_mb=40.0,
    max_threads_per_sm=2048,
    year=2020,
    tdp_w=400.0,
)

V100 = GPUSpec(
    name="NVIDIA V100",
    sms=80,
    boost_clock_ghz=1.53,
    fp32_cores_per_sm=64,
    mem_bw_gbs=900.0,
    l2_mb=6.0,
    max_threads_per_sm=2048,
    year=2017,
    tdp_w=300.0,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A named cluster: node type, maximum node count, interconnect."""

    name: str
    node: CPUSpec
    max_nodes: int
    network: NetworkSpec


SIMD_FOCUSED_CLUSTER = ClusterSpec(
    name="SIMD-Focused", node=SIMD_FOCUSED_NODE, max_nodes=32,
    network=INFINIBAND_100G,
)
THREAD_FOCUSED_CLUSTER = ClusterSpec(
    name="Thread-Focused", node=THREAD_FOCUSED_NODE, max_nodes=4,
    network=INFINIBAND_100G,
)

CPU_NODES = {
    "simd-focused": SIMD_FOCUSED_NODE,
    "thread-focused": THREAD_FOCUSED_NODE,
}
GPUS = {"a100": A100, "v100": V100}

CLUSTERS = {
    "simd-focused": SIMD_FOCUSED_CLUSTER,
    "thread-focused": THREAD_FOCUSED_CLUSTER,
}


def spec_table_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table 1, regenerated from the database."""
    rows = []
    for cl in (SIMD_FOCUSED_CLUSTER, THREAD_FOCUSED_CLUSTER):
        rows.append(
            {
                "Name": cl.name,
                "Nodes": cl.max_nodes,
                "Single Node Config.": cl.node.name,
                "Year": cl.node.year,
                "Cores/SMs": cl.node.cores,
                "FLOPs (Tera)": round(cl.node.peak_tflops, 2),
                "Network": cl.network.name,
            }
        )
    for gpu in (A100, V100):
        rows.append(
            {
                "Name": gpu.name.replace("NVIDIA ", "") + " GPU",
                "Nodes": 1,
                "Single Node Config.": gpu.name,
                "Year": gpu.year,
                "Cores/SMs": gpu.sms,
                "FLOPs (Tera)": round(gpu.peak_tflops, 1),
                "Network": "N/A",
            }
        )
    return rows

"""Vectorized SPMD interpreter: executes GPU blocks as NumPy lane vectors.

This module is the functional stand-in for the CPU code CuCC's compiler
generates.  The paper's transformation wraps a GPU block into a CPU
function whose inner thread loop is vectorized with SIMD instructions
(Listing 2); here the "SIMD lanes" are NumPy vectors spanning all
threads of the block, and divergence is handled with boolean masks:

* ``if``/``else`` execute both arms under complementary masks;
* ``return`` retires lanes for the rest of the kernel;
* ``break``/``continue`` retire lanes for the rest of the loop/iteration;
* loops with thread-invariant bounds run as ordinary Python loops, while
  thread-variant bounds iterate until every lane's trip count is done;
* ``__syncthreads()`` is trivially satisfied because statements execute
  in lockstep across the whole block (kernels where threads reach
  textually different barriers are UB in CUDA and unsupported here).

**Block spans.** Blocks are independent even at statement granularity
(barriers are intra-block), so the executor can evaluate a *span* of
consecutive blocks in a single vectorized pass: ``blockIdx`` becomes a
lane vector, and each block in the span gets its own segment of every
``__shared__`` array (shared indices are bounds-checked against the
per-block extent before being offset into the segment).  This changes
nothing semantically — it is the interpreter's analogue of loop fusion —
but makes realistic problem sizes tractable in pure Python.

Every executed operation is metered into :class:`~repro.interp.counters.
OpCounters`, including 64-byte-line-granular memory traffic (so strided
and coalesced access are distinguished); the hardware models convert
these counts into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InterpError, LaunchError
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.intrinsics import apply_intrinsic
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
)
from repro.ir.stmt import (
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.ir.types import AddressSpace, DType, PointerType, common_type
from repro.ir.visitor import contains, iter_stmts

__all__ = ["BlockExecutor", "run_grid", "span_eligible", "apply_atomic_op"]

#: Safety cap on data-dependent loop iterations per loop execution.
MAX_LOOP_ITERS = 50_000_000

#: Default block-span width used by ``run_grid`` for eligible kernels.
DEFAULT_SPAN = 256


def span_eligible(kernel: Kernel) -> bool:
    """Whether a kernel may be executed in multi-block spans.

    Always true: blocks never interact at statement granularity, shared
    memory is segmented per block within a span, and barriers are no-ops
    under lockstep execution.  Kept as an explicit predicate (and tested)
    in case future IR features break the property.
    """
    return True


def _c_int_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C integer division (truncate toward zero); division by zero -> 0.

    Inactive lanes may legitimately divide by zero (the guard is the
    mask), so zero divisors must not blow up.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        safe_b = np.where(b != 0, b, 1)
        q = np.floor_divide(a, safe_b)
        q = np.where(b != 0, q, 0)
        r = a - q * b
        needs_adjust = (r != 0) & ((a < 0) != (b < 0)) & (b != 0)
    return q + needs_adjust.astype(np.asarray(q).dtype)


def _c_int_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C integer remainder (sign follows the dividend)."""
    q = _c_int_div(a, b)
    return np.where(b != 0, a - q * b, 0).astype(np.result_type(a, b), copy=False)


def apply_atomic_op(
    arr: np.ndarray,
    safe_l: np.ndarray,
    val_l: np.ndarray,
    op: str,
    cmp_l: np.ndarray | None = None,
    old: np.ndarray | None = None,
    mask: np.ndarray | None = None,
) -> None:
    """Apply one atomic instruction's updates for the active lanes.

    ``safe_l``/``val_l``/``cmp_l`` are already reduced to the active
    lanes; ``old`` is the span-wide pre-gathered old-value array to
    refine when the result is observed (``None`` when it is not), with
    ``mask`` the active-lane mask it is indexed through.

    When several active lanes hit the same location AND the old value is
    observed, a vectorized pre-gather would hand every colliding lane
    the same "old"; CUDA guarantees each lane sees the value left by
    some serial interleaving.  Fall back to a per-lane loop (lane order
    is one valid interleaving).  Shared between the interpreter and the
    JIT backend so both apply bit-identical updates by construction.
    """
    serial = (
        old is not None
        and safe_l.size > 1
        and np.unique(safe_l).size < safe_l.size
    )
    if serial:
        act = np.flatnonzero(mask)
        with np.errstate(all="ignore"):
            for i, a_idx in enumerate(safe_l):
                cur = arr[a_idx]
                old[act[i]] = cur
                if op == "add":
                    arr[a_idx] = cur + val_l[i]
                elif op == "sub":
                    arr[a_idx] = cur - val_l[i]
                elif op == "min":
                    arr[a_idx] = np.minimum(cur, val_l[i])
                elif op == "max":
                    arr[a_idx] = np.maximum(cur, val_l[i])
                elif op == "exch":
                    arr[a_idx] = val_l[i]
                elif op == "cas":
                    if cur == cmp_l[i]:
                        arr[a_idx] = val_l[i]
                else:  # pragma: no cover - guarded by Atomic.__post_init__
                    raise InterpError(f"unsupported atomic {op!r}")
    elif op == "add":
        np.add.at(arr, safe_l, val_l)
    elif op == "sub":
        np.subtract.at(arr, safe_l, val_l)
    elif op == "min":
        np.minimum.at(arr, safe_l, val_l)
    elif op == "max":
        np.maximum.at(arr, safe_l, val_l)
    elif op == "exch":
        arr[safe_l] = val_l
    elif op == "cas":
        for i, a_idx in enumerate(safe_l):
            if arr[a_idx] == cmp_l[i]:
                arr[a_idx] = val_l[i]
    else:  # pragma: no cover - guarded by Atomic.__post_init__
        raise InterpError(f"unsupported atomic {op!r}")


@dataclass
class _LoopFrame:
    """Per-loop bookkeeping for break masks."""

    break_mask: np.ndarray = None  # type: ignore[assignment]


class BlockExecutor:
    """Executes GPU blocks of one kernel launch against a memory space.

    Args:
        kernel: the IR kernel to run.
        config: launch geometry.
        args: mapping of parameter name to value — a 1-D NumPy array of
            the pointer's element dtype for pointer params (this *is* the
            memory the kernel reads/writes), or a scalar for value params.
        counters: optional accumulator for dynamic op counts.
        bounds_check: verify active-lane memory indices are in range
            (clear error messages instead of silent wraparound).
        sanitize: attach the dynamic sanitizer — ``True`` creates a fresh
            :class:`~repro.sanitize.dynamic.DynamicSanitizer`; passing an
            existing instance shares it (the runtime does this so one
            launch accumulates a single report across node executors).
            Sanitizer hooks never touch ``counters``, so modeled times
            are identical with and without it; memory faults are recorded
            as findings (and clamped) instead of raising.
        profile: per-line count attribution — a line sink (something with
            ``line(loc) -> OpCounters``, see
            :mod:`repro.obs.profiler`), a whole
            :class:`~repro.obs.profiler.Profiler` (a ``grid`` phase sink
            is taken from it), or falsy (default) for no attribution.
            Every count booked into ``counters`` is mirrored into the
            bucket of the statement's source line, so per-line counts
            sum exactly to the aggregate; the aggregate itself (and
            therefore modeled time) is untouched.
    """

    def __init__(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        args: dict[str, object],
        counters: OpCounters | None = None,
        bounds_check: bool = True,
        sanitize: object = False,
        profile: object = None,
    ):
        self.kernel = kernel
        self.config = config
        self.counters = counters
        self.bounds_check = bounds_check
        self._san = None
        if sanitize:
            # deferred import: repro.sanitize.dynamic imports nothing from
            # the interpreter, but keeping it out of module scope means a
            # sanitize=False run never pays for the subsystem
            from repro.sanitize.dynamic import DynamicSanitizer

            self._san = (
                sanitize
                if isinstance(sanitize, DynamicSanitizer)
                else DynamicSanitizer(kernel.name)
            )
        self._prof = None
        self._prof_line = None  # current statement's per-line bucket
        if profile:
            # duck-typed: a Profiler grows a standalone "grid" phase
            # sink; anything else is used as the sink directly (the
            # runtime passes one per-phase sink shared across ranks)
            sinkf = getattr(profile, "sink", None)
            self._prof = (
                sinkf(kernel, "grid") if sinkf is not None else profile
            )
        self._span_ok = span_eligible(kernel)
        self._span_len = 1
        self._block_lane_pos: np.ndarray | None = None
        self._shared_seg: dict[str, int] = {}

        self._buffers: dict[str, np.ndarray] = {}
        self._scalars: dict[str, object] = {}
        self._bind_args(args)

        self._tid_template = config.thread_coords()
        self._static_sregs = {
            SRegKind.NTID_X: np.int32(config.block[0]),
            SRegKind.NTID_Y: np.int32(config.block[1]),
            SRegKind.NTID_Z: np.int32(config.block[2]),
            SRegKind.NCTAID_X: np.int32(config.grid[0]),
            SRegKind.NCTAID_Y: np.int32(config.grid[1]),
            SRegKind.NCTAID_Z: np.int32(config.grid[2]),
        }

        # per-run lane state, set by _setup_lanes()
        self.nlanes = 0
        self._lane_sregs: dict[SRegKind, np.ndarray] = {}
        self._env: dict[str, object] = {}
        self._var_types: dict[str, DType] = {}
        self._shared: dict[str, np.ndarray] = {}
        self._ret_mask: np.ndarray = np.zeros(0, dtype=bool)
        self._frames: list[_LoopFrame] = []
        self._cur_n = 0.0

    @property
    def sanitizer(self):
        """The attached dynamic sanitizer, or ``None``."""
        return self._san

    # ------------------------------------------------------------------
    # argument binding
    # ------------------------------------------------------------------
    def _bind_args(self, args: dict[str, object]) -> None:
        for p in self.kernel.params:
            if p.name not in args:
                raise LaunchError(
                    f"kernel {self.kernel.name!r}: missing argument {p.name!r}"
                )
            v = args[p.name]
            if p.is_pointer:
                elem = p.type.elem  # type: ignore[union-attr]
                if not isinstance(v, np.ndarray) or v.ndim != 1:
                    raise LaunchError(
                        f"argument {p.name!r} must be a 1-D NumPy array"
                    )
                if v.dtype != elem.np:
                    raise LaunchError(
                        f"argument {p.name!r}: dtype {v.dtype} does not match "
                        f"declared element type {elem.name} ({elem.np})"
                    )
                self._buffers[p.name] = v
            else:
                if isinstance(v, np.ndarray) and v.ndim != 0:
                    raise LaunchError(
                        f"argument {p.name!r} is a scalar parameter but got an array"
                    )
                self._scalars[p.name] = p.type.np.type(v)  # type: ignore[union-attr]
        extra = set(args) - {p.name for p in self.kernel.params}
        if extra:
            raise LaunchError(
                f"kernel {self.kernel.name!r}: unknown arguments {sorted(extra)}"
            )

    # ------------------------------------------------------------------
    # lane setup + public entry points
    # ------------------------------------------------------------------
    def _setup_lanes(self, block_ids: np.ndarray) -> None:
        span = block_ids.shape[0]
        tpb = self.config.threads_per_block
        self.nlanes = span * tpb
        self._span_len = span
        self._block_lane_pos = (
            np.repeat(np.arange(span, dtype=np.int64), tpb) if span > 1 else None
        )
        self._shared_seg = {}
        tx, ty, tz = self._tid_template
        gx, gy, _gz = self.config.grid
        bx = (block_ids % gx).astype(np.int32)
        by = ((block_ids // gx) % self.config.grid[1]).astype(np.int32)
        bz = (block_ids // (gx * self.config.grid[1])).astype(np.int32)
        self._lane_ids = np.arange(self.nlanes, dtype=np.int64)
        self._local: dict[str, np.ndarray] = {}
        self._local_seg: dict[str, int] = {}
        self._lane_sregs = {
            SRegKind.TID_X: np.tile(tx, span),
            SRegKind.TID_Y: np.tile(ty, span),
            SRegKind.TID_Z: np.tile(tz, span),
            SRegKind.CTAID_X: np.repeat(bx, tpb),
            SRegKind.CTAID_Y: np.repeat(by, tpb),
            SRegKind.CTAID_Z: np.repeat(bz, tpb),
        }
        self._env = {}
        self._var_types = {}
        self._shared = {}
        self._ret_mask = np.zeros(self.nlanes, dtype=bool)
        self._frames = []
        if self._san is not None:
            self._san.on_span(
                span=span,
                tpb=tpb,
                lane_thread=np.tile(np.arange(tpb, dtype=np.int64), span),
                lane_block=np.repeat(block_ids, tpb),
            )

    def run_span(self, block_ids) -> None:
        """Execute a set of blocks in one vectorized pass."""
        block_ids = np.asarray(block_ids, dtype=np.int64).reshape(-1)
        if block_ids.size == 0:
            return
        if block_ids.size > 1 and not self._span_ok:
            raise InterpError(
                f"kernel {self.kernel.name!r} uses shared memory; blocks must "
                "run one at a time"
            )
        if block_ids.min() < 0 or block_ids.max() >= self.config.num_blocks:
            raise LaunchError(
                f"block ids out of range for grid {self.config.grid}"
            )
        self._setup_lanes(block_ids)
        mask = np.ones(self.nlanes, dtype=bool)
        with np.errstate(all="ignore"):
            self._exec_body(self.kernel.body, mask)

    def run_block(self, linear_bid: int) -> None:
        """Execute all threads of one GPU block to completion."""
        self.run_span(np.array([linear_bid], dtype=np.int64))

    def run_blocks(self, linear_bids, span: int | None = None) -> None:
        """Execute a sequence of blocks, in spans when the kernel allows.

        ``span=None`` picks :data:`DEFAULT_SPAN` for span-eligible kernels
        and 1 otherwise.
        """
        ids = np.fromiter((int(b) for b in linear_bids), dtype=np.int64)
        if span is None:
            span = DEFAULT_SPAN if self._span_ok else 1
        span = max(1, span) if self._span_ok else 1
        for lo in range(0, ids.size, span):
            self.run_span(ids[lo : lo + span])

    # ------------------------------------------------------------------
    # counting helpers
    # ------------------------------------------------------------------
    def _count(self, kind: str, amount: float) -> None:
        if self.counters is not None and amount:
            setattr(self.counters, kind, getattr(self.counters, kind) + amount)
            line = self._prof_line
            if line is not None:
                setattr(line, kind, getattr(line, kind) + amount)

    def _count_lines(self, idx, mask: np.ndarray, elem_size: int) -> None:
        """Meter 64-byte-line-granular traffic of one access statement.

        Uses a span estimate rather than an exact distinct-line count:
        ``min(active lanes, touched address span / 64 + 1)`` — exact for
        contiguous, strided-sparse and broadcast patterns (the ones real
        kernels have), cheap to compute per statement.
        """
        if self.counters is None or not self._cur_n:
            return
        idx = np.asarray(idx)
        if idx.ndim == 0:
            n = 1.0
        else:
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            sel = idx[mask]
            if sel.size == 0:
                return
            lo = int(sel.min()) * elem_size
            hi = int(sel.max()) * elem_size
            span_lines = (hi - lo) // 64 + 1
            n = float(min(self._cur_n, span_lines))
        self.counters.global_line_bytes += 64.0 * n
        if self._prof_line is not None:
            self._prof_line.global_line_bytes += 64.0 * n

    # ------------------------------------------------------------------
    # expression evaluation (vectorized over lanes)
    # ------------------------------------------------------------------
    def _eval(self, e: Expr, mask: np.ndarray):
        if isinstance(e, Const):
            return e.type.np.type(e.value)
        if isinstance(e, SReg):
            v = self._lane_sregs.get(e.kind)
            return v if v is not None else self._static_sregs[e.kind]
        if isinstance(e, Param):
            if e.is_pointer:
                raise InterpError(
                    f"pointer parameter {e.name!r} evaluated as a scalar"
                )
            return self._scalars[e.name]
        if isinstance(e, Var):
            if e.is_pointer:
                raise InterpError(f"pointer variable {e.name!r} evaluated as a scalar")
            try:
                return self._env[e.name]
            except KeyError:
                raise InterpError(
                    f"read of unassigned variable {e.name!r} in kernel "
                    f"{self.kernel.name!r}"
                ) from None
        if isinstance(e, BinOp):
            return self._eval_binop(e, mask)
        if isinstance(e, UnOp):
            v = self._eval(e.operand, mask)
            if e.op == "-":
                self._count(
                    "flops" if e.dtype.is_float else "int_ops", self._cur_n
                )
                return np.negative(v)
            if e.op == "!":
                self._count("int_ops", self._cur_n)
                return ~self._truthy(v)
            # '~'
            self._count("int_ops", self._cur_n)
            return np.invert(np.asarray(v).astype(e.dtype.np, copy=False))
        if isinstance(e, Cast):
            v = self._eval(e.value, mask)
            self._count("int_ops", self._cur_n)
            return np.asarray(v).astype(e.type.np, copy=False)
        if isinstance(e, Load):
            return self._eval_load(e, mask)
        if isinstance(e, Call):
            args = [self._eval(a, mask) for a in e.args]
            out_dt = e.dtype
            args = [np.asarray(a).astype(out_dt.np, copy=False) for a in args]
            if e.name in ("min", "max", "abs") and not out_dt.is_float:
                self._count("int_ops", self._cur_n)
            elif e.name in ("min", "max", "abs", "fabs", "floor", "ceil"):
                self._count("flops", self._cur_n)
            else:
                self._count("special_ops", self._cur_n)
            return apply_intrinsic(e.name, args, out_dt.np)
        if isinstance(e, Select):
            # C evaluates only the taken side; under lanes, each side is
            # evaluated with its own refined mask so guarded indexing
            # (`t < n ? x[t] : 0`) cannot fault on untaken lanes
            c = self._truthy(self._eval(e.cond, mask))
            t = self._eval(e.if_true, mask & c)
            f = self._eval(e.if_false, mask & ~c)
            dt = e.dtype.np
            self._count("int_ops", self._cur_n)
            return np.where(
                c,
                np.asarray(t).astype(dt, copy=False),
                np.asarray(f).astype(dt, copy=False),
            )
        raise InterpError(f"cannot evaluate {type(e).__name__}")  # pragma: no cover

    @staticmethod
    def _truthy(v) -> np.ndarray:
        v = np.asarray(v)
        return v if v.dtype == np.bool_ else v != 0

    def _eval_binop(self, e: BinOp, mask: np.ndarray):
        op = e.op
        if op in ("&&", "||"):
            # short-circuit semantics at lane granularity: the RHS is
            # evaluated under the lanes the LHS leaves live, so idioms
            # like `i < n && x[i] > 0` cannot fault on untaken lanes
            lt = self._truthy(self._eval(e.lhs, mask))
            self._count("int_ops", self._cur_n)
            if op == "&&":
                rt = self._truthy(self._eval(e.rhs, mask & lt))
                return lt & rt
            rt = self._truthy(self._eval(e.rhs, mask & ~lt))
            return lt | rt
        l = self._eval(e.lhs, mask)
        r = self._eval(e.rhs, mask)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ct = common_type(e.lhs.dtype, e.rhs.dtype)
            la = np.asarray(l).astype(ct.np, copy=False)
            ra = np.asarray(r).astype(ct.np, copy=False)
            self._count("flops" if ct.is_float else "int_ops", self._cur_n)
            fn = {
                "==": np.equal,
                "!=": np.not_equal,
                "<": np.less,
                "<=": np.less_equal,
                ">": np.greater,
                ">=": np.greater_equal,
            }[op]
            return fn(la, ra)
        rt = e.dtype
        if op in ("<<", ">>"):
            la = np.asarray(l).astype(rt.np, copy=False)
            ra = np.asarray(r).astype(np.int64, copy=False)
            self._count("int_ops", self._cur_n)
            # the int64 shift count widens the result under NumPy's
            # promotion rules; C wraps at the declared type's width
            out = (la << ra) if op == "<<" else (la >> ra)
            return out.astype(rt.np, copy=False)
        # arithmetic: +, -, *, /, %
        la = np.asarray(l).astype(rt.np, copy=False)
        ra = np.asarray(r).astype(rt.np, copy=False)
        if rt.is_float:
            if op == "+":
                out = la + ra
            elif op == "-":
                out = la - ra
            elif op == "*":
                out = la * ra
            else:  # '/'
                self._count("div_ops", self._cur_n)
                return la / ra
            self._count("flops", self._cur_n)
            return out
        # integer arithmetic with C semantics
        self._count("int_ops", self._cur_n)
        if op == "+":
            return la + ra
        if op == "-":
            return la - ra
        if op == "*":
            return la * ra
        if op == "/":
            return _c_int_div(la, ra).astype(rt.np, copy=False)
        return _c_int_mod(la, ra).astype(rt.np, copy=False)

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------
    def _resolve_ptr(self, ptr: Expr) -> tuple[np.ndarray, PointerType]:
        t = getattr(ptr, "type", None)
        if not isinstance(t, PointerType):
            raise InterpError("pointer operand is not pointer-typed")
        if isinstance(ptr, Param):
            return self._buffers[ptr.name], t
        if isinstance(ptr, Var):
            store = (
                self._local if t.space is AddressSpace.LOCAL else self._shared
            )
            try:
                return store[ptr.name], t
            except KeyError:
                raise InterpError(
                    f"use of undeclared {t.space.value} array {ptr.name!r}"
                ) from None
        raise InterpError(f"unsupported pointer expression {type(ptr).__name__}")

    def _lane_coords(self, mask: np.ndarray, lane: int) -> tuple[int, int]:
        """(blockIdx.x, threadIdx.x) of a lane, for diagnostics."""
        bid = int(
            np.broadcast_to(self._lane_sregs[SRegKind.CTAID_X], mask.shape)[lane]
        )
        tid = int(
            np.broadcast_to(self._lane_sregs[SRegKind.TID_X], mask.shape)[lane]
        )
        return bid, tid

    def _safe_indices(
        self, idx, mask: np.ndarray, arr: np.ndarray, what: str,
        name: str | None = None,
    ) -> np.ndarray:
        idx = np.asarray(idx).astype(np.int64, copy=False)
        if self.bounds_check or self._san is not None:
            bad = mask & ((idx < 0) | (idx >= arr.shape[0]))
            if np.any(bad):
                lane = int(np.argmax(bad))
                off = int(np.broadcast_to(idx, mask.shape)[lane])
                bid, tid = self._lane_coords(mask, lane)
                msg = (
                    f"kernel {self.kernel.name!r}: out-of-bounds {what}"
                    f"{' of ' + repr(name) if name else ''} at index {off} "
                    f"(buffer length {arr.shape[0]}, blockIdx.x {bid}, "
                    f"threadIdx.x {tid})"
                )
                if self._san is not None:
                    self._san.on_oob("global", msg)
                else:
                    raise InterpError(msg)
        if idx.ndim == 0:
            return idx if 0 <= int(idx) < arr.shape[0] else np.int64(0)
        oob = (idx < 0) | (idx >= arr.shape[0])
        if not oob.any():
            return idx
        return np.where(mask & ~oob, idx, 0)

    def _shared_index(
        self, name: str, idx, mask: np.ndarray
    ) -> np.ndarray:
        """Bounds-check a shared-memory index against the per-block extent
        and offset it into this block's segment of the span-wide array."""
        seg = self._shared_seg.get(name)
        if seg is None:
            raise InterpError(f"use of undeclared shared array {name!r}")
        idx = np.asarray(idx).astype(np.int64, copy=False)
        if self.bounds_check or self._san is not None:
            bad = mask & ((idx < 0) | (idx >= seg))
            if np.any(bad):
                lane = int(np.argmax(bad))
                off = int(np.broadcast_to(idx, mask.shape)[lane])
                bid, tid = self._lane_coords(mask, lane)
                msg = (
                    f"kernel {self.kernel.name!r}: out-of-bounds shared access "
                    f"to {name!r} at index {off} (extent {seg}, blockIdx.x "
                    f"{bid}, threadIdx.x {tid})"
                )
                if self._san is not None:
                    self._san.on_oob("shared", msg)
                elif self.bounds_check:
                    raise InterpError(msg)
        # Out-of-extent indices clamp to element 0 *of this block's own
        # segment* — they can never reach a neighbouring block's segment
        # of the span-wide backing array.
        safe = np.where((idx >= 0) & (idx < seg), idx, 0)
        if self._block_lane_pos is None:
            return safe
        return safe + self._block_lane_pos * seg

    def _local_index(self, name: str, idx, mask: np.ndarray) -> np.ndarray:
        """Bounds-check a per-thread local-array index against its extent
        and offset it into the lane's segment."""
        seg = self._local_seg.get(name)
        if seg is None:
            raise InterpError(f"use of undeclared local array {name!r}")
        idx = np.asarray(idx).astype(np.int64, copy=False)
        if self.bounds_check or self._san is not None:
            bad = mask & ((idx < 0) | (idx >= seg))
            if np.any(bad):
                lane = int(np.argmax(bad))
                off = int(np.broadcast_to(idx, mask.shape)[lane])
                bid, tid = self._lane_coords(mask, lane)
                msg = (
                    f"kernel {self.kernel.name!r}: out-of-bounds local-array "
                    f"access to {name!r} at index {off} (extent {seg}, "
                    f"blockIdx.x {bid}, threadIdx.x {tid})"
                )
                if self._san is not None:
                    self._san.on_oob("local", msg)
                elif self.bounds_check:
                    raise InterpError(msg)
        safe = np.where((idx >= 0) & (idx < seg), idx, 0)
        return np.broadcast_to(safe, (self.nlanes,)) + self._lane_ids * seg

    def _on_global_access(
        self, ptr: Expr, idx, mask: np.ndarray, is_store: bool, elem_size: int
    ) -> None:
        """Hook: called for every global-memory access with the concrete
        element indices.  The PGAS baseline overrides this to classify
        accesses by owner rank."""

    def _count_mem(self, space: AddressSpace, nbytes: float, is_store: bool) -> None:
        if space is AddressSpace.GLOBAL:
            self._count(
                "global_store_bytes" if is_store else "global_load_bytes", nbytes
            )
            self._count("global_stores" if is_store else "global_loads", self._cur_n)
        elif space is AddressSpace.SHARED:
            self._count("shared_bytes", nbytes)
        else:
            self._count("local_bytes", nbytes)

    def _eval_load(self, e: Load, mask: np.ndarray):
        arr, pt = self._resolve_ptr(e.ptr)
        idx = self._eval(e.index, mask)
        if pt.space is AddressSpace.SHARED:
            safe = self._shared_index(e.ptr.name, idx, mask)
        elif pt.space is AddressSpace.LOCAL:
            safe = self._local_index(e.ptr.name, idx, mask)
        else:
            safe = self._safe_indices(
                idx, mask, arr, "load", getattr(e.ptr, "name", None)
            )
        self._count_mem(pt.space, self._cur_n * pt.elem.size, is_store=False)
        if pt.space is AddressSpace.GLOBAL:
            self._count_lines(safe, mask, pt.elem.size)
            self._on_global_access(e.ptr, safe, mask, False, pt.elem.size)
        if self._san is not None:
            if pt.space is AddressSpace.SHARED:
                self._san.on_shared_load(e.ptr.name, safe, mask)
            elif pt.space is AddressSpace.GLOBAL:
                self._san.on_global_load(
                    getattr(e.ptr, "name", "<ptr>"), safe, mask
                )
        return arr[safe]

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def _any(self, mask: np.ndarray) -> bool:
        return bool(mask.any())

    def _exec_body(self, stmts: list[Stmt], mask: np.ndarray) -> np.ndarray:
        """Execute statements under ``mask``; return the fallthrough mask."""
        for s in stmts:
            if not self._any(mask):
                break
            mask = self._exec_stmt(s, mask)
        return mask

    def _exec_stmt(self, s: Stmt, mask: np.ndarray) -> np.ndarray:
        self._cur_n = float(np.count_nonzero(mask))
        if self._prof is not None:
            self._prof_line = self._prof.line(s.loc)
        if self._san is not None:
            # every execution of a statement is a fresh *instance*: loads
            # and the store of one instance are exempt from race checks
            # against each other (lockstep gather-before-scatter), but the
            # same textual statement re-executed (next loop iteration)
            # is not
            self._san.begin_stmt(s)
        if isinstance(s, Assign):
            val = self._eval(s.value, mask)
            dt = s.type if s.type is not None else s.value.dtype
            if s.declare or s.name not in self._var_types:
                self._var_types[s.name] = dt
            dt = self._var_types[s.name]
            val = np.asarray(val).astype(dt.np, copy=False)
            if s.name in self._env and self._cur_n < mask.shape[0]:
                old = self._env[s.name]
                val = np.where(mask, val, np.asarray(old).astype(dt.np, copy=False))
            elif val.ndim and val.base is not None:
                val = val.copy()
            self._env[s.name] = val
            return mask
        if isinstance(s, Store):
            arr, pt = self._resolve_ptr(s.ptr)
            idx = self._eval(s.index, mask)
            val = self._eval(s.value, mask)
            if pt.space is AddressSpace.SHARED:
                safe = self._shared_index(s.ptr.name, idx, mask)
            elif pt.space is AddressSpace.LOCAL:
                safe = self._local_index(s.ptr.name, idx, mask)
            else:
                safe = self._safe_indices(
                    idx, mask, arr, "store", getattr(s.ptr, "name", None)
                )
            val = np.asarray(val).astype(pt.elem.np, copy=False)
            self._count_mem(pt.space, self._cur_n * pt.elem.size, is_store=True)
            if pt.space is AddressSpace.GLOBAL:
                self._count_lines(safe, mask, pt.elem.size)
                self._on_global_access(s.ptr, safe, mask, True, pt.elem.size)
            if self._san is not None:
                old = arr[safe]  # pre-store contents, for value-change checks
                if pt.space is AddressSpace.SHARED:
                    self._san.on_shared_store(s.ptr.name, safe, mask, val, old)
                elif pt.space is AddressSpace.GLOBAL:
                    self._san.on_global_store(
                        getattr(s.ptr, "name", "<ptr>"), safe, mask, val, old,
                        arr.shape[0], arr.dtype,
                    )
            if safe.ndim == 0:
                if mask.any():
                    arr[int(safe)] = val if val.ndim == 0 else val[np.argmax(mask)]
            else:
                val = np.broadcast_to(val, mask.shape)
                arr[safe[mask]] = val[mask]
            return mask
        if isinstance(s, If):
            self._count("branches", self._cur_n)
            cond = self._truthy(self._eval(s.cond, mask))
            t_mask = mask & cond
            f_mask = mask & ~cond
            t_out = (
                self._exec_body(s.then_body, t_mask)
                if self._any(t_mask)
                else t_mask
            )
            f_out = (
                self._exec_body(s.else_body, f_mask)
                if self._any(f_mask)
                else f_mask
            )
            return t_out | f_out
        if isinstance(s, For):
            return self._exec_for(s, mask)
        if isinstance(s, While):
            return self._exec_while(s, mask)
        if isinstance(s, Return):
            self._ret_mask |= mask
            return np.zeros_like(mask)
        if isinstance(s, Break):
            if not self._frames:
                raise InterpError("break outside a loop")
            self._frames[-1].break_mask |= mask
            return np.zeros_like(mask)
        if isinstance(s, Continue):
            if not self._frames:
                raise InterpError("continue outside a loop")
            return np.zeros_like(mask)
        if isinstance(s, SyncThreads):
            # statements execute in lockstep across the block, so the
            # barrier is already satisfied; still metered for the model
            # (one phase per block in the span)
            self._count("barriers", float(self._span_len))
            if self._san is not None:
                self._san.on_barrier(mask, self._ret_mask)
            return mask
        if isinstance(s, Atomic):
            return self._exec_atomic(s, mask)
        if isinstance(s, AllocShared):
            size = self._eval(s.size, mask)
            if np.ndim(size) != 0:
                raise InterpError(
                    f"shared array {s.name!r} extent must be block-invariant"
                )
            self._shared_seg[s.name] = int(size)
            self._shared[s.name] = np.zeros(
                int(size) * self._span_len, dtype=s.elem.np
            )
            if self._san is not None:
                self._san.on_alloc_shared(s.name, int(size))
            return mask
        if isinstance(s, AllocLocal):
            size = self._eval(s.size, mask)
            if np.ndim(size) != 0:
                raise InterpError(
                    f"local array {s.name!r} extent must be launch-invariant"
                )
            self._local_seg[s.name] = int(size)
            self._local[s.name] = np.zeros(
                int(size) * self.nlanes, dtype=s.elem.np
            )
            return mask
        raise InterpError(f"cannot execute {type(s).__name__}")  # pragma: no cover

    # -- loops ----------------------------------------------------------
    def _body_assigns(self, body: list[Stmt], name: str) -> bool:
        return any(
            isinstance(st, Assign) and st.name == name for st in iter_stmts(body)
        )

    def _exec_for(self, s: For, mask: np.ndarray) -> np.ndarray:
        start = self._eval(s.start, mask)
        stop = self._eval(s.stop, mask)
        step = self._eval(s.step, mask)
        invariant = (
            np.ndim(start) == 0
            and np.ndim(stop) == 0
            and np.ndim(step) == 0
            and not self._body_assigns(s.body, s.var)
        )
        frame = _LoopFrame(break_mask=np.zeros_like(mask))
        self._frames.append(frame)
        entry = mask
        try:
            if invariant:
                step_i = int(step)
                if step_i == 0:
                    # zero step is only an error if the loop would actually
                    # iterate; a zero-trip bound (start >= stop ascending)
                    # simply executes no iterations
                    if int(start) < int(stop):
                        raise InterpError(
                            f"loop {s.var!r} has zero step with a nonzero "
                            f"trip count"
                        )
                else:
                    self._var_types[s.var] = s.start.dtype
                    for v in range(int(start), int(stop), step_i):
                        cur = entry & ~frame.break_mask & ~self._ret_mask
                        if not self._any(cur):
                            break
                        self._env[s.var] = s.start.dtype.np.type(v)
                        self._exec_body(s.body, cur)
            else:
                var_dt = s.start.dtype.np
                v = np.broadcast_to(
                    np.asarray(start).astype(var_dt, copy=False), mask.shape
                ).copy()
                step_arr = np.asarray(step)
                step_b = np.broadcast_to(step_arr, mask.shape)
                assigns = self._body_assigns(s.body, s.var)
                self._var_types[s.var] = s.start.dtype
                iters = 0
                while True:
                    # per-lane liveness: lanes whose trip count is zero or
                    # negative (start beyond stop in the step direction)
                    # must execute zero iterations — no first-iteration
                    # leakage.  Zero-step lanes use the ascending test so a
                    # zero-trip bound still terminates immediately.
                    live = np.where(
                        step_b > 0,
                        v < stop,
                        np.where(step_b < 0, v > stop, v < stop),
                    )
                    cur = entry & ~frame.break_mask & ~self._ret_mask & live
                    if not self._any(cur):
                        break
                    if not assigns and bool((step_b[cur] == 0).any()):
                        # would spin to MAX_LOOP_ITERS: the induction
                        # variable can never move for these lanes
                        raise InterpError(
                            f"loop {s.var!r} has zero step with a nonzero "
                            f"trip count for an active lane"
                        )
                    self._env[s.var] = v
                    self._exec_body(s.body, cur)
                    v = (self._to_lanes(self._env[s.var], var_dt) + step_arr).astype(
                        var_dt, copy=False
                    )
                    iters += 1
                    if iters > MAX_LOOP_ITERS:
                        raise InterpError(
                            f"loop over {s.var!r} exceeded {MAX_LOOP_ITERS} iterations"
                        )
        finally:
            self._frames.pop()
        return mask & ~self._ret_mask

    def _to_lanes(self, v, dt) -> np.ndarray:
        return np.broadcast_to(np.asarray(v).astype(dt, copy=False), (self.nlanes,))

    def _exec_while(self, s: While, mask: np.ndarray) -> np.ndarray:
        frame = _LoopFrame(break_mask=np.zeros_like(mask))
        self._frames.append(frame)
        entry = mask
        iters = 0
        try:
            while True:
                cur = entry & ~frame.break_mask & ~self._ret_mask
                if not self._any(cur):
                    break
                self._cur_n = float(np.count_nonzero(cur))
                if self._prof is not None:
                    # body statements moved the bucket; the re-evaluated
                    # loop condition bills the while header's line
                    self._prof_line = self._prof.line(s.loc)
                cond = self._truthy(self._eval(s.cond, cur))
                cur = cur & cond
                if not self._any(cur):
                    break
                self._exec_body(s.body, cur)
                iters += 1
                if iters > MAX_LOOP_ITERS:
                    raise InterpError(
                        f"while loop exceeded {MAX_LOOP_ITERS} iterations"
                    )
        finally:
            self._frames.pop()
        return mask & ~self._ret_mask

    # -- atomics ----------------------------------------------------------
    def _exec_atomic(self, s: Atomic, mask: np.ndarray) -> np.ndarray:
        arr, pt = self._resolve_ptr(s.ptr)
        idx = self._eval(s.index, mask)
        val = np.asarray(self._eval(s.value, mask)).astype(pt.elem.np, copy=False)
        if pt.space is AddressSpace.SHARED:
            safe = self._shared_index(s.ptr.name, idx, mask)
        elif pt.space is AddressSpace.LOCAL:
            safe = self._local_index(s.ptr.name, idx, mask)
        else:
            safe = self._safe_indices(
                idx, mask, arr, "atomic", getattr(s.ptr, "name", None)
            )
        safe_l = np.broadcast_to(safe, mask.shape)[mask]
        val_l = np.broadcast_to(val, mask.shape)[mask]
        self._count("atomics", self._cur_n)
        self._count_mem(pt.space, 2.0 * self._cur_n * pt.elem.size, is_store=True)
        if pt.space is AddressSpace.GLOBAL:
            self._count_lines(safe, mask, pt.elem.size)
            self._on_global_access(s.ptr, safe, mask, True, pt.elem.size)
        if self._san is not None:
            self._san.on_atomic(
                pt.space.name.lower(), getattr(s.ptr, "name", "<ptr>"),
                safe, mask, arr.shape[0], arr.dtype,
            )
        cmp_l = None
        if s.op == "cas":
            cmp_l = np.broadcast_to(
                np.asarray(self._eval(s.compare, mask)).astype(
                    pt.elem.np, copy=False
                ),
                mask.shape,
            )[mask]
        old = None
        if s.result is not None:
            self._var_types[s.result] = pt.elem
            # Old values gathered before this instruction's updates; valid
            # only when no two active lanes target the same location (the
            # colliding case serializes inside apply_atomic_op).
            old = np.broadcast_to(arr[safe], mask.shape).astype(
                pt.elem.np, copy=True
            )
            if s.result in self._env and not mask.all():
                prev = np.asarray(self._env[s.result]).astype(pt.elem.np, copy=False)
                old = np.where(mask, old, prev).astype(pt.elem.np, copy=False)
        apply_atomic_op(arr, safe_l, val_l, s.op, cmp_l=cmp_l, old=old, mask=mask)
        if s.result is not None:
            self._env[s.result] = old
        return mask


def run_grid(
    kernel: Kernel,
    config: LaunchConfig,
    args: dict[str, object],
    counters: OpCounters | None = None,
    block_ids=None,
    bounds_check: bool = True,
    span: int | None = None,
    sanitize: object = False,
    profile: object = None,
    backend: str = "interp",
) -> BlockExecutor:
    """Execute a kernel launch (all blocks, or ``block_ids``) sequentially.

    This is the single-memory-space reference execution used for the GPU
    functional model and the single-CPU baseline.  Returns the executor so
    callers can inspect state.  ``sanitize`` enables the dynamic sanitizer
    (pass ``True`` or a shared ``DynamicSanitizer``); findings accumulate
    on ``executor.sanitizer.report``.  ``profile`` attributes counts per
    source line (a :class:`~repro.obs.profiler.Profiler` or a line sink;
    see :class:`BlockExecutor`).  ``backend`` selects the execution tier:
    ``"interp"`` (this module's tree-walker, the reference), ``"jit"``
    (the :mod:`repro.interp.jit` codegen tier, bit-identical by
    contract), or ``"auto"`` (JIT when the kernel compiles and no
    interpreter-shaped hook — sanitizer, profiler — is attached).
    """
    if backend not in ("interp", "jit", "auto"):
        raise LaunchError(
            f"unknown backend {backend!r}; expected 'interp', 'jit' or 'auto'"
        )
    ex: BlockExecutor | None = None
    if backend != "interp":
        if sanitize or profile:
            if backend == "jit":
                raise LaunchError(
                    "backend='jit' does not support sanitize/profile hooks; "
                    "they observe the tree-walking interpreter"
                )
        else:
            from repro.interp.jit import JITBlockExecutor, JITUnsupported

            try:
                ex = JITBlockExecutor(
                    kernel, config, args, counters, bounds_check=bounds_check
                )
            except JITUnsupported:
                if backend == "jit":
                    raise
    if ex is None:
        ex = BlockExecutor(
            kernel, config, args, counters, bounds_check=bounds_check,
            sanitize=sanitize, profile=profile,
        )
    ids = range(config.num_blocks) if block_ids is None else block_ids
    ex.run_blocks(ids, span=span)
    return ex

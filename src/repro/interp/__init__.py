"""Vectorized SPMD interpreter for kernel IR.

Functionally equivalent to the CPU code CuCC generates: one GPU block
executes as a unit, with the block's threads evaluated as NumPy lane
vectors (the "SIMD" dimension of the paper's Listing 2).
"""

from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig, dim3
from repro.interp.machine import BlockExecutor, run_grid

__all__ = ["OpCounters", "LaunchConfig", "dim3", "BlockExecutor", "run_grid"]

"""Vectorized SPMD interpreter for kernel IR.

Functionally equivalent to the CPU code CuCC generates: one GPU block
executes as a unit, with the block's threads evaluated as NumPy lane
vectors (the "SIMD" dimension of the paper's Listing 2).
"""

from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig, dim3
from repro.interp.machine import BlockExecutor, run_grid

__all__ = ["OpCounters", "LaunchConfig", "dim3", "BlockExecutor", "run_grid"]

# The JIT fast path lives in repro.interp.jit (JITBlockExecutor,
# get_program, diff_grid, run_gate, ...).  It is imported lazily —
# ``run_grid(..., backend="jit")`` defers the import — so interpreter
# users never pay for the codegen tier.

"""Dynamic operation counters.

The interpreter meters every executed kernel: per-lane counts of floating
and integer arithmetic, transcendental calls, and bytes moved per address
space.  These counts are the inputs to the roofline performance model in
:mod:`repro.hw.perfmodel` — they play the role of the hardware counters /
measured runtimes in the paper's evaluation.

Counts are *per executed lane*: an add evaluated for a block with 200 of
256 threads active contributes 200, matching what the corresponding
SIMD/scalar CPU code (or GPU warp with 200 active threads doing useful
work) would retire.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["OpCounters"]

#: Cost (in "simple-op equivalents") of transcendental intrinsics relative
#: to one FLOP.  Rough throughput ratios for modern x86 SIMD math
#: libraries and GPU SFUs; the exact values only shift constants, not the
#: shapes of any experiment.
SPECIAL_FN_FLOP_WEIGHT = 8.0
DIV_FLOP_WEIGHT = 4.0


@dataclass
class OpCounters:
    """Mutable accumulator of dynamic operation counts."""

    flops: float = 0.0  # simple float add/sub/mul/cmp (per lane)
    div_ops: float = 0.0  # float divisions (costlier, weighted separately)
    special_ops: float = 0.0  # transcendental intrinsic calls
    int_ops: float = 0.0  # integer arithmetic / logical ops
    global_load_bytes: float = 0.0
    global_store_bytes: float = 0.0
    global_loads: float = 0.0  # element-granular access counts (PGAS model)
    global_stores: float = 0.0
    #: 64-byte-line-granular traffic: per executed access statement, the
    #: number of distinct cache lines touched x 64.  Contiguous (coalesced)
    #: access yields ~= element bytes; strided access (Transpose's gather)
    #: is amplified up to 64/elem_size x.  This is the DRAM-traffic
    #: estimate the memory model uses when the working set exceeds LLC.
    global_line_bytes: float = 0.0
    shared_bytes: float = 0.0  # shared-memory traffic (loads + stores)
    local_bytes: float = 0.0
    atomics: float = 0.0
    branches: float = 0.0  # mask re-evaluations (divergence proxy)
    barriers: float = 0.0

    def add(self, other: "OpCounters") -> None:
        """Accumulate another counter set into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def scaled(self, factor: float) -> "OpCounters":
        """Return a copy with every count multiplied by ``factor``.

        Used to extrapolate per-block counts to a full grid when all
        blocks execute identical work.
        """
        out = OpCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) * factor)
        return out

    def copy(self) -> "OpCounters":
        return self.scaled(1.0)

    @property
    def weighted_flops(self) -> float:
        """Arithmetic work in FLOP-equivalents (divisions and
        transcendentals weighted by their relative cost)."""
        return (
            self.flops
            + DIV_FLOP_WEIGHT * self.div_ops
            + SPECIAL_FN_FLOP_WEIGHT * self.special_ops
        )

    @property
    def weighted_ops(self) -> float:
        """All arithmetic work (float + integer) in op-equivalents.

        Integer address arithmetic is real work for the migrated CPU code,
        so it is included when estimating compute time for kernels that do
        little floating-point math (e.g. Transpose)."""
        return self.weighted_flops + self.int_ops

    @property
    def global_bytes(self) -> float:
        return self.global_load_bytes + self.global_store_bytes

    @property
    def global_accesses(self) -> float:
        return self.global_loads + self.global_stores

    @property
    def total_mem_bytes(self) -> float:
        return self.global_bytes + self.shared_bytes + self.local_bytes

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}={v:.3g}" for k, v in self.as_dict().items() if v
        )
        return f"OpCounters({parts})"

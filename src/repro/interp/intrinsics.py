"""NumPy implementations of the IR math intrinsics.

Each intrinsic maps to a vectorized callable applied to the lane vectors.
The table is keyed by the same names as :data:`repro.ir.expr.INTRINSICS`;
the interpreter has already promoted argument dtypes per the IR typing
rules before these are called.
"""

from __future__ import annotations

import numpy as np

try:  # scipy is available in the evaluation environment but optional
    from scipy.special import erf as _erf
except ImportError:  # pragma: no cover - fallback path
    _vec_erf = np.vectorize(__import__("math").erf)

    def _erf(x):
        return _vec_erf(x)

__all__ = ["INTRINSIC_IMPLS", "apply_intrinsic"]


def _rsqrt(x):
    return 1.0 / np.sqrt(x)


INTRINSIC_IMPLS = {
    "sqrt": np.sqrt,
    "rsqrt": _rsqrt,
    "exp": np.exp,
    "exp2": np.exp2,
    "log": np.log,
    "log2": np.log2,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
    "erf": _erf,
    "fabs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "pow": np.power,
    "fmod": np.fmod,
    "abs": np.abs,
    "min": np.minimum,
    "max": np.maximum,
}


def apply_intrinsic(name: str, args: list, out_dtype: np.dtype):
    """Apply intrinsic ``name`` to already-evaluated lane vectors.

    Inactive lanes may hold values outside the intrinsic's domain (e.g. a
    guarded ``sqrt`` of a negative), so floating-point errors are
    suppressed; such lanes produce NaN/inf that is never observed.
    """
    fn = INTRINSIC_IMPLS[name]
    with np.errstate(all="ignore"):
        out = fn(*args)
    return np.asarray(out).astype(out_dtype, copy=False)

"""Static lane-divergence facts feeding the JIT's mask-free proof.

The codegen emits straight-line (unmasked) NumPy for a control construct
only when two independent arguments agree:

1. **Affine proof** (this module): the branch condition / loop bounds
   evaluate, via :func:`repro.analysis.affine.eval_sym` and the guard
   classifier that :mod:`repro.sanitize.static_race` is built on, to
   polynomials free of ``tid.*`` and ``ctaid.*`` symbols — no lane can
   disagree with any other lane *by construction*.
2. **Shape soundness** (checked by the codegen on the evaluated value):
   the condition actually evaluated to a 0-d scalar at specialization
   time.  This is the load-bearing check — an expression like
   ``tid.x * 0 + n`` is affine-invariant but still evaluates to a lane
   *vector*, and scalar Python ``if`` on it would be wrong.

The facts here are therefore a *restriction* on top of the shape check,
never a substitute: a condition the affine analysis cannot see through
(float compares, loads) takes the masked fallback even if it happens to
be uniform at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.affine import CTAID_SYMBOLS, TID_SYMBOLS, Poly, eval_sym
from repro.analysis.guards import guards_of_condition
from repro.ir.stmt import (
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    While,
)
from repro.ir.visitor import iter_stmts

__all__ = ["DivergenceFacts", "analyze_divergence", "LANE_SYMBOLS"]

#: Symbols whose presence in a polynomial makes it lane-dependent.
LANE_SYMBOLS = TID_SYMBOLS | CTAID_SYMBOLS


@dataclass(frozen=True)
class DivergenceFacts:
    """What the affine analysis proved about one kernel.

    ``invariant_conds``/``invariant_loops`` hold ``id()`` keys of the
    ``If``/``While`` (resp. ``For``) statements whose conditions (resp.
    bounds) are provably lane-invariant.  ``id()`` keys are valid only
    for the lifetime of the analyzed kernel object, which the compiler
    holds for the duration of codegen.
    """

    invariant_conds: frozenset[int]
    invariant_loops: frozenset[int]
    has_lane_exits: bool
    proved_mask_free: bool


def _lane_invariant_poly(p: Poly | None) -> bool:
    return p is not None and not (p.symbols() & LANE_SYMBOLS)


def _lane_invariant_cond(cond, env) -> bool:
    """A condition is lane-invariant when every conjunct's polynomial is
    known and free of lane symbols (mirrors the static-race classifier:
    UNIFORM guards are exactly the lane-invariant ones)."""
    try:
        guards = guards_of_condition(cond, env)
    except Exception:  # pragma: no cover - classifier never raises today
        return False
    return bool(guards) and all(_lane_invariant_poly(g.poly) for g in guards)


def _assigned_names(body: list[Stmt]) -> set[str]:
    out: set[str] = set()
    for st in iter_stmts(body):
        if isinstance(st, Assign):
            out.add(st.name)
        elif isinstance(st, For):
            out.add(st.var)
        elif isinstance(st, Atomic) and st.result is not None:
            out.add(st.result)
    return out


def analyze_divergence(kernel: Kernel) -> DivergenceFacts:
    """One forward pass over the kernel body, tracking a symbolic
    environment exactly the way ``static_race`` does."""
    inv_conds: set[int] = set()
    inv_loops: set[int] = set()
    all_branch_invariant = True
    all_loops_invariant = True
    lane_exits = False
    loop_seq = 0

    def walk(body: list[Stmt], env: dict[str, Poly | None]) -> None:
        nonlocal all_branch_invariant, all_loops_invariant, lane_exits, loop_seq
        for s in body:
            if isinstance(s, Assign):
                env[s.name] = eval_sym(s.value, env)
            elif isinstance(s, Atomic):
                if s.result is not None:
                    env[s.result] = None
            elif isinstance(s, (Return, Break, Continue)):
                lane_exits = True
            elif isinstance(s, If):
                if _lane_invariant_cond(s.cond, env):
                    inv_conds.add(id(s))
                else:
                    all_branch_invariant = False
                before = dict(env)
                walk(s.then_body, env)
                env_else = dict(before)
                walk(s.else_body, env_else)
                # conservative join: anything either arm may have changed
                # is unknown afterwards
                for name in set(env) | set(env_else):
                    if env.get(name) != env_else.get(name):
                        env[name] = None
            elif isinstance(s, For):
                # bounds are evaluated once at entry, so the pre-loop
                # environment applies to them; the body sees an opaque
                # loop symbol for the induction variable
                bounds_inv = all(
                    _lane_invariant_poly(eval_sym(e, env))
                    for e in (s.start, s.stop, s.step)
                )
                if bounds_inv:
                    inv_loops.add(id(s))
                else:
                    all_loops_invariant = False
                for name in _assigned_names(s.body):
                    env[name] = None
                loop_seq += 1
                env[s.var] = (
                    Poly.sym(f"loop#{loop_seq}:{s.var}") if bounds_inv else None
                )
                walk(s.body, env)
                for name in _assigned_names(s.body):
                    env[name] = None
            elif isinstance(s, While):
                # the condition re-evaluates every iteration, so kill
                # body-assigned names *before* classifying it
                for name in _assigned_names(s.body):
                    env[name] = None
                if _lane_invariant_cond(s.cond, env):
                    inv_conds.add(id(s))
                else:
                    all_branch_invariant = False
                walk(s.body, env)
                for name in _assigned_names(s.body):
                    env[name] = None

    walk(kernel.body, {})
    return DivergenceFacts(
        invariant_conds=frozenset(inv_conds),
        invariant_loops=frozenset(inv_loops),
        has_lane_exits=lane_exits,
        proved_mask_free=(
            all_branch_invariant and all_loops_invariant and not lane_exits
        ),
    )

"""JIT fast path for the SPMD interpreter.

Compiles kernel IR to specialized vectorized NumPy closures — one
generated Python source per (kernel, block shape, bounds-check flag)
specialization, ``compile()``d once and memoized.  The tree-walking
interpreter in :mod:`repro.interp.machine` remains the semantic
reference; the differential gate (:mod:`repro.interp.jit.differential`)
holds the JIT to bit-identical outputs *and* bit-identical
:class:`~repro.interp.counters.OpCounters`, so every hardware-model
clock is unchanged by construction.

See DESIGN.md §13 for the specialization key, the mask-free proof
obligation, and the persistent cache layout.
"""

from repro.errors import JITError, JITUnsupported
from repro.interp.jit.cache import (
    DEFAULT_CACHE_PATH,
    CompileCache,
    source_digest,
)
from repro.interp.jit.compiler import (
    CODEGEN_VERSION,
    JITProgram,
    compile_closure,
    generate_source,
    program_key,
)
from repro.interp.jit.differential import (
    DiffResult,
    diff_grid,
    diff_workload,
    run_gate,
)
from repro.interp.jit.divergence import DivergenceFacts, analyze_divergence
from repro.interp.jit.executor import (
    JITBlockExecutor,
    clear_memo,
    compile_stats,
    get_program,
)

__all__ = [
    "CODEGEN_VERSION",
    "DEFAULT_CACHE_PATH",
    "CompileCache",
    "DiffResult",
    "DivergenceFacts",
    "JITBlockExecutor",
    "JITError",
    "JITProgram",
    "JITUnsupported",
    "analyze_divergence",
    "clear_memo",
    "compile_closure",
    "compile_stats",
    "diff_grid",
    "diff_workload",
    "generate_source",
    "get_program",
    "program_key",
    "run_gate",
    "source_digest",
]

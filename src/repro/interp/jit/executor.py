"""The JIT-backed block executor.

:class:`JITBlockExecutor` is a drop-in :class:`~repro.interp.machine.
BlockExecutor` whose ``run_span`` calls the compiled closure instead of
walking the IR tree.  Everything else — argument binding, lane setup,
shared/local index helpers, bounds-check diagnostics — is inherited, so
the two backends share one implementation of every semantic edge the
closure delegates back to (``ctx._safe_indices`` and friends).

Compiled programs are memoized per specialization key for the process
lifetime, optionally backed by a persistent
:class:`~repro.interp.jit.cache.CompileCache`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InterpError, LaunchError
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.jit.cache import CompileCache
from repro.interp.jit.compiler import (
    JITProgram,
    compile_closure,
    generate_source,
    program_key,
)
from repro.interp.machine import BlockExecutor
from repro.ir.stmt import Kernel

__all__ = ["JITBlockExecutor", "get_program", "clear_memo", "compile_stats"]

#: process-lifetime memo: specialization key -> compiled program
_memo: dict[str, JITProgram] = {}

#: observability for tests and the CLI gate
compile_stats = {
    "compiles": 0,
    "memo_hits": 0,
    "cache_hits": 0,
    "cache_rejects": 0,
}


def clear_memo() -> None:
    """Drop all memoized programs (tests use this to force recompiles)."""
    _memo.clear()


def get_program(
    kernel: Kernel,
    block,
    bounds_check: bool = True,
    cache: CompileCache | None = None,
) -> JITProgram:
    """Fetch-or-compile the specialization of ``kernel`` for this block
    shape.  Lookup order: per-object key memo (the structural
    fingerprint walks the whole IR — too slow to recompute per launch),
    in-process program memo, persistent cache (integrity-checked), fresh
    codegen.  Raises :class:`~repro.errors.JITUnsupported` when codegen
    declines."""
    bkey = (tuple(int(b) for b in block), bool(bounds_check))
    keys = getattr(kernel, "_jit_keys", None)
    if keys is None:
        keys = {}
        kernel._jit_keys = keys
    key = keys.get(bkey)
    if key is None:
        key = keys[bkey] = program_key(kernel, block, bounds_check)
    prog = _memo.get(key)
    if prog is not None:
        compile_stats["memo_hits"] += 1
        return prog
    if cache is not None:
        before = cache.rejected
        entry = cache.lookup(key)
        compile_stats["cache_rejects"] += cache.rejected - before
        if entry is not None:
            prog = JITProgram(
                key=key,
                kernel_name=kernel.name,
                source=entry["source"],
                mask_free=entry["mask_free"],
                from_cache=True,
            )
            prog.fn = compile_closure(prog.source, kernel.name)
            compile_stats["cache_hits"] += 1
    if prog is None:
        source, mask_free = generate_source(kernel)
        prog = JITProgram(
            key=key,
            kernel_name=kernel.name,
            source=source,
            mask_free=mask_free,
        )
        prog.fn = compile_closure(source, kernel.name)
        compile_stats["compiles"] += 1
        if cache is not None:
            cache.record(key, source, mask_free, kernel.name)
            if cache.path is not None:
                cache.save()
    _memo[key] = prog
    return prog


class JITBlockExecutor(BlockExecutor):
    """Executes blocks through the compiled closure.

    Accepts neither ``sanitize`` nor ``profile`` — those hooks observe
    the tree-walking interpreter; :func:`repro.interp.machine.run_grid`
    routes hooked launches to the interpreter instead.
    """

    def __init__(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        args: dict[str, object],
        counters: OpCounters | None = None,
        bounds_check: bool = True,
        cache: CompileCache | None = None,
    ):
        # compile before binding args so an unsupported kernel falls back
        # without side effects
        self.program = get_program(
            kernel, config.block, bounds_check, cache=cache
        )
        super().__init__(
            kernel, config, args, counters, bounds_check=bounds_check
        )

    def run_span(self, block_ids) -> None:
        """Execute a set of blocks in one vectorized pass (compiled)."""
        block_ids = np.asarray(block_ids, dtype=np.int64).reshape(-1)
        if block_ids.size == 0:
            return
        if block_ids.size > 1 and not self._span_ok:
            raise InterpError(
                f"kernel {self.kernel.name!r} uses shared memory; blocks "
                "must run one at a time"
            )
        if block_ids.min() < 0 or block_ids.max() >= self.config.num_blocks:
            raise LaunchError(
                f"block ids out of range for grid {self.config.grid}"
            )
        self._setup_lanes(block_ids)
        self.program.fn(self, self.counters)

"""The differential gate: interpreter vs JIT, bit-for-bit.

Two comparison levels:

* :func:`diff_grid` — one kernel launch through
  :func:`~repro.interp.machine.run_grid` under both backends, on
  independent copies of the same buffers.  Output buffers must be
  byte-identical and every :class:`~repro.interp.counters.OpCounters`
  field exactly equal (simulated time is a pure function of the
  counters, so counter identity implies clock identity).
* :func:`diff_workload` / :func:`run_gate` — whole workloads through the
  three-phase CuCC runtime under both backends: phase times, total
  simulated time, and device-memory contents must match exactly.

Every divergence this gate reports is a bug — in the JIT *or* in the
interpreter (the PR-2 sanitizer sweep precedent: a second independent
implementation is a bug detector for the first).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.jit.executor import get_program
from repro.interp.machine import run_grid
from repro.ir.stmt import Kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["DiffResult", "diff_grid", "diff_workload", "run_gate"]


@dataclass
class DiffResult:
    """Outcome of one interp-vs-JIT comparison."""

    name: str
    mismatches: list[str] = field(default_factory=list)
    mask_free: bool = False
    compile_s: float = 0.0
    interp_s: float = 0.0
    jit_s: float = 0.0

    @property
    def identical(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        return self.interp_s / self.jit_s if self.jit_s > 0 else float("inf")


def _copy_args(
    arrays: dict[str, np.ndarray], scalars: dict[str, object]
) -> dict[str, object]:
    out: dict[str, object] = {k: v.copy() for k, v in arrays.items()}
    out.update(scalars)
    return out


def _compare_counters(
    res: DiffResult, a: OpCounters, b: OpCounters, label: str = ""
) -> None:
    da, db = a.as_dict(), b.as_dict()
    for k in da:
        if da[k] != db[k]:
            res.mismatches.append(
                f"{label}counter {k}: interp={da[k]!r} jit={db[k]!r}"
            )


def _compare_buffers(
    res: DiffResult, names, interp: dict, jit: dict, label: str = ""
) -> None:
    for name in names:
        ai, aj = np.asarray(interp[name]), np.asarray(jit[name])
        if ai.tobytes() != aj.tobytes():
            bad = np.flatnonzero(ai.view(np.uint8) != aj.view(np.uint8))
            off = int(bad[0]) // ai.dtype.itemsize if bad.size else -1
            res.mismatches.append(
                f"{label}buffer {name!r} differs at "
                f"{bad.size} byte(s), first element {off} "
                f"(interp={ai.flat[off]!r} jit={aj.flat[off]!r})"
            )


def diff_grid(
    kernel: Kernel,
    grid,
    block,
    arrays: dict[str, np.ndarray],
    scalars: dict[str, object] | None = None,
    *,
    span: int | None = None,
    bounds_check: bool = True,
    name: str | None = None,
    cache=None,
) -> DiffResult:
    """Run one launch through both backends; compare everything.

    ``cache`` (a :class:`~repro.interp.jit.cache.CompileCache`) backs the
    precompile step, so a gate run both populates and exercises the
    persistent cache."""
    scalars = scalars or {}
    config = LaunchConfig.make(grid, block)
    res = DiffResult(name=name or kernel.name)

    t0 = time.perf_counter()
    prog = get_program(kernel, config.block, bounds_check, cache=cache)
    res.compile_s = time.perf_counter() - t0
    res.mask_free = prog.mask_free

    ci, cj = OpCounters(), OpCounters()
    args_i = _copy_args(arrays, scalars)
    t0 = time.perf_counter()
    run_grid(
        kernel, config, args_i, counters=ci, span=span,
        bounds_check=bounds_check, backend="interp",
    )
    res.interp_s = time.perf_counter() - t0

    args_j = _copy_args(arrays, scalars)
    t0 = time.perf_counter()
    run_grid(
        kernel, config, args_j, counters=cj, span=span,
        bounds_check=bounds_check, backend="jit",
    )
    res.jit_s = time.perf_counter() - t0

    _compare_counters(res, ci, cj)
    _compare_buffers(res, arrays.keys(), args_i, args_j)
    return res


def diff_spec_grid(spec: WorkloadSpec, **kw) -> DiffResult:
    """Grid-level differential over a workload spec's launch."""
    return diff_grid(
        spec.kernel, spec.grid, spec.block, spec.arrays, spec.scalars,
        name=spec.name, **kw,
    )


def diff_workload(
    spec: WorkloadSpec,
    nodes: int = 2,
    cluster_kind: str = "simd-focused",
    cache=None,
) -> DiffResult:
    """Whole-pipeline differential: the CuCC runtime end to end.

    Phase times and total simulated time must be *exactly* equal (not
    approximately: the clocks are derived from the counters, which the
    JIT contract fixes bit-for-bit), and so must every device buffer.
    ``cache`` backs the jit-side run — the runtime launches the
    *simplified* kernel, a distinct specialization from the grid-level
    one, so a gate run caches both."""
    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster

    res = DiffResult(name=spec.name)
    outs: dict[str, dict[str, np.ndarray]] = {}
    recs = {}
    for backend in ("interp", "jit"):
        r = run_on_cucc(
            spec, make_cluster(cluster_kind, nodes), backend=backend,
            jit_cache=cache,
        )
        recs[backend] = r
        outs[backend] = {
            name: r.runtime.memory.memcpy_d2h(name, check_consistency=True)
            for name in spec.arrays
        }
    pi, pj = recs["interp"].record.phases, recs["jit"].record.phases
    for phase in ("partial", "allgather", "callback"):
        vi, vj = getattr(pi, phase), getattr(pj, phase)
        if vi != vj:
            res.mismatches.append(
                f"phase {phase}: interp={vi!r} jit={vj!r}"
            )
    if recs["interp"].time != recs["jit"].time:
        res.mismatches.append(
            f"total time: interp={recs['interp'].time!r} "
            f"jit={recs['jit'].time!r}"
        )
    _compare_buffers(
        res, spec.arrays.keys(), outs["interp"], outs["jit"]
    )
    prog = get_program(
        spec.kernel, LaunchConfig.make(spec.grid, spec.block).block, True,
        cache=cache,
    )
    res.mask_free = prog.mask_free
    return res


def run_gate(
    size: str = "small",
    seed: int = 0,
    workloads: dict | None = None,
    cache=None,
) -> list[DiffResult]:
    """The full differential gate: every workload kernel, both levels.

    Returns one :class:`DiffResult` per workload, with grid-level wall
    times (the honest backend comparison, free of runtime overheads) and
    any mismatch from either level."""
    if workloads is None:
        from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

        workloads = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}
    results = []
    for name, build in workloads.items():
        spec = build(size, seed=seed)
        res = diff_spec_grid(spec, cache=cache)
        pipe = diff_workload(spec, cache=cache)
        res.mismatches.extend(
            f"[runtime] {m}" for m in pipe.mismatches
        )
        results.append(res)
    return results

"""Kernel-IR → specialized NumPy closure compiler (the JIT tier).

One Python source string is generated per ``(kernel, block shape,
dtype signature)`` and ``compile()``d once; the resulting module-level
function ``_jit_span(ctx, counters)`` replaces
:meth:`repro.interp.machine.BlockExecutor._exec_body` for one span.
The contract is **bit-identical observables**: output buffers, every
:class:`~repro.interp.counters.OpCounters` field (including the
64-byte-line traffic estimate), and error behaviour all match the
tree-walking interpreter, so the hardware-model clocks are unchanged
and the interpreter remains the executable specification.

How the equivalence is kept:

* Expressions are emitted in the interpreter's evaluation order (LHS
  before RHS, index before value), each non-leaf bound to a temp, so
  faults fire in the same order with the same messages.
* Every ``astype`` the interpreter performs is either emitted verbatim
  or elided only when the value's runtime dtype provably equals the
  target (an identity ``astype(copy=False)`` returns the same object,
  so elision is unobservable).
* Op counts accumulate into local floats (``_c_flops += n3``) flushed
  into the shared ``OpCounters`` at the end; all amounts are integral
  and far below 2**53, so float accumulation is exact and
  order-insensitive.
* Divergence handling mirrors the interpreter's mask algebra; where
  the static analysis (:mod:`repro.interp.jit.divergence`) proves a
  branch lane-invariant *and* the condition evaluates to a scalar, a
  plain Python ``if`` replaces the masked arms ("mask-free" code).
* Anything the compiler cannot prove it mirrors exactly raises
  :class:`~repro.errors.JITUnsupported`, and ``backend="auto"`` falls
  back to the interpreter.

The generated module is self-contained given a small fixed namespace
(:func:`base_namespace`): NumPy, the shared helpers from
:mod:`repro.interp.machine`, and the intrinsic table.  Constants and
dtype objects are materialized as module-level assignments inside the
source itself, so a cached source string recompiles without rerunning
codegen.
"""

from __future__ import annotations

import hashlib
import itertools
import re
from contextlib import contextmanager
from dataclasses import dataclass, fields

import numpy as np

from repro.errors import InterpError, JITError, JITUnsupported
from repro.interp.counters import OpCounters
from repro.interp.intrinsics import INTRINSIC_IMPLS
from repro.interp.jit.divergence import DivergenceFacts, analyze_divergence
from repro.interp.machine import MAX_LOOP_ITERS, _c_int_div, _c_int_mod, apply_atomic_op
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
)
from repro.ir.stmt import (
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.ir.types import AddressSpace, DType, PointerType, common_type
from repro.ir.visitor import contains, iter_stmts

__all__ = [
    "CODEGEN_VERSION",
    "JITProgram",
    "program_key",
    "generate_source",
    "compile_closure",
    "compile_program",
    "base_namespace",
]

#: Bumped whenever generated code changes shape — part of the cache key,
#: so stale persistent-cache entries can never be replayed.
CODEGEN_VERSION = 1

_COUNTER_FIELDS = tuple(f.name for f in fields(OpCounters))

_BOOL = np.dtype(bool)
_I64 = np.dtype(np.int64)

_LANE_SREGS = {
    SRegKind.TID_X: "tid_x",
    SRegKind.TID_Y: "tid_y",
    SRegKind.TID_Z: "tid_z",
    SRegKind.CTAID_X: "ctaid_x",
    SRegKind.CTAID_Y: "ctaid_y",
    SRegKind.CTAID_Z: "ctaid_z",
}
_STATIC_SREGS = {
    SRegKind.NTID_X: "ntid_x",
    SRegKind.NTID_Y: "ntid_y",
    SRegKind.NTID_Z: "ntid_z",
    SRegKind.NCTAID_X: "nctaid_x",
    SRegKind.NCTAID_Y: "nctaid_y",
    SRegKind.NCTAID_Z: "nctaid_z",
}

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class _Undef:
    """Sentinel for registers that have no value yet (mirrors a missing
    ``_env`` key in the interpreter)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<undef>"


_UNDEF = _Undef()


def _undef_read(kname: str, name: str):
    raise InterpError(
        f"read of unassigned variable {name!r} in kernel {kname!r}"
    )


def base_namespace() -> dict:
    """The fixed globals every generated module executes under.

    Everything else a program needs (dtype objects, hoisted constants,
    intrinsic aliases) is emitted as module-level assignments *inside*
    the generated source, so a source string cached on disk is
    recompilable without rerunning codegen.
    """
    return {
        "np": np,
        "InterpError": InterpError,
        "SRegKind": SRegKind,
        "INTRINSIC_IMPLS": INTRINSIC_IMPLS,
        "_c_int_div": _c_int_div,
        "_c_int_mod": _c_int_mod,
        "_atomic": apply_atomic_op,
        "_UNDEF": _UNDEF,
        "_undef_read": _undef_read,
    }


@dataclass
class JITProgram:
    """A compiled kernel specialization."""

    key: str
    kernel_name: str
    source: str
    mask_free: bool
    fn: object | None = None
    from_cache: bool = False


def program_key(kernel: Kernel, block, bounds_check: bool) -> str:
    """Cache key of one specialization: structural IR fingerprint (which
    embeds the dtype signature), block shape, bounds-check mode, codegen
    version.

    The fingerprint is the dataclass ``repr`` of the whole kernel, *not*
    its pretty-printed text: the printer is a faithful rendering of
    semantics but not of op accounting — e.g. ``UnOp('-', Const(1))``
    and ``Const(-1)`` both print as ``-1`` yet the interpreter counts an
    extra int op for the former, so keying on the text once served a
    stale specialization to a simplified kernel (caught by the
    differential gate; see tests/test_interp_bugfixes.py)."""
    h = hashlib.sha256()
    h.update(
        f"v{CODEGEN_VERSION}|block={tuple(int(b) for b in block)}"
        f"|bc={bool(bounds_check)}|".encode()
    )
    h.update(repr(kernel).encode())
    return f"{kernel.name}@{h.hexdigest()[:20]}"


def compile_closure(source: str, kernel_name: str):
    """``compile()`` + ``exec()`` one generated module, returning its
    ``_jit_span`` entry point."""
    ns = base_namespace()
    try:
        code = compile(source, f"<jit:{kernel_name}>", "exec")
        exec(code, ns)
        return ns["_jit_span"]
    except (SyntaxError, KeyError) as e:  # pragma: no cover - codegen bug
        raise JITError(
            f"generated source for kernel {kernel_name!r} failed to "
            f"compile: {e}"
        ) from e


def compile_program(kernel: Kernel, block, bounds_check: bool = True) -> JITProgram:
    """Generate, compile and wrap one kernel specialization."""
    source, mask_free = generate_source(kernel)
    prog = JITProgram(
        key=program_key(kernel, block, bounds_check),
        kernel_name=kernel.name,
        source=source,
        mask_free=mask_free,
    )
    prog.fn = compile_closure(source, kernel.name)
    return prog


# ---------------------------------------------------------------------------
# codegen
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _Val:
    """An emitted expression: its code (a name or atomic expression),
    its *runtime* NumPy dtype, and its scalar-ness tri-state
    (``True`` = provably 0-d, ``False`` = provably lane-shaped,
    ``None`` = unknown at compile time)."""

    code: str
    np: object
    tri: bool | None


@dataclass(frozen=True)
class _Mask:
    """An emitted lane mask: the bool-array variable, the name of its
    float active-count (valid only for statement-level masks), and
    whether it is provably all-true."""

    var: str
    n: str
    full: bool


def _tri_all(*tris) -> bool | None:
    if any(t is False for t in tris):
        return False
    if all(t is True for t in tris):
        return True
    return None


def generate_source(
    kernel: Kernel, facts: DivergenceFacts | None = None
) -> tuple[str, bool]:
    """Generate the specialized module source for ``kernel``.

    Returns ``(source, mask_free)`` where ``mask_free`` records that the
    emitted code never materialized a statement-level divergence mask —
    the "straight-line" fast path.  Raises
    :class:`~repro.errors.JITUnsupported` for kernels the codegen cannot
    mirror exactly.
    """
    if facts is None:
        facts = analyze_divergence(kernel)
    return _Codegen(kernel, facts).generate()


class _Codegen:
    def __init__(self, kernel: Kernel, facts: DivergenceFacts):
        self.k = kernel
        self.facts = facts
        self.lines: list[str] = []
        self.ind = 3  # def (1) + try (2) + errstate-with (3)
        self._ids = itertools.count()
        # pools rendered as module-level assignments
        self.dtypes: dict[str, str] = {}  # np name -> DT_<name> var
        self.consts: dict[tuple, str] = {}  # (np name, repr) -> K<i>
        self.const_lines: list[str] = []
        # preamble demand sets
        self.used_sregs: dict[SRegKind, str] = {}
        self.used_scalars: set[str] = set()
        self.used_buffers: set[str] = set()
        self.used_counters: set[str] = set()
        self.need_span = False
        self.need_ret = False
        # static var state
        self.var_types: dict[str, DType] = {}
        self.assigned: set[str] = set()  # definitely assigned here
        self.tri: dict[str, bool | None] = {}
        self.shared_decls: set[str] = set()
        self.local_decls: set[str] = set()
        self.frames: list[str | None] = []  # per-loop break-mask var
        self.masked = False  # emitted any statement-level divergence?
        # common-subexpression pool: structural key -> bound temp name.
        # Entries are scoped to the runtime suite they were emitted in
        # (cse_scope) and killed when a mentioned variable is reassigned
        # (cse_kill); values must be pure given their inputs — casts,
        # sanitized indices, line-traffic amounts.  Counter *adds* are
        # never CSE'd, only the value computations feeding them.
        self.cse: dict[tuple, str] = {}

    # -- small emission helpers ----------------------------------------
    def w(self, line: str) -> None:
        self.lines.append(" " * (4 * self.ind) + line if line else "")

    @contextmanager
    def indent(self):
        self.ind += 1
        try:
            yield
        finally:
            self.ind -= 1

    def tmp(self, prefix: str = "t") -> str:
        return f"{prefix}{next(self._ids)}"

    def bind(self, code: str, prefix: str = "t") -> str:
        t = self.tmp(prefix)
        self.w(f"{t} = {code}")
        return t

    def dt(self, np_dtype) -> str:
        """Module-level ``np.dtype`` object for astype targets."""
        name = np.dtype(np_dtype).name
        if name not in self.dtypes:
            var = f"DT_{name}"
            self.dtypes[name] = var
            self.const_lines.append(f"{var} = np.dtype({name!r})")
            self.const_lines.append(f"T_{name} = {var}.type")
        return self.dtypes[name]

    def ctor(self, np_dtype) -> str:
        """Scalar constructor (``DT.type``) for the dtype."""
        self.dt(np_dtype)
        return f"T_{np.dtype(np_dtype).name}"

    def const(self, dtype: DType, value) -> str:
        key = (np.dtype(dtype.np).name, repr(value))
        if key not in self.consts:
            var = f"K{len(self.consts)}"
            ctor = self.ctor(dtype.np)
            self.consts[key] = var
            self.const_lines.append(f"{var} = {ctor}({value!r})")
        return self.consts[key]

    def count(self, field: str, amount_code: str) -> None:
        if field not in _COUNTER_FIELDS:  # pragma: no cover - codegen bug
            raise JITError(f"unknown counter field {field!r}")
        self.used_counters.add(field)
        self.w(f"_c_{field} += {amount_code}")

    def emit_n(self, mask_var: str) -> str:
        return self.bind(f"float(np.count_nonzero({mask_var}))", "n")

    @contextmanager
    def cse_scope(self):
        """Scope CSE entries to a runtime suite: anything pooled while
        emitting inside (an ``if`` arm, a loop body) is dropped on exit —
        its temps are not defined on other paths."""
        snap = dict(self.cse)
        try:
            yield
        finally:
            self.cse = snap

    def cse_kill(self, *names: str) -> None:
        """Drop pooled entries that mention a reassigned variable."""
        if not names or not self.cse:
            return
        pat = re.compile(
            r"\b(?:%s)\b" % "|".join(f"v_{re.escape(n)}" for n in names)
        )
        for key in [
            k for k in self.cse
            if any(isinstance(p, str) and pat.search(p) for p in k)
        ]:
            del self.cse[key]

    def cast(self, v: _Val, target) -> _Val:
        """The interpreter's ``np.asarray(x).astype(dt, copy=False)``,
        elided when the runtime dtype already matches (identity astype
        returns the same object — unobservable), pooled per (value,
        target)."""
        target = np.dtype(target)
        if v.np == target:
            return v
        key = ("cast", v.code, target.name)
        t = self.cse.get(key)
        if t is None:
            t = self.bind(
                f"np.asarray({v.code}).astype({self.dt(target)}, copy=False)"
            )
            self.cse[key] = t
        return _Val(t, target, v.tri)

    def truthy(self, v: _Val) -> _Val:
        if v.np == _BOOL:
            return v
        key = ("truthy", v.code)
        t = self.cse.get(key)
        if t is None:
            t = self.bind(f"({v.code} != 0)")
            self.cse[key] = t
        return _Val(t, _BOOL, v.tri)

    def refine(self, m: _Mask, cond_code: str) -> _Mask:
        """Expression-level mask refinement (Select arms, ``&&``/``||``
        RHS).  Stays lane-shaped: always ANDed onto the statement mask.
        No active count is attached — refined masks never meter."""
        mv = self.bind(f"{m.var} & {cond_code}", "m")
        return _Mask(mv, "", False)

    # -- unsupported ----------------------------------------------------
    def fail(self, why: str) -> JITUnsupported:
        return JITUnsupported(f"kernel {self.k.name!r}: {why}")

    # -- static prepass -------------------------------------------------
    def _prepass(self) -> None:
        top = {id(s) for s in self.k.body}
        for s in iter_stmts(self.k.body):
            if isinstance(s, (AllocShared, AllocLocal)) and id(s) not in top:
                raise self.fail(
                    f"{type(s).__name__} of {s.name!r} is not at the top "
                    "level of the kernel body"
                )
        sites: dict[str, DType] = {}

        def record(name: str, dtp: DType, what: str) -> None:
            prev = sites.get(name)
            if prev is None:
                sites[name] = dtp
            elif prev != dtp:
                raise self.fail(
                    f"variable {name!r} is {what} with conflicting types "
                    f"{prev.name} vs {dtp.name}"
                )

        for s in iter_stmts(self.k.body):
            if isinstance(s, Assign):
                record(
                    s.name,
                    s.type if s.type is not None else s.value.dtype,
                    "declared",
                )
            elif isinstance(s, For):
                record(s.var, s.start.dtype, "used as a loop variable")
            elif isinstance(s, Atomic) and s.result is not None:
                pt = getattr(s.ptr, "type", None)
                if not isinstance(pt, PointerType):
                    raise self.fail("atomic on a non-pointer operand")
                record(s.result, pt.elem, "used as an atomic result")
            elif isinstance(s, (Break, Continue)):
                pass
        self.var_types = sites

    # -- pointer operands ----------------------------------------------
    def ptr(self, ptr: Expr) -> tuple[AddressSpace, str, DType, str | None]:
        t = getattr(ptr, "type", None)
        if not isinstance(t, PointerType):
            raise self.fail("pointer operand is not pointer-typed")
        if isinstance(ptr, Param):
            if t.space is not AddressSpace.GLOBAL:
                raise self.fail(
                    f"pointer parameter {ptr.name!r} in space {t.space.value}"
                )
            self.used_buffers.add(ptr.name)
            return t.space, f"b_{ptr.name}", t.elem, ptr.name
        if isinstance(ptr, Var):
            if t.space is AddressSpace.SHARED:
                if ptr.name not in self.shared_decls:
                    raise self.fail(
                        f"use of shared array {ptr.name!r} before its "
                        "declaration"
                    )
                return t.space, f"sh_{ptr.name}", t.elem, ptr.name
            if t.space is AddressSpace.LOCAL:
                if ptr.name not in self.local_decls:
                    raise self.fail(
                        f"use of local array {ptr.name!r} before its "
                        "declaration"
                    )
                return t.space, f"lo_{ptr.name}", t.elem, ptr.name
            raise self.fail(f"pointer variable {ptr.name!r} in global space")
        raise self.fail(f"unsupported pointer expression {type(ptr).__name__}")

    # -- expressions ----------------------------------------------------
    def ex(self, e: Expr, m: _Mask, n: str) -> _Val:
        if isinstance(e, Const):
            return _Val(self.const(e.type, e.value), np.dtype(e.type.np), True)
        if isinstance(e, SReg):
            if e.kind in _LANE_SREGS:
                var = f"sr_{_LANE_SREGS[e.kind]}"
                self.used_sregs[e.kind] = var
                return _Val(var, np.dtype(np.int32), False)
            var = f"sg_{_STATIC_SREGS[e.kind]}"
            self.used_sregs[e.kind] = var
            return _Val(var, np.dtype(np.int32), True)
        if isinstance(e, Param):
            if e.is_pointer:
                raise self.fail(
                    f"pointer parameter {e.name!r} evaluated as a scalar"
                )
            self.used_scalars.add(e.name)
            return _Val(f"p_{e.name}", np.dtype(e.type.np), True)
        if isinstance(e, Var):
            if e.is_pointer:
                raise self.fail(
                    f"pointer variable {e.name!r} evaluated as a scalar"
                )
            dt = self.var_types.get(e.name)
            if dt is None:
                # never assigned anywhere: the interpreter faults on
                # every execution
                self.w(f"_undef_read(KNAME, {e.name!r})")
                return _Val(f"v_{e.name}", np.dtype(e.type.np), None)
            if e.name not in self.assigned:
                self.w(f"if v_{e.name} is _UNDEF:")
                with self.indent():
                    self.w(f"_undef_read(KNAME, {e.name!r})")
            return _Val(f"v_{e.name}", np.dtype(dt.np), self.tri.get(e.name))
        if isinstance(e, BinOp):
            return self.ex_binop(e, m, n)
        if isinstance(e, UnOp):
            v = self.ex(e.operand, m, n)
            if e.op == "-":
                self.count("flops" if e.dtype.is_float else "int_ops", n)
                return _Val(self.bind(f"np.negative({v.code})"), v.np, v.tri)
            if e.op == "!":
                self.count("int_ops", n)
                tv = self.truthy(v)
                return _Val(self.bind(f"~({tv.code})"), _BOOL, v.tri)
            # '~'
            self.count("int_ops", n)
            cv = self.cast(v, e.dtype.np)
            return _Val(
                self.bind(f"np.invert({cv.code})"), np.dtype(e.dtype.np), v.tri
            )
        if isinstance(e, Cast):
            v = self.ex(e.value, m, n)
            self.count("int_ops", n)
            cv = self.cast(v, e.type.np)
            return _Val(cv.code, np.dtype(e.type.np), v.tri)
        if isinstance(e, Load):
            return self.ex_load(e, m, n)
        if isinstance(e, Call):
            vals = [self.ex(a, m, n) for a in e.args]
            out = e.dtype
            args = [self.cast(v, out.np) for v in vals]
            if e.name in ("min", "max", "abs") and not out.is_float:
                self.count("int_ops", n)
            elif e.name in ("min", "max", "abs", "fabs", "floor", "ceil"):
                self.count("flops", n)
            else:
                self.count("special_ops", n)
            if e.name not in INTRINSIC_IMPLS:
                raise self.fail(f"unknown intrinsic {e.name!r}")
            impl = f"_in_{e.name}"
            if all(impl not in line for line in self.const_lines):
                self.const_lines.append(
                    f"{impl} = INTRINSIC_IMPLS[{e.name!r}]"
                )
            arglist = ", ".join(a.code for a in args)
            # apply_intrinsic always casts its result: intrinsics on
            # np scalars can promote (rsqrt -> float64), so never elide
            t = self.bind(
                f"np.asarray({impl}({arglist}))"
                f".astype({self.dt(out.np)}, copy=False)"
            )
            return _Val(t, np.dtype(out.np), _tri_all(*[v.tri for v in vals]))
        if isinstance(e, Select):
            cv = self.truthy(self.ex(e.cond, m, n))
            mt = self.refine(m, cv.code)
            tv = self.ex(e.if_true, mt, n)
            mf = self.refine(m, f"~({cv.code})")
            fv = self.ex(e.if_false, mf, n)
            dt = np.dtype(e.dtype.np)
            self.count("int_ops", n)
            ta = self.cast(tv, dt)
            fa = self.cast(fv, dt)
            t = self.bind(f"np.where({cv.code}, {ta.code}, {fa.code})")
            return _Val(t, dt, _tri_all(cv.tri, tv.tri, fv.tri))
        raise self.fail(f"cannot evaluate {type(e).__name__}")

    def ex_binop(self, e: BinOp, m: _Mask, n: str) -> _Val:
        op = e.op
        if op in ("&&", "||"):
            lv = self.truthy(self.ex(e.lhs, m, n))
            lt = lv.code if lv.code.isidentifier() else self.bind(lv.code)
            self.count("int_ops", n)
            if op == "&&":
                m2 = self.refine(m, lt)
                rv = self.truthy(self.ex(e.rhs, m2, n))
                t = self.bind(f"{lt} & {rv.code}")
            else:
                m2 = self.refine(m, f"~{lt}")
                rv = self.truthy(self.ex(e.rhs, m2, n))
                t = self.bind(f"{lt} | {rv.code}")
            return _Val(t, _BOOL, _tri_all(lv.tri, rv.tri))
        lv = self.ex(e.lhs, m, n)
        rv = self.ex(e.rhs, m, n)
        if op in _CMP_OPS:
            ct = common_type(e.lhs.dtype, e.rhs.dtype)
            la = self.cast(lv, ct.np)
            ra = self.cast(rv, ct.np)
            self.count("flops" if ct.is_float else "int_ops", n)
            t = self.bind(f"({la.code} {op} {ra.code})")
            return _Val(t, _BOOL, _tri_all(lv.tri, rv.tri))
        rt = e.dtype
        rtnp = np.dtype(rt.np)
        tri = _tri_all(lv.tri, rv.tri)
        if op in ("<<", ">>"):
            la = self.cast(lv, rtnp)
            ra = self.cast(rv, _I64)
            self.count("int_ops", n)
            # the int64 shift count widens under NumPy promotion; wrap
            # back to the declared C type like the interpreter does
            t = self.bind(
                f"({la.code} {op} {ra.code})"
                f".astype({self.dt(rtnp)}, copy=False)"
            )
            return _Val(t, rtnp, tri)
        la = self.cast(lv, rtnp)
        ra = self.cast(rv, rtnp)
        if rt.is_float:
            if op == "/":
                self.count("div_ops", n)
            else:
                self.count("flops", n)
            t = self.bind(f"({la.code} {op} {ra.code})")
            return _Val(t, rtnp, tri)
        self.count("int_ops", n)
        if op in ("+", "-", "*"):
            t = self.bind(f"({la.code} {op} {ra.code})")
        elif op == "/":
            # _c_int_div output dtype equals its (already-cast) operand
            # dtype, so the interpreter's trailing astype is an identity
            t = self.bind(f"_c_int_div({la.code}, {ra.code})")
        elif op == "%":
            t = self.bind(f"_c_int_mod({la.code}, {ra.code})")
        else:
            raise self.fail(f"unknown binary operator {op!r}")
        return _Val(t, rtnp, tri)

    # -- memory ---------------------------------------------------------
    def safe_index(
        self, iv: _Val, m: _Mask, arr: str, what: str, name: str | None
    ) -> str:
        """Global-memory index sanitation.  Fast path: no lane (active
        or not) out of bounds — the interpreter would return the index
        unchanged (``_safe_indices`` is the identity on fully in-bounds
        input).  Any OOB lane delegates to ``ctx._safe_indices`` for the
        exact raise/clamp behaviour and message (statement masks are
        nonempty, so a 0-d OOB index always trips the check).

        Results pool per (index, buffer, mask): a repeated access
        through the same index recomputes nothing.  ``what``/``name``
        only color the error message, and a raise always comes from the
        *first* occurrence (evaluation order is the interpreter's), so
        they are deliberately not part of the key."""
        i1 = self.cast(iv, _I64)
        key = ("sidx", i1.code, arr, m.var)
        hit = self.cse.get(key)
        if hit is not None:
            return hit
        safe = self.tmp("ix")
        slow = (
            f"ctx._safe_indices({i1.code}, {m.var}, {arr}, "
            f"{what!r}, {name!r})"
        )
        scalar_fast = (
            f"{safe} = {i1.code} if 0 <= int({i1.code}) < {arr}.shape[0] "
            f"else {slow}"
        )
        if iv.tri is True:
            self.w(scalar_fast)
            self.cse[key] = safe
            return safe
        ob = self.tmp("ob")
        self.w(f"if np.ndim({i1.code}):")
        with self.indent():
            self.w(f"{ob} = ({i1.code} < 0) | ({i1.code} >= {arr}.shape[0])")
            self.w(f"if not {ob}.any():")
            with self.indent():
                self.w(f"{safe} = {i1.code}")
            # OOB on inactive lanes only is the steady state of every
            # boundary-guarded kernel; the interpreter where-zeros those
            # lanes without raising, inlined here.  An *active* OOB lane
            # delegates for the exact raise/clamp/sanitize behaviour.
            self.w(f"elif not ({m.var} & {ob}).any():")
            with self.indent():
                self.w(
                    f"{safe} = np.where({m.var} & ~{ob}, {i1.code}, 0)"
                )
            self.w("else:")
            with self.indent():
                self.w(f"{safe} = {slow}")
        self.w("else:")
        with self.indent():
            self.w(scalar_fast)
        self.cse[key] = safe
        return safe

    def seg_index(self, kind: str, name: str, iv: _Val, m: _Mask) -> str:
        """Shared/local segment index via the inherited helper, pooled
        per (index, array, mask) — the segment layout is fixed for the
        span, so repeats are pure."""
        key = ("segidx", kind, iv.code, name, m.var)
        hit = self.cse.get(key)
        if hit is not None:
            return hit
        safe = self.bind(
            f"ctx._{kind}_index({name!r}, {iv.code}, {m.var})", "ix"
        )
        self.cse[key] = safe
        return safe

    def count_lines(self, safe: str, m: _Mask, elem_size: int, n: str) -> None:
        """Mirror ``BlockExecutor._count_lines``: 64-byte-line span
        estimate over the *active* lanes.  Statement masks are nonempty
        by construction so the ``_cur_n`` guard is vacuous.  The
        *amount* is pooled per (index, mask, element size): repeated
        traffic through the same addresses still adds to the counter
        every time, but the min/max reductions run once."""
        self.used_counters.add("global_line_bytes")
        key = ("lineamt", safe, m.var, elem_size, n)
        amt = self.cse.get(key)
        if amt is None:
            amt = self.tmp("lb")
            la = self.tmp("la")
            self.w(f"{la} = np.asarray({safe})")
            self.w(f"if {la}.ndim == 0:")
            with self.indent():
                self.w(f"{amt} = 64.0")
            self.w("else:")
            with self.indent():
                ls = self.tmp("ls")
                self.w(
                    f"{ls} = {la} if {la}.shape == {m.var}.shape "
                    f"else np.broadcast_to({la}, {m.var}.shape)"
                )
                if not m.full:
                    self.w(f"{ls} = {ls}[{m.var}]")
                    self.w(f"if {ls}.size:")
                    with self.indent():
                        self._count_lines_span(amt, ls, elem_size, n)
                    self.w("else:")
                    with self.indent():
                        self.w(f"{amt} = 0.0")
                else:
                    self._count_lines_span(amt, ls, elem_size, n)
            self.cse[key] = amt
        self.w(f"_c_global_line_bytes += {amt}")

    def _count_lines_span(
        self, amt: str, ls: str, elem_size: int, n: str
    ) -> None:
        lo = self.bind(f"int({ls}.min()) * {elem_size}", "lo")
        hi = self.bind(f"int({ls}.max()) * {elem_size}", "hi")
        self.w(
            f"{amt} = 64.0 * float(min({n}, ({hi} - {lo}) // 64 + 1))"
        )

    def mem_counts(
        self, space: AddressSpace, elem_size: int, n: str, is_store: bool,
        factor: float = 1.0,
    ) -> None:
        scale = f"{factor} * " if factor != 1.0 else ""
        if space is AddressSpace.GLOBAL:
            b = "global_store_bytes" if is_store else "global_load_bytes"
            c = "global_stores" if is_store else "global_loads"
            self.count(b, f"{scale}{n} * {float(elem_size)}")
            self.count(c, n)
        elif space is AddressSpace.SHARED:
            self.count("shared_bytes", f"{scale}{n} * {float(elem_size)}")
        else:
            self.count("local_bytes", f"{scale}{n} * {float(elem_size)}")

    def ex_load(self, e: Load, m: _Mask, n: str) -> _Val:
        space, arr, elem, name = self.ptr(e.ptr)
        iv = self.ex(e.index, m, n)
        if space is AddressSpace.SHARED:
            safe = self.seg_index("shared", name, iv, m)
            tri = False if iv.tri is False else None
        elif space is AddressSpace.LOCAL:
            safe = self.seg_index("local", name, iv, m)
            tri = False
        else:
            safe = self.safe_index(iv, m, arr, "load", name)
            tri = iv.tri
        self.mem_counts(space, elem.size, n, is_store=False)
        if space is AddressSpace.GLOBAL:
            self.count_lines(safe, m, elem.size, n)
        t = self.bind(f"{arr}[{safe}]")
        return _Val(t, np.dtype(elem.np), tri)

    # -- statements -----------------------------------------------------
    def body(self, stmts: list[Stmt], m: _Mask) -> _Mask | None:
        """Emit a statement list under mask ``m``; returns the fall-
        through mask, or ``None`` after an unconditional lane exit.

        The interpreter re-checks ``mask.any()`` before *every*
        statement; masks only change at exit points (Return / Break /
        Continue, possibly nested in an If), so one check after each
        shrink point is equivalent."""
        for i, s in enumerate(stmts):
            m2 = self.stmt(s, m)
            if m2 is None:
                return None
            if m2 is not m:
                rest = stmts[i + 1 :]
                if not rest:
                    return m2
                out = self.tmp("mb")
                self.w(f"{out} = {m2.var}")
                self.w(f"if {m2.var}.any():")
                with self.indent():
                    tail = self.body(rest, m2)
                    if tail is not None:
                        self.w(f"{out} = {tail.var}")
                    else:
                        self.w(f"{out} = np.zeros(nl, dtype=bool)")
                nv = self.emit_n(out)
                return _Mask(out, nv, False)
            m = m2
        return m

    def stmt(self, s: Stmt, m: _Mask) -> _Mask | None:
        if isinstance(s, Assign):
            return self.stmt_assign(s, m)
        if isinstance(s, Store):
            return self.stmt_store(s, m)
        if isinstance(s, If):
            return self.stmt_if(s, m)
        if isinstance(s, For):
            return self.stmt_for(s, m)
        if isinstance(s, While):
            return self.stmt_while(s, m)
        if isinstance(s, Return):
            self.need_ret = True
            self.masked = True
            self.w(f"_ret |= {m.var}")
            return None
        if isinstance(s, Break):
            if not self.frames:
                raise self.fail("break outside a loop")
            self.masked = True
            bk = self.frames[-1]
            self.w(f"{bk} |= {m.var}")
            return None
        if isinstance(s, Continue):
            if not self.frames:
                raise self.fail("continue outside a loop")
            self.masked = True
            return None
        if isinstance(s, SyncThreads):
            self.need_span = True
            self.count("barriers", "_spanf")
            return m
        if isinstance(s, Atomic):
            return self.stmt_atomic(s, m)
        if isinstance(s, AllocShared):
            sv = self.ex(s.size, m, m.n)
            t = self.bind(sv.code, "sz")
            self.w(f"if np.ndim({t}) != 0:")
            with self.indent():
                self.w(
                    "raise InterpError(\"shared array "
                    f"{s.name!r} extent must be block-invariant\")"
                )
            self.w(f"ctx._shared_seg[{s.name!r}] = int({t})")
            self.w(
                f"sh_{s.name} = np.zeros(int({t}) * ctx._span_len, "
                f"dtype={self.dt(s.elem.np)})"
            )
            self.w(f"ctx._shared[{s.name!r}] = sh_{s.name}")
            self.shared_decls.add(s.name)
            return m
        if isinstance(s, AllocLocal):
            sv = self.ex(s.size, m, m.n)
            t = self.bind(sv.code, "sz")
            self.w(f"if np.ndim({t}) != 0:")
            with self.indent():
                self.w(
                    "raise InterpError(\"local array "
                    f"{s.name!r} extent must be launch-invariant\")"
                )
            self.w(f"ctx._local_seg[{s.name!r}] = int({t})")
            self.w(
                f"lo_{s.name} = np.zeros(int({t}) * nl, "
                f"dtype={self.dt(s.elem.np)})"
            )
            self.w(f"ctx._local[{s.name!r}] = lo_{s.name}")
            self.local_decls.add(s.name)
            return m
        raise self.fail(f"cannot execute {type(s).__name__}")

    def stmt_assign(self, s: Assign, m: _Mask) -> _Mask:
        val = self.ex(s.value, m, m.n)
        dt = self.var_types[s.name]
        vc = self.cast(val, dt.np)
        tv = self.bind(vc.code, "av")
        definitely = s.name in self.assigned
        maybe = s.name in self.tri or definitely or not self._top_scope(s.name)
        old = f"v_{s.name}"
        if m.full:
            self.w(f"if {tv}.ndim and {tv}.base is not None:")
            with self.indent():
                self.w(f"{tv} = {tv}.copy()")
            new_tri = vc.tri
        else:
            if definitely:
                self.w(f"if {m.n} < _nlf:")
            elif maybe:
                self.w(f"if {old} is not _UNDEF and {m.n} < _nlf:")
            if definitely or maybe:
                with self.indent():
                    self.w(f"{tv} = np.where({m.var}, {tv}, {old})")
                self.w(f"elif {tv}.ndim and {tv}.base is not None:")
            else:
                self.w(f"if {tv}.ndim and {tv}.base is not None:")
            with self.indent():
                self.w(f"{tv} = {tv}.copy()")
            if definitely or maybe:
                prev_tri = self.tri.get(s.name)
                new_tri = (
                    False if (vc.tri is False and prev_tri is False) else None
                )
            else:
                new_tri = vc.tri
        self.w(f"v_{s.name} = {tv}")
        self.assigned.add(s.name)
        self.tri[s.name] = new_tri
        self.cse_kill(s.name)
        return m

    def _top_scope(self, name: str) -> bool:
        """Whether an assignment to ``name`` here is provably the first
        execution ever to touch it (no loop around us, no earlier
        assignment emitted)."""
        return not self.frames and name not in self.tri

    def stmt_store(self, s: Store, m: _Mask) -> _Mask:
        space, arr, elem, name = self.ptr(s.ptr)
        iv = self.ex(s.index, m, m.n)
        vv = self.ex(s.value, m, m.n)
        if space is AddressSpace.SHARED:
            safe = self.seg_index("shared", name, iv, m)
        elif space is AddressSpace.LOCAL:
            safe = self.seg_index("local", name, iv, m)
        else:
            safe = self.safe_index(iv, m, arr, "store", name)
        vc = self.cast(vv, elem.np)
        tv = vc.code if vc.code.isidentifier() else self.bind(vc.code)
        self.mem_counts(space, elem.size, m.n, is_store=True)
        if space is AddressSpace.GLOBAL:
            self.count_lines(safe, m, elem.size, m.n)
        self.w(f"if np.ndim({safe}) == 0:")
        with self.indent():
            if m.full:
                self.w(
                    f"{arr}[int({safe})] = {tv} if np.ndim({tv}) == 0 "
                    f"else {tv}[0]"
                )
            else:
                self.w(
                    f"{arr}[int({safe})] = {tv} if np.ndim({tv}) == 0 "
                    f"else {tv}[np.argmax({m.var})]"
                )
        self.w("else:")
        with self.indent():
            if m.full:
                self.w(f"{arr}[{safe}] = np.broadcast_to({tv}, {m.var}.shape)")
            else:
                vb = self.bind(f"np.broadcast_to({tv}, {m.var}.shape)", "vb")
                self.w(f"{arr}[{safe}[{m.var}]] = {vb}[{m.var}]")
        return m

    def stmt_atomic(self, s: Atomic, m: _Mask) -> _Mask:
        space, arr, elem, name = self.ptr(s.ptr)
        iv = self.ex(s.index, m, m.n)
        vv = self.cast(self.ex(s.value, m, m.n), elem.np)
        if space is AddressSpace.SHARED:
            safe = self.seg_index("shared", name, iv, m)
        elif space is AddressSpace.LOCAL:
            safe = self.seg_index("local", name, iv, m)
        else:
            safe = self.safe_index(iv, m, arr, "atomic", name)
        if m.full:
            safe_l = self.bind(
                f"np.broadcast_to({safe}, {m.var}.shape)", "al"
            )
            val_l = self.bind(f"np.broadcast_to({vv.code}, {m.var}.shape)", "al")
        else:
            safe_l = self.bind(
                f"np.broadcast_to({safe}, {m.var}.shape)[{m.var}]", "al"
            )
            val_l = self.bind(
                f"np.broadcast_to({vv.code}, {m.var}.shape)[{m.var}]", "al"
            )
        self.count("atomics", m.n)
        self.mem_counts(space, elem.size, m.n, is_store=True, factor=2.0)
        if space is AddressSpace.GLOBAL:
            self.count_lines(safe, m, elem.size, m.n)
        cmp_l = "None"
        if s.op == "cas":
            cv = self.cast(self.ex(s.compare, m, m.n), elem.np)
            if m.full:
                cmp_l = self.bind(
                    f"np.broadcast_to({cv.code}, {m.var}.shape)", "al"
                )
            else:
                cmp_l = self.bind(
                    f"np.broadcast_to({cv.code}, {m.var}.shape)[{m.var}]",
                    "al",
                )
        old = "None"
        if s.result is not None:
            old = self.bind(
                f"np.broadcast_to({arr}[{safe}], {m.var}.shape)"
                f".astype({self.dt(elem.np)}, copy=True)",
                "old",
            )
            rv = f"v_{s.result}"
            if not m.full:
                if s.result in self.assigned:
                    self.w(f"if not {m.var}.all():")
                else:
                    self.w(f"if {rv} is not _UNDEF and not {m.var}.all():")
                with self.indent():
                    # stored result values always carry the element
                    # dtype, so the interpreter's prev-cast is identity
                    self.w(
                        f"{old} = np.where({m.var}, {old}, {rv})"
                        f".astype({self.dt(elem.np)}, copy=False)"
                    )
        self.w(
            f"_atomic({arr}, {safe_l}, {val_l}, {s.op!r}, "
            f"cmp_l={cmp_l}, old={old if s.result is not None else 'None'}, "
            f"mask={m.var})"
        )
        if s.result is not None:
            self.w(f"v_{s.result} = {old}")
            self.assigned.add(s.result)
            self.tri[s.result] = False
            self.cse_kill(s.result)
        return m

    # -- control flow ---------------------------------------------------
    def _merge_scope(self, snap_a, snap_t, a_assigned, a_tri) -> None:
        """Join two emission paths' static var state (then/else arms,
        dual loop forms): definite = intersection, tri = agree-or-None."""
        b_assigned, b_tri = self.assigned, self.tri
        self.assigned = snap_a | (a_assigned & b_assigned)
        merged = dict(snap_t)
        for name in set(a_tri) | set(b_tri):
            ta = a_tri.get(name, snap_t.get(name))
            tb = b_tri.get(name, snap_t.get(name))
            merged[name] = ta if ta == tb else None
        self.tri = merged

    def stmt_if(self, s: If, m: _Mask) -> _Mask:
        self.count("branches", m.n)
        cv = self.truthy(self.ex(s.cond, m, m.n))
        c = cv.code
        scalar_if = cv.tri is True and id(s) in self.facts.invariant_conds
        shrink_t = _can_shrink(s.then_body)
        shrink_e = _can_shrink(s.else_body)
        kills_t = _loop_assigned(s.then_body)
        kills_e = _loop_assigned(s.else_body)
        snap_a, snap_t = set(self.assigned), dict(self.tri)
        if scalar_if:
            out = self.tmp("mi") if (shrink_t or shrink_e) else None
            self.w(f"if {c}:")
            with self.indent(), self.cse_scope():
                t_out = self.body(s.then_body, m)
                if out:
                    self.w(
                        f"{out} = {t_out.var}"
                        if t_out is not None
                        else f"{out} = np.zeros(nl, dtype=bool)"
                    )
                elif not s.then_body:
                    self.w("pass")
            a_assigned, a_tri = set(self.assigned), dict(self.tri)
            self.assigned, self.tri = set(snap_a), dict(snap_t)
            if s.else_body or out:
                self.w("else:")
                with self.indent(), self.cse_scope():
                    f_out = self.body(s.else_body, m)
                    if out:
                        self.w(
                            f"{out} = {f_out.var}"
                            if f_out is not None
                            else f"{out} = np.zeros(nl, dtype=bool)"
                        )
                    elif not s.else_body:  # pragma: no cover
                        self.w("pass")
            self._merge_scope(snap_a, snap_t, a_assigned, a_tri)
            # exactly one arm ran, but we can't tell which: pooled values
            # that mention an arm-assigned variable are stale either way
            self.cse_kill(*kills_t, *kills_e)
            if out:
                nv = self.emit_n(out)
                return _Mask(out, nv, False)
            return m
        # masked arms
        self.masked = True
        mt = self.bind(f"{m.var} & {c}", "mt")
        need_f = bool(s.else_body) or shrink_t or shrink_e
        mf = self.bind(f"{m.var} & ~({c})", "mf") if need_f else None
        t_out_var = mt
        f_out_var = mf
        self.w(f"if {mt}.any():")
        with self.indent(), self.cse_scope():
            nt = self.emit_n(mt)
            t_res = self.body(s.then_body, _Mask(mt, nt, False))
            if shrink_t or shrink_e:
                t_out_var = self.tmp("mo")
                self.w(
                    f"{t_out_var} = {t_res.var}"
                    if t_res is not None
                    else f"{t_out_var} = np.zeros(nl, dtype=bool)"
                )
        # both arms run at runtime: the else arm must not reuse pre-if
        # values of anything the then arm may have reassigned
        self.cse_kill(*kills_t)
        if shrink_t or shrink_e:
            # arm skipped at runtime -> its out-mask is the (empty) arm mask
            self.w(f"else:")
            with self.indent():
                self.w(f"{t_out_var} = {mt}")
        a_assigned, a_tri = set(self.assigned), dict(self.tri)
        self.assigned, self.tri = set(snap_a), dict(snap_t)
        if s.else_body:
            self.w(f"if {mf}.any():")
            with self.indent(), self.cse_scope():
                nf = self.emit_n(mf)
                f_res = self.body(s.else_body, _Mask(mf, nf, False))
                if shrink_t or shrink_e:
                    f_out_var = self.tmp("mo")
                    self.w(
                        f"{f_out_var} = {f_res.var}"
                        if f_res is not None
                        else f"{f_out_var} = np.zeros(nl, dtype=bool)"
                    )
            self.cse_kill(*kills_e)
            if shrink_t or shrink_e:
                self.w(f"else:")
                with self.indent():
                    self.w(f"{f_out_var} = {mf}")
        self._merge_scope(snap_a, snap_t, a_assigned, a_tri)
        if not (shrink_t or shrink_e):
            # t_out | f_out == m when no lane can exit in either arm
            return m
        out = self.bind(f"{t_out_var} | {f_out_var}", "mo")
        nv = self.emit_n(out)
        return _Mask(out, nv, False)

    def stmt_for(self, s: For, m: _Mask) -> _Mask:
        sv = self.ex(s.start, m, m.n)
        pv = self.ex(s.stop, m, m.n)
        ev = self.ex(s.step, m, m.n)
        sc = sv.code if sv.code.isidentifier() else self.bind(sv.code)
        pc = pv.code if pv.code.isidentifier() else self.bind(pv.code)
        ec = ev.code if ev.code.isidentifier() else self.bind(ev.code)
        assigns = any(
            isinstance(st, Assign) and st.name == s.var
            for st in iter_stmts(s.body)
        )
        ret_in = contains(s.body, Return)
        bk = None
        if _has_break_at_level(s.body):
            bk = self.bind("np.zeros(nl, dtype=bool)", "bk")
        self.frames.append(bk)
        tri3 = _tri_all(sv.tri, pv.tri, ev.tri)
        # bounds are evaluated on pre-loop values (above); everything the
        # body assigns is loop-carried and of unknown shape from here on
        for name in _loop_assigned(s.body):
            if name in self.tri:
                self.tri[name] = None
        # kill before the scope snapshot: restoring the pool at loop exit
        # must not resurrect values the loop body reassigned
        self.cse_kill(s.var, *_loop_assigned(s.body))
        snap_a, snap_t = set(self.assigned), dict(self.tri)
        try:
            if not assigns and tri3 is True:
                with self.cse_scope():
                    self._for_invariant(s, m, sc, pc, ec, bk, ret_in)
            elif assigns or tri3 is False:
                with self.cse_scope():
                    self._for_variant(s, m, sc, pc, ec, bk, ret_in, assigns)
            else:
                # scalar-ness of the bounds is observable (the interpreter
                # picks different store/merge paths), so dispatch at
                # runtime exactly like it does
                self.masked = True
                self.w(
                    f"if np.ndim({sc}) == 0 and np.ndim({pc}) == 0 "
                    f"and np.ndim({ec}) == 0:"
                )
                with self.indent(), self.cse_scope():
                    self._for_invariant(s, m, sc, pc, ec, bk, ret_in)
                a_assigned, a_tri = set(self.assigned), dict(self.tri)
                self.assigned, self.tri = set(snap_a), dict(snap_t)
                self.w("else:")
                with self.indent(), self.cse_scope():
                    self._for_variant(s, m, sc, pc, ec, bk, ret_in, assigns)
                self._merge_scope(snap_a, snap_t, a_assigned, a_tri)
        finally:
            self.frames.pop()
        # 0-trip loops make body effects non-definite
        self.assigned = set(snap_a)
        for name in set(self.tri) - set(snap_t):
            self.tri[name] = None
        for name in snap_t:
            if self.tri.get(name) != snap_t[name]:
                self.tri[name] = None
        if ret_in:
            out = self.bind(f"{m.var} & ~_ret", "mo")
            nv = self.emit_n(out)
            return _Mask(out, nv, False)
        return m

    def _loop_body_mask(
        self, m: _Mask, bk: str | None, ret_in: bool
    ) -> _Mask:
        """Per-iteration active mask: entry minus broken minus returned.
        Elided entirely when no lane can leave mid-loop (the recomputed
        mask would equal the entry mask every iteration)."""
        if bk is None and not ret_in:
            return m
        terms = m.var
        if bk is not None:
            terms += f" & ~{bk}"
        if ret_in:
            terms += " & ~_ret"
        cur = self.bind(terms, "mc")
        self.w(f"if not {cur}.any():")
        with self.indent():
            self.w("break")
        nv = self.emit_n(cur)
        return _Mask(cur, nv, False)

    def _for_invariant(
        self, s: For, m: _Mask, sc: str, pc: str, ec: str,
        bk: str | None, ret_in: bool,
    ) -> None:
        fs = self.bind(f"int({ec})", "fs")
        self.w(f"if {fs} == 0:")
        with self.indent():
            self.w(f"if int({sc}) < int({pc}):")
            with self.indent():
                self.w(
                    "raise InterpError(\"loop "
                    f"{s.var!r} has zero step with a nonzero trip count\")"
                )
        self.w("else:")
        with self.indent():
            it = self.tmp("i")
            self.w(f"for {it} in range(int({sc}), int({pc}), {fs}):")
            with self.indent():
                mb = self._loop_body_mask(m, bk, ret_in)
                ctor = self.ctor(s.start.dtype.np)
                self.w(f"v_{s.var} = {ctor}({it})")
                self.assigned.add(s.var)
                self.tri[s.var] = True
                self.body(s.body, mb)

    def _for_variant(
        self, s: For, m: _Mask, sc: str, pc: str, ec: str,
        bk: str | None, ret_in: bool, assigns: bool,
    ) -> None:
        self.masked = True
        T = self.dt(s.start.dtype.np)
        vv = self.bind(
            f"np.broadcast_to(np.asarray({sc}).astype({T}, copy=False), "
            f"{m.var}.shape).copy()",
            "vv",
        )
        sa = self.bind(f"np.asarray({ec})", "sa")
        sb = self.bind(f"np.broadcast_to({sa}, {m.var}.shape)", "sb")
        it = self.bind("0", "it")
        self.w("while True:")
        with self.indent():
            lv = self.bind(
                f"np.where({sb} > 0, {vv} < {pc}, "
                f"np.where({sb} < 0, {vv} > {pc}, {vv} < {pc}))",
                "lv",
            )
            terms = f"{m.var}"
            if bk is not None:
                terms += f" & ~{bk}"
            if ret_in:
                terms += " & ~_ret"
            cur = self.bind(f"{terms} & {lv}", "mc")
            self.w(f"if not {cur}.any():")
            with self.indent():
                self.w("break")
            if not assigns:
                self.w(f"if bool(({sb}[{cur}] == 0).any()):")
                with self.indent():
                    self.w(
                        "raise InterpError(\"loop "
                        f"{s.var!r} has zero step with a nonzero trip "
                        "count for an active lane\")"
                    )
            nv = self.emit_n(cur)
            self.w(f"v_{s.var} = {vv}")
            self.assigned.add(s.var)
            self.tri[s.var] = False
            self.body(s.body, _Mask(cur, nv, False))
            self.w(
                f"{vv} = (np.broadcast_to(np.asarray(v_{s.var})"
                f".astype({T}, copy=False), (nl,)) + {sa})"
                f".astype({T}, copy=False)"
            )
            self.w(f"{it} += 1")
            self.w(f"if {it} > {MAX_LOOP_ITERS}:")
            with self.indent():
                self.w(
                    "raise InterpError(\"loop over "
                    f"{s.var!r} exceeded {MAX_LOOP_ITERS} iterations\")"
                )

    def stmt_while(self, s: While, m: _Mask) -> _Mask:
        self.masked = True
        ret_in = contains(s.body, Return)
        bk = None
        if _has_break_at_level(s.body):
            bk = self.bind("np.zeros(nl, dtype=bool)", "bk")
        self.frames.append(bk)
        snap_a, snap_t = set(self.assigned), dict(self.tri)
        # condition and body may read loop-carried values
        for name in _loop_assigned(s.body):
            if name in self.tri:
                self.tri[name] = None
        # as in stmt_for: kill loop-carried names before the scope snapshot
        self.cse_kill(*_loop_assigned(s.body))
        it = self.bind("0", "it")
        try:
            self.w("while True:")
            with self.indent(), self.cse_scope():
                mc = self._loop_body_mask(m, bk, ret_in)
                cv = self.truthy(self.ex(s.cond, mc, mc.n))
                cur = self.bind(f"{mc.var} & {cv.code}", "mc")
                self.w(f"if not {cur}.any():")
                with self.indent():
                    self.w("break")
                nv = self.emit_n(cur)
                self.body(s.body, _Mask(cur, nv, False))
                self.w(f"{it} += 1")
                self.w(f"if {it} > {MAX_LOOP_ITERS}:")
                with self.indent():
                    self.w(
                        "raise InterpError(\"while loop exceeded "
                        f"{MAX_LOOP_ITERS} iterations\")"
                    )
        finally:
            self.frames.pop()
        self.assigned = set(snap_a)
        for name in set(self.tri) - set(snap_t):
            self.tri[name] = None
        for name in snap_t:
            if self.tri.get(name) != snap_t[name]:
                self.tri[name] = None
        if ret_in:
            out = self.bind(f"{m.var} & ~_ret", "mo")
            nv = self.emit_n(out)
            return _Mask(out, nv, False)
        return m

    # -- top level ------------------------------------------------------
    def generate(self) -> tuple[str, bool]:
        self._prepass()
        m0 = _Mask("m0", "_nlf", True)
        self.body(self.k.body, m0)
        if not self.lines:
            self.w("pass")
        header: list[str] = [
            f"# JIT specialization of kernel {self.k.name!r} "
            f"(codegen v{CODEGEN_VERSION})",
            f"KNAME = {self.k.name!r}",
        ]
        header.extend(self.const_lines)
        header.append("")
        header.append("")
        header.append("def _jit_span(ctx, counters):")
        pre: list[str] = [
            "nl = ctx.nlanes",
            "_nlf = float(nl)",
            "m0 = np.ones(nl, dtype=bool)",
        ]
        if self.need_span:
            pre.append("_spanf = float(ctx._span_len)")
        for kind in sorted(self.used_sregs, key=lambda k: k.name):
            var = self.used_sregs[kind]
            table = (
                "_lane_sregs" if kind in _LANE_SREGS else "_static_sregs"
            )
            pre.append(f"{var} = ctx.{table}[SRegKind.{kind.name}]")
        for name in sorted(self.used_scalars):
            pre.append(f"p_{name} = ctx._scalars[{name!r}]")
        for name in sorted(self.used_buffers):
            pre.append(f"b_{name} = ctx._buffers[{name!r}]")
        if self.need_ret:
            pre.append("_ret = np.zeros(nl, dtype=bool)")
        for name in sorted(self.var_types):
            pre.append(f"v_{name} = _UNDEF")
        for field in _COUNTER_FIELDS:
            if field in self.used_counters:
                pre.append(f"_c_{field} = 0.0")
        out = header + ["    " + p for p in pre]
        out.append("    try:")
        out.append("        with np.errstate(all=\"ignore\"):")
        out.extend(self.lines)
        out.append("    finally:")
        out.append("        if counters is not None:")
        flushed = False
        for field in _COUNTER_FIELDS:
            if field in self.used_counters:
                out.append(
                    f"            counters.{field} += _c_{field}"
                )
                flushed = True
        if not flushed:
            out.append("            pass")
        mask_free = not self.masked
        return "\n".join(out) + "\n", mask_free


# ---------------------------------------------------------------------------
# structural helpers
# ---------------------------------------------------------------------------
def _can_shrink(body: list[Stmt]) -> bool:
    """Whether executing ``body`` can retire lanes from the fall-through
    mask: a Return anywhere (loops propagate it), or a Break/Continue
    that is not captured by a loop inside the body itself."""
    for s in body:
        if isinstance(s, (Return, Break, Continue)):
            return True
        if isinstance(s, If):
            if _can_shrink(s.then_body) or _can_shrink(s.else_body):
                return True
        elif isinstance(s, (For, While)):
            if contains(s.body, Return):
                return True
    return False


def _has_break_at_level(body: list[Stmt]) -> bool:
    """A Break binding to *this* loop level (not captured by a nested
    loop)."""
    for s in body:
        if isinstance(s, Break):
            return True
        if isinstance(s, If):
            if _has_break_at_level(s.then_body) or _has_break_at_level(
                s.else_body
            ):
                return True
    return False


def _loop_assigned(body: list[Stmt]) -> set[str]:
    out: set[str] = set()
    for st in iter_stmts(body):
        if isinstance(st, Assign):
            out.add(st.name)
        elif isinstance(st, For):
            out.add(st.var)
        elif isinstance(st, Atomic) and st.result is not None:
            out.add(st.result)
    return out

"""Persistent compile cache for JIT specializations.

Modeled on :class:`repro.tuning.cache.TuningCache`: a JSON document of
``key -> entry`` with a schema version guard, loaded eagerly and saved
atomically as a whole.  One entry per specialization key (see
:func:`repro.interp.jit.compiler.program_key`)::

    {
      "version": 1,
      "entries": {
        "fir@1a2b...": {
          "kernel": "fir",
          "mask_free": true,
          "sha256": "<hex digest of source>",
          "source": "KNAME = 'fir'\\n..."
        }
      }
    }

Entries are integrity-checked on lookup: the stored SHA-256 must match
the stored source, or the entry is **rejected and dropped** so the
caller recompiles from the IR.  A cache can speed a run up; it must
never be able to change what a run computes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import JITError
from repro.ioutil import atomic_write_text

__all__ = ["CompileCache", "DEFAULT_CACHE_PATH", "source_digest"]

SCHEMA_VERSION = 1

#: default cache file used by ``repro run --backend jit --jit-cache``
DEFAULT_CACHE_PATH = ".repro-jit-cache.json"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


class CompileCache:
    """In-memory view of the compile cache, JSON round-trippable."""

    def __init__(
        self,
        entries: dict[str, dict] | None = None,
        path: str | Path | None = None,
    ):
        self.entries: dict[str, dict] = dict(entries or {})
        self.path = Path(path) if path is not None else None
        #: entries dropped by integrity checks since load (observable in
        #: tests and the CLI's cache stats)
        self.rejected = 0
        #: successful lookups since load
        self.hits = 0

    # -- access ---------------------------------------------------------
    def lookup(self, key: str) -> dict | None:
        """The verified entry for ``key``, or ``None`` on a miss.

        A structurally damaged or digest-mismatched entry counts as a
        miss *and is removed*, so the recompiled result replaces it."""
        entry = self.entries.get(key)
        if entry is None:
            return None
        source = entry.get("source")
        if (
            not isinstance(entry, dict)
            or not isinstance(source, str)
            or not isinstance(entry.get("mask_free"), bool)
            or entry.get("sha256") != source_digest(source)
        ):
            self.rejected += 1
            del self.entries[key]
            return None
        self.hits += 1
        return entry

    def record(
        self, key: str, source: str, mask_free: bool, kernel_name: str
    ) -> None:
        self.entries[key] = {
            "kernel": kernel_name,
            "mask_free": bool(mask_free),
            "sha256": source_digest(source),
            "source": source,
        }

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ----------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write the cache as JSON; returns the path written.

        The write is atomic (temp file + ``os.replace``, like ``.rckp``
        writes): the serving loop saves this cache after every compile
        while other jobs may be loading it, and a reader must see the
        old document or the new one, never a torn file.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise JITError("compile cache has no path to save to")
        atomic_write_text(
            target,
            json.dumps(
                {"version": SCHEMA_VERSION, "entries": self.entries},
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
        self.path = target
        return target

    @classmethod
    def load(cls, path: str | Path) -> CompileCache:
        """Read a cache file; a missing file yields an empty cache bound
        to the same path (so a later :meth:`save` creates it)."""
        p = Path(path)
        if not p.exists():
            return cls(path=p)
        try:
            doc = json.loads(p.read_text())
        except json.JSONDecodeError as e:
            raise JITError(f"compile cache {p} is not valid JSON: {e}")
        if not isinstance(doc, dict) or doc.get("version") != SCHEMA_VERSION:
            raise JITError(
                f"compile cache {p} has unsupported version "
                f"{doc.get('version') if isinstance(doc, dict) else doc!r}"
            )
        entries = doc.get("entries", {})
        if not isinstance(entries, dict):
            raise JITError(f"compile cache {p}: entries must be an object")
        return cls(entries=entries, path=p)

    def __repr__(self) -> str:
        where = f" @ {self.path}" if self.path else ""
        return f"CompileCache({len(self)} entries{where})"

"""Launch geometry: CUDA ``<<<grid, block>>>`` configuration.

Grids and blocks are up to 3-D, as in CUDA.  Blocks are identified by a
*linear* block id throughout the runtime (this is the id the Allgather
distributable analysis partitions over); :class:`LaunchConfig` converts
between linear ids and 3-D coordinates with CUDA's x-fastest ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LaunchError

__all__ = ["LaunchConfig", "dim3"]


def dim3(v: int | tuple[int, ...]) -> tuple[int, int, int]:
    """Normalize an int or partial tuple to a full (x, y, z) triple."""
    if isinstance(v, (int, np.integer)):
        v = (int(v),)
    t = tuple(int(x) for x in v) + (1, 1, 1)
    t = t[:3]
    if any(x < 1 for x in t):
        raise LaunchError(f"dimensions must be >= 1, got {v!r}")
    return t  # type: ignore[return-value]


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch configuration ``<<<grid, block>>>``."""

    grid: tuple[int, int, int]
    block: tuple[int, int, int]

    @staticmethod
    def make(grid: int | tuple[int, ...], block: int | tuple[int, ...]) -> "LaunchConfig":
        return LaunchConfig(dim3(grid), dim3(block))

    @property
    def num_blocks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def threads_per_block(self) -> int:
        bx, by, bz = self.block
        return bx * by * bz

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def block_coords(self, linear_bid: int) -> tuple[int, int, int]:
        """Linear block id -> (blockIdx.x, blockIdx.y, blockIdx.z)."""
        gx, gy, gz = self.grid
        if not 0 <= linear_bid < self.num_blocks:
            raise LaunchError(
                f"block id {linear_bid} out of range for grid {self.grid}"
            )
        x = linear_bid % gx
        y = (linear_bid // gx) % gy
        z = linear_bid // (gx * gy)
        return (x, y, z)

    def linear_block_id(self, coords: tuple[int, int, int]) -> int:
        x, y, z = coords
        gx, gy, _gz = self.grid
        return x + gx * (y + gy * z)

    def thread_coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(threadIdx.x, .y, .z) lane vectors for one block, x-fastest."""
        bx, by, bz = self.block
        lanes = np.arange(bx * by * bz, dtype=np.int32)
        tx = lanes % bx
        ty = (lanes // bx) % by
        tz = lanes // (bx * by)
        return tx, ty, tz

"""Waiting-time statistics for the partition simulation (Figure 1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slurm.jobs import Job

__all__ = ["WaitStats", "wait_stats"]


@dataclass(frozen=True)
class WaitStats:
    """Summary of job waiting times in one partition."""

    partition: str
    jobs: int
    mean_s: float
    median_s: float
    p90_s: float
    max_s: float
    utilization: float

    def row(self) -> dict[str, object]:
        return {
            "Partition": self.partition,
            "Jobs": self.jobs,
            "Mean wait": _fmt(self.mean_s),
            "Median wait": _fmt(self.median_s),
            "P90 wait": _fmt(self.p90_s),
            "Max wait": _fmt(self.max_s),
            "Util": f"{self.utilization * 100:.0f}%",
        }


def _fmt(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def wait_stats(
    partition: str, jobs: list[Job], num_nodes: int, duration_s: float
) -> WaitStats:
    """Compute waiting-time statistics for one partition's finished trace."""
    waits = np.array([j.wait_s for j in jobs]) if jobs else np.zeros(1)
    busy = sum(min(j.end_time, duration_s) - min(j.start_time, duration_s)
               for j in jobs for _ in [0]) if jobs else 0.0
    node_seconds = sum(
        j.nodes * (min(j.end_time, duration_s) - min(j.start_time, duration_s))
        for j in jobs
    )
    return WaitStats(
        partition=partition,
        jobs=len(jobs),
        mean_s=float(waits.mean()),
        median_s=float(np.median(waits)),
        p90_s=float(np.percentile(waits, 90)),
        max_s=float(waits.max()),
        utilization=node_seconds / (num_nodes * duration_s) if jobs else 0.0,
    )

"""Slurm-like partition/queue simulation (Figure 1 substrate).

Reproduces the paper's motivating measurement: on a cluster whose GPU
partitions are oversubscribed while CPU partitions sit half idle, GPU
jobs wait orders of magnitude longer than CPU jobs.

``PACE_PARTITIONS`` is the default configuration: four CPU partitions
and four GPU partitions with PACE-like sizes, CPU offered load around
50% and GPU offered load around/above capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slurm.jobs import Job, generate_trace
from repro.slurm.metrics import WaitStats, wait_stats
from repro.slurm.scheduler import PartitionScheduler, simulate_partition

__all__ = [
    "Job",
    "generate_trace",
    "PartitionScheduler",
    "simulate_partition",
    "WaitStats",
    "wait_stats",
    "PartitionConfig",
    "PACE_PARTITIONS",
    "simulate_campus_cluster",
]

WEEK_S = 7 * 24 * 3600.0


@dataclass(frozen=True)
class PartitionConfig:
    """Static description of one Slurm partition."""

    name: str
    kind: str  # "cpu" | "gpu"
    num_nodes: int
    load_factor: float


#: four CPU + four GPU partitions; GPU offered load at/above capacity,
#: CPU partitions half idle — the imbalance the paper measures.
PACE_PARTITIONS = (
    PartitionConfig("cpu-small", "cpu", 64, 0.45),
    PartitionConfig("cpu-large", "cpu", 192, 0.55),
    PartitionConfig("cpu-himem", "cpu", 48, 0.40),
    PartitionConfig("cpu-dev", "cpu", 32, 0.35),
    PartitionConfig("gpu-v100", "gpu", 12, 0.92),
    PartitionConfig("gpu-a100", "gpu", 16, 0.97),
    PartitionConfig("gpu-mig", "gpu", 8, 0.90),
    PartitionConfig("gpu-l40", "gpu", 10, 0.95),
)


def simulate_campus_cluster(
    partitions: tuple[PartitionConfig, ...] = PACE_PARTITIONS,
    duration_s: float = WEEK_S,
    seed: int = 0,
) -> list[WaitStats]:
    """Simulate one week of submissions on every partition (Figure 1)."""
    rng = np.random.default_rng(seed)
    stats = []
    for cfg in partitions:
        jobs = generate_trace(
            cfg.name,
            cfg.num_nodes,
            cfg.load_factor,
            duration_s,
            rng,
        )
        finished = simulate_partition(cfg.name, cfg.num_nodes, jobs)
        stats.append(wait_stats(cfg.name, finished, cfg.num_nodes, duration_s))
    return stats

"""Synthetic job traces for the Slurm partition simulation (Figure 1).

The paper measures job waiting times on the Georgia Tech PACE cluster's
Slurm scheduler over one week (March 2-8, 2025).  That trace is not
public, so we regenerate the phenomenon it demonstrates — GPU partitions
heavily oversubscribed, CPU partitions largely idle — from a synthetic
workload with standard HPC-trace statistics: Poisson arrivals,
log-normal service times, geometric-ish node counts.  Per-partition
*load factor* (offered load / capacity) is the knob that reproduces the
utilization imbalance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Job", "generate_trace"]


@dataclass(order=True)
class Job:
    """One batch job."""

    submit_time: float
    job_id: int = field(compare=False)
    nodes: int = field(compare=False)
    runtime_s: float = field(compare=False)
    partition: str = field(compare=False)
    # filled by the scheduler
    start_time: float = field(default=-1.0, compare=False)
    #: times this job was killed by a node failure and requeued
    requeues: int = field(default=0, compare=False)
    #: node count as submitted (failure requeues shrink ``nodes``; node
    #: returns let a requeued job reclaim up to this — grow recovery at
    #: the scheduler level).  Defaults to ``nodes``.
    born_nodes: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.born_nodes <= 0:
            self.born_nodes = self.nodes

    @property
    def wait_s(self) -> float:
        if self.start_time < 0:
            raise ValueError(f"job {self.job_id} never started")
        return self.start_time - self.submit_time

    @property
    def end_time(self) -> float:
        return self.start_time + self.runtime_s


def generate_trace(
    partition: str,
    num_nodes: int,
    load_factor: float,
    duration_s: float,
    rng: np.random.Generator,
    mean_runtime_s: float = 3.0 * 3600,
    sigma: float = 1.2,
    max_job_nodes: int | None = None,
    start_id: int = 0,
) -> list[Job]:
    """Generate a Poisson/log-normal job stream for one partition.

    ``load_factor`` is the offered utilization: the arrival rate is set
    so that (expected nodes x expected runtime x rate) equals
    ``load_factor x num_nodes``.
    """
    if not 0 < load_factor:
        raise ValueError("load_factor must be positive")
    max_job_nodes = max_job_nodes or max(1, num_nodes // 4)
    # truncated geometric node-count distribution, mean ~2
    p_geo = 0.5
    ks = np.arange(1, max_job_nodes + 1)
    probs = p_geo * (1 - p_geo) ** (ks - 1)
    probs /= probs.sum()
    mean_nodes = float((ks * probs).sum())

    # log-normal runtimes with the requested mean
    mu = math.log(mean_runtime_s) - sigma**2 / 2

    rate = load_factor * num_nodes / (mean_nodes * mean_runtime_s)
    jobs: list[Job] = []
    t = 0.0
    jid = start_id
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration_s:
            break
        jobs.append(
            Job(
                submit_time=t,
                job_id=jid,
                nodes=int(rng.choice(ks, p=probs)),
                runtime_s=float(
                    np.clip(rng.lognormal(mu, sigma), 60.0, 96 * 3600)
                ),
                partition=partition,
            )
        )
        jid += 1
    return jobs

"""Discrete-event Slurm-like scheduler: FCFS with EASY backfill.

One :class:`PartitionScheduler` per partition (Slurm partitions have
independent node pools and queues).  The policy is the standard
FCFS + EASY-backfill: the queue head reserves the earliest time enough
nodes free up; later jobs may start out of order only if they finish
before that reservation (using their requested runtime — here the true
runtime, i.e. perfect estimates).

Node failures are modeled the way Slurm drains a dead node: the
partition's capacity shrinks by one, and if the node was busy its job is
killed and requeued at the head of the queue with the surviving node
count (``scontrol requeue`` semantics; the job's ``requeues`` counter
records every such event).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import ClusterError, ReproError
from repro.slurm.jobs import Job

__all__ = ["PartitionScheduler", "simulate_partition"]


@dataclass
class PartitionScheduler:
    """State of one partition's node pool and queue."""

    name: str
    num_nodes: int
    free_nodes: int = field(init=False)
    #: running jobs as (end_time, seq, job) heap (seq breaks ties)
    running: list[tuple[float, int, Job]] = field(default_factory=list)
    queue: list[Job] = field(default_factory=list)
    finished: list[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.free_nodes = self.num_nodes
        self._seq = itertools.count()
        #: concrete node ids available for subset leases (the serving
        #: layer needs identities; the batch queue only tracks counts)
        self._free_ids = set(range(self.num_nodes))
        self._leased: set[int] = set()

    # -- subset leasing (repro.serve) --------------------------------------
    def lease(self, nodes: int) -> tuple[int, ...]:
        """Lease a disjoint subset of ``nodes`` concrete node ids.

        The serving layer (:mod:`repro.serve`) packs concurrent
        launches onto disjoint subsets; the batch queue above only
        counts nodes, so leases and batch jobs share ``free_nodes`` but
        only leases pin identities.  Lowest free ids win, which keeps
        the packing deterministic.  Raises :class:`ClusterError` when
        the partition cannot satisfy the request right now.
        """
        if nodes < 1:
            raise ClusterError(f"lease needs >= 1 node, got {nodes}")
        if nodes > len(self._free_ids) or nodes > self.free_nodes:
            raise ClusterError(
                f"partition {self.name!r} has {len(self._free_ids)} free "
                f"node(s); cannot lease {nodes}"
            )
        ids = tuple(sorted(self._free_ids)[:nodes])
        self._free_ids.difference_update(ids)
        self._leased.update(ids)
        self.free_nodes -= nodes
        return ids

    def release(self, ids) -> None:
        """Return leased node ids to the free pool (inverse of
        :meth:`lease`; rejects ids that are not currently leased)."""
        ids = tuple(int(i) for i in ids)
        bad = [i for i in ids if i not in self._leased]
        if bad:
            raise ClusterError(
                f"partition {self.name!r}: node id(s) {bad} are not leased"
            )
        self._leased.difference_update(ids)
        self._free_ids.update(ids)
        self.free_nodes += len(ids)

    @property
    def leased_nodes(self) -> tuple[int, ...]:
        """Currently leased node ids, sorted."""
        return tuple(sorted(self._leased))

    # -- internals --------------------------------------------------------
    def _start(self, job: Job, now: float) -> None:
        if job.nodes > self.free_nodes:  # pragma: no cover - guarded by callers
            raise ReproError("scheduler invariant violated: not enough nodes")
        job.start_time = now
        self.free_nodes -= job.nodes
        heapq.heappush(self.running, (job.end_time, next(self._seq), job))
        self.finished.append(job)

    def _release_until(self, now: float) -> None:
        while self.running and self.running[0][0] <= now:
            _, _, job = heapq.heappop(self.running)
            self.free_nodes += job.nodes

    def _head_reservation(self, now: float) -> float:
        """Earliest time the queue head can start, given running jobs."""
        head = self.queue[0]
        if head.nodes > self.num_nodes:
            raise ReproError(
                f"job {head.job_id} requests {head.nodes} nodes; partition "
                f"{self.name!r} has {self.num_nodes}"
            )
        free = self.free_nodes
        t = now
        for end, _, job in sorted(self.running, key=lambda r: r[:2]):
            if free >= head.nodes:
                break
            free += job.nodes
            t = end
        return t

    def schedule(self, now: float) -> None:
        """Start every job that FCFS + EASY backfill allows at ``now``."""
        self._release_until(now)
        # FCFS: start queue heads while they fit
        while self.queue and self.queue[0].nodes <= self.free_nodes:
            self._start(self.queue.pop(0), now)
        if not self.queue:
            return
        # EASY backfill against the head's reservation
        reservation = self._head_reservation(now)
        head_nodes = self.queue[0].nodes
        # nodes that must be kept free at `reservation` for the head
        i = 1
        while i < len(self.queue):
            job = self.queue[i]
            if job.nodes <= self.free_nodes:
                ok = (
                    now + job.runtime_s <= reservation
                    or self.free_nodes - job.nodes >= head_nodes
                )
                if ok:
                    self._start(self.queue.pop(i), now)
                    continue
            i += 1

    def fail_node(self, now: float) -> Job | None:
        """One node dies at ``now``: capacity shrinks by one.

        An idle node is simply drained.  A busy node kills its job — the
        one with the latest end time, i.e. the most freshly started work —
        which is requeued at the head of the queue resized to the nodes it
        still holds (its dead node is gone).  Returns the requeued job, or
        ``None`` if an idle node absorbed the failure.
        """
        self._release_until(now)
        if self.num_nodes <= 0:
            raise ClusterError(
                f"partition {self.name!r} has no nodes left to fail"
            )
        self.num_nodes -= 1
        # keep the leasable-id pool in step with capacity (a leased id is
        # never drained here — the serving layer owns its failure story)
        if self._free_ids:
            self._free_ids.discard(max(self._free_ids))
        if self.free_nodes > 0:
            self.free_nodes -= 1
            return None
        idx = max(range(len(self.running)), key=lambda i: self.running[i][:2])
        _, _, job = self.running.pop(idx)
        heapq.heapify(self.running)
        # Job.__eq__ compares submit_time only (the sort key), so remove
        # by identity — list.remove could evict a same-time sibling.
        del self.finished[
            next(k for k, fj in enumerate(self.finished) if fj is job)
        ]
        self.free_nodes += job.nodes - 1
        job.nodes = max(1, job.nodes - 1)
        job.start_time = -1.0
        job.requeues += 1
        self.queue.insert(0, job)
        return job

    def return_node(self, now: float) -> Job | None:
        """A replacement node rejoins at ``now``: capacity grows by one.

        The inverse of :meth:`fail_node` (Slurm's ``scontrol update
        state=resume``).  A queued job that a failure previously shrank
        (``requeues > 0`` and fewer nodes than it was born with) reclaims
        the returned node — head-most first, so the job the failure hurt
        most recently is made whole first and a requeued job that waits
        long enough gets its original allocation back.  Returns the job
        whose allocation grew, or ``None`` if the node simply joined the
        free pool.
        """
        self._release_until(now)
        self.num_nodes += 1
        self.free_nodes += 1
        fresh = 0
        while fresh in self._free_ids or fresh in self._leased:
            fresh += 1
        self._free_ids.add(fresh)
        for job in self.queue:
            if job.requeues > 0 and job.nodes < job.born_nodes:
                job.nodes += 1
                return job
        return None

    @property
    def next_completion(self) -> float | None:
        return self.running[0][0] if self.running else None


def simulate_partition(
    name: str,
    num_nodes: int,
    jobs: list[Job],
    failure_times: list[float] | None = None,
    return_times: list[float] | None = None,
) -> list[Job]:
    """Run one partition's trace to completion; returns jobs with start
    times filled in.

    ``failure_times`` optionally injects node failures: at each given
    time one node dies (capacity shrinks; a killed job is requeued with
    its surviving node count — see :meth:`PartitionScheduler.fail_node`).
    ``return_times`` injects node *returns*: at each given time one
    replacement node rejoins (capacity grows; a requeued job waiting in
    the queue reclaims it up to its born width — see
    :meth:`PartitionScheduler.return_node`).  Without either the
    simulation is exactly the failure-free one.
    """
    sched = PartitionScheduler(name, num_nodes)
    pending = sorted(jobs)
    failures = sorted(failure_times) if failure_times else []
    returns = sorted(return_times) if return_times else []
    i = 0
    f = 0
    r = 0
    now = 0.0
    while (
        i < len(pending)
        or sched.queue
        or (f < len(failures) and sched.running)
        or (r < len(returns) and (sched.running or sched.queue))
    ):
        # next event: arrival, completion, node failure, or node return
        arrival = pending[i].submit_time if i < len(pending) else None
        completion = sched.next_completion
        failure = failures[f] if f < len(failures) else None
        ret = returns[r] if r < len(returns) else None
        if (
            failure is not None
            and (arrival is None or failure < arrival)
            and (completion is None or failure < completion)
            and (ret is None or failure <= ret)
        ):
            now = max(now, failure)
            f += 1
            sched.fail_node(now)
        elif (
            ret is not None
            and (arrival is None or ret < arrival)
            and (completion is None or ret < completion)
        ):
            now = max(now, ret)
            r += 1
            sched.return_node(now)
        elif arrival is None and completion is None:
            break  # queue non-empty but nothing running: handled below
        elif completion is None or (arrival is not None and arrival <= completion):
            now = max(now, arrival)
            while i < len(pending) and pending[i].submit_time <= now:
                sched.queue.append(pending[i])
                i += 1
        else:
            now = max(now, completion)
        sched.schedule(now)
        if (
            not sched.running
            and sched.queue
            and i >= len(pending)
            and r >= len(returns)
        ):
            raise ReproError(
                f"partition {name!r} deadlocked with {len(sched.queue)} queued jobs"
            )
    return sched.finished

"""Discrete-event Slurm-like scheduler: FCFS with EASY backfill.

One :class:`PartitionScheduler` per partition (Slurm partitions have
independent node pools and queues).  The policy is the standard
FCFS + EASY-backfill: the queue head reserves the earliest time enough
nodes free up; later jobs may start out of order only if they finish
before that reservation (using their requested runtime — here the true
runtime, i.e. perfect estimates).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.slurm.jobs import Job

__all__ = ["PartitionScheduler", "simulate_partition"]


@dataclass
class PartitionScheduler:
    """State of one partition's node pool and queue."""

    name: str
    num_nodes: int
    free_nodes: int = field(init=False)
    #: running jobs as (end_time, nodes) heap
    running: list[tuple[float, int]] = field(default_factory=list)
    queue: list[Job] = field(default_factory=list)
    finished: list[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.free_nodes = self.num_nodes

    # -- internals --------------------------------------------------------
    def _start(self, job: Job, now: float) -> None:
        if job.nodes > self.free_nodes:  # pragma: no cover - guarded by callers
            raise ReproError("scheduler invariant violated: not enough nodes")
        job.start_time = now
        self.free_nodes -= job.nodes
        heapq.heappush(self.running, (job.end_time, job.nodes))
        self.finished.append(job)

    def _release_until(self, now: float) -> None:
        while self.running and self.running[0][0] <= now:
            _, nodes = heapq.heappop(self.running)
            self.free_nodes += nodes

    def _head_reservation(self, now: float) -> float:
        """Earliest time the queue head can start, given running jobs."""
        head = self.queue[0]
        if head.nodes > self.num_nodes:
            raise ReproError(
                f"job {head.job_id} requests {head.nodes} nodes; partition "
                f"{self.name!r} has {self.num_nodes}"
            )
        free = self.free_nodes
        t = now
        for end, nodes in sorted(self.running):
            if free >= head.nodes:
                break
            free += nodes
            t = end
        return t

    def schedule(self, now: float) -> None:
        """Start every job that FCFS + EASY backfill allows at ``now``."""
        self._release_until(now)
        # FCFS: start queue heads while they fit
        while self.queue and self.queue[0].nodes <= self.free_nodes:
            self._start(self.queue.pop(0), now)
        if not self.queue:
            return
        # EASY backfill against the head's reservation
        reservation = self._head_reservation(now)
        head_nodes = self.queue[0].nodes
        # nodes that must be kept free at `reservation` for the head
        i = 1
        while i < len(self.queue):
            job = self.queue[i]
            if job.nodes <= self.free_nodes:
                ok = (
                    now + job.runtime_s <= reservation
                    or self.free_nodes - job.nodes >= head_nodes
                )
                if ok:
                    self._start(self.queue.pop(i), now)
                    continue
            i += 1

    @property
    def next_completion(self) -> float | None:
        return self.running[0][0] if self.running else None


def simulate_partition(name: str, num_nodes: int, jobs: list[Job]) -> list[Job]:
    """Run one partition's trace to completion; returns jobs with start
    times filled in."""
    sched = PartitionScheduler(name, num_nodes)
    pending = sorted(jobs)
    i = 0
    now = 0.0
    while i < len(pending) or sched.queue:
        # next event: arrival or completion
        arrival = pending[i].submit_time if i < len(pending) else None
        completion = sched.next_completion
        if arrival is None and completion is None:
            break  # queue non-empty but nothing running: handled below
        if completion is None or (arrival is not None and arrival <= completion):
            now = max(now, arrival)
            while i < len(pending) and pending[i].submit_time <= now:
                sched.queue.append(pending[i])
                i += 1
        else:
            now = max(now, completion)
        sched.schedule(now)
        if not sched.running and sched.queue and i >= len(pending):
            raise ReproError(
                f"partition {name!r} deadlocked with {len(sched.queue)} queued jobs"
            )
    return sched.finished

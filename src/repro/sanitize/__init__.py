"""Kernel sanitizer: static race detection + dynamic shadow checks.

Two complementary layers share one report format:

* :func:`analyze_kernel` (static) proves hazards from the IR alone —
  shared-memory conflicts between barriers, barrier divergence, and
  non-atomic cross-block global writes that break the replication
  invariant the Allgather-distributable analysis relies on.  It is
  conservative: a clean verdict covers *every* launch geometry.
* :class:`DynamicSanitizer` (dynamic) rides along with the interpreter
  (``run_grid(..., sanitize=True)``) and catches what a concrete launch
  actually does — real races, out-of-bounds accesses, uninitialized
  shared reads — with source-located diagnostics and zero effect on
  modeled times when disabled.

:func:`sanitize_kernel` runs the static layer; :func:`sanitize_launch`
runs one launch under the dynamic layer; :func:`sanitize_spec` runs
both over a bundled :class:`~repro.workloads.base.WorkloadSpec` and
merges the findings.
"""

from __future__ import annotations

from repro.ir.stmt import Kernel
from repro.sanitize.dynamic import DynamicSanitizer
from repro.sanitize.report import (
    MAX_FINDINGS_PER_KIND,
    Finding,
    FindingKind,
    SanitizerReport,
)
from repro.sanitize.static_race import analyze_kernel

__all__ = [
    "FindingKind",
    "Finding",
    "SanitizerReport",
    "MAX_FINDINGS_PER_KIND",
    "DynamicSanitizer",
    "analyze_kernel",
    "sanitize_kernel",
    "sanitize_launch",
    "sanitize_spec",
]


def sanitize_kernel(kernel: Kernel) -> SanitizerReport:
    """Static sanitizer pass over one kernel's IR."""
    return analyze_kernel(kernel)


def sanitize_launch(
    kernel: Kernel,
    grid,
    block,
    args: dict,
    report: SanitizerReport | None = None,
) -> SanitizerReport:
    """Execute one launch under the dynamic sanitizer; return its report.

    ``args`` maps pointer params to 1-D NumPy arrays (mutated in place,
    as in :func:`repro.interp.machine.run_grid`) and scalar params to
    values.  Pass ``report`` to accumulate several launches into one.
    """
    from repro.interp.grid import LaunchConfig
    from repro.interp.machine import run_grid

    san = DynamicSanitizer(kernel.name, report=report)
    run_grid(kernel, LaunchConfig.make(grid, block), args, sanitize=san)
    return san.report


def sanitize_spec(spec) -> SanitizerReport:
    """Static + dynamic sanitizer over a bundled workload spec.

    The dynamic pass runs on private copies of the spec's arrays, so the
    spec stays reusable.  Findings from both layers merge into one
    report (``Finding.layer`` tells them apart).
    """
    report = analyze_kernel(spec.kernel)
    arrays = {k: v.copy() for k, v in spec.arrays.items()}
    sanitize_launch(
        spec.kernel, spec.grid, spec.block,
        {**arrays, **spec.scalars}, report=report,
    )
    return report

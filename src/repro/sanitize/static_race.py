"""Static race detection over the kernel IR.

This is the compile-time half of the sanitizer.  It walks a kernel the
same way the distributable analysis does (symbolic environment of affine
polynomials, classified guards) and diagnoses three hazard classes:

1. **Shared-memory races** — two accesses to the same ``__shared__``
   array in the same *barrier phase* (the region between two
   ``__syncthreads()``), at least one a write, that can touch the same
   element from two different threads.
2. **Barrier divergence** — a ``__syncthreads()`` reachable under a
   thread-variant condition (some threads of a block arrive, others do
   not).  The guarded-early-return idiom ``if (id >= n) return;`` does
   *not* count: retired threads are exempt from barriers, matching both
   the interpreter and CUDA's exited-thread semantics.
3. **Replication violations** — non-atomic global-memory writes that can
   overlap across blocks with block-dependent values, violating the
   invariant the Allgather-distributable analysis relies on ("every
   block writes the same value to any location it shares with another
   block").

Race model
----------
The interpreter executes a block's threads in lockstep: within a single
statement *instance*, every thread's loads complete before any thread's
store lands (gather before scatter).  Accesses made by one statement
instance therefore never race with themselves — the single-buffered
backward induction in the BinomialOption workload
(``lattice[i] = pu*lattice[i+1] + pd*lattice[i]``) is *defined* under
this model and must sanitize clean.  A race is a conflicting pair from
two **different statement instances** in the same barrier phase.

To expose cross-iteration conflicts, every loop body is analyzed
*twice*, with the induction symbol renamed apart and a fresh instance
tag — the tail of iteration *i* and the head of iteration *i+1* land in
the same phase exactly when no barrier separates them.

Every rule errs toward silence only where the conservative direction
would flag the bundled workloads' universally used idioms; remaining
false negatives (data-dependent indices crossing iterations, value
agreement the algebra cannot see) are covered by the dynamic layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.analysis.affine import (
    CTAID_SYMBOLS,
    TID_SYMBOLS,
    Poly,
    eval_sym,
)
from repro.analysis.guards import (
    Guard,
    GuardKind,
    guards_of_condition,
    negate_conjunction,
)
from repro.ir.expr import Cast, Expr, Load, Param, Var
from repro.ir.stmt import (
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.ir.types import AddressSpace
from repro.ir.visitor import iter_stmts, walk_expr
from repro.sanitize.report import Finding, FindingKind, SanitizerReport, snippet_of

__all__ = ["analyze_kernel"]

#: Guard against pathological nesting: each loop is walked twice, so the
#: walk grows as 2^depth.  Bundled kernels nest at most three deep.
_MAX_LOOP_DEPTH = 6


# ---------------------------------------------------------------------------
# access records
# ---------------------------------------------------------------------------

@dataclass
class _Access:
    """One shared-memory access site, in symbolic form.

    ``index`` has the pin (if any) already substituted; ``pin`` is the
    value of ``tid.x`` the enclosing equality guards force, making the
    access single-threaded per block.  ``instance`` tags the loop-unroll
    copy the access came from: the same statement re-walked for
    "iteration i+1" gets a different tag, so cross-iteration conflicts
    of one textual statement are still checked.
    """

    array: str
    index: Poly | None
    is_write: bool
    is_atomic: bool
    stmt: Stmt
    instance: int
    phase: int
    pin: Poly | None
    value: Poly | None  # stored value (writes only)


def _value_sym(e: Expr, env: dict[str, Poly | None]) -> Poly | None:
    """Symbolic form of a *stored value*.

    Value polynomials are only inspected for which symbols they mention
    (thread/block dependence), never for exact magnitude, so peeling
    float casts — which :func:`eval_sym` soundly refuses for index
    arithmetic — is fine here: ``y[0] = (float)blockIdx.x`` still has a
    block-dependent value.
    """
    while isinstance(e, Cast):
        e = e.value
    return eval_sym(e, env)


def _tid_pin(guards: tuple[Guard, ...]) -> Poly | None:
    """The value equality guards force on ``tid.x``, if they pin it.

    ``if (threadIdx.x == c)`` classifies to ``tid.x - c == 0``; any
    guard ``p == 0`` linear in ``tid.x`` with coefficient ±1 and a
    remainder free of thread symbols pins the thread to one value.
    """
    for g in guards:
        if g.rel != "eq" or g.poly is None:
            continue
        p = g.poly
        if p.degree("tid.x") != 1:
            continue
        c = p.coeff("tid.x")
        if not (c.is_constant() and abs(c.constant_value()) in (1,)):
            continue
        rest = p - Poly.sym("tid.x").scale(c.constant_value())
        if rest.symbols() & TID_SYMBOLS:
            continue
        # c*tid + rest == 0  =>  tid == -rest/c  ==  -rest*c for c = ±1
        return (-rest).scale(c.constant_value())
    return None


def _injective_in_threads(p: Poly) -> bool:
    """Whether distinct ``(tid.x, loop iteration)`` tuples provably hit
    distinct elements: coefficient ±1 on ``tid.x``, no other thread
    symbols, and every loop-symbol coefficient a multiple of ``ntid.x``
    (the coalesced ``k*blockDim.x + threadIdx.x`` stride pattern)."""
    syms = p.symbols()
    if (syms & TID_SYMBOLS) - {"tid.x"}:
        return False
    if p.degree("tid.x") != 1:
        return False
    c = p.coeff("tid.x")
    if not (c.is_constant() and abs(c.constant_value()) == 1):
        return False
    for s in syms:
        if s.startswith("loop:"):
            if p.degree(s) > 1:
                return False
            lc = p.coeff(s)
            if not lc.subs("ntid.x", Poly.const(0)).is_zero():
                return False
    return True


def _pair_conflict(a: _Access, b: _Access) -> str | None:
    """Whether two same-array, same-phase accesses from different
    statement instances can conflict from two different threads.

    Returns a human-readable reason, or ``None`` when provably clean.
    """
    # Two accesses pinned to the same single thread are program-ordered.
    if a.pin is not None and b.pin is not None:
        if a.pin == b.pin:
            return None
        if a.index is None or b.index is None:
            return "two pinned threads access an unanalyzable index"
        d = a.index - b.index
        if d.is_constant() and d.constant_value() != 0:
            return None  # two specific threads, two distinct elements
        if d.is_zero():
            return "two different pinned threads touch the same element"
        return "two pinned threads may touch the same element"

    if a.index is None or b.index is None:
        return "unanalyzable index may alias across threads"

    # Exactly one access pinned: the other runs on every (guarded)
    # thread; solve for the thread that would collide with the pinned
    # element and check it is the pinned thread itself.
    if (a.pin is None) != (b.pin is None):
        pinned, free = (a, b) if a.pin is not None else (b, a)
        fp = free.index
        if not (fp.symbols() & TID_SYMBOLS):
            d = fp - pinned.index
            if d.is_constant():
                # Same fixed element for every thread of the free access:
                # with >1 thread live that is already a conflict when the
                # element matches the pinned one... but when it does not,
                # the pair itself is clean (the free access's own self-
                # conflict is diagnosed by the unpaired-write rule).
                return (
                    "all threads and a pinned thread touch the same element"
                    if d.is_zero()
                    else None
                )
            return "thread-invariant index may equal a pinned thread's element"
        if _injective_in_threads(fp):
            c = fp.coeff("tid.x").constant_value()
            rest = fp - Poly.sym("tid.x").scale(c)
            # c*t + rest == pinned.index  =>  t == (pinned.index - rest)*c
            t_sol = (pinned.index - rest).scale(c)
            if t_sol == pinned.pin:
                return None  # only the pinned thread itself collides
            d = t_sol - pinned.pin
            if d.is_constant():  # a specific *other* thread collides
                return "a second thread collides with a pinned thread's element"
            return "an unpinned thread may collide with a pinned thread's element"
        return "unpinned access may collide with a pinned thread's element"

    # Neither pinned: every guarded thread performs both accesses.
    d = a.index - b.index
    if d.is_zero():
        if _injective_in_threads(a.index):
            return None  # element is private to each (thread, iteration)
        return "multiple threads touch the same element"
    if d.is_constant():
        dv = d.constant_value()
        if a.index.degree("tid.x") == 0 and b.index.degree("tid.x") == 0:
            return None  # two distinct thread-invariant elements
        if a.index.degree("tid.x") == 1:
            c = a.index.coeff("tid.x")
            if c.is_constant():
                cv = c.constant_value()
                if cv != 0 and dv % cv == 0:
                    return (
                        f"threads {abs(dv // cv)} apart touch the same element"
                    )
                if cv != 0:
                    return None  # stride never bridges the offset
        return "offset accesses may touch the same element"
    return "indices may alias across threads"


# ---------------------------------------------------------------------------
# the walker
# ---------------------------------------------------------------------------

class _Walker:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.report = SanitizerReport(kernel.name)
        self.accesses: list[_Access] = []
        self.phase = 0
        self._loop_counter = itertools.count()
        self._instance_counter = itertools.count(1)
        self._flagged_syncs: set[int] = set()

    # -- findings --------------------------------------------------------
    def _finding(self, kind: FindingKind, stmt: Stmt | None, message: str) -> None:
        self.report.add(
            Finding(
                kind=kind,
                layer="static",
                kernel=self.kernel.name,
                message=message,
                line=getattr(stmt, "loc", None),
                snippet=snippet_of(stmt),
            )
        )

    # -- shared-access collection ---------------------------------------
    def _space_of(self, ptr: Expr) -> AddressSpace | None:
        t = getattr(ptr, "type", None)
        return getattr(t, "space", None)

    def _array_name(self, ptr: Expr) -> str | None:
        if isinstance(ptr, (Var, Param)):
            return ptr.name
        return None

    def _collect_loads(
        self,
        stmt: Stmt,
        env: dict[str, Poly | None],
        guards: tuple[Guard, ...],
        instance: int,
    ) -> None:
        """Record shared-memory reads embedded in a statement's
        expressions (conditions, indices, stored values)."""
        pin = _tid_pin(guards)
        for e in stmt.exprs():
            for node in walk_expr(e):
                if not isinstance(node, Load):
                    continue
                if self._space_of(node.ptr) is not AddressSpace.SHARED:
                    continue
                name = self._array_name(node.ptr)
                if name is None:  # pragma: no cover - shared ptrs are Vars
                    continue
                idx = eval_sym(node.index, env)
                if idx is not None and pin is not None:
                    idx = idx.subs("tid.x", pin)
                self.accesses.append(
                    _Access(
                        array=name,
                        index=idx,
                        is_write=False,
                        is_atomic=False,
                        stmt=stmt,
                        instance=instance,
                        phase=self.phase,
                        pin=pin,
                        value=None,
                    )
                )

    def _collect_store(
        self,
        stmt: Store | Atomic,
        env: dict[str, Poly | None],
        guards: tuple[Guard, ...],
        instance: int,
    ) -> None:
        space = stmt.ptr_type.space
        name = self._array_name(stmt.ptr)
        if space is AddressSpace.SHARED and name is not None:
            pin = _tid_pin(guards)
            idx = eval_sym(stmt.index, env)
            if idx is not None and pin is not None:
                idx = idx.subs("tid.x", pin)
            val = _value_sym(stmt.value, env)
            if val is not None and pin is not None:
                val = val.subs("tid.x", pin)
            self.accesses.append(
                _Access(
                    array=name,
                    index=idx,
                    is_write=True,
                    is_atomic=isinstance(stmt, Atomic),
                    stmt=stmt,
                    instance=instance,
                    phase=self.phase,
                    pin=pin,
                    value=val,
                )
            )
        elif space is AddressSpace.GLOBAL and isinstance(stmt, Store):
            self._check_replication(stmt, env, guards)

    # -- replication invariant ------------------------------------------
    def _check_replication(
        self,
        stmt: Store,
        env: dict[str, Poly | None],
        guards: tuple[Guard, ...],
    ) -> None:
        """Non-atomic global store: prove blocks cannot disagree.

        Clean when (a) the index strides by the block id with a positive,
        index-free coefficient — distinct blocks hit distinct elements
        (the ubiquitous ``blockIdx.x*blockDim.x + threadIdx.x`` family) —
        or (b) both index and value are block-invariant, so every block
        that writes the location writes the same value.  Anything else
        may break the replication invariant.  Launch-geometry corner
        cases the algebra cannot see (a stride smaller than the block's
        write extent) are left to the exact dynamic check.
        """
        buffer = self._array_name(stmt.ptr) or "<global>"
        idx = eval_sym(stmt.index, env)
        if idx is None:
            self._finding(
                FindingKind.NON_REPLICATED_WRITE,
                stmt,
                f"write to {buffer!r} through an unanalyzable index may "
                "overlap across blocks with block-dependent values",
            )
            return
        bid_syms = idx.symbols() & CTAID_SYMBOLS
        if bid_syms:
            for s in bid_syms:
                if idx.degree(s) != 1:
                    continue
                c = idx.coeff(s)
                if c.provably_positive() and not (
                    c.symbols() & (TID_SYMBOLS | CTAID_SYMBOLS)
                ):
                    return  # block-strided: disjoint per-block ranges
            self._finding(
                FindingKind.NON_REPLICATED_WRITE,
                stmt,
                f"block-dependent write index into {buffer!r} is not "
                "provably disjoint across blocks",
            )
            return
        # Block-invariant index: every block writes the same locations;
        # the written value must be block-invariant too.
        val = _value_sym(stmt.value, env)
        if val is not None and not (val.symbols() & CTAID_SYMBOLS):
            return
        if val is not None:
            self._finding(
                FindingKind.NON_REPLICATED_WRITE,
                stmt,
                f"blocks write different values to the same {buffer!r} "
                "element (block-dependent value, block-invariant index)",
            )
        else:
            self._finding(
                FindingKind.NON_REPLICATED_WRITE,
                stmt,
                f"blocks overlap on {buffer!r} with an unanalyzable "
                "value; replicated execution may diverge",
            )

    # -- barrier divergence ----------------------------------------------
    def _check_barrier(
        self,
        stmt: SyncThreads,
        div_guards: tuple[Guard, ...],
        divergent_loop: bool,
    ) -> None:
        if id(stmt) in self._flagged_syncs:
            return
        reason: str | None = None
        if divergent_loop:
            reason = "barrier inside a loop whose trip count varies per thread"
        else:
            for g in div_guards:
                if g.poly is None:
                    reason = "barrier under a data-dependent condition"
                    break
                if g.poly.symbols() & TID_SYMBOLS:
                    reason = "barrier under a thread-dependent condition"
                    break
        if reason is not None:
            self._flagged_syncs.add(id(stmt))
            self._finding(FindingKind.BARRIER_DIVERGENCE, stmt, reason)

    @staticmethod
    def _loop_divergent(
        start: Poly | None, stop: Poly | None, step: Poly | None
    ) -> bool:
        for p in (start, stop, step):
            if p is None:
                return True
            if p.symbols() & TID_SYMBOLS:
                return True
        return False

    # -- the walk ----------------------------------------------------------
    @staticmethod
    def _terminates(body: list[Stmt]) -> bool:
        return any(isinstance(s, Return) for s in body)

    def walk(
        self,
        body: list[Stmt],
        env: dict[str, Poly | None],
        acc_guards: tuple[Guard, ...],
        div_guards: tuple[Guard, ...],
        instance: int,
        divergent_loop: bool,
        depth: int,
    ) -> dict[str, Poly | None]:
        for s in body:
            if isinstance(s, (Store, Atomic, If, While, Return, Assign)):
                self._collect_loads(s, env, acc_guards, instance)
            if isinstance(s, Assign):
                env[s.name] = eval_sym(s.value, env)
            elif isinstance(s, (Store, Atomic)):
                self._collect_store(s, env, acc_guards, instance)
                if isinstance(s, Atomic) and s.result is not None:
                    env[s.result] = None
            elif isinstance(s, SyncThreads):
                self._check_barrier(s, div_guards, divergent_loop)
                self.phase += 1
            elif isinstance(s, If):
                gs = tuple(guards_of_condition(s.cond, env))
                neg = tuple(negate_conjunction(list(gs)))
                then_env = self.walk(
                    s.then_body, dict(env), acc_guards + gs,
                    div_guards + gs, instance, divergent_loop, depth,
                )
                else_env = self.walk(
                    s.else_body, dict(env), acc_guards + neg,
                    div_guards + neg, instance, divergent_loop, depth,
                )
                then_ret = self._terminates(s.then_body)
                else_ret = self._terminates(s.else_body)
                if then_ret and not else_ret:
                    # Only the else path falls through.  Its guards hold
                    # for every still-live thread, but retired threads
                    # are exempt from barriers — extend the *access*
                    # guards only, never the divergence guards.
                    acc_guards = acc_guards + neg
                    env = else_env
                elif else_ret and not then_ret:
                    acc_guards = acc_guards + gs
                    env = then_env
                elif then_ret and else_ret:
                    break
                else:
                    env = _merge_envs(env, then_env, else_env)
            elif isinstance(s, For):
                self._collect_loads(s, env, acc_guards, instance)
                start = eval_sym(s.start, env)
                stop = eval_sym(s.stop, env)
                step = eval_sym(s.step, env)
                body_divergent = divergent_loop or self._loop_divergent(
                    start, stop, step
                ) or (
                    _contains_barrier(s.body)
                    and any(
                        isinstance(t, (Break, Continue))
                        for t in iter_stmts(s.body)
                    )
                )
                assigned = _assigned_names(s.body)
                if depth < _MAX_LOOP_DEPTH:
                    # Walk the body twice — "iteration i" and
                    # "iteration i+1" — with the induction symbol
                    # renamed apart and a fresh instance tag, so the
                    # tail of one iteration meets the head of the next
                    # in the same phase when no barrier separates them.
                    for _ in range(2):
                        inner = dict(env)
                        for name in assigned:
                            inner[name] = None
                        inner[s.var] = Poly.sym(
                            f"loop:{s.var}#{next(self._loop_counter)}"
                        )
                        self.walk(
                            s.body, inner, acc_guards, div_guards,
                            next(self._instance_counter), body_divergent,
                            depth + 1,
                        )
                for name in assigned:
                    env[name] = None
                env.pop(s.var, None)
            elif isinstance(s, While):
                cond_guards = tuple(guards_of_condition(s.cond, env))
                body_divergent = divergent_loop or any(
                    g.poly is None or (g.poly.symbols() & TID_SYMBOLS)
                    for g in cond_guards
                )
                assigned = _assigned_names(s.body)
                if depth < _MAX_LOOP_DEPTH:
                    for _ in range(2):
                        inner = dict(env)
                        for name in assigned:
                            inner[name] = None
                        self.walk(
                            s.body, inner, acc_guards, div_guards,
                            next(self._instance_counter), body_divergent,
                            depth + 1,
                        )
                for name in assigned:
                    env[name] = None
            elif isinstance(s, Return):
                break
            elif isinstance(s, (Break, Continue)):
                break
            elif isinstance(s, (AllocShared, AllocLocal)):
                pass
        return env

    # -- pair analysis ------------------------------------------------------
    def check_pairs(self) -> None:
        by_group: dict[tuple[str, int], list[_Access]] = {}
        for a in self.accesses:
            by_group.setdefault((a.array, a.phase), []).append(a)
        for (array, _phase), group in by_group.items():
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    if not (a.is_write or b.is_write):
                        continue
                    if a.is_atomic and b.is_atomic:
                        continue  # atomics serialize against each other
                    if a.stmt is b.stmt and a.instance == b.instance:
                        continue  # one lockstep instance: defined order
                    reason = _pair_conflict(a, b)
                    if reason is None:
                        continue
                    w = a if a.is_write else b
                    kinds = ("write/write" if a.is_write and b.is_write
                             else "read/write")
                    self._finding(
                        FindingKind.SHARED_RACE,
                        w.stmt,
                        f"{kinds} conflict on __shared__ {array!r} with "
                        f"no intervening __syncthreads(): {reason}",
                    )

    def check_unpaired_writes(self) -> None:
        """A single thread-invariant-index write performed by many
        threads with a thread-dependent (or unanalyzable) value is a
        write/write race all by itself (``s[0] = threadIdx.x``)."""
        for a in self.accesses:
            if not a.is_write or a.is_atomic or a.pin is not None:
                continue
            if a.index is not None and (a.index.symbols() & TID_SYMBOLS):
                continue
            if a.index is None:
                self._finding(
                    FindingKind.SHARED_RACE,
                    a.stmt,
                    f"unanalyzable write index into __shared__ "
                    f"{a.array!r} may collide across threads",
                )
                continue
            if a.value is None or (a.value.symbols() & TID_SYMBOLS):
                self._finding(
                    FindingKind.SHARED_RACE,
                    a.stmt,
                    f"every thread of the block writes __shared__ "
                    f"{a.array!r} element {a.index} with a "
                    "thread-dependent value",
                )


def _contains_barrier(body: list[Stmt]) -> bool:
    return any(isinstance(s, SyncThreads) for s in iter_stmts(body))


def _assigned_names(body: list[Stmt]) -> set[str]:
    names: set[str] = set()
    for s in iter_stmts(body):
        if isinstance(s, Assign):
            names.add(s.name)
        elif isinstance(s, Atomic) and s.result is not None:
            names.add(s.result)
        elif isinstance(s, For):
            names.add(s.var)
    return names


def _merge_envs(
    pre: dict[str, Poly | None],
    a: dict[str, Poly | None],
    b: dict[str, Poly | None],
) -> dict[str, Poly | None]:
    out: dict[str, Poly | None] = {}
    for name in set(a) | set(b):
        va = a.get(name, pre.get(name))
        vb = b.get(name, pre.get(name))
        out[name] = va if (va is not None and va == vb) else None
    return out


def analyze_kernel(kernel: Kernel) -> SanitizerReport:
    """Run the static sanitizer over one kernel and return its report."""
    w = _Walker(kernel)
    w.walk(
        list(kernel.body), {}, (), (), instance=0,
        divergent_loop=False, depth=0,
    )
    w.check_pairs()
    w.check_unpaired_writes()
    return w.report

"""Dynamic sanitizer: shadow-state checks during interpretation.

The static layer (:mod:`repro.sanitize.static_race`) proves hazards from
the IR alone; this layer catches what actually happens on a concrete
launch.  :class:`DynamicSanitizer` hangs off the interpreter
(``Machine(sanitize=True)`` / ``run_grid(..., sanitize=True)``) and
shadow-tracks, per memory location, the last writer and reader —
*(thread, epoch, statement instance)* for shared memory, *(block,
thread, epoch, generation)* plus the written value for global memory —
to diagnose:

* **shared races** — conflicting shared-memory accesses from two
  different threads in the same barrier phase,
* **global races** — same-block global conflicts without an intervening
  barrier, and cross-block reads of data written in the same launch,
* **non-replicated writes** — cross-block global writes that disagree on
  the value, violating the replication invariant the Allgather-
  distributable analysis (:mod:`repro.analysis.distributable`) assumes,
* **barrier divergence** — a ``__syncthreads()`` not reached by every
  non-retired thread of a block,
* **out-of-bounds** global / shared / local accesses (reported instead
  of raised, so one run collects every distinct site), and
* **uninitialized shared reads** — loads from shared locations no
  thread has written (the interpreter zero-fills; real hardware does
  not).

Race model (mirrors the static layer): the interpreter executes each
statement in lockstep across the block, gathering every load before the
scatter of the store.  Accesses belonging to the *same statement
instance* are therefore ordered by construction and exempt; a conflict
requires two different threads touching the same location from two
different statement instances within one barrier phase.  Writes that
store the value already present ("noop" writes) are exempt from race
findings — replicated execution re-writes identical values by design —
but still mark the location initialized.

Every hook is cheap vectorized NumPy over the active lanes; when
``sanitize`` is off the interpreter never calls into this module, so the
modeled times and operation counts are bit-identical with and without
the sanitizer (it never touches :class:`~repro.perfmodel.counters.OpCounters`).
"""

from __future__ import annotations

import numpy as np

from repro.ir.stmt import Stmt
from repro.sanitize.report import Finding, FindingKind, SanitizerReport, snippet_of

__all__ = ["DynamicSanitizer"]

_OOB_KINDS = {
    "global": FindingKind.OOB_GLOBAL,
    "shared": FindingKind.OOB_SHARED,
    "local": FindingKind.OOB_LOCAL,
}


class _SharedShadow:
    """Shadow state for one shared array (``seg`` cells x ``span`` blocks)."""

    def __init__(self, seg: int, span: int):
        n = seg * span
        self.seg = seg
        self.init = np.zeros(n, dtype=bool)
        self.atomic = np.zeros(n, dtype=bool)
        self.writer_thread = np.full(n, -1, dtype=np.int64)
        self.writer_epoch = np.full(n, -1, dtype=np.int64)
        self.writer_inst = np.full(n, -1, dtype=np.int64)
        self.reader_thread = np.full(n, -1, dtype=np.int64)
        self.reader_epoch = np.full(n, -1, dtype=np.int64)
        self.reader_inst = np.full(n, -1, dtype=np.int64)


class _GlobalShadow:
    """Shadow state for one global buffer, persistent across spans (and
    across the replicated per-node executions of one launch when the same
    sanitizer instance is shared)."""

    def __init__(self, length: int, dtype):
        self.atomic = np.zeros(length, dtype=bool)
        self.writer_block = np.full(length, -1, dtype=np.int64)
        self.writer_thread = np.full(length, -1, dtype=np.int64)
        self.writer_epoch = np.full(length, -1, dtype=np.int64)
        self.writer_gen = np.full(length, -1, dtype=np.int64)
        self.writer_inst = np.full(length, -1, dtype=np.int64)
        self.value = np.zeros(length, dtype=dtype)


class DynamicSanitizer:
    """Per-launch shadow state; attach via ``Machine(sanitize=...)``.

    One instance may be shared by several executors replaying the same
    launch (the distributed runtime runs every block on every node):
    replicated re-execution writes identical values, so the value-compare
    rules stay silent, while genuine divergence between nodes surfaces as
    a non-replicated write.
    """

    def __init__(self, kernel_name: str, report: SanitizerReport | None = None):
        self.report = report if report is not None else SanitizerReport(kernel_name)
        self.kernel_name = kernel_name
        self._cur_stmt: Stmt | None = None
        self._inst = 0  # statement-instance counter (monotone per executor)
        self._gen = 0  # span generation, bumped per run_span
        self._globals: dict[str, _GlobalShadow] = {}
        # span-local state, reset by on_span:
        self._span = 0
        self._tpb = 0
        self._lane_thread = np.zeros(0, dtype=np.int64)
        self._lane_block = np.zeros(0, dtype=np.int64)
        self._lane_pos = np.zeros(0, dtype=np.int64)
        self._epoch = np.zeros(0, dtype=np.int64)
        self._shared: dict[str, _SharedShadow] = {}

    # -- bookkeeping hooks ---------------------------------------------
    def begin_stmt(self, s: Stmt) -> None:
        """Called at the top of every statement execution: a fresh
        *instance*.  Loads and the store of one instance are mutually
        exempt (lockstep gather-before-scatter is defined behavior); the
        same textual statement re-executed is a distinct instance."""
        self._cur_stmt = s
        self._inst += 1

    def on_span(self, span: int, tpb: int, lane_thread: np.ndarray,
                lane_block: np.ndarray) -> None:
        self._span = span
        self._tpb = tpb
        self._lane_thread = lane_thread
        self._lane_block = lane_block
        self._lane_pos = np.repeat(np.arange(span, dtype=np.int64), tpb)
        self._epoch = np.zeros(span, dtype=np.int64)
        self._shared = {}
        self._gen += 1

    def on_alloc_shared(self, name: str, seg: int) -> None:
        self._shared[name] = _SharedShadow(seg, self._span)

    def on_barrier(self, mask: np.ndarray, ret_mask: np.ndarray) -> None:
        active = mask.reshape(self._span, self._tpb)
        expected = (~ret_mask).reshape(self._span, self._tpb)
        arrived = active.any(axis=1)
        # retired lanes are exempt; any other lane missing from the
        # barrier means the block's threads diverged around it
        missing = (expected & ~active).any(axis=1)
        if bool((arrived & missing).any()):
            self._finding(
                FindingKind.BARRIER_DIVERGENCE,
                "__syncthreads() not reached by every non-retired thread "
                "of the block",
            )
        self._epoch[arrived] += 1

    # -- shared memory --------------------------------------------------
    def on_shared_store(self, name: str, idx, mask: np.ndarray, val,
                        old) -> None:
        sh = self._shared.get(name)
        if sh is None:  # pragma: no cover - alloc always precedes access
            return
        loc = np.broadcast_to(idx, mask.shape)[mask]
        if loc.size == 0:
            return
        v = np.broadcast_to(val, mask.shape)[mask]
        o = np.broadcast_to(old, mask.shape)[mask]
        thr = self._lane_thread[mask]
        ep = self._epoch[self._lane_pos[mask]]
        noop = v == o  # re-writing the present value races with nothing
        # two active lanes of this very instance colliding on one cell
        # with different values: order of the scatter decides the result
        if loc.size > 1:
            order = np.argsort(loc, kind="stable")
            same = loc[order][1:] == loc[order][:-1]
            differ = same & (v[order][1:] != v[order][:-1])
            if bool(differ.any()):
                self._finding(
                    FindingKind.SHARED_RACE,
                    f"threads of one block scatter different values to the "
                    f"same cell of shared array {name!r} in a single "
                    f"statement",
                )
        live = ~noop & ~sh.atomic[loc]
        w_conf = (
            live
            & (sh.writer_thread[loc] >= 0)
            & (sh.writer_epoch[loc] == ep)
            & (sh.writer_thread[loc] != thr)
            & (sh.writer_inst[loc] != self._inst)
        )
        if bool(w_conf.any()):
            self._finding(
                FindingKind.SHARED_RACE,
                f"write/write conflict on shared array {name!r}: two "
                f"threads store to the same cell in the same barrier phase",
            )
        r_conf = (
            live
            & (sh.reader_thread[loc] >= 0)
            & (sh.reader_epoch[loc] == ep)
            & (sh.reader_thread[loc] != thr)
            & (sh.reader_inst[loc] != self._inst)
        )
        if bool(r_conf.any()):
            self._finding(
                FindingKind.SHARED_RACE,
                f"read/write conflict on shared array {name!r}: a thread "
                f"overwrites a cell another thread read in the same "
                f"barrier phase",
            )
        upd = loc[~noop]
        sh.writer_thread[upd] = thr[~noop]
        sh.writer_epoch[upd] = ep[~noop]
        sh.writer_inst[upd] = self._inst
        sh.init[loc] = True  # noop writes still initialize

    def on_shared_load(self, name: str, idx, mask: np.ndarray) -> None:
        sh = self._shared.get(name)
        if sh is None:  # pragma: no cover - alloc always precedes access
            return
        loc = np.broadcast_to(idx, mask.shape)[mask]
        if loc.size == 0:
            return
        thr = self._lane_thread[mask]
        ep = self._epoch[self._lane_pos[mask]]
        if bool((~sh.init[loc]).any()):
            self._finding(
                FindingKind.UNINIT_SHARED,
                f"read of shared array {name!r} at a cell no thread has "
                f"written (zero-filled here; garbage on real hardware)",
            )
        conf = (
            ~sh.atomic[loc]
            & (sh.writer_thread[loc] >= 0)
            & (sh.writer_epoch[loc] == ep)
            & (sh.writer_thread[loc] != thr)
            & (sh.writer_inst[loc] != self._inst)
        )
        if bool(conf.any()):
            self._finding(
                FindingKind.SHARED_RACE,
                f"read/write conflict on shared array {name!r}: a thread "
                f"reads a cell another thread wrote in the same barrier "
                f"phase",
            )
        sh.reader_thread[loc] = thr
        sh.reader_epoch[loc] = ep
        sh.reader_inst[loc] = self._inst

    # -- global memory --------------------------------------------------
    def _global_shadow(self, name: str, length: int, dtype) -> _GlobalShadow:
        g = self._globals.get(name)
        if g is None:
            g = self._globals[name] = _GlobalShadow(length, dtype)
        return g

    def on_global_store(self, name: str, idx, mask: np.ndarray, val, old,
                        length: int, dtype) -> None:
        g = self._global_shadow(name, length, dtype)
        loc = np.broadcast_to(idx, mask.shape)[mask]
        if loc.size == 0:
            return
        v = np.broadcast_to(val, mask.shape)[mask]
        blk = self._lane_block[mask]
        thr = self._lane_thread[mask]
        ep = self._epoch[self._lane_pos[mask]]
        # same-instance collisions: benign iff every colliding lane agrees
        # on the value (replicated writes); blocks disagreeing break the
        # replication invariant, threads of one block disagreeing race
        if loc.size > 1:
            order = np.argsort(loc, kind="stable")
            same = loc[order][1:] == loc[order][:-1]
            differ = same & (v[order][1:] != v[order][:-1])
            if bool(differ.any()):
                cross = differ & (blk[order][1:] != blk[order][:-1])
                if bool(cross.any()):
                    self._finding(
                        FindingKind.NON_REPLICATED_WRITE,
                        f"two blocks write different values to the same "
                        f"element of {name!r}; Allgather replication would "
                        f"pick one arbitrarily",
                    )
                if bool((differ & ~cross).any()):
                    self._finding(
                        FindingKind.GLOBAL_RACE,
                        f"threads of one block scatter different values to "
                        f"the same element of {name!r} in a single "
                        f"statement",
                    )
        live = ~g.atomic[loc]
        written = g.writer_block[loc] >= 0
        changed = g.value[loc] != v
        cross = live & written & changed & (g.writer_block[loc] != blk)
        if bool(cross.any()):
            self._finding(
                FindingKind.NON_REPLICATED_WRITE,
                f"two blocks write different values to the same element "
                f"of {name!r}; Allgather replication would pick one "
                f"arbitrarily",
            )
        same_blk = (
            live
            & written
            & changed
            & (g.writer_block[loc] == blk)
            & (g.writer_thread[loc] != thr)
            & (g.writer_gen[loc] == self._gen)
            & (g.writer_epoch[loc] == ep)
            & (g.writer_inst[loc] != self._inst)
        )
        if bool(same_blk.any()):
            self._finding(
                FindingKind.GLOBAL_RACE,
                f"write/write conflict on {name!r}: two threads of one "
                f"block store different values to the same element in the "
                f"same barrier phase",
            )
        g.writer_block[loc] = blk
        g.writer_thread[loc] = thr
        g.writer_epoch[loc] = ep
        g.writer_gen[loc] = self._gen
        g.writer_inst[loc] = self._inst
        g.value[loc] = v

    def on_global_load(self, name: str, idx, mask: np.ndarray) -> None:
        g = self._globals.get(name)
        if g is None:
            return  # nothing written to this buffer in this launch
        loc = np.broadcast_to(idx, mask.shape)[mask]
        if loc.size == 0:
            return
        blk = self._lane_block[mask]
        thr = self._lane_thread[mask]
        ep = self._epoch[self._lane_pos[mask]]
        live = ~g.atomic[loc] & (g.writer_block[loc] >= 0)
        cross = live & (g.writer_block[loc] != blk)
        if bool(cross.any()):
            self._finding(
                FindingKind.GLOBAL_RACE,
                f"a block reads an element of {name!r} written by another "
                f"block in the same launch; kernel launches are the only "
                f"ordering between blocks",
            )
        same_blk = (
            live
            & (g.writer_block[loc] == blk)
            & (g.writer_thread[loc] != thr)
            & (g.writer_gen[loc] == self._gen)
            & (g.writer_epoch[loc] == ep)
            & (g.writer_inst[loc] != self._inst)
        )
        if bool(same_blk.any()):
            self._finding(
                FindingKind.GLOBAL_RACE,
                f"read/write conflict on {name!r}: a thread reads an "
                f"element another thread of the block wrote in the same "
                f"barrier phase",
            )

    # -- atomics / bounds ----------------------------------------------
    def on_atomic(self, space: str, name: str, idx, mask: np.ndarray,
                  length: int, dtype) -> None:
        loc = np.broadcast_to(idx, mask.shape)[mask]
        if loc.size == 0:
            return
        if space == "shared":
            sh = self._shared.get(name)
            if sh is not None:
                sh.atomic[loc] = True
                sh.init[loc] = True
        elif space == "global":
            g = self._global_shadow(name, length, dtype)
            g.atomic[loc] = True

    def on_oob(self, kind: str, msg: str) -> None:
        self._finding(_OOB_KINDS[kind], msg)

    # ------------------------------------------------------------------
    def _finding(self, kind: FindingKind, msg: str) -> None:
        s = self._cur_stmt
        self.report.add(
            Finding(
                kind=kind,
                layer="dynamic",
                kernel=self.kernel_name,
                message=msg,
                line=getattr(s, "loc", None) if s is not None else None,
                snippet=snippet_of(s),
            )
        )

"""Purpose-built violating kernels for sanitizer calibration.

Each :class:`ViolationCase` is a small CUDA kernel seeded with exactly
one hazard class, plus a launch recipe that makes the hazard actually
happen at runtime.  They serve three audiences:

* the test suite asserts every case is caught by the expected layer(s)
  with the expected :class:`~repro.sanitize.report.FindingKind`,
* ``repro sanitize --violations`` runs them in CI as a self-check that
  the sanitizer has not regressed into silence, and
* they document, in runnable form, what each hazard class looks like.

Expectations are *lower bounds*: a case may additionally trip other
checks (e.g. an out-of-bounds shared write also leaves cells
uninitialized), so callers assert ``expect ⊆ found``, not equality.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.sanitize.report import FindingKind

__all__ = ["ViolationCase", "VIOLATIONS"]


@dataclass(frozen=True)
class ViolationCase:
    """One seeded-hazard kernel with its launch recipe."""

    name: str
    source: str
    #: kinds the static layer must report (empty: must stay clean)
    expect_static: frozenset
    #: kinds the dynamic layer must report on the recipe launch
    expect_dynamic: frozenset
    grid: int
    block: int
    #: builds the launch args (fresh buffers per call)
    make_args: Callable[[], dict]
    hazard: str = ""

    def kernel(self):
        """Parse the source (source lines stamped for diagnostics)."""
        from repro.frontend.parser import parse_kernel

        return parse_kernel(self.source)


def _case(name, source, static, dynamic, grid, block, make_args, hazard):
    return ViolationCase(
        name=name,
        source=source,
        expect_static=frozenset(static),
        expect_dynamic=frozenset(dynamic),
        grid=grid,
        block=block,
        make_args=make_args,
        hazard=hazard,
    )


_f32 = np.float32

VIOLATIONS: dict[str, ViolationCase] = {}

VIOLATIONS["missing_barrier"] = _case(
    "missing_barrier",
    """
__global__ void missing_barrier(float* x, float* y, int n) {
    __shared__ float partial[256];
    int tid = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + tid;
    partial[tid] = x[gid];
    if (tid == 0) {
        float s = 0.0f;
        for (int t = 0; t < blockDim.x; t++) { s += partial[t]; }
        y[blockIdx.x] = s;
    }
}""",
    {FindingKind.SHARED_RACE},
    {FindingKind.SHARED_RACE},
    2, 64,
    lambda: {
        "x": np.arange(128, dtype=_f32),
        "y": np.zeros(2, dtype=_f32),
        "n": 128,
    },
    "reduction reads every thread's partial without a __syncthreads()",
)

VIOLATIONS["divergent_barrier"] = _case(
    "divergent_barrier",
    """
__global__ void divergent_barrier(float* y, int n) {
    __shared__ float buf[256];
    int tid = threadIdx.x;
    buf[tid] = 1.0f;
    if (tid < 16) { __syncthreads(); }
    y[blockIdx.x * blockDim.x + tid] = buf[tid];
}""",
    {FindingKind.BARRIER_DIVERGENCE},
    {FindingKind.BARRIER_DIVERGENCE},
    1, 32,
    lambda: {"y": np.zeros(32, dtype=_f32), "n": 32},
    "__syncthreads() under a thread-dependent guard",
)

VIOLATIONS["cross_block"] = _case(
    "cross_block",
    """
__global__ void cross_block(float* y, int n) {
    y[0] = blockIdx.x;
}""",
    {FindingKind.NON_REPLICATED_WRITE},
    {FindingKind.NON_REPLICATED_WRITE},
    4, 8,
    lambda: {"y": np.zeros(32, dtype=_f32), "n": 0},
    "blocks write different values to one element, breaking the "
    "replication invariant",
)

VIOLATIONS["ww_shared"] = _case(
    "ww_shared",
    """
__global__ void ww_shared(float* y) {
    __shared__ float s[32];
    s[0] = threadIdx.x;
    __syncthreads();
    y[blockIdx.x * blockDim.x + threadIdx.x] = s[0];
}""",
    {FindingKind.SHARED_RACE},
    {FindingKind.SHARED_RACE},
    1, 32,
    lambda: {"y": np.zeros(32, dtype=_f32)},
    "every thread writes a different value to the same shared cell",
)

VIOLATIONS["offset_race"] = _case(
    "offset_race",
    """
__global__ void offset_race(float* y, int n) {
    __shared__ float a[256];
    int tid = threadIdx.x;
    a[tid] = y[tid];
    float v = a[tid + 1];
    __syncthreads();
    y[blockIdx.x * blockDim.x + tid] = v;
}""",
    {FindingKind.SHARED_RACE},
    {FindingKind.SHARED_RACE},
    1, 64,
    lambda: {"y": np.arange(64, dtype=_f32), "n": 64},
    "thread t reads the cell thread t+1 writes in the same phase",
)

VIOLATIONS["loop_no_barrier"] = _case(
    "loop_no_barrier",
    """
__global__ void loop_no_barrier(float* y, int steps) {
    __shared__ float a[256];
    int tid = threadIdx.x;
    a[tid] = y[tid];
    __syncthreads();
    for (int t = 0; t < steps; t++) {
        a[tid] = a[tid + 1] * 0.5f;
    }
    __syncthreads();
    y[blockIdx.x * blockDim.x + tid] = a[tid];
}""",
    {FindingKind.SHARED_RACE},
    {FindingKind.SHARED_RACE},
    1, 64,
    lambda: {"y": np.arange(64, dtype=_f32), "steps": 4},
    "cross-iteration neighbour access with no barrier inside the loop",
)

VIOLATIONS["oob_global"] = _case(
    "oob_global",
    """
__global__ void oob_global(float* x, float* y, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    y[gid * 2] = x[gid];
}""",
    set(),
    {FindingKind.OOB_GLOBAL},
    1, 32,
    lambda: {
        "x": np.arange(32, dtype=_f32),
        "y": np.zeros(32, dtype=_f32),
        "n": 32,
    },
    "strided store runs past the end of the output buffer",
)

VIOLATIONS["oob_shared"] = _case(
    "oob_shared",
    """
__global__ void oob_shared(float* y) {
    __shared__ float s[32];
    int tid = threadIdx.x;
    s[tid * 2] = 1.0f;
    __syncthreads();
    y[blockIdx.x * blockDim.x + tid] = s[tid];
}""",
    set(),
    {FindingKind.OOB_SHARED},
    1, 32,
    lambda: {"y": np.zeros(32, dtype=_f32)},
    "strided shared store exceeds the per-block extent",
)

VIOLATIONS["uninit_shared"] = _case(
    "uninit_shared",
    """
__global__ void uninit_shared(float* y) {
    __shared__ float s[64];
    int tid = threadIdx.x;
    if (tid < 16) { s[tid] = 2.0f; }
    __syncthreads();
    y[blockIdx.x * blockDim.x + tid] = s[tid];
}""",
    set(),
    {FindingKind.UNINIT_SHARED},
    1, 32,
    lambda: {"y": np.zeros(32, dtype=_f32)},
    "half the threads read shared cells nothing ever wrote",
)

"""Finding and report containers shared by both sanitizer layers.

A :class:`Finding` is one diagnosed hazard, tagged with the layer that
produced it (``static`` — IR analysis; ``dynamic`` — shadow-state checks
during interpretation), a :class:`FindingKind`, and — when the kernel
came through the CUDA frontend — the 1-based source line plus a printed
snippet of the offending statement.

Reports deduplicate: a dynamic check that fires on every block of a
launch collapses into one finding with a ``count``.  This keeps reports
readable and bounds memory for large grids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.printer import print_stmt
from repro.ir.stmt import Stmt

__all__ = ["FindingKind", "Finding", "SanitizerReport", "snippet_of"]

#: Per-kind cap on distinct findings retained in one report; further
#: distinct findings of that kind only bump ``truncated``.
MAX_FINDINGS_PER_KIND = 50


class FindingKind(enum.Enum):
    """The hazard classes the sanitizer diagnoses."""

    #: shared-memory conflict between barriers (RAW / WAR / WAW)
    SHARED_RACE = "shared-race"
    #: same-block global-memory conflict without an intervening barrier,
    #: or a cross-block read of data written in the same launch
    GLOBAL_RACE = "global-race"
    #: a __syncthreads() not reached by every non-retired thread
    BARRIER_DIVERGENCE = "barrier-divergence"
    #: non-atomic cross-block global write violating the replication
    #: invariant ("every block writes the same value to any overlapping
    #: location") assumed by the Allgather-distributable analysis
    NON_REPLICATED_WRITE = "non-replicated-write"
    #: out-of-bounds global-buffer access
    OOB_GLOBAL = "out-of-bounds-global"
    #: shared-memory index outside the per-block extent
    OOB_SHARED = "out-of-bounds-shared"
    #: per-thread local-array index outside its extent
    OOB_LOCAL = "out-of-bounds-local"
    #: read of a shared-memory location no thread has written
    UNINIT_SHARED = "uninitialized-shared-read"


def snippet_of(stmt: Stmt | None) -> str | None:
    """One-line printed form of a statement (headers only for blocks)."""
    if stmt is None:
        return None
    lines = print_stmt(stmt, 0)
    return lines[0] if lines else None


@dataclass(frozen=True)
class Finding:
    """One diagnosed hazard."""

    kind: FindingKind
    layer: str  # "static" | "dynamic"
    kernel: str
    message: str
    line: int | None = None  # 1-based source line, when known
    snippet: str | None = None  # printed offending statement

    def key(self) -> tuple:
        """Deduplication key: same site + same hazard class."""
        return (self.kind, self.layer, self.kernel, self.line, self.snippet,
                self.message)

    def describe(self) -> str:
        where = f":{self.line}" if self.line is not None else ""
        text = f"[{self.layer}] {self.kind.value} {self.kernel}{where}: " \
               f"{self.message}"
        if self.snippet:
            text += f"\n    > {self.snippet}"
        return text


class SanitizerReport:
    """Accumulated findings for one kernel (or one launch)."""

    def __init__(self, kernel_name: str):
        self.kernel_name = kernel_name
        self.findings: list[Finding] = []
        #: distinct findings dropped by the per-kind cap
        self.truncated = 0
        self._counts: dict[tuple, int] = {}
        self._per_kind: dict[FindingKind, int] = {}

    # ------------------------------------------------------------------
    def add(self, finding: Finding) -> None:
        key = finding.key()
        if key in self._counts:
            self._counts[key] += 1
            return
        n = self._per_kind.get(finding.kind, 0)
        if n >= MAX_FINDINGS_PER_KIND:
            self.truncated += 1
            return
        self._per_kind[finding.kind] = n + 1
        self._counts[key] = 1
        self.findings.append(finding)

    def merge(self, other: "SanitizerReport") -> None:
        for f in other.findings:
            for _ in range(other.count_of(f)):
                self.add(f)
        self.truncated += other.truncated

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.findings and not self.truncated

    def count_of(self, finding: Finding) -> int:
        return self._counts.get(finding.key(), 0)

    def kinds(self) -> set[FindingKind]:
        return {f.kind for f in self.findings}

    def by_kind(self, kind: FindingKind) -> list[Finding]:
        return [f for f in self.findings if f.kind is kind]

    def describe(self) -> str:
        if self.clean:
            return f"{self.kernel_name}: sanitizer clean (0 findings)"
        lines = [
            f"{self.kernel_name}: {len(self.findings)} sanitizer finding(s)"
        ]
        for f in self.findings:
            text = f.describe()
            n = self.count_of(f)
            if n > 1:
                text += f"  (x{n})"
            lines.append(text)
        if self.truncated:
            lines.append(f"... and {self.truncated} more (truncated)")
        return "\n".join(lines)

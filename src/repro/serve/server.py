"""The serving loop: discrete-event admission, execution and placement.

Execution/placement split (the determinism contract): every admitted
job runs *functionally* on its own fresh sub-cluster — its own
:class:`~repro.cluster.cluster.Cluster` over the leased width, clocks
from zero, its own fault plan — so the job's buffers, OpCounters and
PhaseTimes are bit-identical to running the same request alone,
regardless of what else the service is doing.  The serving schedule
then only decides *placement*: when that recorded service-time shape
(:class:`~repro.serve.pipeline.PhaseProfile`) occupies its subset on
the shared timeline.  ``tests/test_serve.py`` enforces the contract
bitwise against :func:`serve_serially`.

What jobs *do* share: one persistent
:class:`~repro.tuning.cache.TuningCache` (so the ``"auto"`` Allgather
resolves identically everywhere) and one
:class:`~repro.interp.jit.cache.CompileCache` (compile once, serve
many — a warm cache serves repeat jobs with zero recompiles).  Neither
can change what a job computes, only how fast the host serves it.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import ReproError, ServeError
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, Span, SpanKind, Tracer
from repro.serve.accounting import ServeReport
from repro.serve.packer import AdmissionPacker
from repro.serve.pipeline import (
    JobTiming,
    PhaseProfile,
    schedule_fresh,
    schedule_overlapped,
)
from repro.serve.queue import JobRequest, SubmissionQueue, resolve_workload

__all__ = [
    "ServeConfig",
    "JobResult",
    "CuCCServer",
    "serve_requests",
    "serve_serially",
    "verify_against_serial",
]


@dataclass
class ServeConfig:
    """Service-wide configuration (per-job knobs live on the request)."""

    nodes: int = 8  # service pool width
    cluster: str = "simd-focused"
    topology: str | None = None
    pipeline: bool = True
    backend: str = "auto"
    verify: bool = True
    recovery: object = None  # RecoveryPolicy | None
    #: shared tuning cache: TuningCache, path, or None
    tuning: object = None
    #: shared JIT compile cache: CompileCache, path, or None
    jit_cache: object = None
    trace: object = False  # bool | Tracer
    #: fleet ledger + flight recorder: bool | Observatory (auto-enabled
    #: when an SLO policy or a post-mortem directory is configured)
    observatory: object = False
    #: SLO monitoring: SLOPolicy | spec string (SLOPolicy.parse) | None
    slo: object = None
    #: directory for flight-recorder post-mortem dumps (terminal job
    #: failures and SLO hard breaches), or None to keep them in memory
    postmortem_dir: object = None
    #: per-link flow ledger with per-job traffic attribution:
    #: bool | NetFlowLedger (loaded lazily, like the observatory)
    netflow: object = False


@dataclass(frozen=True)
class _ExecOutcome:
    """Schedule-independent result of one job's functional execution."""

    status: str  # "ok" | "failed"
    error: str | None
    record: object  # LaunchRecord | None
    profile: PhaseProfile
    digests: dict
    spans: tuple  # the job-local tracer's spans
    netflow: tuple = ()  # the job-local flow ledger's raw records


@dataclass
class JobResult:
    """One served job: request, placement, and its bit-exact outcome."""

    request: JobRequest
    status: str
    error: str | None
    node_ids: tuple[int, ...]
    timing: JobTiming
    profile: PhaseProfile
    record: object = None
    output_digests: dict = field(default_factory=dict)

    @property
    def latency_s(self) -> float:
        """Queue-to-finish latency on the service clock."""
        return self.timing.finish_s - self.request.arrival_s

    def identity(self) -> dict:
        """The bit-identity payload compared against serial execution:
        output digests, every OpCounters field, exact PhaseTimes floats,
        and the fault/recovery story."""
        rec = self.record
        out = {
            "job_id": self.request.job_id,
            "status": self.status,
            "digests": dict(self.output_digests),
        }
        if rec is not None:
            p = rec.phases
            out["phases"] = (
                p.partial, p.allgather, p.callback, p.overhead, p.recovery,
                tuple(p.allgather_algos),
            )
            out["partial_counters"] = tuple(
                tuple(sorted(c.as_dict().items()))
                for c in rec.partial_counters
            )
            out["callback_counters"] = tuple(
                sorted(rec.callback_counters.as_dict().items())
            )
            out["faults"] = (
                len(rec.fault_events), rec.retries, rec.recoveries,
            )
        return out


class CuCCServer:
    """Admission + packing + pipelining over one simulated service pool."""

    def __init__(self, config: ServeConfig | None = None, **kwargs):
        if config is None:
            config = ServeConfig(**kwargs)
        elif kwargs:
            raise ServeError("pass either a ServeConfig or kwargs, not both")
        from repro.hw.specs import CLUSTERS

        if config.cluster not in CLUSTERS:
            raise ServeError(
                f"unknown cluster {config.cluster!r}; "
                f"known: {sorted(CLUSTERS)}"
            )
        self.config = config
        cl = CLUSTERS[config.cluster]
        self.node_spec = cl.node
        self.network = cl.network
        self.tuning = self._load_tuning(config.tuning)
        self.jit_cache = self._load_jit_cache(config.jit_cache)
        if isinstance(config.trace, Tracer):
            self.tracer = config.trace
        else:
            self.tracer = Tracer() if config.trace else NULL_TRACER
        self.slo_policy = self._load_slo(config.slo)
        self.observatory = self._load_observatory(
            config.observatory,
            implied=self.slo_policy is not None
            or config.postmortem_dir is not None,
        )
        #: service-wide flow ledger (None = netflow off); per-job
        #: ledgers are adopted into it with job_id attribution
        self.netflow = self._load_netflow(config.netflow)
        #: post-mortem documents dumped this run (flight recorder)
        self.postmortems: list[dict] = []
        #: paths written when config.postmortem_dir is set
        self.postmortem_paths: list[str] = []
        #: schedule-independent execution results, memoized per job_id
        #: (pipelined admission peeks at a candidate's profile before
        #: deciding to attach it; the peek must not re-run the job)
        self._outcomes: dict[str, _ExecOutcome] = {}

    @staticmethod
    def _load_slo(slo):
        if slo is None:
            return None
        from repro.obs.slo import SLOPolicy

        return slo if isinstance(slo, SLOPolicy) else SLOPolicy.parse(slo)

    @staticmethod
    def _load_observatory(observatory, implied: bool):
        """Resolve the observatory knob; SLO monitoring and post-mortem
        dumping imply the ledger (they feed off its ring buffers)."""
        if not observatory and not implied:
            return None
        from repro.obs.observatory import Observatory

        return (
            observatory if isinstance(observatory, Observatory)
            else Observatory()
        )

    @staticmethod
    def _load_netflow(netflow):
        if netflow is None or netflow is False:
            return None
        from repro.obs.netflow import NetFlowLedger

        return (
            netflow if isinstance(netflow, NetFlowLedger)
            else NetFlowLedger()
        )

    @staticmethod
    def _load_tuning(tuning):
        if tuning is None:
            return None
        from repro.tuning.cache import TuningCache

        return (
            tuning if isinstance(tuning, TuningCache)
            else TuningCache.load(tuning)
        )

    @staticmethod
    def _load_jit_cache(jit_cache):
        if jit_cache is None:
            return None
        from repro.interp.jit import CompileCache

        return (
            jit_cache if isinstance(jit_cache, CompileCache)
            else CompileCache.load(jit_cache)
        )

    # -- functional execution (schedule-independent) --------------------
    def _execute(self, req: JobRequest) -> _ExecOutcome:
        if req.job_id in self._outcomes:
            return self._outcomes[req.job_id]
        from repro.cluster.cluster import Cluster
        from repro.runtime.cucc import CuCCRuntime

        _, build = resolve_workload(req.workload)
        spec = build(req.size, seed=req.seed)
        cluster = Cluster(
            self.node_spec,
            req.nodes,
            network=self.network,
            name=f"serve:{req.job_id}",
            topology=self.config.topology,
            tuning=self.tuning,
        )
        fault_plan = None
        if req.faults:
            from repro.cluster.faults import FaultPlan

            fault_plan = FaultPlan.parse(req.faults, seed=req.fault_seed)
        job_tracer = Tracer() if self.tracer.enabled else False
        job_netflow = None
        if self.netflow is not None:
            from repro.obs.netflow import NetFlowLedger

            job_netflow = NetFlowLedger()
        status, error, record = "ok", None, None
        digests: dict[str, str] = {}
        try:
            rt = CuCCRuntime(
                cluster,
                fault_plan=fault_plan,
                recovery=self.config.recovery,
                trace=job_tracer,
                backend=self.config.backend,
                jit_cache=self.jit_cache,
                netflow=job_netflow if job_netflow is not None else False,
            )
            for name, arr in spec.arrays.items():
                rt.memory.alloc(name, arr.size, arr.dtype)
                rt.memory.memcpy_h2d(name, arr)
            compiled = rt.compile(spec.kernel)
            record = rt.launch(compiled, spec.grid, spec.block, spec.args())
            outputs = {
                o: rt.memory.memcpy_d2h(o, check_consistency=True)
                for o in spec.outputs
            }
            if self.config.verify:
                spec.verify(outputs)
            digests = {
                o: hashlib.sha256(a.tobytes()).hexdigest()
                for o, a in sorted(outputs.items())
            }
            profile = PhaseProfile.from_record(record)
        except ReproError as e:
            # fault isolation: the job dies, the service keeps going;
            # its subset stays busy for as long as the wreck simulated
            status, error, record = "failed", str(e), None
            profile = PhaseProfile(
                pre_s=cluster.max_clock, allgather_s=0.0, post_s=0.0
            )
        spans = tuple(job_tracer.spans) if self.tracer.enabled else ()
        outcome = _ExecOutcome(
            status=status, error=error, record=record, profile=profile,
            digests=digests, spans=spans,
            netflow=tuple(job_netflow._raw) if job_netflow is not None
            else (),
        )
        self._outcomes[req.job_id] = outcome
        return outcome

    # -- the discrete-event serving loop --------------------------------
    def run(self, requests) -> ServeReport:
        """Serve a submission set to completion; returns the report.

        ``requests`` is a :class:`~repro.serve.queue.SubmissionQueue`
        or an iterable of :class:`~repro.serve.queue.JobRequest`
        (ordered by arrival time, submission order breaking ties).
        """
        if isinstance(requests, SubmissionQueue):
            ordered = requests.requests()
        else:
            ordered = [
                r for _, _, r in sorted(
                    (r.arrival_s, i, r) for i, r in enumerate(requests)
                )
            ]
        if not ordered:
            raise ServeError("nothing to serve: the submission set is empty")
        seen: set[str] = set()
        for r in ordered:
            if r.job_id in seen:
                raise ServeError(f"duplicate job_id {r.job_id!r}")
            seen.add(r.job_id)
            if r.nodes > self.config.nodes:
                raise ServeError(
                    f"job {r.job_id!r} requests {r.nodes} nodes; the "
                    f"service pool has {self.config.nodes}"
                )

        obs = self.observatory
        if obs is not None:
            obs.reset(self.config.nodes)
            self.postmortems = []
            self.postmortem_paths = []
        if self.netflow is not None:
            self.netflow.clear()
        monitor = None
        if self.slo_policy is not None:
            from repro.obs.slo import SLOMonitor

            monitor = SLOMonitor(self.slo_policy)
        packer = AdmissionPacker(self.config.nodes, observatory=obs)
        seq = itertools.count()
        events: list[tuple[float, int, str, object]] = []
        for r in ordered:
            heapq.heappush(events, (r.arrival_s, next(seq), "arrival", r))
        waiting: list[JobRequest] = []
        results: dict[str, JobResult] = {}

        def place(req, outcome, timing, node_ids):
            res = JobResult(
                request=req, status=outcome.status, error=outcome.error,
                node_ids=node_ids, timing=timing, profile=outcome.profile,
                record=outcome.record, output_digests=outcome.digests,
            )
            results[req.job_id] = res
            self._account(res)
            if obs is not None:
                self._observe_placement(obs, res)
            if monitor is not None:
                self._observe_slo(monitor, obs, res)
            return res

        while events:
            t, _, kind, data = heapq.heappop(events)
            if kind == "arrival":
                waiting.append(data)
                if obs is not None:
                    obs.record("arrival", t, job_id=data.job_id,
                               nodes=data.nodes)
            elif kind == "window":
                lease_id, owner_job = data
                lease = packer.leases.get(lease_id)
                if (
                    self.config.pipeline
                    and lease is not None
                    and lease.owner == owner_job
                    and lease.successor is None
                    and lease.owner_timing.window_s > 0
                ):
                    for cand in waiting:
                        if cand.nodes > lease.width:
                            continue
                        outcome = self._execute(cand)
                        timing = schedule_overlapped(
                            outcome.profile, lease.owner_timing
                        )
                        packer.attach(lease, cand.job_id, timing)
                        waiting.remove(cand)
                        place(cand, outcome, timing,
                              lease.node_ids[:cand.nodes])
                        heapq.heappush(events, (
                            timing.finish_s, next(seq), "finish",
                            (lease_id, cand.job_id),
                        ))
                        if timing.window_s > 0:
                            heapq.heappush(events, (
                                timing.allgather_start_s, next(seq),
                                "window", (lease_id, cand.job_id),
                            ))
                        break
            else:  # finish
                lease_id, job_id = data
                lease = packer.leases.get(lease_id)
                if lease is not None and job_id in lease.resident:
                    handoff = (
                        job_id == lease.owner and lease.successor is not None
                    )
                    packer.job_finished(lease, job_id, t)
                    res = results[job_id]
                    if obs is not None:
                        obs.record("finish", t, job_id=job_id,
                                   status=res.status)
                        if res.status != "ok":
                            obs.record("wreck", t, job_id=job_id,
                                       node_ids=res.node_ids,
                                       error=res.error)
                            self._dump_postmortem(
                                obs, res, "terminal-failure"
                            )
                    if handoff and lease.lease_id in packer.leases:
                        packer.shrink(
                            lease, results[lease.owner].request.nodes, t
                        )
            # FCFS admission sweep: grant leases to queue heads while
            # they fit; the head is never overtaken for a lease
            while waiting and packer.can_admit(waiting[0].nodes):
                req = waiting.pop(0)
                outcome = self._execute(req)
                timing = schedule_fresh(outcome.profile, t)
                lease = packer.admit(req.job_id, req.nodes, timing)
                place(req, outcome, timing, lease.node_ids)
                heapq.heappush(events, (
                    timing.finish_s, next(seq), "finish",
                    (lease.lease_id, req.job_id),
                ))
                if self.config.pipeline and timing.window_s > 0:
                    heapq.heappush(events, (
                        timing.allgather_start_s, next(seq), "window",
                        (lease.lease_id, req.job_id),
                    ))

        if waiting:  # pragma: no cover - admission always drains
            raise ServeError(
                f"serving loop stalled with {len(waiting)} queued job(s)"
            )
        report = ServeReport(
            results=[results[r.job_id] for r in ordered],
            pool_nodes=self.config.nodes,
            pipelined=self.config.pipeline,
        )
        if monitor is not None:
            stats = report.stats
            for ev in monitor.finalize(stats.makespan_s, stats.utilization):
                self._record_slo_event(obs, ev)
            report.slo_events = list(monitor.events)
        if obs is not None:
            report.fleet = obs
            report.postmortems = list(self.postmortems)
            if self.tracer.enabled:
                obs.append_counters(self.tracer)
        if self.netflow is not None:
            report.netflow = self.netflow
            if self.tracer.enabled:
                # strictly after the observatory's counters: the trace
                # stays a byte-identical prefix of a netflow-off trace
                self.netflow.append_counters(self.tracer)
        return report

    # -- fleet ledger + SLO + flight recorder hooks ---------------------
    def _observe_placement(self, obs, res: JobResult) -> None:
        """Record schedule-derived instants (suspension window, wreck
        story is recorded at the finish event) into the fleet ledger."""
        t = res.timing
        if t.suspended_s > 0:
            pause = t.start_s + t.hidden_s
            obs.record("suspend", pause, job_id=res.request.job_id,
                       node_ids=res.node_ids,
                       remaining_s=res.profile.pre_s - t.hidden_s)
            obs.record("resume", pause + t.suspended_s,
                       job_id=res.request.job_id, node_ids=res.node_ids)

    def _observe_slo(self, monitor, obs, res: JobResult) -> None:
        """Feed one placement to the SLO monitor; record any warn/breach
        events and dump a post-mortem on a job-attributed hard breach."""
        t = res.timing
        for ev in monitor.observe(
            t.finish_s, res.request.job_id,
            wait_s=t.admit_s - res.request.arrival_s,
            latency_s=res.latency_s,
        ):
            self._record_slo_event(obs, ev)
            if ev.level == "breach":
                self._dump_postmortem(obs, res, "slo-breach")

    def _record_slo_event(self, obs, ev) -> None:
        """One SLO event into metrics + trace + fleet ledger."""
        METRICS.inc(f"serve.slo_{ev.level}s", objective=ev.objective)
        if self.tracer.enabled:
            self.tracer.instant(
                f"slo {ev.level}", SpanKind.SLO, ev.t,
                level=ev.level, objective=ev.objective, value=ev.value,
                threshold=ev.threshold, burn=ev.burn,
                **({"job_id": ev.job_id} if ev.job_id else {}),
            )
        if obs is not None:
            obs.record("slo", ev.t, job_id=ev.job_id, level=ev.level,
                       objective=ev.objective, burn=ev.burn)

    def _fleet_context(self) -> dict:
        """Cache/backend state snapshot embedded in post-mortems."""
        return {
            "backend": self.config.backend,
            "cluster": self.config.cluster,
            "pool_nodes": self.config.nodes,
            "pipelined": self.config.pipeline,
            "tuning_entries": (
                len(self.tuning) if self.tuning is not None else 0
            ),
            "jit_cache_entries": (
                len(self.jit_cache) if self.jit_cache is not None else 0
            ),
        }

    def _dump_postmortem(self, obs, res: JobResult, reason: str) -> None:
        doc = obs.postmortem(
            res.request.job_id, result=res, reason=reason,
            context=self._fleet_context(),
        )
        self.postmortems.append(doc)
        METRICS.inc("serve.postmortems", reason=reason)
        if self.config.postmortem_dir is not None:
            self.postmortem_paths.append(
                obs.dump_postmortem(doc, self.config.postmortem_dir)
            )

    # -- per-job observability ------------------------------------------
    def _account(self, res: JobResult) -> None:
        req = res.request
        METRICS.inc("serve.launches", workload=req.workload, job=req.job_id)
        if res.status != "ok":
            METRICS.inc("serve.failures", workload=req.workload,
                        job=req.job_id)
        if res.timing.overlapped:
            METRICS.inc("serve.overlapped")
        METRICS.observe("serve.latency_s", res.latency_s,
                        workload=req.workload)
        METRICS.observe("serve.wait_s",
                        res.timing.admit_s - req.arrival_s,
                        workload=req.workload)
        if self.netflow is not None:
            # adopt the job's flow records onto the service clock, with
            # the job_id stamped and job-local ranks mapped to the
            # leased pool node ids for display (pricing keeps the
            # original positions and topology)
            outcome = self._outcomes[req.job_id]
            if outcome.netflow:
                self.netflow.adopt(
                    outcome.netflow, shift=res.timing.start_s,
                    job_id=req.job_id, node_map=res.node_ids,
                )
        if not self.tracer.enabled:
            return
        t = res.timing
        rec = res.record
        job_span = self.tracer.add(
            f"job {req.job_id}", SpanKind.SERVE, t.admit_s, t.finish_s,
            job_id=req.job_id, workload=req.workload, nodes=req.nodes,
            node_ids=list(res.node_ids), overlapped=t.overlapped,
            status=res.status, latency_s=res.latency_s,
            # the exact decomposition `repro explain` aligns on:
            # latency = wait + pre + allgather + post + stall
            arrival_s=req.arrival_s,
            wait_s=t.admit_s - req.arrival_s,
            pre_s=res.profile.pre_s,
            allgather_s=res.profile.allgather_s,
            post_s=res.profile.post_s,
            recovery_s=(rec.phases.recovery if rec is not None else 0.0),
            stall_s=t.finish_s - t.start_s - res.profile.total_s,
            hidden_s=t.hidden_s,
            suspended_s=t.suspended_s,
        )
        # adopt the job's own spans: shift onto the service clock at the
        # job's start, remap job-local ranks to the leased physical node
        # ids, and label everything with the job_id.  (An overlapped
        # job's post-window suspension is not re-stretched — spans keep
        # the job-local shape, offset to its service start.)
        outcome = self._outcomes[req.job_id]
        base = len(self.tracer.spans)
        end = t.start_s + res.profile.total_s
        for s in outcome.spans:
            rank = (
                res.node_ids[s.rank]
                if s.rank is not None and s.rank < len(res.node_ids)
                else s.rank
            )
            self.tracer.spans.append(Span(
                base + s.id, s.name, s.kind,
                s.t0 + t.start_s,
                (s.t1 + t.start_s) if s.t1 is not None else end,
                rank,
                job_span.id if s.parent is None else base + s.parent,
                instant=s.instant,
                args={**s.args, "job_id": req.job_id},
            ))


def serve_requests(requests, config: ServeConfig | None = None, **kwargs):
    """One-shot convenience: serve ``requests`` under ``config``."""
    return CuCCServer(config, **kwargs).run(requests)


def serve_serially(requests, config: ServeConfig | None = None, **kwargs):
    """The serial reference: the same jobs, one at a time, in submission
    order (single-server discipline — job k starts at
    ``max(arrival_k, finish_{k-1})``).

    Shares the per-job configuration (cluster kind, topology, backend,
    tuning-cache contents) with the concurrent server so that the only
    difference *is* the schedule — which is exactly what the
    determinism contract says must not matter per job.
    """
    server = CuCCServer(config, **kwargs)
    server.config.pipeline = False
    if isinstance(requests, SubmissionQueue):
        ordered = requests.requests()
    else:
        ordered = [
            r for _, _, r in sorted(
                (r.arrival_s, i, r) for i, r in enumerate(requests)
            )
        ]
    if not ordered:
        raise ServeError("nothing to serve: the submission set is empty")
    results = []
    t = 0.0
    for req in ordered:
        if req.nodes > server.config.nodes:
            raise ServeError(
                f"job {req.job_id!r} requests {req.nodes} nodes; the "
                f"service pool has {server.config.nodes}"
            )
        outcome = server._execute(req)
        timing = schedule_fresh(outcome.profile, max(t, req.arrival_s))
        t = timing.finish_s
        res = JobResult(
            request=req, status=outcome.status, error=outcome.error,
            node_ids=tuple(range(req.nodes)), timing=timing,
            profile=outcome.profile, record=outcome.record,
            output_digests=outcome.digests,
        )
        results.append(res)
        server._account(res)
    return ServeReport(
        results=results, pool_nodes=server.config.nodes, pipelined=False,
        netflow=server.netflow,
    )


def verify_against_serial(concurrent: ServeReport, serial: ServeReport):
    """Compare per-job identities between a concurrent and a serial run
    of the same submissions; returns a list of mismatch descriptions
    (empty = bit-identical per job)."""
    mismatches: list[str] = []
    serial_by_id = {r.request.job_id: r for r in serial.results}
    if {r.request.job_id for r in concurrent.results} != set(serial_by_id):
        return ["the two reports serve different job sets"]
    for r in concurrent.results:
        a, b = r.identity(), serial_by_id[r.request.job_id].identity()
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                mismatches.append(
                    f"job {r.request.job_id!r}: {key} diverged from the "
                    f"serial run ({a.get(key)!r} != {b.get(key)!r})"
                )
    return mismatches

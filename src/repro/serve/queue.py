"""Job submissions: requests, the async queue, and arrival synthesis.

A :class:`JobRequest` is one client's launch — a workload from the
catalog, a node-subset width, and an arrival time on the service's
simulated clock.  The :class:`SubmissionQueue` collects submissions in
any order and replays them to the server ordered by ``(arrival_s,
submission sequence)``, which is also the fairness order: the server's
admission is FCFS over exactly this order.

:func:`synth_requests` synthesizes an open-loop arrival process for the
CLI and benchmarks: seeded Poisson arrivals at a given rate, workload
drawn from a weighted mix (``"FIR:2,KMeans:1"``), widths drawn from the
given choices — fully deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServeError

__all__ = [
    "JobRequest",
    "SubmissionQueue",
    "parse_mix",
    "resolve_workload",
    "synth_requests",
]

_SIZES = ("small", "paper")


def resolve_workload(name: str):
    """Case-insensitive catalog lookup; returns ``(canonical_name,
    builder)``.  Unknown names raise :class:`ServeError`."""
    from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

    catalog = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}
    key = {k.lower(): k for k in catalog}.get(name.lower())
    if key is None:
        raise ServeError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(catalog))}"
        )
    return key, catalog[key]


def parse_mix(spec: str) -> dict[str, float]:
    """Parse a workload-mix spec into ``{canonical name: weight}``.

    ``"FIR:2,KMeans:1"`` weights FIR twice as heavily; a bare name
    (``"FIR,KMeans"``) gets weight 1.  Weights must be positive.
    """
    mix: dict[str, float] = {}
    if not spec.strip():
        raise ServeError("empty workload mix")
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, w = part.partition(":")
        canonical, _ = resolve_workload(name.strip())
        try:
            weight = float(w) if w else 1.0
        except ValueError:
            raise ServeError(f"bad mix weight {w!r} in {part!r}") from None
        if weight <= 0:
            raise ServeError(f"mix weight for {canonical!r} must be > 0")
        mix[canonical] = mix.get(canonical, 0.0) + weight
    return mix


@dataclass(frozen=True)
class JobRequest:
    """One client submission (immutable; identity is ``job_id``)."""

    job_id: str
    workload: str
    nodes: int = 2
    arrival_s: float = 0.0
    size: str = "small"
    seed: int = 0
    #: optional per-job fault spec (``FaultPlan.parse`` syntax) — faults
    #: are isolated to this job's sub-cluster
    faults: str | None = None
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ServeError(
                f"job {self.job_id!r} requests {self.nodes} nodes; need >= 1"
            )
        if self.arrival_s < 0:
            raise ServeError(f"job {self.job_id!r} arrives before t=0")
        if self.size not in _SIZES:
            raise ServeError(
                f"job {self.job_id!r} has size {self.size!r}; "
                f"expected one of {_SIZES}"
            )
        resolve_workload(self.workload)


@dataclass
class SubmissionQueue:
    """Collects submissions; replays them in arrival-then-FIFO order."""

    _items: list[tuple[float, int, JobRequest]] = field(default_factory=list)

    def submit(self, request: JobRequest | None = None, **kwargs) -> JobRequest:
        """Enqueue a request (or build one from kwargs; ``job_id``
        defaults to ``job-NNNN`` in submission order).  Returns it."""
        if request is None:
            kwargs.setdefault("job_id", f"job-{len(self._items):04d}")
            request = JobRequest(**kwargs)
        if any(r.job_id == request.job_id for _, _, r in self._items):
            raise ServeError(f"duplicate job_id {request.job_id!r}")
        self._items.append((request.arrival_s, len(self._items), request))
        return request

    def requests(self) -> list[JobRequest]:
        """Submissions ordered by ``(arrival_s, submission sequence)`` —
        the service's fairness order."""
        return [r for _, _, r in sorted(self._items, key=lambda t: t[:2])]

    def __len__(self) -> int:
        return len(self._items)


def synth_requests(
    mix: str | dict[str, float],
    rate: float,
    jobs: int | None = None,
    duration_s: float | None = None,
    nodes: int | tuple[int, ...] = 2,
    size: str = "small",
    seed: int = 0,
    faults: str | None = None,
    fault_every: int = 0,
) -> list[JobRequest]:
    """Synthesize a deterministic open-loop arrival trace.

    Inter-arrival gaps are exponential with mean ``1/rate`` (a Poisson
    process on the simulated clock); each arrival draws a workload from
    the weighted ``mix`` and a width from ``nodes``.  Generation stops
    after ``jobs`` arrivals or once an arrival would land past
    ``duration_s`` (at least one of the two must be given).  With
    ``fault_every`` > 0, every Nth job (1-indexed) carries the
    ``faults`` spec, exercising per-job fault isolation.
    """
    import numpy as np

    if rate <= 0:
        raise ServeError(f"arrival rate must be > 0, got {rate}")
    if jobs is None and duration_s is None:
        raise ServeError("synth_requests needs jobs= or duration_s=")
    if jobs is not None and jobs < 1:
        raise ServeError(f"jobs must be >= 1, got {jobs}")
    weights = parse_mix(mix) if isinstance(mix, str) else dict(mix)
    if not weights:
        raise ServeError("empty workload mix")
    names = sorted(weights)
    p = np.array([weights[n] for n in names], dtype=float)
    p /= p.sum()
    widths = (nodes,) if isinstance(nodes, int) else tuple(nodes)
    rng = np.random.default_rng(seed)
    out: list[JobRequest] = []
    t = 0.0
    while jobs is None or len(out) < jobs:
        t += float(rng.exponential(1.0 / rate))
        if duration_s is not None and t > duration_s:
            break
        i = len(out)
        w = str(rng.choice(names, p=p))
        width = int(widths[int(rng.integers(len(widths)))])
        faulted = faults is not None and fault_every > 0 and (
            (i + 1) % fault_every == 0
        )
        out.append(
            JobRequest(
                job_id=f"job-{i:04d}",
                workload=w,
                nodes=width,
                arrival_s=t,
                size=size,
                seed=seed + i,
                faults=faults if faulted else None,
                fault_seed=seed + i,
            )
        )
    return out

"""Concurrent multi-job serving on top of the CuCC runtime.

Clients submit workloads into a :class:`~repro.serve.queue.SubmissionQueue`;
the :class:`~repro.serve.server.CuCCServer` leases disjoint node subsets
from a :class:`~repro.slurm.scheduler.PartitionScheduler`, runs many
:class:`~repro.runtime.cucc.CuCCRuntime` launches concurrently (one
fresh sub-cluster per job, so each job's buffers, counters and phase
times are bit-identical to a serial run of the same request), and — in
pipelined mode — overlaps the phase-1 compute of a queued launch with
the in-flight Allgather of the launch occupying the same subset.  All
placement and latency math is charged to the simulated clocks, so the
whole serving schedule is deterministic per seed.  See DESIGN.md §14.
"""

from repro.serve.accounting import ServeReport, ServeStats, percentile
from repro.serve.packer import AdmissionPacker, NodeLease
from repro.serve.pipeline import JobTiming, PhaseProfile
from repro.serve.queue import (
    JobRequest,
    SubmissionQueue,
    parse_mix,
    resolve_workload,
    synth_requests,
)
from repro.serve.server import (
    CuCCServer,
    JobResult,
    ServeConfig,
    serve_requests,
    serve_serially,
    verify_against_serial,
)

__all__ = [
    "AdmissionPacker",
    "CuCCServer",
    "JobRequest",
    "JobResult",
    "JobTiming",
    "NodeLease",
    "PhaseProfile",
    "ServeConfig",
    "ServeReport",
    "ServeStats",
    "SubmissionQueue",
    "parse_mix",
    "percentile",
    "resolve_workload",
    "serve_requests",
    "serve_serially",
    "synth_requests",
    "verify_against_serial",
]

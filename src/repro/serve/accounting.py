"""Throughput/latency accounting for one serving run.

Everything is computed from simulated timestamps, so the report is
deterministic per seed.  Percentiles use the nearest-rank definition
(no interpolation): ``p`` is the smallest observed value with at least
``p``% of observations at or below it — deterministic and meaningful
even for tiny samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["percentile", "ServeStats", "ServeReport"]


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty
    sequence."""
    vals = sorted(values)
    if not vals:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return vals[rank - 1]


@dataclass(frozen=True)
class ServeStats:
    """Aggregate service statistics (simulated seconds throughout)."""

    jobs: int
    completed: int
    failed: int
    overlapped: int
    makespan_s: float
    launches_per_sec: float
    latency_p50_s: float
    latency_p99_s: float
    latency_mean_s: float
    wait_mean_s: float
    #: work density: Σ(job service-time × width) / (pool width ×
    #: makespan).  Can exceed 1.0 in pipelined mode — an overlapped
    #: successor's compute and its owner's Allgather wire time
    #: legitimately share the same nodes.
    utilization: float


@dataclass
class ServeReport:
    """Per-job results plus the aggregate accountant's verdict."""

    results: list = field(default_factory=list)  # list[JobResult]
    pool_nodes: int = 0
    pipelined: bool = False
    seed: int = 0

    @property
    def stats(self) -> ServeStats:
        rs = self.results
        if not rs:
            raise ValueError("serve report has no results to account")
        latencies = [r.latency_s for r in rs]
        waits = [r.timing.admit_s - r.request.arrival_s for r in rs]
        makespan = max(r.timing.finish_s for r in rs)
        busy = sum(r.profile.total_s * r.request.nodes for r in rs)
        denom = self.pool_nodes * makespan
        return ServeStats(
            jobs=len(rs),
            completed=sum(1 for r in rs if r.status == "ok"),
            failed=sum(1 for r in rs if r.status != "ok"),
            overlapped=sum(1 for r in rs if r.timing.overlapped),
            makespan_s=makespan,
            launches_per_sec=len(rs) / makespan if makespan > 0 else 0.0,
            latency_p50_s=percentile(latencies, 50),
            latency_p99_s=percentile(latencies, 99),
            latency_mean_s=sum(latencies) / len(latencies),
            wait_mean_s=sum(waits) / len(waits),
            utilization=busy / denom if denom > 0 else 0.0,
        )

    def format_report(self) -> str:
        """Aligned per-job table + summary lines (the CLI's output)."""
        from repro.bench.harness import format_table

        rows = []
        for r in sorted(
            self.results, key=lambda r: (r.timing.admit_s, r.request.job_id)
        ):
            t = r.timing
            rows.append([
                r.request.job_id,
                r.request.workload,
                r.request.nodes,
                ",".join(str(i) for i in r.node_ids),
                r.request.arrival_s * 1e3,
                (t.admit_s - r.request.arrival_s) * 1e3,
                r.profile.total_s * 1e3,
                r.latency_s * 1e3,
                "yes" if t.overlapped else "no",
                r.status,
            ])
        table = format_table(
            ["job", "workload", "n", "node ids", "arrive ms", "wait ms",
             "service ms", "latency ms", "overlap", "status"],
            rows,
        )
        s = self.stats
        mode = "pipelined" if self.pipelined else "concurrent"
        lines = [
            table,
            "",
            f"{s.jobs} job(s) on a {self.pool_nodes}-node pool "
            f"({mode} mode, seed {self.seed}): "
            f"{s.completed} ok, {s.failed} failed, {s.overlapped} overlapped",
            f"makespan {s.makespan_s * 1e3:.4f} ms -> "
            f"{s.launches_per_sec:.2f} launches/sec",
            f"latency p50 {s.latency_p50_s * 1e3:.4f} ms  "
            f"p99 {s.latency_p99_s * 1e3:.4f} ms  "
            f"mean {s.latency_mean_s * 1e3:.4f} ms  "
            f"(mean queue wait {s.wait_mean_s * 1e3:.4f} ms)",
            f"pool utilization {s.utilization * 100:.1f}%",
        ]
        return "\n".join(lines)

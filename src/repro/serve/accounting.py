"""Throughput/latency accounting for one serving run.

Everything is computed from simulated timestamps, so the report is
deterministic per seed.  Two percentile definitions are offered:

* **nearest-rank** (the default): ``p`` is the smallest observed value
  with at least ``p``% of observations at or below it.  This is kept
  for tail percentiles (p99): at extreme quantiles of small samples,
  linear interpolation fabricates a value between the maximum and the
  second-largest observation — *underreporting* the tail that was
  actually observed.  Nearest-rank always returns a real observation.
* **interpolated** (``interpolated=True``): linear interpolation
  between closest ranks (NumPy's default).  Used for central
  percentiles (p50), where it is the conventional estimator and
  smoother for even-length samples.  On odd-length sequences the two
  definitions agree exactly at the median — a property the test suite
  pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["percentile", "ServeStats", "ServeReport"]


def percentile(values, q: float, interpolated: bool = False) -> float:
    """Percentile (``q`` in [0, 100]) of a non-empty sequence.

    Nearest-rank by default; with ``interpolated=True``, linear
    interpolation between closest ranks (see the module docstring for
    when each is appropriate).
    """
    vals = sorted(values)
    if not vals:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if interpolated:
        h = (len(vals) - 1) * q / 100.0
        lo = math.floor(h)
        hi = min(lo + 1, len(vals) - 1)
        return vals[lo] + (h - lo) * (vals[hi] - vals[lo])
    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return vals[rank - 1]


@dataclass(frozen=True)
class ServeStats:
    """Aggregate service statistics (simulated seconds throughout)."""

    jobs: int
    completed: int
    failed: int
    overlapped: int
    makespan_s: float
    launches_per_sec: float
    latency_p50_s: float
    latency_p99_s: float
    latency_mean_s: float
    wait_mean_s: float
    #: useful work density: Σ(ok-job service-time × width) / (pool width
    #: × makespan).  Can exceed 1.0 in pipelined mode — an overlapped
    #: successor's compute and its owner's Allgather wire time
    #: legitimately share the same nodes.  Terminal-failure wreck time
    #: is *excluded* (it occupied nodes but did no useful work); it is
    #: reported separately as :attr:`wrecked`.
    utilization: float
    #: occupancy fraction lost to terminally-failed jobs: the wreck held
    #: its subset for its simulated duration without producing output
    wrecked: float = 0.0


@dataclass
class ServeReport:
    """Per-job results plus the aggregate accountant's verdict."""

    results: list = field(default_factory=list)  # list[JobResult]
    pool_nodes: int = 0
    pipelined: bool = False
    seed: int = 0
    #: structured SLO warn/breach events (repro.obs.slo.SLOEvent), in
    #: emission order, when the run was monitored
    slo_events: list = field(default_factory=list)
    #: the run's fleet ledger (repro.obs.observatory.Observatory), when
    #: the observatory was enabled
    fleet: object = None
    #: post-mortem documents dumped by the flight recorder this run
    postmortems: list = field(default_factory=list)
    #: the run's per-link flow ledger (repro.obs.netflow.NetFlowLedger),
    #: when netflow was enabled; job traffic is attributed by job_id
    netflow: object = None

    @property
    def slo_breached(self) -> bool:
        """True when any recorded SLO event is a hard breach."""
        return any(
            getattr(e, "level", None) == "breach" for e in self.slo_events
        )

    @property
    def stats(self) -> ServeStats:
        rs = self.results
        if not rs:
            raise ValueError("serve report has no results to account")
        latencies = [r.latency_s for r in rs]
        waits = [r.timing.admit_s - r.request.arrival_s for r in rs]
        makespan = max(r.timing.finish_s for r in rs)
        busy = sum(
            r.profile.total_s * r.request.nodes
            for r in rs if r.status == "ok"
        )
        wreck = sum(
            r.profile.total_s * r.request.nodes
            for r in rs if r.status != "ok"
        )
        denom = self.pool_nodes * makespan
        return ServeStats(
            jobs=len(rs),
            completed=sum(1 for r in rs if r.status == "ok"),
            failed=sum(1 for r in rs if r.status != "ok"),
            overlapped=sum(1 for r in rs if r.timing.overlapped),
            makespan_s=makespan,
            launches_per_sec=len(rs) / makespan if makespan > 0 else 0.0,
            latency_p50_s=percentile(latencies, 50, interpolated=True),
            latency_p99_s=percentile(latencies, 99),
            latency_mean_s=sum(latencies) / len(latencies),
            wait_mean_s=sum(waits) / len(waits),
            utilization=busy / denom if denom > 0 else 0.0,
            wrecked=wreck / denom if denom > 0 else 0.0,
        )

    def format_report(self) -> str:
        """Aligned per-job table + summary lines (the CLI's output)."""
        from repro.bench.harness import format_table

        rows = []
        for r in sorted(
            self.results, key=lambda r: (r.timing.admit_s, r.request.job_id)
        ):
            t = r.timing
            rows.append([
                r.request.job_id,
                r.request.workload,
                r.request.nodes,
                ",".join(str(i) for i in r.node_ids),
                r.request.arrival_s * 1e3,
                (t.admit_s - r.request.arrival_s) * 1e3,
                r.profile.total_s * 1e3,
                r.latency_s * 1e3,
                "yes" if t.overlapped else "no",
                r.status,
            ])
        table = format_table(
            ["job", "workload", "n", "node ids", "arrive ms", "wait ms",
             "service ms", "latency ms", "overlap", "status"],
            rows,
        )
        s = self.stats
        mode = "pipelined" if self.pipelined else "concurrent"
        lines = [
            table,
            "",
            f"{s.jobs} job(s) on a {self.pool_nodes}-node pool "
            f"({mode} mode, seed {self.seed}): "
            f"{s.completed} ok, {s.failed} failed, {s.overlapped} overlapped",
            f"makespan {s.makespan_s * 1e3:.4f} ms -> "
            f"{s.launches_per_sec:.2f} launches/sec",
            f"latency p50 {s.latency_p50_s * 1e3:.4f} ms  "
            f"p99 {s.latency_p99_s * 1e3:.4f} ms  "
            f"mean {s.latency_mean_s * 1e3:.4f} ms  "
            f"(mean queue wait {s.wait_mean_s * 1e3:.4f} ms)",
            f"pool utilization {s.utilization * 100:.1f}%"
            + (f"  (+{s.wrecked * 100:.1f}% wrecked by failed jobs)"
               if s.wrecked > 0 else ""),
        ]
        if self.slo_events:
            warns = sum(1 for e in self.slo_events if e.level == "warn")
            breaches = sum(
                1 for e in self.slo_events if e.level == "breach"
            )
            lines.append("")
            lines.append(
                f"SLO: {warns} warn(s), {breaches} breach(es)"
                + (" — BREACHED" if self.slo_breached else "")
            )
            for e in self.slo_events:
                lines.append("  " + e.describe())
        if self.fleet is not None:
            lines.append("")
            lines.append(self.fleet.format_fleet_report(self.results))
        if self.postmortems:
            lines.append("")
            lines.append(
                f"flight recorder: {len(self.postmortems)} post-mortem "
                f"dump(s): "
                + ", ".join(
                    f"{d['job_id']} ({d['reason']})"
                    for d in self.postmortems
                )
            )
        return "\n".join(lines)

"""Admission and packing: leasing disjoint node subsets per job.

The packer owns one dedicated :class:`~repro.slurm.scheduler.
PartitionScheduler` partition (the service pool) and turns its
count-based free pool into identity-based leases: every admitted job
gets a concrete, disjoint tuple of node ids for its whole residency.

Fairness (DESIGN.md §14): lease grants are strictly FCFS over the
submission order — the queue head is never overtaken for a *lease*.
Pipelined attachment is the one sanctioned backfill: it consumes no
free nodes (the successor rides an existing lease), so it can never
delay the head's lease either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.serve.pipeline import JobTiming
from repro.slurm.scheduler import PartitionScheduler

__all__ = ["NodeLease", "AdmissionPacker"]


@dataclass
class NodeLease:
    """One leased subset and the jobs currently resident on it."""

    lease_id: int
    node_ids: tuple[int, ...]
    #: job currently owning the subset (its timing opens the window)
    owner: str
    owner_timing: JobTiming
    #: attached overlapped successor (depth 1), if any
    successor: str | None = None
    successor_timing: JobTiming | None = None
    #: job_ids still resident (owner and/or successor not yet finished)
    resident: set[str] = field(default_factory=set)

    @property
    def width(self) -> int:
        return len(self.node_ids)


class AdmissionPacker:
    """First-fit-in-FIFO-order admission over a dedicated partition.

    With an :class:`~repro.obs.observatory.Observatory` attached, every
    node-occupancy transition (lease grant, successor attach, release,
    handoff shrink) is recorded into the fleet ledger at the simulated
    instant it happens — the packer is the single source of truth for
    which ids are busy, so the hooks live here rather than in the
    serving loop.  ``observatory=None`` (the default) keeps every hook
    a no-op attribute check.
    """

    def __init__(
        self, num_nodes: int, name: str = "serve", observatory=None,
    ):
        if num_nodes < 1:
            raise ServeError(f"service pool needs >= 1 node, got {num_nodes}")
        self.sched = PartitionScheduler(name, num_nodes)
        self.num_nodes = num_nodes
        self.leases: dict[int, NodeLease] = {}
        self.observatory = observatory
        self._next_id = 0

    @property
    def free_nodes(self) -> int:
        return self.sched.free_nodes

    def can_admit(self, nodes: int) -> bool:
        return nodes <= self.sched.free_nodes

    def admit(self, job_id: str, nodes: int, timing: JobTiming) -> NodeLease:
        """Grant a fresh lease of ``nodes`` disjoint ids to ``job_id``."""
        if nodes > self.num_nodes:
            raise ServeError(
                f"job {job_id!r} requests {nodes} nodes; the service pool "
                f"has {self.num_nodes}"
            )
        ids = self.sched.lease(nodes)
        lease = NodeLease(
            lease_id=self._next_id,
            node_ids=ids,
            owner=job_id,
            owner_timing=timing,
            resident={job_id},
        )
        self._next_id += 1
        self.leases[lease.lease_id] = lease
        if self.observatory is not None:
            self.observatory.record(
                "lease", timing.admit_s, job_id=job_id, node_ids=ids,
                lease=lease.lease_id,
            )
        return lease

    def attach(self, lease: NodeLease, job_id: str, timing: JobTiming) -> None:
        """Attach an overlapped successor to an existing lease (depth 1)."""
        if lease.successor is not None:
            raise ServeError(
                f"lease {lease.lease_id} already has successor "
                f"{lease.successor!r}"
            )
        lease.successor = job_id
        lease.successor_timing = timing
        lease.resident.add(job_id)
        if self.observatory is not None:
            self.observatory.record(
                "attach", timing.admit_s, job_id=job_id,
                node_ids=lease.node_ids,
                lease=lease.lease_id, owner=lease.owner,
            )

    def job_finished(
        self, lease: NodeLease, job_id: str, t: float | None = None,
    ) -> tuple[int, ...]:
        """A resident job completed; returns the node ids released *now*.

        When the owner hands off to an attached successor, the successor
        becomes the owner and any excess width (a narrower successor)
        returns to the pool immediately; the remaining ids return when
        the last resident leaves.
        """
        if job_id not in lease.resident:
            raise ServeError(
                f"job {job_id!r} is not resident on lease {lease.lease_id}"
            )
        lease.resident.discard(job_id)
        released: tuple[int, ...] = ()
        if job_id == lease.owner and lease.successor is not None:
            # hand the subset to the successor (the server sheds any
            # excess width via shrink() right after)
            assert lease.successor_timing is not None
            lease.owner = lease.successor
            lease.owner_timing = lease.successor_timing
            lease.successor = None
            lease.successor_timing = None
        if not lease.resident:
            released = lease.node_ids
            self.sched.release(released)
            del self.leases[lease.lease_id]
            if self.observatory is not None:
                self.observatory.record(
                    "release", t if t is not None else 0.0, job_id=job_id,
                    node_ids=released, lease=lease.lease_id,
                )
        return released

    def shrink(
        self, lease: NodeLease, width: int, t: float | None = None,
    ) -> tuple[int, ...]:
        """Shed trailing ids beyond ``width`` back to the pool (used at
        owner→successor handoff when the successor is narrower)."""
        if width >= lease.width:
            return ()
        keep, shed = lease.node_ids[:width], lease.node_ids[width:]
        self.sched.release(shed)
        lease.node_ids = keep
        if self.observatory is not None:
            self.observatory.record(
                "shrink", t if t is not None else 0.0, job_id=lease.owner,
                node_ids=shed, lease=lease.lease_id,
            )
        return shed

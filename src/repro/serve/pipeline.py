"""Phase-overlap pipelining: the service-time math of one node subset.

The three-phase execution model gives every launch a natural overlap
window: during its balanced Allgather (phase 2) the subset's CPUs are
idle.  Pipelined serving attaches the *next* queued job to the same
subset at the exact moment the window opens, running its phase-1
compute inside the predecessor's Allgather.

Overlap legality (DESIGN.md §14):

1. the successor binds to the same leased subset and must not be wider
   than it;
2. the successor's phase-1 compute may run only while the owner's CPUs
   are idle — inside the Allgather window; any remainder is suspended
   and resumes after the owner's callback phase (CPUs are never
   oversubscribed);
3. the successor's own Allgather waits for the owner's to finish (one
   wire per subset — network transfers on a subset are serialized);
4. at most one successor is attached per lease (depth 1) — a job can
   pipeline only once it owns the subset;
5. only jobs already arrived when the window opens are eligible,
   scanned in submission order, so pipelining never reorders equals.

Because a job's *functional* execution happens on its own fresh
sub-cluster (clocks from zero), this module only decides *placement* on
the service timeline: when each phase of each job occupies the subset.
The per-job buffers, counters and phase durations are exactly those of
a serial run — the determinism contract ``tests/test_serve.py``
enforces bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhaseProfile", "JobTiming", "schedule_fresh", "schedule_overlapped"]


@dataclass(frozen=True)
class PhaseProfile:
    """A launch's service-time shape on its subset.

    ``pre_s`` is everything that busies the CPUs before the wire
    (launch overhead + phase-1 partial compute + any recovery work),
    ``allgather_s`` the balanced Allgather (wire time, CPUs idle), and
    ``post_s`` the phase-3 callback compute.  The sum is exactly the
    launch's recorded total, so serial serving reproduces serial
    latency to the bit.
    """

    pre_s: float
    allgather_s: float
    post_s: float

    @property
    def total_s(self) -> float:
        return self.pre_s + self.allgather_s + self.post_s

    @classmethod
    def from_record(cls, record) -> PhaseProfile:
        """Shape of a completed :class:`~repro.runtime.program.LaunchRecord`.

        Recovery time is folded into ``pre_s`` (a recovered launch
        re-runs compute; modeling its retries inside the overlap window
        would let a *failing* job donate idle time it does not have).
        """
        p = record.phases
        return cls(
            pre_s=p.overhead + p.partial + p.recovery,
            allgather_s=p.allgather,
            post_s=p.callback,
        )


@dataclass(frozen=True)
class JobTiming:
    """One job's placement on the service timeline (simulated seconds)."""

    admit_s: float  # left the queue (lease granted or attach decided)
    start_s: float  # CPUs begin its phase-1 compute
    allgather_start_s: float
    allgather_end_s: float
    finish_s: float
    overlapped: bool = False  # phase 1 ran inside a predecessor's window
    #: phase-1 compute hidden inside the predecessor's Allgather window
    hidden_s: float = 0.0
    #: time suspended while the predecessor's callback held the CPUs
    suspended_s: float = 0.0

    @property
    def window_s(self) -> float:
        """The Allgather window this job opens for a successor."""
        return self.allgather_end_s - self.allgather_start_s


def schedule_fresh(profile: PhaseProfile, t_admit: float) -> JobTiming:
    """Place a job that owns its subset outright from ``t_admit``."""
    ag_start = t_admit + profile.pre_s
    ag_end = ag_start + profile.allgather_s
    return JobTiming(
        admit_s=t_admit,
        start_s=t_admit,
        allgather_start_s=ag_start,
        allgather_end_s=ag_end,
        finish_s=ag_end + profile.post_s,
        overlapped=False,
    )


def schedule_overlapped(
    profile: PhaseProfile, owner: JobTiming
) -> JobTiming:
    """Place a successor attached to ``owner``'s subset at window-open.

    The successor's phase-1 compute starts exactly when the owner's
    Allgather does; whatever does not fit inside the window is suspended
    while the owner's callback runs and resumes after it (rule 2).  Its
    own Allgather starts once both its phase 1 is done and the owner's
    Allgather has left the wire (rule 3); its callback needs the CPUs
    back, i.e. the owner fully finished.
    """
    start = owner.allgather_start_s
    hidden = min(profile.pre_s, owner.window_s)
    remainder = profile.pre_s - hidden
    if remainder > 0:
        pre_end = owner.finish_s + remainder
        suspended = owner.finish_s - owner.allgather_end_s
    else:
        pre_end = start + profile.pre_s
        suspended = 0.0
    ag_start = max(pre_end, owner.allgather_end_s)
    ag_end = ag_start + profile.allgather_s
    post_start = max(ag_end, owner.finish_s)
    return JobTiming(
        admit_s=start,
        start_s=start,
        allgather_start_s=ag_start,
        allgather_end_s=ag_end,
        finish_s=post_start + profile.post_s,
        overlapped=True,
        hidden_s=hidden,
        suspended_s=suspended,
    )

"""A composed application: one BERT encoder layer on a CPU cluster.

The coverage zoo (:mod:`repro.workloads.ai_models`) shows that every
kernel of a Triton-lowered BERT is Allgather distributable; this module
*runs* them — a single-head encoder layer assembled from eleven kernel
launches (QKV projections, attention scores, softmax, context, output
projection, residuals, layernorms, the GELU feed-forward block), chained
through the CuCC runtime so that every intermediate buffer's replication
invariant is restored by the three-phase workflow before the next kernel
consumes it.

A NumPy forward pass (:func:`reference_forward`) provides the oracle;
:class:`BertLayer` executes on any backend exposing the compile/launch/
memory interface (the CuCC cluster runtime or the GPU device via the
:class:`GPUAdapter`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.gpu_exec import GPUDevice
from repro.frontend.parser import parse_kernel
from repro.runtime.cucc import CuCCRuntime
from repro.workloads.ai_models import (
    _EWISE_GELU_TMPL,
    _GEMM_ROW_TMPL,
    _LAYERNORM_TMPL,
    _RESIDUAL_TMPL,
    _SOFTMAX_TMPL,
)

__all__ = ["BertWeights", "BertLayer", "reference_forward", "GPUAdapter"]

_ATTN_SCORES_SRC = """
__global__ void attn_scores(const float *q, const float *k_mat,
                            float *scores, int seq, int dim, float scale) {
    int row = blockIdx.x;
    int col = threadIdx.x;
    if (col < seq) {
        float acc = 0.0f;
        for (int i = 0; i < dim; i++)
            acc += q[row * dim + i] * k_mat[col * dim + i];
        scores[row * seq + col] = acc * scale;
    }
}
"""

_ATTN_APPLY_SRC = """
__global__ void attn_apply(const float *probs, const float *v, float *out,
                           int seq, int dim) {
    int row = blockIdx.x;
    int col = threadIdx.x;
    if (col < dim) {
        float acc = 0.0f;
        for (int t = 0; t < seq; t++)
            acc += probs[row * seq + t] * v[t * dim + col];
        out[row * dim + col] = acc;
    }
}
"""


@dataclass
class BertWeights:
    """Random-initialized single-head encoder-layer weights."""

    hidden: int
    ffn: int
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w1: np.ndarray
    w2: np.ndarray
    bq: np.ndarray
    bk: np.ndarray
    bv: np.ndarray
    bo: np.ndarray
    b1: np.ndarray
    b2: np.ndarray
    ln1_g: np.ndarray
    ln1_b: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray

    @staticmethod
    def create(hidden: int, ffn: int, seed: int = 0) -> "BertWeights":
        rng = np.random.default_rng(seed)

        def w(r, c):
            return (rng.standard_normal((r, c)) / math.sqrt(r)).astype(
                np.float32
            )

        def b(n):
            return (0.01 * rng.standard_normal(n)).astype(np.float32)

        return BertWeights(
            hidden=hidden,
            ffn=ffn,
            wq=w(hidden, hidden), wk=w(hidden, hidden), wv=w(hidden, hidden),
            wo=w(hidden, hidden), w1=w(hidden, ffn), w2=w(ffn, hidden),
            bq=b(hidden), bk=b(hidden), bv=b(hidden), bo=b(hidden),
            b1=b(ffn), b2=b(hidden),
            ln1_g=(1.0 + 0.01 * rng.standard_normal(hidden)).astype(np.float32),
            ln1_b=b(hidden),
            ln2_g=(1.0 + 0.01 * rng.standard_normal(hidden)).astype(np.float32),
            ln2_b=b(hidden),
        )


def _gelu(x: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return (0.5 * x * (1.0 + erf(x * np.float32(0.70710678)))).astype(
        np.float32
    )


def _layernorm(x, gamma, beta, eps=1e-5):
    mu = x.mean(axis=1, keepdims=True, dtype=np.float32)
    var = ((x - mu) ** 2).mean(axis=1, keepdims=True, dtype=np.float32)
    return ((x - mu) / np.sqrt(var + np.float32(eps)) * gamma + beta).astype(
        np.float32
    )


def reference_forward(tokens: np.ndarray, w: BertWeights) -> np.ndarray:
    """NumPy oracle for the encoder layer (single attention head)."""
    seq, hidden = tokens.shape
    q = tokens @ w.wq + w.bq
    k = tokens @ w.wk + w.bk
    v = tokens @ w.wv + w.bv
    scores = (q @ k.T) * np.float32(1.0 / math.sqrt(hidden))
    scores = scores - scores.max(axis=1, keepdims=True)
    probs = np.exp(scores)
    probs /= probs.sum(axis=1, keepdims=True)
    ctx = probs @ v
    attn_out = ctx @ w.wo + w.bo
    x = _layernorm(tokens + attn_out.astype(np.float32), w.ln1_g, w.ln1_b)
    h = _gelu((x @ w.w1 + w.b1).astype(np.float32))
    ffn_out = h @ w.w2 + w.b2
    return _layernorm(x + ffn_out.astype(np.float32), w.ln2_g, w.ln2_b)


class GPUAdapter:
    """Adapts :class:`GPUDevice` to the runtime interface BertLayer uses."""

    def __init__(self, device: GPUDevice):
        self.device = device
        self.memory = self  # alloc/memcpy live on the device itself

    def compile(self, kernel):
        return kernel

    def launch(self, kernel, grid, block, args):
        return self.device.launch(kernel, grid, block, args)

    # memory facade ------------------------------------------------------
    def alloc(self, name, size, dtype):
        return self.device.alloc(name, size, dtype)

    def memcpy_h2d(self, name, host):
        return self.device.memcpy_h2d(name, host)

    def memcpy_d2h(self, name, check_consistency: bool = False):
        return self.device.memcpy_d2h(name)


class BertLayer:
    """Executable encoder layer over a CuCC runtime (or GPU adapter)."""

    def __init__(self, runtime: CuCCRuntime | GPUAdapter, seq: int,
                 weights: BertWeights):
        if weights.hidden > 256 or weights.ffn > 256 or seq > 256:
            raise ValueError(
                "dimensions must fit the zoo kernels' 256-slot reduction "
                "scratch (seq, hidden, ffn <= 256)"
            )
        self.rt = runtime
        self.seq = seq
        self.w = weights
        self.kernels = {
            "gemm": parse_kernel(_GEMM_ROW_TMPL.format(name="bert_gemm_row")),
            "scores": parse_kernel(_ATTN_SCORES_SRC),
            "softmax": parse_kernel(_SOFTMAX_TMPL.format(name="bert_softmax")),
            "apply": parse_kernel(_ATTN_APPLY_SRC),
            "residual": parse_kernel(
                _RESIDUAL_TMPL.format(name="bert_residual")
            ),
            "layernorm": parse_kernel(
                _LAYERNORM_TMPL.format(name="bert_layernorm")
            ),
            "gelu": parse_kernel(_EWISE_GELU_TMPL.format(name="bert_gelu")),
        }
        self.compiled = {k: self.rt.compile(v) for k, v in self.kernels.items()}
        self._upload_weights()

    # -- device memory -----------------------------------------------------
    def _upload_weights(self) -> None:
        w, seq, hidden, ffn = self.w, self.seq, self.w.hidden, self.w.ffn
        mats = {
            "wq": w.wq, "wk": w.wk, "wv": w.wv, "wo": w.wo,
            "w1": w.w1, "w2": w.w2,
        }
        vecs = {
            "bq": w.bq, "bk": w.bk, "bv": w.bv, "bo": w.bo, "b1": w.b1,
            "b2": w.b2, "ln1_g": w.ln1_g, "ln1_b": w.ln1_b,
            "ln2_g": w.ln2_g, "ln2_b": w.ln2_b,
        }
        for name, m in mats.items():
            self.rt.memory.alloc(name, m.size, np.float32)
            self.rt.memory.memcpy_h2d(name, m.reshape(-1))
        for name, v in vecs.items():
            self.rt.memory.alloc(name, v.size, np.float32)
            self.rt.memory.memcpy_h2d(name, v)
        for name, size in (
            ("tokens", seq * hidden), ("q", seq * hidden), ("k", seq * hidden),
            ("v", seq * hidden), ("scores", seq * seq), ("probs", seq * seq),
            ("ctx", seq * hidden), ("attn_out", seq * hidden),
            ("x1", seq * hidden), ("ln1", seq * hidden), ("ffn_h", seq * ffn),
            ("gelu_h", seq * ffn), ("ffn_out", seq * hidden),
            ("x2", seq * hidden), ("out", seq * hidden),
        ):
            self.rt.memory.alloc(name, size, np.float32)

    # -- launches ------------------------------------------------------------
    def _gemm(self, a, b, bias, c, n, k):
        self.rt.launch(
            self.compiled["gemm"], self.seq, max(32, n),
            {"a": a, "b": b, "bias": bias, "c": c, "n": n, "k": k},
        )

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Run the layer; returns the output and leaves buffers filled."""
        seq, hidden, ffn = self.seq, self.w.hidden, self.w.ffn
        if tokens.shape != (seq, hidden):
            raise ValueError(f"tokens must be {(seq, hidden)}")
        rt = self.rt
        rt.memory.memcpy_h2d("tokens", tokens.astype(np.float32).reshape(-1))

        self._gemm("tokens", "wq", "bq", "q", hidden, hidden)
        self._gemm("tokens", "wk", "bk", "k", hidden, hidden)
        self._gemm("tokens", "wv", "bv", "v", hidden, hidden)
        rt.launch(
            self.compiled["scores"], seq, max(32, seq),
            {"q": "q", "k_mat": "k", "scores": "scores", "seq": seq,
             "dim": hidden,
             "scale": np.float32(1.0 / math.sqrt(hidden))},
        )
        rt.launch(
            self.compiled["softmax"], seq, max(32, seq),
            {"scores": "scores", "probs": "probs", "width": seq},
        )
        rt.launch(
            self.compiled["apply"], seq, max(32, hidden),
            {"probs": "probs", "v": "v", "out": "ctx", "seq": seq,
             "dim": hidden},
        )
        self._gemm("ctx", "wo", "bo", "attn_out", hidden, hidden)
        rt.launch(
            self.compiled["residual"], -(-seq * hidden // 256), 256,
            {"x": "attn_out", "residual": "tokens", "y": "x1",
             "n": seq * hidden},
        )
        rt.launch(
            self.compiled["layernorm"], seq, max(32, hidden),
            {"x": "x1", "gamma": "ln1_g", "beta": "ln1_b", "y": "ln1",
             "width": hidden, "eps": np.float32(1e-5)},
        )
        self._gemm("ln1", "w1", "b1", "ffn_h", ffn, hidden)
        rt.launch(
            self.compiled["gelu"], -(-seq * ffn // 256), 256,
            {"x": "ffn_h", "y": "gelu_h", "n": seq * ffn},
        )
        self._gemm("gelu_h", "w2", "b2", "ffn_out", hidden, ffn)
        rt.launch(
            self.compiled["residual"], -(-seq * hidden // 256), 256,
            {"x": "ffn_out", "residual": "ln1", "y": "x2", "n": seq * hidden},
        )
        rt.launch(
            self.compiled["layernorm"], seq, max(32, hidden),
            {"x": "x2", "gamma": "ln2_g", "beta": "ln2_b", "y": "out",
             "width": hidden, "eps": np.float32(1e-5)},
        )
        flat = rt.memory.memcpy_d2h("out", check_consistency=True)
        return flat.reshape(seq, hidden)

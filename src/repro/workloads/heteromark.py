"""Hetero-Mark-style CUDA kernel zoo for the coverage evaluation (Fig. 7).

Thirteen hand-written CUDA kernels spanning the Hetero-Mark benchmark
applications.  Per the paper's section 7.1, **8 of the 13** are Allgather
distributable; of the remaining five, **four have memory access patterns
that overlap the written interval** (cross-block accumulation — the
written interval does not advance with the block index) and **one
contains indirect memory access** that cannot be analyzed statically.

Each entry records the expected verdict and failure category so the
coverage figure is an assertion, not just a printout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.parser import parse_kernel
from repro.ir.stmt import Kernel

__all__ = ["ZooKernel", "HETEROMARK_KERNELS", "build_kernel"]


@dataclass(frozen=True)
class ZooKernel:
    """One coverage-evaluation kernel with its expected classification."""

    app: str
    name: str
    source: str
    distributable: bool
    #: "ok" | "overlap" | "indirect" — the paper's Figure 7 categories
    category: str


def build_kernel(z: ZooKernel) -> Kernel:
    return parse_kernel(z.source)


HETEROMARK_KERNELS: tuple[ZooKernel, ...] = (
    # ---- AES: per-16-byte-state encryption, one state per thread -------
    ZooKernel(
        "AES",
        "aes_encrypt",
        """
__global__ void aes_encrypt(const uchar *input, const uchar *sbox,
                            uchar *output, int nstates) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= nstates) return;
    for (int b = 0; b < 16; b++) {
        uchar v = input[gid * 16 + b];
        output[gid * 16 + b] = sbox[(int)v];
    }
}
""",
        True,
        "ok",
    ),
    # ---- BS: Black-Scholes option pricing, one option per thread --------
    ZooKernel(
        "BS",
        "black_scholes",
        """
__global__ void black_scholes(const float *spot, const float *strike,
                              const float *texp, float *call, float *put,
                              float rate, float vol, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float s = spot[gid];
    float k = strike[gid];
    float t = texp[gid];
    float d1 = (logf(s / k) + (rate + 0.5f * vol * vol) * t)
               / (vol * sqrtf(t));
    float d2 = d1 - vol * sqrtf(t);
    float nd1 = 0.5f * (1.0f + erff(d1 * 0.70710678f));
    float nd2 = 0.5f * (1.0f + erff(d2 * 0.70710678f));
    float disc = expf(-rate * t);
    call[gid] = s * nd1 - k * disc * nd2;
    put[gid] = k * disc * (1.0f - nd2) - s * (1.0f - nd1);
}
""",
        True,
        "ok",
    ),
    # ---- BE: background extraction, one pixel per thread ----------------
    ZooKernel(
        "BE",
        "be_extract",
        """
__global__ void be_extract(const float *frame, float *background,
                           uchar *foreground, float alpha, float thresh,
                           int npixels) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= npixels) return;
    float bg = background[gid];
    float px = frame[gid];
    float diff = fabsf(px - bg);
    foreground[gid] = (diff > thresh) ? (uchar)255 : (uchar)0;
    background[gid] = (1.0f - alpha) * bg + alpha * px;
}
""",
        True,
        "ok",
    ),
    # ---- EP: mutation + evaluation (two kernels) -------------------------
    ZooKernel(
        "EP",
        "ep_mutate",
        """
__global__ void ep_mutate(const float *parents, float *offspring,
                          int genome_len, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    uint state = (uint)gid * 2654435761u + 12345u;
    for (int g = 0; g < genome_len; g++) {
        state = state * 1664525u + 1013904223u;
        float noise = ((float)(state >> 8) * 5.9604645e-8f - 0.5f) * 0.2f;
        offspring[gid * genome_len + g] = parents[gid * genome_len + g] + noise;
    }
}
""",
        True,
        "ok",
    ),
    ZooKernel(
        "EP",
        "ep_evaluate",
        """
__global__ void ep_evaluate(const float *genomes, float *fitness,
                            int genome_len, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float acc = 0.0f;
    for (int g = 0; g < genome_len; g++) {
        float x = genomes[gid * genome_len + g];
        acc += x * x - 10.0f * cosf(6.2831853f * x) + 10.0f;
    }
    fitness[gid] = acc;
}
""",
        True,
        "ok",
    ),
    # ---- FIR -----------------------------------------------------------
    ZooKernel(
        "FIR",
        "fir",
        """
__global__ void fir(const float *input, const float *coeff, float *output,
                    int num_taps, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float sum = 0.0f;
    for (int i = 0; i < num_taps; i++)
        sum += coeff[i] * input[gid + i];
    output[gid] = sum;
}
""",
        True,
        "ok",
    ),
    # ---- GA: per-block match counting -----------------------------------
    ZooKernel(
        "GA",
        "ga_search",
        """
__global__ void ga_search(const char *target, const char *query,
                          int *block_matches, int qlen, int window, int n) {
    __shared__ int partial[256];
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    int count = 0;
    if (gid < n) {
        for (int w = 0; w < window; w++) {
            int matched = 1;
            for (int j = 0; j < qlen; j++) {
                if (target[gid * window + w + j] != query[j]) {
                    matched = 0;
                    break;
                }
            }
            count += matched;
        }
    }
    partial[threadIdx.x] = count;
    __syncthreads();
    if (threadIdx.x == 0) {
        int total = 0;
        for (int t = 0; t < blockDim.x; t++)
            total += partial[t];
        block_matches[blockIdx.x] = total;
    }
}
""",
        True,
        "ok",
    ),
    # ---- KMeans: assignment is distributable... --------------------------
    ZooKernel(
        "KMEANS",
        "kmeans_assign",
        """
__global__ void kmeans_assign(const float *x, const float *centroids,
                              int *membership, int npoints, int nclusters,
                              int nfeatures) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= npoints) return;
    float best = 3.4e38f;
    int best_c = 0;
    for (int c = 0; c < nclusters; c++) {
        float dist = 0.0f;
        for (int j = 0; j < nfeatures; j++) {
            float diff = x[j * npoints + gid] - centroids[j * nclusters + c];
            dist += diff * diff;
        }
        best_c = (dist < best) ? c : best_c;
        best = fminf(dist, best);
    }
    membership[gid] = best_c;
}
""",
        True,
        "ok",
    ),
    # ---- ...but the centroid update accumulates across all blocks --------
    ZooKernel(
        "KMEANS",
        "kmeans_update",
        """
__global__ void kmeans_update(const float *x, const int *membership,
                              float *centroid_sums, int *centroid_counts,
                              int npoints, int nclusters, int nfeatures) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= npoints) return;
    int c = membership[gid];
    for (int j = 0; j < nfeatures; j++) {
        atomicAdd(&centroid_sums[j * nclusters + c], x[j * npoints + gid]);
    }
    atomicAdd(&centroid_counts[c], 1);
}
""",
        False,
        "overlap",
    ),
    # ---- HIST: every block scatters into the same bin array --------------
    ZooKernel(
        "HIST",
        "histogram",
        """
__global__ void histogram(const uint *data, uint *bins, int nbins, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    atomicAdd(&bins[(int)(data[gid] % (uint)nbins)], 1u);
}
""",
        False,
        "overlap",
    ),
    # ---- PR: PageRank push — scatter through the graph (indirect) --------
    ZooKernel(
        "PR",
        "pagerank_push",
        """
__global__ void pagerank_push(const int *col_idx, const int *row_ptr,
                              const float *rank, float *next_rank,
                              const int *out_degree, int nvertices) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v >= nvertices) return;
    float share = rank[v] / (float)out_degree[v];
    for (int e = row_ptr[v]; e < row_ptr[v + 1]; e++) {
        atomicAdd(&next_rank[col_idx[e]], share);
    }
}
""",
        False,
        "indirect",
    ),
    # ---- PR: rank normalization writes a single global accumulator -------
    ZooKernel(
        "PR",
        "pagerank_norm",
        """
__global__ void pagerank_norm(const float *next_rank, float *total,
                              int nvertices) {
    __shared__ float partial[256];
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    partial[threadIdx.x] = (v < nvertices) ? next_rank[v] : 0.0f;
    __syncthreads();
    if (threadIdx.x == 0) {
        float s = 0.0f;
        for (int t = 0; t < blockDim.x; t++)
            s += partial[t];
        atomicAdd(&total[0], s);
    }
}
""",
        False,
        "overlap",
    ),
    # ---- BE: sliding-window temporal filter writes a halo that overlaps --
    ZooKernel(
        "BE",
        "be_temporal_smooth",
        """
__global__ void be_temporal_smooth(const float *frames, float *smoothed,
                                   int npixels, int radius) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= npixels) return;
    for (int r = -radius; r < radius + 1; r++) {
        int at = gid + r;
        if (at >= 0) {
            if (at < npixels) {
                smoothed[at] = smoothed[at] * 0.5f + frames[gid] * 0.5f;
            }
        }
    }
}
""",
        False,
        "overlap",
    ),
)

assert len(HETEROMARK_KERNELS) == 13
assert sum(z.distributable for z in HETEROMARK_KERNELS) == 8
assert sum(z.category == "overlap" for z in HETEROMARK_KERNELS) == 4
assert sum(z.category == "indirect" for z in HETEROMARK_KERNELS) == 1

"""BinomialOption: the paper's barrier-phased, thread-parallel workload.

One GPU block prices one American-style option on a binomial lattice
held in shared memory; each backward-induction step is separated by
``__syncthreads()``, and only thread 0 writes the block's scalar result
to global memory (sections 7.3 / 7.4.1 / 8.2):

* the ``threadIdx.x == 0`` store is *thread-symmetric* — every block
  writes exactly one element, so the kernel is Allgather distributable
  with ``unit_size`` = 1 element;
* the barrier inside the sequential step loop defeats SIMD vectorization
  on CPUs ("loop dependencies that cannot be parallelized with SIMD");
* its 1024 independent blocks are ideal for thread-level parallelism,
  which is why the Thread-Focused cluster shines on it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE", "PAPER_GRID_BLOCKS"]

PAPER_GRID_BLOCKS = 1024  # section 8.2: "BinomialOption contains 1024 GPU blocks"

CUDA_SOURCE = """
__global__ void binomial_option(const float *spot, const float *strike,
                                float *value, int steps, float up,
                                float down, float pu, float pd, float disc) {
    __shared__ float lattice[257];
    int tid = threadIdx.x;
    int opt = blockIdx.x;
    if (tid <= steps) {
        float price = spot[opt];
        for (int i = 0; i < steps; i++) {
            price = price * ((i < tid) ? up : down);
        }
        lattice[tid] = fmaxf(price - strike[opt], 0.0f);
    }
    __syncthreads();
    for (int t = steps; t > 0; t--) {
        if (tid < t) {
            lattice[tid] = disc * (pu * lattice[tid + 1] + pd * lattice[tid]);
        }
        __syncthreads();
    }
    if (tid == 0) {
        value[opt] = lattice[0];
    }
}
"""

_SIZES = {
    "small": dict(options=24, steps=31, block=32),
    "paper": dict(options=PAPER_GRID_BLOCKS, steps=255, block=256),
}


def _reference(spot, strike, steps, up, down, pu, pd, disc) -> np.ndarray:
    n = spot.shape[0]
    out = np.zeros(n, dtype=np.float32)
    tids = np.arange(steps + 1, dtype=np.int64)
    for o in range(n):
        # leaf prices: same fp order as the kernel (repeated multiply)
        price = np.full(steps + 1, spot[o], dtype=np.float32)
        for i in range(steps):
            price = price * np.where(i < tids, np.float32(up), np.float32(down))
        lattice = np.maximum(price - strike[o], np.float32(0.0)).astype(np.float32)
        for t in range(steps, 0, -1):
            lattice[:t] = (
                np.float32(disc)
                * (np.float32(pu) * lattice[1 : t + 1] + np.float32(pd) * lattice[:t])
            ).astype(np.float32)
        out[o] = lattice[0]
    return out


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    options, steps, block = p["options"], p["steps"], p["block"]
    if steps >= block:
        raise ReproError("lattice must fit in one block (steps < blockDim)")
    rng = np.random.default_rng(seed)
    spot = (90.0 + 20.0 * rng.random(options)).astype(np.float32)
    strike = (90.0 + 20.0 * rng.random(options)).astype(np.float32)
    vol, rate, tmat = 0.25, 0.02, 1.0
    dt = tmat / steps
    up = float(np.exp(vol * np.sqrt(dt)))
    down = 1.0 / up
    growth = float(np.exp(rate * dt))
    pu = (growth - down) / (up - down)
    pd = 1.0 - pu
    disc = 1.0 / growth
    ref = _reference(spot, strike, steps, up, down, pu, pd, disc)
    return WorkloadSpec(
        name="BinomialOption",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=options,
        block=block,
        arrays={
            "spot": spot,
            "strike": strike,
            "value": np.zeros(options, dtype=np.float32),
        },
        scalars={
            "steps": steps,
            "up": np.float32(up),
            "down": np.float32(down),
            "pu": np.float32(pu),
            "pd": np.float32(pd),
            "disc": np.float32(disc),
        },
        outputs=("value",),
        reference={"value": ref},
        rtol=5e-4,
        atol=5e-4,
        expect_vectorizable=False,  # barrier inside the step loop
    )

"""Workload abstraction shared by tests and benchmarks.

A :class:`WorkloadSpec` packages a kernel with concrete launch geometry,
input data, scalar arguments, and a NumPy reference implementation — one
instance per (workload, size) pair.  Runner helpers execute a spec on the
CuCC cluster runtime, the GPU model, the PGAS baseline, or a single CPU,
returning the simulated time; ``verify`` compares every declared output
against the reference.

Size presets: ``"small"`` keeps interpreter wall time in the millisecond
range for unit tests; ``"paper"`` uses evaluation-scale problems for the
benchmark harness (sized so the paper's qualitative shapes emerge from
the performance model).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.ir.stmt import Kernel

__all__ = ["WorkloadSpec", "SIZES"]

SIZES = ("small", "paper")


@dataclass
class WorkloadSpec:
    """One concrete, runnable workload instance."""

    name: str
    kernel: Kernel
    grid: int | tuple[int, ...]
    block: int | tuple[int, ...]
    #: pointer-param name -> initial host array (outputs usually zeroed)
    arrays: dict[str, np.ndarray]
    #: scalar-param name -> value
    scalars: dict[str, object] = field(default_factory=dict)
    #: pointer params whose final contents are checked
    outputs: tuple[str, ...] = ()
    #: output param -> expected array
    reference: dict[str, np.ndarray] = field(default_factory=dict)
    rtol: float = 1e-5
    atol: float = 1e-6
    #: paper-documented structural facts, asserted by tests
    expect_distributable: bool = True
    expect_vectorizable: bool = True

    @property
    def num_blocks(self) -> int:
        g = self.grid
        if isinstance(g, tuple):
            n = 1
            for x in g:
                n *= x
            return n
        return int(g)

    def args(self) -> dict[str, object]:
        """Launch args mapping param name -> buffer name (same) or scalar."""
        out: dict[str, object] = {n: n for n in self.arrays}
        out.update(self.scalars)
        return out

    def verify(self, results: dict[str, np.ndarray]) -> None:
        """Compare produced outputs against the reference; raise on error."""
        for name in self.outputs:
            got = results[name]
            want = self.reference[name]
            if got.dtype != want.dtype:
                raise ReproError(
                    f"{self.name}: output {name!r} dtype {got.dtype} != "
                    f"{want.dtype}"
                )
            if np.issubdtype(got.dtype, np.floating):
                ok = np.allclose(got, want, rtol=self.rtol, atol=self.atol)
            else:
                ok = np.array_equal(got, want)
            if not ok:
                bad = np.flatnonzero(
                    ~np.isclose(got, want, rtol=self.rtol, atol=self.atol)
                    if np.issubdtype(got.dtype, np.floating)
                    else got != want
                )
                raise ReproError(
                    f"{self.name}: output {name!r} mismatches reference at "
                    f"{bad.size}/{got.size} elements (first at {int(bad[0])}: "
                    f"got {got[bad[0]]!r}, want {want[bad[0]]!r})"
                )

    @property
    def total_output_bytes(self) -> int:
        return sum(self.arrays[o].nbytes for o in self.outputs)

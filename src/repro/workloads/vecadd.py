"""VecAdd: element-wise vector addition (the canonical streaming kernel).

Tail-divergent bound check, one output element per thread — the simplest
Allgather-distributable pattern (the paper's Listing 1 shape).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE"]

CUDA_SOURCE = """
__global__ void vecadd(const float *a, const float *b, float *c, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n)
        c[gid] = a[gid] + b[gid];
}
"""

_SIZES = {
    # n deliberately not a multiple of the block size: exercises the
    # tail-divergent callback path
    "small": dict(n=2000, block=256),
    "paper": dict(n=(1 << 20) - 100, block=256),
}


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    n, block = p["n"], p["block"]
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n).astype(np.float32)
    b = rng.standard_normal(n).astype(np.float32)
    grid = -(-n // block)
    return WorkloadSpec(
        name="VecAdd",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=grid,
        block=block,
        arrays={"a": a, "b": b, "c": np.zeros(n, dtype=np.float32)},
        scalars={"n": n},
        outputs=("c",),
        reference={"c": a + b},
    )

"""GA (Gene Alignment): substring scanning with early exit.

Each thread scans a window of candidate positions in the target sequence
for the query pattern, bailing out of the inner comparison at the first
mismatch (``break``) — per-thread control flow that defeats SIMD
vectorization (section 7.4.1).  Per-thread counts are reduced in shared
memory and only thread 0 writes the block's match count, so the kernel
communicates one scalar per block; this is why the paper finds GA's PGAS
migration nearly matches CuCC ("remote memory access occurs only when
specific target gene sequences are found... which happens infrequently",
section 7.3).  With only 256 blocks, large CPU clusters under-utilize
their cores and GPUs win.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE", "PAPER_GRID_BLOCKS"]

PAPER_GRID_BLOCKS = 256  # section 7.4.1: "GA: 256 [blocks]"

CUDA_SOURCE = """
__global__ void ga_search(const char *target, const char *query,
                          int *block_matches, int qlen, int window, int n) {
    __shared__ int partial[256];
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    int count = 0;
    if (gid < n) {
        int base = gid * window;
        for (int w = 0; w < window; w++) {
            int matched = 1;
            for (int j = 0; j < qlen; j++) {
                if (target[base + w + j] != query[j]) {
                    matched = 0;
                    break;
                }
            }
            count += matched;
        }
    }
    partial[threadIdx.x] = count;
    __syncthreads();
    if (threadIdx.x == 0) {
        int total = 0;
        for (int t = 0; t < blockDim.x; t++) {
            total += partial[t];
        }
        block_matches[blockIdx.x] = total;
    }
}
"""

_SIZES = {
    "small": dict(blocks=8, block=32, qlen=8, window=16),
    "paper": dict(blocks=PAPER_GRID_BLOCKS, block=256, qlen=32, window=64),
}

_ALPHABET = np.frombuffer(b"ACGT", dtype=np.int8)


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    blocks, block, qlen, window = p["blocks"], p["block"], p["qlen"], p["window"]
    if block > 256:
        raise ReproError("partial[] is sized for blocks of <= 256 threads")
    n = blocks * block - block // 8  # partially-filled tail block
    rng = np.random.default_rng(seed)
    tlen = n * window + qlen
    target = _ALPHABET[rng.integers(0, 4, tlen)].astype(np.int8)
    query = _ALPHABET[rng.integers(0, 4, qlen)].astype(np.int8)
    # plant real occurrences so some matches exist
    for pos in rng.integers(0, tlen - qlen, max(4, n // 50)):
        target[pos : pos + qlen] = query

    # reference: sliding-window exact-match counts, reduced per block
    hits = np.ones(tlen - qlen + 1, dtype=bool)
    for j in range(qlen):
        hits &= target[j : tlen - qlen + 1 + j] == query[j]
    per_thread = np.zeros(blocks * block, dtype=np.int64)
    for g in range(n):
        lo = g * window
        per_thread[g] = int(hits[lo : lo + window].sum())
    per_block = per_thread.reshape(blocks, block).sum(axis=1).astype(np.int32)

    return WorkloadSpec(
        name="GA",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=blocks,
        block=block,
        arrays={
            "target": target,
            "query": query,
            "block_matches": np.zeros(blocks, dtype=np.int32),
        },
        scalars={"qlen": qlen, "window": window, "n": n},
        outputs=("block_matches",),
        reference={"block_matches": per_block},
        expect_vectorizable=False,  # early break in the comparison loop
    )

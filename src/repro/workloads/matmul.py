"""MatMul: dense matrix multiply, one GPU block per output row.

Block ``r`` computes row ``r`` of ``C = A x B``: threads stride across
the row's columns, accumulating over the inner dimension.  The write
``C[r*N + col]`` is affine and dense per block (unit = N elements), the
``A`` reads broadcast within a block, and the ``B`` reads are coalesced —
a compute-heavy, fully vectorizable Allgather-distributable kernel.
Defined with the Python DSL (the other workloads exercise the CUDA
frontend).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.dsl import kernel, ptr
from repro.ir.types import F32, I32
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "build_kernel"]


def build_kernel():
    """Build the matmul kernel IR via the Python DSL."""

    @kernel(name="matmul", A=ptr(F32), B=ptr(F32), C=ptr(F32), n=I32, k=I32,
            chunks=I32)
    def matmul(b, A, B, C, n, k, chunks):
        row = b.let("row", b.bid_x)
        with b.for_("cc", 0, chunks) as cc:
            col = b.let("col", cc * b.bdim_x + b.tid_x)
            acc = b.let("acc", 0.0, F32)
            with b.for_("i", 0, k) as i:
                b.assign(acc, acc + b.load(A, row * k + i) * b.load(B, i * n + col))
            b.store(C, row * n + col, acc)

    return matmul


_SIZES = {
    "small": dict(n=64, k=48, block=64),
    "paper": dict(n=512, k=512, block=512),
}


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    n, k, block = p["n"], p["k"], p["block"]
    if n % block:
        raise ReproError("n must be a multiple of the block size")
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, k)).astype(np.float32)
    B = rng.standard_normal((k, n)).astype(np.float32)
    C_ref = (A.astype(np.float64) @ B.astype(np.float64)).astype(np.float32)
    return WorkloadSpec(
        name="MatMul",
        kernel=build_kernel(),
        grid=n,
        block=block,
        arrays={
            "A": A.reshape(-1).copy(),
            "B": B.reshape(-1).copy(),
            "C": np.zeros(n * n, dtype=np.float32),
        },
        scalars={"n": n, "k": k, "chunks": n // block},
        outputs=("C",),
        reference={"C": C_ref.reshape(-1)},
        rtol=1e-3,
        atol=1e-3,
    )

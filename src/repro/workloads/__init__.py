"""The paper's evaluation workloads and coverage kernel zoos.

``PERF_WORKLOADS`` maps the eight performance-evaluation programs
(section 7.2) to their builders; each builder takes ``size`` (``"small"``
for tests, ``"paper"`` for benchmark-scale) and a seed, returning a
:class:`~repro.workloads.base.WorkloadSpec`.
"""

from repro.workloads import (
    binomial,
    ep,
    fir,
    ga,
    kmeans,
    matmul,
    nbody,
    transpose,
    vecadd,
)
from repro.workloads.base import SIZES, WorkloadSpec

#: the eight programs of the performance evaluation (section 7.2)
PERF_WORKLOADS = {
    "NBody": nbody.build,
    "MatMul": matmul.build,
    "Transpose": transpose.build,
    "FIR": fir.build,
    "KMeans": kmeans.build,
    "BinomialOption": binomial.build,
    "EP": ep.build,
    "GA": ga.build,
}

#: the Listing-1-style streaming kernel, kept for examples and tests
#: (a pure memcpy cannot strong-scale over a 100 Gb/s network, so it is
#: not one of the eight evaluated programs)
EXTRA_WORKLOADS = {"VecAdd": vecadd.build}

__all__ = ["PERF_WORKLOADS", "EXTRA_WORKLOADS", "WorkloadSpec", "SIZES"]

"""NBody: all-pairs gravity step — the high-arithmetic-intensity workload.

Each thread computes the acceleration on one body against an
``m``-body interaction window (O(m) work per 12 output bytes), the
classic GPU showcase kernel used across migration projects.  Fully
vectorizable across threads; its compute-to-communication ratio lets it
scale on clusters until the 128-block grid runs out of thread-level
parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE"]

CUDA_SOURCE = """
__global__ void nbody_accel(const float *px, const float *py, const float *pz,
                            const float *mass, float *ax, float *ay, float *az,
                            float soft, int n, int m) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float xi = px[gid];
    float yi = py[gid];
    float zi = pz[gid];
    float fx = 0.0f, fy = 0.0f, fz = 0.0f;
    for (int j = 0; j < m; j++) {
        float dx = px[j] - xi;
        float dy = py[j] - yi;
        float dz = pz[j] - zi;
        float r2 = dx * dx + dy * dy + dz * dz + soft;
        float inv = rsqrtf(r2);
        float w = mass[j] * inv * inv * inv;
        fx += w * dx;
        fy += w * dy;
        fz += w * dz;
    }
    ax[gid] = fx;
    ay[gid] = fy;
    az[gid] = fz;
}
"""

_SIZES = {
    "small": dict(n=500, m=200, block=64),
    # 128 blocks (tail-divergent), 4096-body interaction window
    "paper": dict(n=(1 << 15) - 64, m=4096, block=256),
}


def _reference(px, py, pz, mass, soft, m):
    n = px.shape[0]
    fx = np.zeros(n, dtype=np.float32)
    fy = np.zeros(n, dtype=np.float32)
    fz = np.zeros(n, dtype=np.float32)
    # accumulate in the kernel's j order for matching float32 rounding
    for j in range(m):
        dx = (px[j] - px).astype(np.float32)
        dy = (py[j] - py).astype(np.float32)
        dz = (pz[j] - pz).astype(np.float32)
        r2 = (dx * dx + dy * dy + dz * dz + np.float32(soft)).astype(np.float32)
        inv = (1.0 / np.sqrt(r2)).astype(np.float32)
        w = (mass[j] * inv * inv * inv).astype(np.float32)
        fx += w * dx
        fy += w * dy
        fz += w * dz
    return fx, fy, fz


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    n, m, block = p["n"], p["m"], p["block"]
    rng = np.random.default_rng(seed)
    px = rng.standard_normal(n).astype(np.float32)
    py = rng.standard_normal(n).astype(np.float32)
    pz = rng.standard_normal(n).astype(np.float32)
    mass = (0.5 + rng.random(n)).astype(np.float32)
    soft = 1e-3
    fx, fy, fz = _reference(px, py, pz, mass, soft, m)
    return WorkloadSpec(
        name="NBody",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=-(-n // block),
        block=block,
        arrays={
            "px": px,
            "py": py,
            "pz": pz,
            "mass": mass,
            "ax": np.zeros(n, dtype=np.float32),
            "ay": np.zeros(n, dtype=np.float32),
            "az": np.zeros(n, dtype=np.float32),
        },
        scalars={"soft": np.float32(soft), "n": n, "m": m},
        outputs=("ax", "ay", "az"),
        reference={"ax": fx, "ay": fy, "az": fz},
        rtol=2e-3,
        atol=2e-3,
    )

"""FIR filter: the paper's compute-heavy near-linear scaler.

Each thread accumulates a long dot product over the tap window and
writes a single scalar result ("the computed results are scalars, making
FIR computation-intensive with minimal memory access overhead",
section 7.2) — the best-case compute-to-communication ratio for CPU
cluster execution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE"]

CUDA_SOURCE = """
__global__ void fir(const float *input, const float *coeff, float *output,
                    int num_taps, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float sum = 0.0f;
    for (int i = 0; i < num_taps; i++) {
        sum += coeff[i] * input[gid + i];
    }
    output[gid] = sum;
}
"""

_SIZES = {
    "small": dict(n=2000, taps=32, block=256),  # partial tail block
    "paper": dict(n=1 << 18, taps=4096, block=256),
}


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    n, taps, block = p["n"], p["taps"], p["block"]
    rng = np.random.default_rng(seed)
    inp = rng.standard_normal(n + taps).astype(np.float32)
    coeff = (rng.standard_normal(taps) / taps).astype(np.float32)
    # float32 reference with the kernel's accumulation order
    ref = np.zeros(n, dtype=np.float32)
    acc = np.zeros(n, dtype=np.float32)
    for i in range(taps):
        acc += coeff[i] * inp[i : i + n]
    ref[:] = acc
    return WorkloadSpec(
        name="FIR",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=-(-n // block),
        block=block,
        arrays={
            "input": inp,
            "coeff": coeff,
            "output": np.zeros(n, dtype=np.float32),
        },
        scalars={"num_taps": taps, "n": n},
        outputs=("output",),
        reference={"output": ref},
        rtol=2e-3,  # float32 accumulation over thousands of taps
        atol=2e-3,
    )

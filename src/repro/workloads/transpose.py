"""Matrix Transpose: the paper's memory-movement workload.

Written output-contiguous ("gather style"), one GPU block per output
row: block ``c`` produces row ``c`` of the transposed matrix by gathering
column ``c`` of the input.  The write index is affine in
(blockIdx, threadIdx, loop) and dense per block — Allgather
distributable — while the *reads* stride through the input by a full row
(the access pattern whose cache-line amplification makes transpose
DRAM-unfriendly, and whose large-LLC behaviour drives the paper's
section 7.4.1 discussion).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE"]

# One block per output row; each thread handles rows/block_dim elements
# of the row via the k loop.  dim is the (square) matrix dimension.
CUDA_SOURCE = """
__global__ void transpose(const float *in, float *out, int dim, int chunks) {
    for (int k = 0; k < chunks; k++) {
        int col = k * blockDim.x + threadIdx.x;
        out[blockIdx.x * dim + col] = in[col * dim + blockIdx.x];
    }
}
"""

_SIZES = {
    "small": dict(dim=256, block=128),  # 256 KiB matrix
    "paper": dict(dim=4096, block=1024),  # 64 MiB matrix: fits the EPYC
    # node's 512 MiB LLC, exceeds the Intel node's 38.5 MiB and the
    # A100's 40 MiB L2 — the regime of the paper's Transpose analysis
}


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    dim, block = p["dim"], p["block"]
    if dim % block:
        raise ReproError("dim must be a multiple of the block size")
    rng = np.random.default_rng(seed)
    mat = rng.standard_normal((dim, dim)).astype(np.float32)
    return WorkloadSpec(
        name="Transpose",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=dim,
        block=block,
        arrays={
            "in": mat.reshape(-1).copy(),
            "out": np.zeros(dim * dim, dtype=np.float32),
        },
        scalars={"dim": dim, "chunks": dim // block},
        outputs=("out",),
        reference={"out": mat.T.reshape(-1).copy()},
    )

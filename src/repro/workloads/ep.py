"""EP (Evolutionary Programming): scalar-bound random-search workload.

Each thread evolves an independent candidate with an LCG random stream;
the mutation step uses rejection sampling (a data-dependent ``while``),
which makes the per-thread control flow impossible to vectorize — the
paper's "for-loops that cannot be optimized with SIMD instructions"
case (section 7.4.1).  With only 512 GPU blocks, large CPU clusters also
run out of thread-level parallelism, so GPUs win on this workload.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE", "PAPER_GRID_BLOCKS"]

PAPER_GRID_BLOCKS = 512  # section 7.4.1: "EP: 512 [blocks]"

# LCG constants (numerical recipes); the modulus is 2^32 via uint wraparound.
CUDA_SOURCE = """
__global__ void ep_evolve(const float *genome, float *fitness, int rounds,
                          int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    uint state = (uint)gid * 2654435761u + 974711u;
    float best = genome[gid];
    for (int r = 0; r < rounds; r++) {
        state = state * 1664525u + 1013904223u;
        float u = (float)(state >> 8) * 5.9604645e-8f;
        while (u > 0.98f) {
            state = state * 1664525u + 1013904223u;
            u = (float)(state >> 8) * 5.9604645e-8f;
        }
        float cand = best + (u - 0.5f) * 0.1f;
        float score = cand * cand - cand;
        float cur = best * best - best;
        best = (score < cur) ? cand : best;
    }
    fitness[gid] = best;
}
"""

_SIZES = {
    "small": dict(blocks=16, block=32, rounds=20),
    "paper": dict(blocks=PAPER_GRID_BLOCKS, block=256, rounds=256),
}


def _reference(genome: np.ndarray, rounds: int) -> np.ndarray:
    n = genome.shape[0]
    state = (np.arange(n, dtype=np.uint64) * 2654435761 + 974711) % (1 << 32)
    best = genome.astype(np.float32).copy()
    for _ in range(rounds):
        state = (state * 1664525 + 1013904223) % (1 << 32)
        u = ((state >> 8).astype(np.float32)) * np.float32(5.9604645e-8)
        redo = u > np.float32(0.98)
        while redo.any():
            nxt = (state * 1664525 + 1013904223) % (1 << 32)
            state = np.where(redo, nxt, state)
            u2 = ((state >> 8).astype(np.float32)) * np.float32(5.9604645e-8)
            u = np.where(redo, u2, u)
            redo = redo & (u > np.float32(0.98))
        cand = (best + (u - np.float32(0.5)) * np.float32(0.1)).astype(np.float32)
        score = (cand * cand - cand).astype(np.float32)
        cur = (best * best - best).astype(np.float32)
        best = np.where(score < cur, cand, best)
    return best


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    blocks, block, rounds = p["blocks"], p["block"], p["rounds"]
    n = blocks * block - block // 4  # partially-filled tail block
    rng = np.random.default_rng(seed)
    genome = rng.standard_normal(n).astype(np.float32)
    return WorkloadSpec(
        name="EP",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=blocks,
        block=block,
        arrays={"genome": genome, "fitness": np.zeros(n, dtype=np.float32)},
        scalars={"rounds": rounds, "n": n},
        outputs=("fitness",),
        reference={"fitness": _reference(genome, rounds)},
        rtol=1e-5,
        atol=1e-5,
        expect_vectorizable=False,  # rejection-sampling while loop
    )

"""Triton-lowered AI kernel zoo: BERT and ViT (coverage Figure 7).

Twenty-one kernels — 12 from a BERT encoder, 9 from a Vision Transformer
— written the way Triton lowers them: one program instance (GPU block)
per tile/row, hard-coded bound checks, regular writes, no inter-block
communication.  The paper finds **all 21** Allgather distributable and
attributes this to Triton's abstractions ("Triton does not support
inter-block barriers, which encourages... regular memory access patterns
that do not have data races between blocks").

Reductions (layernorm, softmax, pooling) follow the per-block pattern:
per-thread partials in shared memory, thread 0 combines, everyone reads
the broadcast value — divergence is thread-symmetric, so condition 2 of
the analysis holds.
"""

from __future__ import annotations

from repro.workloads.heteromark import ZooKernel

__all__ = ["BERT_KERNELS", "VIT_KERNELS", "AI_KERNELS"]


def _ok(app: str, name: str, source: str) -> ZooKernel:
    return ZooKernel(app, name, source, True, "ok")


_LAYERNORM_TMPL = """
__global__ void {name}(const float *x, const float *gamma,
                       const float *beta, float *y, int width, float eps) {{
    __shared__ float partial[256];
    __shared__ float stat[2];
    int row = blockIdx.x;
    int col = threadIdx.x;
    float v = (col < width) ? x[row * width + col] : 0.0f;
    partial[threadIdx.x] = v;
    __syncthreads();
    if (threadIdx.x == 0) {{
        float s = 0.0f;
        for (int t = 0; t < width; t++)
            s += partial[t];
        stat[0] = s / (float)width;
    }}
    __syncthreads();
    float mean = stat[0];
    partial[threadIdx.x] = (col < width) ? (v - mean) * (v - mean) : 0.0f;
    __syncthreads();
    if (threadIdx.x == 0) {{
        float s = 0.0f;
        for (int t = 0; t < width; t++)
            s += partial[t];
        stat[1] = rsqrtf(s / (float)width + eps);
    }}
    __syncthreads();
    if (col < width) {{
        y[row * width + col] = (v - mean) * stat[1] * gamma[col] + beta[col];
    }}
}}
"""

_SOFTMAX_TMPL = """
__global__ void {name}(const float *scores, float *probs, int width) {{
    __shared__ float partial[256];
    __shared__ float stat[2];
    int row = blockIdx.x;
    int col = threadIdx.x;
    float v = (col < width) ? scores[row * width + col] : -3.4e38f;
    partial[threadIdx.x] = v;
    __syncthreads();
    if (threadIdx.x == 0) {{
        float m = -3.4e38f;
        for (int t = 0; t < width; t++)
            m = fmaxf(m, partial[t]);
        stat[0] = m;
    }}
    __syncthreads();
    float e = (col < width) ? expf(v - stat[0]) : 0.0f;
    partial[threadIdx.x] = e;
    __syncthreads();
    if (threadIdx.x == 0) {{
        float s = 0.0f;
        for (int t = 0; t < width; t++)
            s += partial[t];
        stat[1] = s;
    }}
    __syncthreads();
    if (col < width) {{
        probs[row * width + col] = e / stat[1];
    }}
}}
"""

_GEMM_ROW_TMPL = """
__global__ void {name}(const float *a, const float *b, const float *bias,
                       float *c, int n, int k) {{
    int row = blockIdx.x;
    int col = threadIdx.x;
    if (col < n) {{
        float acc = bias[col];
        for (int i = 0; i < k; i++)
            acc += a[row * k + i] * b[i * n + col];
        c[row * n + col] = acc;
    }}
}}
"""

_EWISE_GELU_TMPL = """
__global__ void {name}(const float *x, float *y, int n) {{
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {{
        float v = x[gid];
        y[gid] = 0.5f * v * (1.0f + erff(v * 0.70710678f));
    }}
}}
"""

_RESIDUAL_TMPL = """
__global__ void {name}(const float *x, const float *residual, float *y,
                       int n) {{
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n)
        y[gid] = x[gid] + residual[gid];
}}
"""

BERT_KERNELS: tuple[ZooKernel, ...] = (
    _ok(
        "BERT",
        "bert_embed_lookup",
        """
__global__ void bert_embed_lookup(const int *token_ids, const float *table,
                                  float *out, int hidden, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {
        int tok = token_ids[gid / hidden];
        out[gid] = table[tok * hidden + gid % hidden];
    }
}
""",
    ),
    _ok(
        "BERT",
        "bert_pos_embed_add",
        """
__global__ void bert_pos_embed_add(const float *x, const float *pos,
                                   float *y, int hidden, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n)
        y[gid] = x[gid] + pos[gid % hidden];
}
""",
    ),
    _ok("BERT", "bert_layernorm", _LAYERNORM_TMPL.format(name="bert_layernorm")),
    _ok("BERT", "bert_qkv_proj", _GEMM_ROW_TMPL.format(name="bert_qkv_proj")),
    _ok(
        "BERT",
        "bert_attn_scores",
        """
__global__ void bert_attn_scores(const float *q, const float *k_mat,
                                 float *scores, int seq, int dim,
                                 float scale) {
    int row = blockIdx.x;
    int col = threadIdx.x;
    if (col < seq) {
        float acc = 0.0f;
        for (int i = 0; i < dim; i++)
            acc += q[row * dim + i] * k_mat[col * dim + i];
        scores[row * seq + col] = acc * scale;
    }
}
""",
    ),
    _ok("BERT", "bert_softmax", _SOFTMAX_TMPL.format(name="bert_softmax")),
    _ok(
        "BERT",
        "bert_attn_apply",
        """
__global__ void bert_attn_apply(const float *probs, const float *v,
                                float *out, int seq, int dim) {
    int row = blockIdx.x;
    int col = threadIdx.x;
    if (col < dim) {
        float acc = 0.0f;
        for (int t = 0; t < seq; t++)
            acc += probs[row * seq + t] * v[t * dim + col];
        out[row * dim + col] = acc;
    }
}
""",
    ),
    _ok("BERT", "bert_attn_out_proj", _GEMM_ROW_TMPL.format(name="bert_attn_out_proj")),
    _ok("BERT", "bert_residual_add", _RESIDUAL_TMPL.format(name="bert_residual_add")),
    _ok("BERT", "bert_ffn_gemm", _GEMM_ROW_TMPL.format(name="bert_ffn_gemm")),
    _ok("BERT", "bert_gelu", _EWISE_GELU_TMPL.format(name="bert_gelu")),
    _ok(
        "BERT",
        "bert_pooler_tanh",
        """
__global__ void bert_pooler_tanh(const float *x, float *y, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n)
        y[gid] = tanhf(x[gid]);
}
""",
    ),
)

VIT_KERNELS: tuple[ZooKernel, ...] = (
    _ok(
        "ViT",
        "vit_patch_embed",
        """
__global__ void vit_patch_embed(const float *pixels, const float *proj,
                                float *tokens, int patch_elems, int hidden) {
    int patch = blockIdx.x;
    int col = threadIdx.x;
    if (col < hidden) {
        float acc = 0.0f;
        for (int i = 0; i < patch_elems; i++)
            acc += pixels[patch * patch_elems + i] * proj[i * hidden + col];
        tokens[patch * hidden + col] = acc;
    }
}
""",
    ),
    _ok(
        "ViT",
        "vit_cls_pos_add",
        """
__global__ void vit_cls_pos_add(const float *tokens, const float *pos,
                                float *y, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n)
        y[gid] = tokens[gid] + pos[gid];
}
""",
    ),
    _ok("ViT", "vit_layernorm", _LAYERNORM_TMPL.format(name="vit_layernorm")),
    _ok(
        "ViT",
        "vit_attn_scores",
        """
__global__ void vit_attn_scores(const float *q, const float *k_mat,
                                float *scores, int seq, int dim,
                                float scale) {
    int row = blockIdx.x;
    int col = threadIdx.x;
    if (col < seq) {
        float acc = 0.0f;
        for (int i = 0; i < dim; i++)
            acc += q[row * dim + i] * k_mat[col * dim + i];
        scores[row * seq + col] = acc * scale;
    }
}
""",
    ),
    _ok("ViT", "vit_softmax", _SOFTMAX_TMPL.format(name="vit_softmax")),
    _ok("ViT", "vit_mlp_gemm", _GEMM_ROW_TMPL.format(name="vit_mlp_gemm")),
    _ok("ViT", "vit_gelu", _EWISE_GELU_TMPL.format(name="vit_gelu")),
    _ok("ViT", "vit_residual", _RESIDUAL_TMPL.format(name="vit_residual")),
    _ok(
        "ViT",
        "vit_head_pool",
        """
__global__ void vit_head_pool(const float *tokens, float *pooled,
                              int ntokens, int hidden) {
    int feat = blockIdx.x * blockDim.x + threadIdx.x;
    if (feat < hidden) {
        float acc = 0.0f;
        for (int t = 0; t < ntokens; t++)
            acc += tokens[t * hidden + feat];
        pooled[feat] = acc / (float)ntokens;
    }
}
""",
    ),
)

AI_KERNELS: tuple[ZooKernel, ...] = BERT_KERNELS + VIT_KERNELS

assert len(BERT_KERNELS) == 12
assert len(VIT_KERNELS) == 9
assert len(AI_KERNELS) == 21

"""KMeans assignment kernel: the paper's callback-block case study.

The paper's KMeans launches **313 GPU blocks** (section 7.2), a count
chosen to expose the callback-block arithmetic: on 16 nodes each node
runs floor(313/16) = 19 blocks in the partial phase and 9 callback
blocks; on 32 nodes only 9 partial blocks but 25 callback blocks — so
every node executes *more* total blocks at 32 nodes than at 16, and the
kernel slows down.  The grid size here reproduces exactly that.

Data is laid out feature-major (``x[j * npoints + point]``), the
coalesced layout GPU KMeans implementations use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.frontend.parser import parse_kernel
from repro.workloads.base import WorkloadSpec

__all__ = ["build", "CUDA_SOURCE", "PAPER_GRID_BLOCKS"]

PAPER_GRID_BLOCKS = 313

CUDA_SOURCE = """
__global__ void kmeans_assign(const float *x, const float *centroids,
                              int *membership, int npoints, int nclusters,
                              int nfeatures) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= npoints) return;
    float best = 3.4e38f;
    int best_c = 0;
    for (int c = 0; c < nclusters; c++) {
        float dist = 0.0f;
        for (int j = 0; j < nfeatures; j++) {
            float diff = x[j * npoints + gid] - centroids[j * nclusters + c];
            dist += diff * diff;
        }
        best_c = (dist < best) ? c : best_c;
        best = fminf(dist, best);
    }
    membership[gid] = best_c;
}
"""

_SIZES = {
    "small": dict(block=16, nclusters=4, nfeatures=6),
    "paper": dict(block=256, nclusters=24, nfeatures=96),
}


def build(size: str = "small", seed: int = 0) -> WorkloadSpec:
    if size not in _SIZES:
        raise ReproError(f"unknown size {size!r}")
    p = _SIZES[size]
    block, k, d = p["block"], p["nclusters"], p["nfeatures"]
    # last block partially filled: exercises tail divergence on top of
    # the remainder-callback arithmetic
    npoints = PAPER_GRID_BLOCKS * block - block // 2
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((d, npoints)).astype(np.float32)
    centroids = rng.standard_normal((d, k)).astype(np.float32)

    # reference: same fp order (accumulate over j in order, ties -> lower c)
    best = np.full(npoints, 3.4e38, dtype=np.float32)
    best_c = np.zeros(npoints, dtype=np.int32)
    for c in range(k):
        dist = np.zeros(npoints, dtype=np.float32)
        for j in range(d):
            diff = x[j] - centroids[j, c]
            dist += diff * diff
        upd = dist < best
        best_c = np.where(upd, np.int32(c), best_c)
        best = np.minimum(dist, best)

    return WorkloadSpec(
        name="KMeans",
        kernel=parse_kernel(CUDA_SOURCE),
        grid=PAPER_GRID_BLOCKS,
        block=block,
        arrays={
            "x": x.reshape(-1).copy(),
            "centroids": centroids.reshape(-1).copy(),
            "membership": np.zeros(npoints, dtype=np.int32),
        },
        scalars={"npoints": npoints, "nclusters": k, "nfeatures": d},
        outputs=("membership",),
        reference={"membership": best_c},
    )

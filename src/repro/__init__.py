"""CuCC reproduction: scaling GPU-to-CPU migration to CPU clusters.

This package is a from-scratch Python reproduction of the PPoPP '26 paper
*Scaling GPU-to-CPU Migration for Efficient Distributed Execution on CPU
Clusters* (CuCC).  It contains the full stack the paper describes:

- a CUDA-subset frontend and Python kernel DSL lowering to a typed kernel
  IR (:mod:`repro.ir`, :mod:`repro.frontend`),
- the *Allgather distributable analysis* compiler pass
  (:mod:`repro.analysis`),
- GPU-block-to-CPU-function transformation and three-phase host module
  generation (:mod:`repro.transform`),
- a vectorized SPMD interpreter standing in for the generated CPU code
  (:mod:`repro.interp`),
- a simulated distributed-memory CPU cluster with an MPI-like communicator
  and an alpha-beta network model (:mod:`repro.cluster`),
- hardware performance models for the paper's CPUs and GPUs
  (:mod:`repro.hw`),
- the CuCC runtime implementing the three-phase workflow
  (:mod:`repro.runtime`),
- single-CPU, PGAS and GPU baselines (:mod:`repro.baselines`),
- the paper's evaluation workloads (:mod:`repro.workloads`), and
- experiment drivers regenerating every figure and table
  (:mod:`repro.bench`).

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

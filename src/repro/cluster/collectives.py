"""Collective algorithms: the Allgather zoo, schedules, and cost models.

Costs follow the classic alpha-beta (Hockney) model.  The seed modeled
exactly one algorithm — the large-payload ring — over a flat network;
real MPI/NCCL stacks select among several algorithms per (payload,
node count, topology) point, which is what this module now provides.

**The algorithm zoo.**  Every Allgather algorithm is expressed as a
*schedule*: an ordered list of rounds, each round a list of concurrent
``(src_rank, dst_rank, block_indices)`` sends, where block ``b`` is rank
``b``'s contribution.  The same schedule drives both the functional data
movement in :class:`~repro.cluster.comm.Communicator` (bit-identical
final buffers for every algorithm) and the cost model (each round priced
by the actual links it crosses via
:meth:`repro.cluster.topology.Topology.round_cost`):

* **ring** — ``n-1`` neighbour rounds, one block per rank per round:
  ``(n-1) * (alpha + S/(n*beta))`` on a flat fabric (the seed's model);
* **recursive_doubling** — partners at distance ``2^k`` exchange their
  accumulated halves; ``log2 n`` rounds for power-of-two ``n`` plus a
  dissemination fix-up otherwise;
* **bruck** — dissemination: rank ``r`` receives everything rank
  ``(r + 2^k) mod n`` holds; always ``ceil(log2 n)`` rounds;
* **hierarchical** — gather within each topology group (leaf switch)
  by a ring, exchange whole group slabs across group leaders, then fan
  out inside each group; minimises spine crossings on fat-trees.

Every schedule sends a block to a rank only while that rank is still
missing it, so all algorithms move exactly ``n*(n-1)`` block copies and
end with identical buffers; only their round structure — and therefore
their modeled cost on a given topology — differs.

The three Allgather *variants* of the paper's section 2.3 (balanced
in-place / out-of-place / imbalanced) are still modeled on top of
whichever algorithm is chosen; the legacy ring-only cost entry points
are kept unchanged.

These functions return *durations*; actual inter-node data movement is
performed by the :class:`~repro.cluster.comm.Communicator`.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache

from repro.cluster.topology import FlatTopology, Topology
from repro.errors import ClusterError
from repro.hw.specs import NetworkSpec

__all__ = [
    "AllgatherAlgo",
    "ALLGATHER_ALGOS",
    "allgather_schedule",
    "priced_round",
    "round_costs",
    "schedule_cost",
    "allgather_algo_cost",
    "allgather_inplace_cost",
    "allgather_outofplace_cost",
    "allgather_imbalanced_cost",
    "allreduce_cost",
    "reduce_cost",
    "bcast_cost",
    "barrier_cost",
    "ptp_cost",
    "rma_cost",
]


class AllgatherAlgo(str, Enum):
    """Zoo members, plus the ``auto`` sentinel resolved by the selector
    (:func:`repro.tuning.select_algorithm`)."""

    RING = "ring"
    RECURSIVE_DOUBLING = "recursive_doubling"
    BRUCK = "bruck"
    HIERARCHICAL = "hierarchical"
    AUTO = "auto"


#: concrete zoo members, in deterministic tie-break order (the selector
#: prefers earlier entries on equal cost, so a flat fabric keeps the
#: seed's ring whenever nothing beats it)
ALLGATHER_ALGOS = (
    AllgatherAlgo.RING.value,
    AllgatherAlgo.RECURSIVE_DOUBLING.value,
    AllgatherAlgo.BRUCK.value,
    AllgatherAlgo.HIERARCHICAL.value,
)


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------
Round = tuple[tuple[int, int, tuple[int, ...]], ...]


def _ring_rounds(n: int, order: tuple[int, ...]) -> list[Round]:
    """Ring over ``order`` (a cycle of ranks), each rank contributing its
    own block: round ``s`` forwards the block received ``s-1`` rounds ago
    to the next rank on the cycle."""
    k = len(order)
    rounds: list[Round] = []
    for s in range(1, k):
        sends = []
        for i, r in enumerate(order):
            blk = order[(i - s + 1) % k]
            sends.append((r, order[(i + 1) % k], (blk,)))
        rounds.append(tuple(sends))
    return rounds


def _schedule_ring(n: int, groups: tuple[tuple[int, ...], ...]) -> list[Round]:
    return _ring_rounds(n, tuple(range(n)))


def _schedule_recursive_doubling(
    n: int, groups: tuple[tuple[int, ...], ...]
) -> list[Round]:
    held = [{r} for r in range(n)]
    rounds: list[Round] = []
    dist = 1
    while dist < n:
        sends = []
        for r in range(n):
            p = r ^ dist
            if p >= n or p < r:
                continue
            fwd = tuple(sorted(held[r] - held[p]))
            back = tuple(sorted(held[p] - held[r]))
            if fwd:
                sends.append((r, p, fwd))
            if back:
                sends.append((p, r, back))
        for src, dst, blocks in sends:
            held[dst].update(blocks)
        if sends:
            rounds.append(tuple(sends))
        dist <<= 1
    # non-power-of-two remainder: dissemination fix-up rounds until every
    # rank holds every block (completes within ceil(log2 n) extra rounds)
    dist = 1
    while any(len(h) < n for h in held):
        sends = []
        for r in range(n):
            src = (r + dist) % n
            missing = tuple(sorted(held[src] - held[r]))
            if missing:
                sends.append((src, r, missing))
        for src, dst, blocks in sends:
            held[dst].update(blocks)
        rounds.append(tuple(sends))
        dist <<= 1
    return rounds


def _schedule_bruck(n: int, groups: tuple[tuple[int, ...], ...]) -> list[Round]:
    held = [{r} for r in range(n)]
    rounds: list[Round] = []
    dist = 1
    while dist < n:
        sends = []
        for r in range(n):
            src = (r + dist) % n
            missing = tuple(sorted(held[src] - held[r]))
            if missing:
                sends.append((src, r, missing))
        for src, dst, blocks in sends:
            held[dst].update(blocks)
        rounds.append(tuple(sends))
        dist <<= 1
    return rounds


def _schedule_hierarchical(
    n: int, groups: tuple[tuple[int, ...], ...]
) -> list[Round]:
    """Two-level: ring inside each group, slab exchange across leaders,
    fan-out to members.  Degenerates to the plain ring when the topology
    is one flat group."""
    groups = tuple(tuple(g) for g in groups if g)
    if sum(len(g) for g in groups) != n or sorted(
        r for g in groups for r in g
    ) != list(range(n)):
        raise ClusterError(f"groups {groups} do not partition {n} ranks")
    if len(groups) == 1:
        return _schedule_ring(n, groups)
    rounds: list[Round] = []
    # phase A: intra-group rings, all groups in parallel
    per_group = [_ring_rounds(n, g) for g in groups]
    for s in range(max(len(pg) for pg in per_group)):
        sends = tuple(
            send for pg in per_group if s < len(pg) for send in pg[s]
        )
        if sends:
            rounds.append(sends)
    # phase B: ring across group leaders, each carrying whole group slabs
    leaders = [g[0] for g in groups]
    ng = len(groups)
    for s in range(1, ng):
        sends = []
        for i in range(ng):
            slab = groups[(i - s + 1) % ng]
            sends.append((leaders[i], leaders[(i + 1) % ng], tuple(slab)))
        rounds.append(tuple(sends))
    # phase C: binomial fan-out of the remote slabs inside each group —
    # members that already received forward in parallel with the leader
    remote = [
        tuple(sorted(set(range(n)) - set(g))) for g in groups
    ]
    covered = [1 for _ in groups]  # members holding the remote slabs
    while any(c < len(g) for c, g in zip(covered, groups)):
        sends = []
        for i, g in enumerate(groups):
            c = covered[i]
            fan = min(c, len(g) - c)
            for j in range(fan):
                sends.append((g[j], g[c + j], remote[i]))
            covered[i] = c + fan
        rounds.append(tuple(sends))
    return rounds


_SCHEDULES = {
    AllgatherAlgo.RING.value: _schedule_ring,
    AllgatherAlgo.RECURSIVE_DOUBLING.value: _schedule_recursive_doubling,
    AllgatherAlgo.BRUCK.value: _schedule_bruck,
    AllgatherAlgo.HIERARCHICAL.value: _schedule_hierarchical,
}


@lru_cache(maxsize=512)
def allgather_schedule(
    algo: str, n: int, groups: tuple[tuple[int, ...], ...] | None = None
) -> tuple[Round, ...]:
    """The data-movement schedule of ``algo`` over ``n`` ranks.

    ``groups`` (defaults to one flat group) are the topology's locality
    domains, expressed in *rank* space; only the hierarchical algorithm
    reads them.  The result is memoised — schedules depend only on
    ``(algo, n, groups)``.
    """
    if algo not in _SCHEDULES:
        raise ClusterError(
            f"unknown allgather algorithm {algo!r}; choose from "
            f"{ALLGATHER_ALGOS} or 'auto'"
        )
    if n <= 1:
        return ()
    if groups is None:
        groups = (tuple(range(n)),)
    return tuple(_SCHEDULES[algo](n, groups))


def rank_groups(
    topo: Topology, positions: tuple[int, ...]
) -> tuple[tuple[int, ...], ...]:
    """Project the topology's physical locality domains onto current
    ranks: rank ``i`` sits at physical position ``positions[i]`` (born
    rank), which matters after shrink-recovery removed nodes."""
    by_pos = {p: i for i, p in enumerate(positions)}
    out = []
    for g in topo.groups():
        members = tuple(by_pos[p] for p in g if p in by_pos)
        if members:
            out.append(members)
    return tuple(out)


# ---------------------------------------------------------------------------
# schedule pricing
# ---------------------------------------------------------------------------
def priced_round(
    sends: Round,
    block_bytes: list[float],
    positions: tuple[int, ...],
) -> list[tuple[int, int, float]]:
    """One round's messages as the ``(src_pos, dst_pos, nbytes)`` list
    :meth:`~repro.cluster.topology.Topology.round_cost` prices.  The
    single source of pricing truth: :func:`round_costs` and the netflow
    ledger both go through here, so the ledger's re-pricing is
    bit-identical to the durations the simulation charged.
    """
    return [
        (
            positions[src],
            positions[dst],
            float(sum(block_bytes[b] for b in blocks)),
        )
        for src, dst, blocks in sends
    ]


def round_costs(
    topo: Topology,
    rounds: tuple[Round, ...],
    block_bytes: list[float],
    positions: tuple[int, ...] | None = None,
) -> list[float]:
    """Per-round modeled durations of a schedule, in round order.

    Each round is priced by the topology (including any link contention)
    over the physical positions its messages actually cross.  This is
    the per-round structure the tracer's ``round`` spans expose;
    :func:`schedule_cost` is exactly the left-to-right sum of this list,
    so traced round spans always tile the collective span precisely.
    """
    if positions is None:
        positions = tuple(range(len(block_bytes)))
    costs: list[float] = []
    for sends in rounds:
        if not sends:
            costs.append(0.0)
            continue
        costs.append(topo.round_cost(priced_round(sends, block_bytes,
                                                  positions)))
    return costs


def schedule_cost(
    topo: Topology,
    rounds: tuple[Round, ...],
    block_bytes: list[float],
    positions: tuple[int, ...] | None = None,
) -> float:
    """Modeled duration of a schedule: rounds execute back to back (the
    left-to-right sum of :func:`round_costs`)."""
    total = 0.0
    for c in round_costs(topo, rounds, block_bytes, positions):
        total += c
    return total


def allgather_algo_cost(
    algo: str,
    topo: Topology,
    total_bytes: float,
    positions: tuple[int, ...] | None = None,
) -> float:
    """Balanced Allgather cost of one zoo algorithm on a topology.

    ``positions`` maps current ranks to physical positions (defaults to
    the identity over the whole topology).  For the ring on a flat
    topology this reproduces :func:`allgather_inplace_cost` exactly.
    """
    if positions is None:
        positions = tuple(range(topo.num_nodes))
    n = len(positions)
    if n <= 1 or total_bytes <= 0:
        return 0.0
    rounds = allgather_schedule(algo, n, rank_groups(topo, positions))
    per_block = total_bytes / n
    return schedule_cost(topo, rounds, [per_block] * n, positions)


def ptp_cost(net: NetworkSpec, nbytes: float) -> float:
    """One point-to-point message."""
    return net.alpha_s + nbytes / net.beta_bytes_per_s


def allgather_inplace_cost(net: NetworkSpec, n: int, total_bytes: float) -> float:
    """Balanced in-place ring Allgather of ``total_bytes`` over ``n`` nodes."""
    if n <= 1 or total_bytes <= 0:
        return 0.0
    per_step = total_bytes / n
    return (n - 1) * (net.alpha_s + per_step / net.beta_bytes_per_s)


def allgather_outofplace_cost(
    net: NetworkSpec, n: int, total_bytes: float, local_copy_GBs: float
) -> float:
    """Out-of-place variant: wire cost plus the local input->output copy.

    ``local_copy_GBs`` is the node's memcpy bandwidth (copying S/N bytes
    read+write through DRAM).
    """
    if n <= 1 or total_bytes <= 0:
        return 0.0
    copy = 2.0 * (total_bytes / n) / (local_copy_GBs * 1e9)
    return allgather_inplace_cost(net, n, total_bytes) + copy


def allgather_imbalanced_cost(
    net: NetworkSpec, contributions: list[float]
) -> float:
    """Imbalanced ring Allgather: steps are paced by the largest share."""
    n = len(contributions)
    if n <= 1 or sum(contributions) <= 0:
        return 0.0
    worst = max(contributions)
    return (n - 1) * (net.alpha_s + worst / net.beta_bytes_per_s)


def allreduce_cost(net: NetworkSpec, n: int, nbytes: float) -> float:
    """Ring Allreduce (reduce-scatter + allgather): ~2x the Allgather wire
    time for the same payload."""
    if n <= 1 or nbytes <= 0:
        return 0.0
    per_step = nbytes / n
    return 2 * (n - 1) * (net.alpha_s + per_step / net.beta_bytes_per_s)


def reduce_cost(net: NetworkSpec, n: int, nbytes: float) -> float:
    """Binomial-tree reduction to one root."""
    if n <= 1 or nbytes <= 0:
        return 0.0
    import math

    steps = math.ceil(math.log2(n))
    return steps * (net.alpha_s + nbytes / net.beta_bytes_per_s)


def bcast_cost(net: NetworkSpec, n: int, nbytes: float) -> float:
    """Binomial-tree broadcast (pipelined for large payloads)."""
    if n <= 1:
        return 0.0
    import math

    steps = math.ceil(math.log2(n))
    # large payloads pipeline to ~one traversal of the wire
    return steps * net.alpha_s + nbytes / net.beta_bytes_per_s


def barrier_cost(net: NetworkSpec, n: int) -> float:
    if n <= 1:
        return 0.0
    import math

    return 2 * math.ceil(math.log2(n)) * net.alpha_s


def rma_cost(net: NetworkSpec, nops: float, nbytes: float) -> float:
    """Aggregate cost of ``nops`` fine-grained one-sided remote accesses
    totalling ``nbytes``, issued concurrently by one node's cores.

    Per-op software overhead is throughput-limited by the node's
    injection rate; payload goes at link bandwidth.  This is the PGAS
    path of the paper's sections 3.1 / 7.3.
    """
    if nops <= 0:
        return 0.0
    issue = nops / net.rma_rate_per_node
    sw = net.rma_alpha_s  # pipeline fill: first op's latency
    wire = nbytes / net.beta_bytes_per_s
    return sw + issue + wire

"""Collective algorithms and their cost models.

Costs follow the classic alpha-beta (Hockney) model on the ring
algorithm, which is what MPI implementations select for large-payload
Allgather.  The three Allgather variants of the paper's section 2.3 are
modeled:

* **balanced in-place** — each node contributes an equal slice that is
  already resident at its final offset: ``(N-1) * (alpha + S/(N*beta))``
  for total payload ``S``;
* **balanced out-of-place** — same wire traffic plus a local copy of the
  node's own slice from the input buffer to the output buffer, and 2x
  memory footprint;
* **imbalanced** — ring steps are paced by the largest contribution:
  ``(N-1) * (alpha + max_i(S_i)/beta)``.

These functions return *durations*; actual inter-node data movement is
performed by the :class:`~repro.cluster.comm.Communicator`.
"""

from __future__ import annotations

from repro.hw.specs import NetworkSpec

__all__ = [
    "allgather_inplace_cost",
    "allgather_outofplace_cost",
    "allgather_imbalanced_cost",
    "allreduce_cost",
    "reduce_cost",
    "bcast_cost",
    "barrier_cost",
    "ptp_cost",
    "rma_cost",
]


def ptp_cost(net: NetworkSpec, nbytes: float) -> float:
    """One point-to-point message."""
    return net.alpha_s + nbytes / net.beta_bytes_per_s


def allgather_inplace_cost(net: NetworkSpec, n: int, total_bytes: float) -> float:
    """Balanced in-place ring Allgather of ``total_bytes`` over ``n`` nodes."""
    if n <= 1 or total_bytes <= 0:
        return 0.0
    per_step = total_bytes / n
    return (n - 1) * (net.alpha_s + per_step / net.beta_bytes_per_s)


def allgather_outofplace_cost(
    net: NetworkSpec, n: int, total_bytes: float, local_copy_GBs: float
) -> float:
    """Out-of-place variant: wire cost plus the local input->output copy.

    ``local_copy_GBs`` is the node's memcpy bandwidth (copying S/N bytes
    read+write through DRAM).
    """
    if n <= 1 or total_bytes <= 0:
        return 0.0
    copy = 2.0 * (total_bytes / n) / (local_copy_GBs * 1e9)
    return allgather_inplace_cost(net, n, total_bytes) + copy


def allgather_imbalanced_cost(
    net: NetworkSpec, contributions: list[float]
) -> float:
    """Imbalanced ring Allgather: steps are paced by the largest share."""
    n = len(contributions)
    if n <= 1 or sum(contributions) <= 0:
        return 0.0
    worst = max(contributions)
    return (n - 1) * (net.alpha_s + worst / net.beta_bytes_per_s)


def allreduce_cost(net: NetworkSpec, n: int, nbytes: float) -> float:
    """Ring Allreduce (reduce-scatter + allgather): ~2x the Allgather wire
    time for the same payload."""
    if n <= 1 or nbytes <= 0:
        return 0.0
    per_step = nbytes / n
    return 2 * (n - 1) * (net.alpha_s + per_step / net.beta_bytes_per_s)


def reduce_cost(net: NetworkSpec, n: int, nbytes: float) -> float:
    """Binomial-tree reduction to one root."""
    if n <= 1 or nbytes <= 0:
        return 0.0
    import math

    steps = math.ceil(math.log2(n))
    return steps * (net.alpha_s + nbytes / net.beta_bytes_per_s)


def bcast_cost(net: NetworkSpec, n: int, nbytes: float) -> float:
    """Binomial-tree broadcast (pipelined for large payloads)."""
    if n <= 1:
        return 0.0
    import math

    steps = math.ceil(math.log2(n))
    # large payloads pipeline to ~one traversal of the wire
    return steps * net.alpha_s + nbytes / net.beta_bytes_per_s


def barrier_cost(net: NetworkSpec, n: int) -> float:
    if n <= 1:
        return 0.0
    import math

    return 2 * math.ceil(math.log2(n)) * net.alpha_s


def rma_cost(net: NetworkSpec, nops: float, nbytes: float) -> float:
    """Aggregate cost of ``nops`` fine-grained one-sided remote accesses
    totalling ``nbytes``, issued concurrently by one node's cores.

    Per-op software overhead is throughput-limited by the node's
    injection rate; payload goes at link bandwidth.  This is the PGAS
    path of the paper's sections 3.1 / 7.3.
    """
    if nops <= 0:
        return 0.0
    issue = nops / net.rma_rate_per_node
    sw = net.rma_alpha_s  # pipeline fill: first op's latency
    wire = nbytes / net.beta_bytes_per_s
    return sw + issue + wire

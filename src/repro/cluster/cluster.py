"""Cluster composition: nodes + network + communicator."""

from __future__ import annotations

from repro.cluster.comm import Communicator
from repro.cluster.node import Node
from repro.cluster.topology import Topology, make_topology
from repro.errors import ClusterError
from repro.hw.cpu import CPUSpec
from repro.hw.specs import CLUSTERS, CPU_NODES, INFINIBAND_100G, NetworkSpec

__all__ = ["Cluster", "make_cluster"]


class Cluster:
    """A simulated distributed-memory CPU cluster.

    All nodes are homogeneous (as in the paper's two clusters).  The
    cluster owns the communicator; runtimes allocate buffers through
    :mod:`repro.runtime.memory_manager` on top of it.
    """

    def __init__(
        self,
        node_spec: CPUSpec,
        num_nodes: int,
        network: NetworkSpec = INFINIBAND_100G,
        name: str | None = None,
        topology: Topology | str | None = None,
        tuning=None,
    ):
        if num_nodes < 1:
            raise ClusterError(f"cluster needs >= 1 node, got {num_nodes}")
        self.name = name or f"{num_nodes}x {node_spec.name}"
        self.node_spec = node_spec
        self.network = network
        if isinstance(topology, str):
            topology = make_topology(topology, num_nodes, network=network)
        self.nodes = [Node(r, node_spec) for r in range(num_nodes)]
        self.comm = Communicator(
            self.nodes, network, topology=topology, tuning=tuning
        )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node_spec.cores

    @property
    def peak_tflops(self) -> float:
        return self.num_nodes * self.node_spec.peak_tflops

    @property
    def max_clock(self) -> float:
        """Simulated time at the slowest node — the cluster's makespan."""
        return max(n.clock.now for n in self.nodes)

    @property
    def alive_nodes(self) -> list:
        return [n for n in self.nodes if n.alive]

    def remove_dead(self) -> list:
        """Shrink the cluster over the surviving nodes.

        Drops every dead node, re-ranks the survivors contiguously
        (``born_rank`` keeps the original identity) and rebuilds the
        communicator over them, carrying over the cumulative traffic
        accounting and any attached fault injector.  Returns the removed
        nodes.  Raises :class:`ClusterError` when nothing survives.
        """
        dead = [n for n in self.nodes if not n.alive]
        if not dead:
            return []
        survivors = [n for n in self.nodes if n.alive]
        if not survivors:
            raise ClusterError("all nodes failed; nothing to recover onto")
        for i, n in enumerate(survivors):
            n.rank = i
        self.nodes = survivors
        old = self.comm
        # topology describes physical positions, which survivors keep
        # (born ranks) — it is carried over unchanged, as is the tuning
        # cache
        self.comm = Communicator(
            survivors,
            self.network,
            injector=old.injector,
            topology=old.topology,
            tuning=old.tuning,
        )
        self.comm.comm_seconds = old.comm_seconds
        self.comm.comm_bytes = old.comm_bytes
        self.comm.tracer = old.tracer
        self.comm.metrics = old.metrics
        self.comm.netflow = old.netflow
        return dead

    def grow(self, born_ranks) -> list:
        """Rejoin replacement nodes at freed physical positions.

        The inverse of :meth:`remove_dead`: each ``born_rank`` must be a
        physical position not currently occupied (typically one a dead
        node freed).  Replacement nodes start with empty memory and a
        clock synchronized to the cluster makespan (a node cannot join
        in the past), and the whole cluster is re-ranked in born-rank
        order — growing back to full width therefore restores the exact
        original rank layout, and with it the original partition widths.
        The communicator is rebuilt over the new node set, carrying the
        injector, topology, tuning cache, tracer, metrics and cumulative
        traffic accounting, exactly as shrink recovery does.

        Returns the new nodes.  Raises :class:`ClusterError` on a
        position that is still occupied.
        """
        born_ranks = sorted(int(r) for r in born_ranks)
        if not born_ranks:
            return []
        taken = {n.born_rank for n in self.nodes}
        clash = [r for r in born_ranks if r in taken]
        if clash:
            raise ClusterError(
                f"cannot grow onto occupied position(s) {clash}"
            )
        if len(set(born_ranks)) != len(born_ranks):
            raise ClusterError(f"duplicate grow position(s) in {born_ranks}")
        start = self.max_clock
        fresh = []
        for br in born_ranks:
            node = Node(br, self.node_spec, born_rank=br)
            node.clock.reset(start)
            fresh.append(node)
        self.nodes = sorted(self.nodes + fresh, key=lambda n: n.born_rank)
        for i, n in enumerate(self.nodes):
            n.rank = i
        old = self.comm
        self.comm = Communicator(
            self.nodes,
            self.network,
            injector=old.injector,
            topology=old.topology,
            tuning=old.tuning,
        )
        self.comm.comm_seconds = old.comm_seconds
        self.comm.comm_bytes = old.comm_bytes
        self.comm.tracer = old.tracer
        self.comm.metrics = old.metrics
        self.comm.netflow = old.netflow
        return fresh

    def reset_clocks(self) -> None:
        for n in self.nodes:
            n.clock.reset()
        self.comm.comm_seconds = 0.0
        self.comm.comm_bytes = 0

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, {self.num_nodes} nodes, "
            f"{self.total_cores} cores, {self.peak_tflops:.2f} TFLOP/s)"
        )


def make_cluster(
    kind: str,
    num_nodes: int,
    cores_per_node: int | None = None,
    network: NetworkSpec | None = None,
    topology: Topology | str | None = None,
    tuning=None,
) -> Cluster:
    """Build one of the paper's clusters by name.

    ``kind`` is ``"simd-focused"`` or ``"thread-focused"`` (Table 1).
    ``cores_per_node`` optionally caps each node's core count (the
    section 8.2 experiment caps the Thread-Focused node at 64 cores).
    ``num_nodes`` may not exceed the physical cluster size.
    ``topology`` is a :class:`~repro.cluster.topology.Topology` or a kind
    name (``"flat"``, ``"fat-tree"``, ``"ring"``, ``"torus"``); ``tuning``
    an optional :class:`repro.tuning.TuningCache`.
    """
    key = kind.lower()
    if key not in CLUSTERS:
        raise ClusterError(
            f"unknown cluster {kind!r}; available: {sorted(CLUSTERS)}"
        )
    spec = CLUSTERS[key]
    if num_nodes > spec.max_nodes:
        raise ClusterError(
            f"{spec.name} cluster has {spec.max_nodes} nodes; "
            f"requested {num_nodes}"
        )
    node = spec.node
    if cores_per_node is not None:
        node = node.limited_to_cores(cores_per_node)
    return Cluster(
        node,
        num_nodes,
        network=network or spec.network,
        name=f"{spec.name} x{num_nodes}",
        topology=topology,
        tuning=tuning,
    )

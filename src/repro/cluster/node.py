"""A CPU node of the simulated cluster.

Each node owns a *private* memory space — a dict of separately allocated
NumPy arrays.  Nothing in the simulator shares array storage between
nodes; the only way data moves between nodes is through the communicator,
exactly as on a real distributed-memory cluster.  This is what makes the
simulation able to catch real consistency bugs: a missing Allgather slice
or a skipped callback block leaves some node's memory visibly wrong.

Fault-tolerance hooks: a node can :meth:`fail` (injected permanent
crash), after which its memory is unreachable — any access raises
:class:`~repro.errors.NodeFailure`, exactly as a dead peer answers on a
real cluster.  Straggler faults set the ``compute_multiplier`` /
``network_multiplier`` attributes (1.0 by default, i.e. no effect).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simtime import SimClock
from repro.errors import DeviceMemoryError, NodeFailure
from repro.hw.cpu import CPUSpec

__all__ = ["Node"]


class Node:
    """One CPU node: rank, hardware spec, private memory, simulated clock."""

    def __init__(self, rank: int, spec: CPUSpec, born_rank: int | None = None):
        self.rank = rank
        #: rank at cluster construction; stable across shrink-recovery
        #: re-ranking, and the rank fault plans address.  A replacement
        #: node joining after grow-recovery is *born into* the physical
        #: position (and therefore born rank) its dead predecessor freed.
        self.born_rank = rank if born_rank is None else born_rank
        self.spec = spec
        self.clock = SimClock()
        self.alive = True
        self.fail_reason: str | None = None
        #: straggler multipliers (set by fault injection; 1.0 = nominal)
        self.compute_multiplier = 1.0
        self.network_multiplier = 1.0
        self._memory: dict[str, np.ndarray] = {}

    # -- fault hooks ---------------------------------------------------
    def fail(self, reason: str = "injected node crash") -> None:
        """Mark this node permanently dead; its memory becomes unreachable."""
        self.alive = False
        self.fail_reason = reason

    def _require_alive(self) -> None:
        if not self.alive:
            raise NodeFailure(
                f"node {self.born_rank} is down ({self.fail_reason})",
                ranks=(self.born_rank,),
            )

    # -- memory management --------------------------------------------
    def alloc(self, name: str, size: int, dtype: np.dtype) -> np.ndarray:
        """Allocate a zero-initialized 1-D buffer in this node's memory."""
        self._require_alive()
        if name in self._memory:
            raise DeviceMemoryError(
                f"node {self.rank}: buffer {name!r} already exists"
            )
        arr = np.zeros(int(size), dtype=dtype)
        self._memory[name] = arr
        return arr

    def free(self, name: str) -> None:
        if name not in self._memory:
            raise DeviceMemoryError(f"node {self.rank}: no buffer {name!r}")
        del self._memory[name]

    def buffer(self, name: str) -> np.ndarray:
        self._require_alive()
        try:
            return self._memory[name]
        except KeyError:
            raise DeviceMemoryError(
                f"node {self.rank}: no buffer {name!r}"
            ) from None

    def has_buffer(self, name: str) -> bool:
        return name in self._memory

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        return self._memory

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self._memory.values())

    def __repr__(self) -> str:
        state = "" if self.alive else ", DOWN"
        return (
            f"Node(rank={self.rank}, spec={self.spec.name!r}, "
            f"t={self.clock.now:.6f}s, {len(self._memory)} buffers{state})"
        )

"""A CPU node of the simulated cluster.

Each node owns a *private* memory space — a dict of separately allocated
NumPy arrays.  Nothing in the simulator shares array storage between
nodes; the only way data moves between nodes is through the communicator,
exactly as on a real distributed-memory cluster.  This is what makes the
simulation able to catch real consistency bugs: a missing Allgather slice
or a skipped callback block leaves some node's memory visibly wrong.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simtime import SimClock
from repro.errors import MemoryError_
from repro.hw.cpu import CPUSpec

__all__ = ["Node"]


class Node:
    """One CPU node: rank, hardware spec, private memory, simulated clock."""

    def __init__(self, rank: int, spec: CPUSpec):
        self.rank = rank
        self.spec = spec
        self.clock = SimClock()
        self._memory: dict[str, np.ndarray] = {}

    # -- memory management --------------------------------------------
    def alloc(self, name: str, size: int, dtype: np.dtype) -> np.ndarray:
        """Allocate a zero-initialized 1-D buffer in this node's memory."""
        if name in self._memory:
            raise MemoryError_(f"node {self.rank}: buffer {name!r} already exists")
        arr = np.zeros(int(size), dtype=dtype)
        self._memory[name] = arr
        return arr

    def free(self, name: str) -> None:
        if name not in self._memory:
            raise MemoryError_(f"node {self.rank}: no buffer {name!r}")
        del self._memory[name]

    def buffer(self, name: str) -> np.ndarray:
        try:
            return self._memory[name]
        except KeyError:
            raise MemoryError_(f"node {self.rank}: no buffer {name!r}") from None

    def has_buffer(self, name: str) -> bool:
        return name in self._memory

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        return self._memory

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self._memory.values())

    def __repr__(self) -> str:
        return (
            f"Node(rank={self.rank}, spec={self.spec.name!r}, "
            f"t={self.clock.now:.6f}s, {len(self._memory)} buffers)"
        )

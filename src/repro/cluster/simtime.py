"""Simulated time.

Every node of the simulated cluster owns a :class:`SimClock`.  Kernel
execution advances a node's clock by modeled compute time; collectives
synchronize clocks and add modeled network time.  Wall-clock time of the
simulation process is unrelated to simulated time.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by a non-negative duration; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance a clock by {dt}")
        self._now += dt
        return self._now

    def wait_until(self, t: float) -> float:
        """Advance to at least ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, t: float = 0.0) -> None:
        self._now = float(t)

    def __repr__(self) -> str:
        return f"SimClock({self._now:.9f})"

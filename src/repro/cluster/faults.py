"""Deterministic fault injection for the simulated cluster.

The paper's target is long-running execution on real 32-node InfiniBand
partitions behind a Slurm queue, where node crashes, link degradation and
stragglers are routine.  This module lets experiments *schedule* such
faults ahead of time and replay them deterministically:

* :class:`NodeCrash` — a node dies permanently, either at a phase
  boundary of the three-phase workflow or at a simulated time;
* :class:`TransientFault` — a collective call times out (retrying may
  succeed), surfacing as :class:`~repro.errors.CollectiveTimeout`;
* :class:`CorruptionFault` — a collective delivers a corrupted payload
  (detected, as on real fabrics, by a receiver-side checksum), surfacing
  as :class:`~repro.errors.DataCorruptionError`;
* :class:`StragglerFault` — a node's compute and/or network slow down by
  a multiplier (thermal throttling, degraded link, noisy neighbour).

A :class:`FaultPlan` is an immutable, seeded collection of faults; the
stateful :class:`FaultInjector` delivers each fault exactly once and
keeps an ordered :class:`FaultEvent` log of everything it injected and
every recovery decision the runtime reported back.  Determinism is a
hard guarantee: the same plan against the same program yields the same
events, the same recovery decisions, byte-identical buffers and
identical modeled times on every run.

Fault injection is zero-overhead by default: a runtime constructed
without a plan never consults this module and behaves (functionally and
in modeled time) exactly as if it did not exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClusterError
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, SpanKind

__all__ = [
    "PHASES",
    "NodeCrash",
    "TransientFault",
    "CorruptionFault",
    "StragglerFault",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "fault_to_dict",
    "fault_from_dict",
    "event_to_dict",
    "event_from_dict",
]

#: Phase-boundary names at which scheduled crashes can fire, in workflow
#: order.  ``partial`` fires before any block executes, ``allgather``
#: after the partial phase (its writes are lost on the dead rank), and
#: ``callback`` after the Allgather restored the replication invariant.
PHASES = ("partial", "allgather", "callback")


# ---------------------------------------------------------------------------
# fault descriptions (immutable, hashable)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NodeCrash:
    """Permanent loss of one node.

    Exactly one of ``phase`` / ``time`` selects the trigger: the start of
    a named workflow phase, or the first phase boundary at which the
    cluster's simulated clock has reached ``time``.  ``launch`` optionally
    restricts a phase-triggered crash to the nth launch (1-based).
    """

    rank: int
    phase: str | None = None
    time: float | None = None
    launch: int | None = None

    def __post_init__(self) -> None:
        if (self.phase is None) == (self.time is None):
            raise ClusterError("NodeCrash needs exactly one of phase/time")
        if self.phase is not None and self.phase not in PHASES:
            raise ClusterError(
                f"unknown crash phase {self.phase!r}; choose from {PHASES}"
            )


@dataclass(frozen=True)
class TransientFault:
    """The ``op``-th collective call (1-based, counted across the whole
    run) times out; ``count`` consecutive attempts fail before the
    operation succeeds.  ``timeout_s`` is the modeled detection time
    charged to every participant per failed attempt."""

    op: int
    count: int = 1
    timeout_s: float = 1e-3


@dataclass(frozen=True)
class CorruptionFault:
    """The ``op``-th collective call delivers rank ``rank``'s contribution
    corrupted (one byte flipped in every destination copy).  The source
    replica stays intact, so a retry repairs the damage."""

    op: int
    rank: int = 0


@dataclass(frozen=True)
class StragglerFault:
    """Persistent slowdown of one node from the moment the plan is armed:
    compute times scale by ``compute``, collectives the node participates
    in scale by ``network``."""

    rank: int
    compute: float = 1.0
    network: float = 1.0

    def __post_init__(self) -> None:
        if self.compute < 1.0 or self.network < 1.0:
            raise ClusterError("straggler multipliers must be >= 1.0")


Fault = NodeCrash | TransientFault | CorruptionFault | StragglerFault


# ---------------------------------------------------------------------------
# the event log
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or recovery decision, stamped with the cluster's
    simulated time at which it happened."""

    kind: str  # crash|transient|corruption|straggler|straggler-detected|
    #            retry|backoff|recover-shrink|restore|replan
    time: float
    rank: int | None = None
    detail: str = ""

    def describe(self) -> str:
        who = f" rank {self.rank}" if self.rank is not None else ""
        return f"[{self.time * 1e3:9.4f} ms] {self.kind}{who}: {self.detail}"


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults.

    ``seed`` drives every random choice the injector makes (corruption
    byte positions); two runs with the same plan are bit-identical.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> FaultPlan:
        """Build a plan from a CLI spec string — see
        :func:`parse_fault_spec`."""
        return cls(faults=parse_fault_spec(spec), seed=seed)

    @classmethod
    def random(
        cls,
        seed: int,
        num_nodes: int,
        crashes: int = 1,
        stragglers: int = 0,
        transients: int = 0,
    ) -> FaultPlan:
        """Generate a deterministic random plan (benchmark sweeps).

        Crash ranks/phases, straggler ranks/multipliers and transient op
        indices are drawn from ``numpy`` RNG seeded with ``seed``; rank 0
        is never crashed more than ``num_nodes - 1`` times in total so a
        survivor always remains.
        """
        rng = np.random.default_rng(seed)
        faults: list[Fault] = []
        crashes = min(crashes, num_nodes - 1)
        ranks = rng.permutation(num_nodes)[:crashes] if crashes > 0 else []
        for r in ranks:
            faults.append(
                NodeCrash(rank=int(r), phase=PHASES[int(rng.integers(len(PHASES)))])
            )
        for _ in range(stragglers):
            faults.append(
                StragglerFault(
                    rank=int(rng.integers(num_nodes)),
                    compute=float(1.5 + 3.0 * rng.random()),
                    network=float(1.0 + rng.random()),
                )
            )
        for _ in range(transients):
            faults.append(TransientFault(op=int(rng.integers(1, 4))))
        return cls(faults=tuple(faults), seed=seed)


def parse_fault_spec(spec: str) -> tuple[Fault, ...]:
    """Parse the CLI ``--faults`` grammar into fault objects.

    Entries are ``;``-separated, each ``kind:key=value,key=value``::

        crash:rank=1,phase=allgather      crash:rank=2,time=0.004
        transient:op=1,count=2            corrupt:op=1,rank=0
        straggler:rank=3,compute=4.0,network=2.0
    """
    faults: list[Fault] = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, body = entry.partition(":")
        kv: dict[str, str] = {}
        if body:
            for pair in body.split(","):
                if "=" not in pair:
                    raise ClusterError(
                        f"fault spec {entry!r}: expected key=value, got {pair!r}"
                    )
                k, v = pair.split("=", 1)
                kv[k.strip()] = v.strip()
        try:
            if kind == "crash":
                faults.append(
                    NodeCrash(
                        rank=int(kv.pop("rank")),
                        phase=kv.pop("phase", None),
                        time=float(kv.pop("time")) if "time" in kv else None,
                        launch=int(kv.pop("launch")) if "launch" in kv else None,
                    )
                )
            elif kind == "transient":
                faults.append(
                    TransientFault(
                        op=int(kv.pop("op")),
                        count=int(kv.pop("count", 1)),
                        timeout_s=float(kv.pop("timeout", 1e-3)),
                    )
                )
            elif kind == "corrupt":
                faults.append(
                    CorruptionFault(op=int(kv.pop("op")), rank=int(kv.pop("rank", 0)))
                )
            elif kind == "straggler":
                faults.append(
                    StragglerFault(
                        rank=int(kv.pop("rank")),
                        compute=float(kv.pop("compute", 1.0)),
                        network=float(kv.pop("network", 1.0)),
                    )
                )
            else:
                raise ClusterError(
                    f"unknown fault kind {kind!r}; choose crash/transient/"
                    "corrupt/straggler"
                )
        except KeyError as e:
            raise ClusterError(f"fault spec {entry!r}: missing {e.args[0]}") from None
        except ValueError as e:
            raise ClusterError(f"fault spec {entry!r}: {e}") from None
        if kv:
            raise ClusterError(
                f"fault spec {entry!r}: unknown keys {sorted(kv)}"
            )
    return tuple(faults)


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    The runtime arms it per launch (:meth:`begin_launch`), the
    communicator consults it per collective (:meth:`begin_collective`),
    and the runtime polls scheduled crashes at every phase boundary
    (:meth:`poll_crashes`).  Each fault in the plan fires at most once —
    delivery is tracked by the fault's position in the plan, so duplicate
    fault entries fire independently.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.events: list[FaultEvent] = []
        self.op_index = 0
        self.launch_index = 0
        #: span tracer mirrored by :meth:`record` (the runtime attaches
        #: its own; disabled by default)
        self.tracer = NULL_TRACER
        self._fired: set[int] = set()
        #: (plan index, remaining extra failures) for a multi-shot
        #: transient currently being retried
        self._active_transient: tuple[int, int] | None = None

    # -- event log ---------------------------------------------------------
    def record(
        self, kind: str, time: float, rank: int | None = None, detail: str = ""
    ) -> FaultEvent:
        ev = FaultEvent(kind=kind, time=time, rank=rank, detail=detail)
        self.events.append(ev)
        if self.tracer.enabled:
            self.tracer.instant(
                kind, SpanKind.FAULT, time, rank=rank, detail=detail
            )
        METRICS.inc("faults.events", kind=kind)
        return ev

    # -- launch arming -----------------------------------------------------
    def begin_launch(self, nodes) -> int:
        """Arm the plan for a new launch; applies pending straggler
        multipliers to the (alive) nodes.  Returns the event-log cursor so
        the caller can slice this launch's events afterwards."""
        self.launch_index += 1
        for i, f in enumerate(self.plan.faults):
            if not isinstance(f, StragglerFault) or i in self._fired:
                continue
            node = _find(nodes, f.rank)
            if node is None:
                continue
            self._fired.add(i)
            node.compute_multiplier = max(node.compute_multiplier, f.compute)
            node.network_multiplier = max(node.network_multiplier, f.network)
            self.record(
                "straggler",
                node.clock.now,
                rank=f.rank,
                detail=f"compute x{f.compute:g}, network x{f.network:g}",
            )
        return len(self.events)

    # -- phase boundaries --------------------------------------------------
    def poll_crashes(self, phase: str, now: float, nodes) -> list:
        """Deliver every crash due at this phase boundary; kills the nodes
        and returns them (empty list when nothing fires)."""
        killed = []
        for i, f in enumerate(self.plan.faults):
            if not isinstance(f, NodeCrash) or i in self._fired:
                continue
            if f.launch is not None and f.launch != self.launch_index:
                continue
            due = (
                f.phase == phase
                if f.phase is not None
                else f.time is not None and now >= f.time
            )
            if not due:
                continue
            self._fired.add(i)
            node = _find(nodes, f.rank)
            if node is None or not node.alive:
                continue  # already dead / removed: the crash is moot
            node.fail(f"injected crash at {phase} boundary")
            self.record(
                "crash", now, rank=f.rank, detail=f"at {phase} boundary"
            )
            killed.append(node)
        return killed

    # -- collectives -------------------------------------------------------
    def begin_collective(self, op: str, now: float):
        """Advance the collective counter; returns the fault to apply to
        this call (a :class:`TransientFault` / :class:`CorruptionFault`)
        or ``None``."""
        self.op_index += 1
        if self._active_transient is not None:
            i, left = self._active_transient
            fault = self.plan.faults[i]
            self._active_transient = (i, left - 1) if left > 1 else None
            self.record(
                "transient", now, detail=f"{op} (attempt retry) timed out"
            )
            return fault
        for i, f in enumerate(self.plan.faults):
            if i in self._fired:
                continue
            if isinstance(f, TransientFault) and f.op == self.op_index:
                self._fired.add(i)
                if f.count > 1:
                    self._active_transient = (i, f.count - 1)
                self.record(
                    "transient", now, detail=f"{op} #{self.op_index} timed out"
                )
                return f
            if isinstance(f, CorruptionFault) and f.op == self.op_index:
                self._fired.add(i)
                self.record(
                    "corruption",
                    now,
                    rank=f.rank,
                    detail=f"{op} #{self.op_index} payload corrupted",
                )
                return f
        return None

    def corrupt(self, chunk: np.ndarray) -> np.ndarray:
        """Return a corrupted copy of a payload chunk (one byte flipped at
        a seeded-random position)."""
        bad = chunk.copy()
        raw = bad.view(np.uint8).reshape(-1)
        raw[int(self.rng.integers(raw.size))] ^= 0xFF
        return bad

    # -- durable-checkpoint support ---------------------------------------
    def export_state(self) -> dict:
        """Full mutable state as a JSON-serializable dict.

        Together with the plan this captures everything a durable
        checkpoint needs to resume fault delivery bit-identically: the
        collective/launch cursors, which plan entries already fired, the
        in-flight multi-shot transient, the RNG's bit-generator state and
        the complete event log.
        """
        return {
            "seed": self.plan.seed,
            "faults": [fault_to_dict(f) for f in self.plan.faults],
            "op_index": self.op_index,
            "launch_index": self.launch_index,
            "fired": sorted(self._fired),
            "active_transient": (
                list(self._active_transient)
                if self._active_transient is not None
                else None
            ),
            "rng_state": self.rng.bit_generator.state,
            "events": [event_to_dict(e) for e in self.events],
        }

    @classmethod
    def from_state(cls, state: dict) -> FaultInjector:
        """Rebuild an injector from :meth:`export_state` output."""
        plan = FaultPlan(
            faults=tuple(fault_from_dict(d) for d in state["faults"]),
            seed=int(state["seed"]),
        )
        inj = cls(plan)
        inj.op_index = int(state["op_index"])
        inj.launch_index = int(state["launch_index"])
        inj._fired = set(int(i) for i in state["fired"])
        at = state.get("active_transient")
        inj._active_transient = (
            (int(at[0]), int(at[1])) if at is not None else None
        )
        inj.rng.bit_generator.state = state["rng_state"]
        inj.events = [event_from_dict(d) for d in state["events"]]
        return inj


#: serialized-kind tag -> fault class (durable-checkpoint codec)
_FAULT_KINDS: dict[str, type] = {
    "crash": NodeCrash,
    "transient": TransientFault,
    "corrupt": CorruptionFault,
    "straggler": StragglerFault,
}


def fault_to_dict(fault: Fault) -> dict:
    """One fault as a JSON-serializable dict (see :func:`fault_from_dict`)."""
    import dataclasses

    for tag, klass in _FAULT_KINDS.items():
        if type(fault) is klass:
            return {"kind": tag, **dataclasses.asdict(fault)}
    raise ClusterError(f"cannot serialize fault {fault!r}")


def fault_from_dict(d: dict) -> Fault:
    """Inverse of :func:`fault_to_dict`."""
    d = dict(d)
    tag = d.pop("kind", None)
    klass = _FAULT_KINDS.get(tag)
    if klass is None:
        raise ClusterError(f"unknown serialized fault kind {tag!r}")
    return klass(**d)


def event_to_dict(ev: FaultEvent) -> dict:
    return {
        "kind": ev.kind, "time": ev.time, "rank": ev.rank,
        "detail": ev.detail,
    }


def event_from_dict(d: dict) -> FaultEvent:
    return FaultEvent(
        kind=d["kind"], time=d["time"], rank=d["rank"], detail=d["detail"]
    )


def _find(nodes, born_rank: int):
    for n in nodes:
        if n.born_rank == born_rank:
            return n
    return None

"""Hierarchical network topologies for the simulated cluster.

The flat alpha-beta :class:`~repro.hw.specs.NetworkSpec` prices every
pair of nodes identically, which is what the seed's ring-only cost model
assumed.  Real clusters are not flat: the paper's 32-node SIMD-Focused
partition is a two-level InfiniBand fat-tree (cheap intra-switch links,
a shared spine between leaf switches), and the 4-node EPYC cluster is
effectively a single switch.  Collective-algorithm choice depends on
that structure — a ring only ever crosses neighbour links, recursive
doubling crosses the spine with its largest payloads, a hierarchical
allgather confines almost all traffic inside the leaf switches.

A :class:`Topology` therefore answers three questions the collective
engine asks:

* :meth:`~Topology.link` — the (alpha, beta) pair a message between two
  *physical positions* crosses (multi-hop paths fold the per-hop latency
  into alpha and divide beta);
* :meth:`~Topology.groups` — the locality domains (leaf switches) that
  the hierarchical algorithm gathers within before exchanging across;
* :meth:`~Topology.round_cost` — the modeled duration of one schedule
  round, where a topology may model *contention*: a leaf switch's uplink
  is shared, so many concurrent inter-switch senders from the same
  switch serialize on it (this is why hierarchical beats recursive
  doubling on oversubscribed fat-trees at large payloads).

Positions are *born ranks*: after shrink-and-repartition recovery the
surviving nodes keep their physical place in the network, so link
pricing keeps using the positions they were born at.

All topologies are frozen (hashable) dataclasses, so schedules and costs
can be memoised per (algorithm, size, topology) point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError
from repro.hw.specs import NetworkSpec

__all__ = [
    "Topology",
    "FlatTopology",
    "FatTreeTopology",
    "RingTopology",
    "TorusTopology",
    "make_topology",
    "fat_tree_from_network",
    "TOPOLOGY_KINDS",
]

#: CLI-facing topology kinds accepted by :func:`make_topology`.
TOPOLOGY_KINDS = ("flat", "fat-tree", "ring", "torus")


@dataclass(frozen=True)
class Topology:
    """Base class: a network over ``num_nodes`` physical positions.

    Subclasses define :meth:`link`; the default :meth:`groups` is one
    flat domain and the default :meth:`round_cost` is the classic
    alpha-beta maximum over a round's concurrent messages.
    """

    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ClusterError(
                f"topology needs >= 1 node, got {self.num_nodes}"
            )

    # -- structure ------------------------------------------------------
    def link(self, src: int, dst: int) -> tuple[float, float]:
        """(alpha_s, beta_bytes_per_s) of the path ``src -> dst``."""
        raise NotImplementedError

    def groups(self) -> tuple[tuple[int, ...], ...]:
        """Locality domains (physical positions) for the hierarchical
        algorithm; one flat domain unless the topology has structure."""
        return (tuple(range(self.num_nodes)),)

    # -- pricing --------------------------------------------------------
    def round_cost(self, sends: list[tuple[int, int, float]]) -> float:
        """Duration of one schedule round: ``sends`` are concurrent
        ``(src_pos, dst_pos, nbytes)`` messages; the round finishes when
        the slowest message does."""
        worst = 0.0
        for src, dst, nbytes in sends:
            alpha, beta = self.link(src, dst)
            worst = max(worst, alpha + nbytes / beta)
        return worst

    @property
    def signature(self) -> str:
        """Stable identity used as a tuning-cache key component."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.signature


@dataclass(frozen=True)
class FlatTopology(Topology):
    """Every pair of nodes sees the same alpha-beta link — the seed's
    :class:`~repro.hw.specs.NetworkSpec` behaviour, unchanged."""

    network: NetworkSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.network is None:
            raise ClusterError("FlatTopology needs a NetworkSpec")

    def link(self, src: int, dst: int) -> tuple[float, float]:
        return self.network.alpha_s, self.network.beta_bytes_per_s

    @property
    def signature(self) -> str:
        n = self.network
        return f"flat(a={n.alpha_s:g},b={n.beta_GBs:g})"


@dataclass(frozen=True)
class FatTreeTopology(Topology):
    """Two-level fat-tree: leaf switches of ``nodes_per_switch`` ports
    with an (intra_alpha, intra_beta) pair inside a switch and an
    (inter_alpha, inter_beta) pair across the spine.

    ``uplinks`` models oversubscription: concurrent inter-switch senders
    hanging off the same leaf switch share its uplinks, so a round with
    ``c`` such senders sees its spine bandwidth divided by
    ``ceil(c / uplinks)``.  This is the property that makes the
    gather-within-switch-then-exchange hierarchical allgather the right
    algorithm at scale.
    """

    nodes_per_switch: int = 1
    intra_alpha_s: float = 1.0e-6
    intra_beta_GBs: float = 12.0
    inter_alpha_s: float = 2.0e-6
    inter_beta_GBs: float = 11.0
    uplinks: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes_per_switch < 1:
            raise ClusterError(
                f"fat-tree needs >= 1 node per switch, got "
                f"{self.nodes_per_switch}"
            )
        if self.uplinks < 1:
            raise ClusterError(f"fat-tree needs >= 1 uplink, got {self.uplinks}")

    def switch_of(self, pos: int) -> int:
        return pos // self.nodes_per_switch

    def link(self, src: int, dst: int) -> tuple[float, float]:
        if self.switch_of(src) == self.switch_of(dst):
            return self.intra_alpha_s, self.intra_beta_GBs * 1e9
        return self.inter_alpha_s, self.inter_beta_GBs * 1e9

    def groups(self) -> tuple[tuple[int, ...], ...]:
        k = self.nodes_per_switch
        return tuple(
            tuple(range(lo, min(lo + k, self.num_nodes)))
            for lo in range(0, self.num_nodes, k)
        )

    def round_cost(self, sends: list[tuple[int, int, float]]) -> float:
        # uplink contention: count concurrent spine-crossing senders per
        # leaf switch, then price each such message with its share of the
        # switch's uplink bandwidth
        crossing: dict[int, int] = {}
        for src, dst, _ in sends:
            s = self.switch_of(src)
            if s != self.switch_of(dst):
                crossing[s] = crossing.get(s, 0) + 1
        worst = 0.0
        for src, dst, nbytes in sends:
            alpha, beta = self.link(src, dst)
            s = self.switch_of(src)
            if s != self.switch_of(dst):
                share = -(-crossing[s] // self.uplinks)  # ceil
                beta /= share
            worst = max(worst, alpha + nbytes / beta)
        return worst

    @property
    def signature(self) -> str:
        return (
            f"fat-tree(k={self.nodes_per_switch},u={self.uplinks},"
            f"ai={self.intra_alpha_s:g},bi={self.intra_beta_GBs:g},"
            f"ax={self.inter_alpha_s:g},bx={self.inter_beta_GBs:g})"
        )


@dataclass(frozen=True)
class RingTopology(Topology):
    """Physical ring: only neighbour links exist; a message between
    positions ``d`` hops apart pays ``d`` link latencies and traverses
    ``d`` store-and-forward hops (beta divided by the hop count)."""

    alpha_s: float = 2.0e-6
    beta_GBs: float = 11.0

    def hops(self, src: int, dst: int) -> int:
        d = abs(src - dst) % self.num_nodes
        return min(d, self.num_nodes - d)

    def link(self, src: int, dst: int) -> tuple[float, float]:
        d = max(1, self.hops(src, dst))
        return d * self.alpha_s, self.beta_GBs * 1e9 / d

    @property
    def signature(self) -> str:
        return f"ring(a={self.alpha_s:g},b={self.beta_GBs:g})"


@dataclass(frozen=True)
class TorusTopology(Topology):
    """2-D torus of ``dims = (x, y)`` with wraparound in both dimensions;
    hop count is the Manhattan distance on the torus."""

    dims: tuple[int, int] = (1, 1)
    alpha_s: float = 2.0e-6
    beta_GBs: float = 11.0

    def __post_init__(self) -> None:
        super().__post_init__()
        dx, dy = self.dims
        if dx * dy != self.num_nodes:
            raise ClusterError(
                f"torus dims {self.dims} cover {dx * dy} nodes, "
                f"not {self.num_nodes}"
            )

    def hops(self, src: int, dst: int) -> int:
        dx, dy = self.dims
        sx, sy = src % dx, src // dx
        tx, ty = dst % dx, dst // dx
        hx = min(abs(sx - tx), dx - abs(sx - tx))
        hy = min(abs(sy - ty), dy - abs(sy - ty))
        return hx + hy

    def link(self, src: int, dst: int) -> tuple[float, float]:
        d = max(1, self.hops(src, dst))
        return d * self.alpha_s, self.beta_GBs * 1e9 / d

    def groups(self) -> tuple[tuple[int, ...], ...]:
        # rows of the torus are its natural locality domains
        dx, _ = self.dims
        return tuple(
            tuple(range(lo, lo + dx)) for lo in range(0, self.num_nodes, dx)
        )

    @property
    def signature(self) -> str:
        return (
            f"torus(d={self.dims[0]}x{self.dims[1]},"
            f"a={self.alpha_s:g},b={self.beta_GBs:g})"
        )


def fat_tree_from_network(
    network: NetworkSpec, num_nodes: int, nodes_per_switch: int | None = None
) -> FatTreeTopology:
    """Build the two-level fat-tree a :class:`NetworkSpec` describes.

    Uses the spec's ``switch_radix`` / ``intra_*`` fields when present,
    falling back to the inter-switch parameters for both levels.
    """
    k = nodes_per_switch or network.switch_radix or max(1, num_nodes)
    return FatTreeTopology(
        num_nodes=num_nodes,
        nodes_per_switch=k,
        intra_alpha_s=network.intra_alpha_s or network.alpha_s,
        intra_beta_GBs=network.intra_beta_GBs or network.beta_GBs,
        inter_alpha_s=network.alpha_s,
        inter_beta_GBs=network.beta_GBs,
    )


def _torus_dims(n: int) -> tuple[int, int]:
    """The most-square factorisation of ``n`` (x >= y)."""
    best = (n, 1)
    y = 1
    while y * y <= n:
        if n % y == 0:
            best = (n // y, y)
        y += 1
    return best


def make_topology(
    kind: str,
    num_nodes: int,
    network: NetworkSpec | None = None,
    **kwargs: object,
) -> Topology:
    """Build a topology by CLI name (see :data:`TOPOLOGY_KINDS`).

    ``fat-tree`` accepts an optional ``:K`` suffix forcing ``K`` nodes
    per leaf switch (e.g. ``fat-tree:2``) — without it the network
    spec's switch radix applies, which on small clusters puts every
    node in one switch and never exercises the uplinks.
    """
    from repro.hw.specs import INFINIBAND_100G

    net = network or INFINIBAND_100G
    key = kind.lower()
    if key == "flat":
        return FlatTopology(num_nodes, network=net)
    if key == "fat-tree" or key.startswith("fat-tree:"):
        k = kwargs.pop("nodes_per_switch", None)
        if key != "fat-tree":
            suffix = key.split(":", 1)[1]
            try:
                k = int(suffix)
            except ValueError:
                raise ClusterError(
                    f"bad fat-tree switch size {suffix!r} in {kind!r}"
                ) from None
        return fat_tree_from_network(net, num_nodes, nodes_per_switch=k)
    if key == "ring":
        return RingTopology(
            num_nodes, alpha_s=net.alpha_s, beta_GBs=net.beta_GBs
        )
    if key == "torus":
        dims = kwargs.pop("dims", None) or _torus_dims(num_nodes)
        return TorusTopology(
            num_nodes,
            dims=tuple(dims),
            alpha_s=net.alpha_s,
            beta_GBs=net.beta_GBs,
        )
    raise ClusterError(
        f"unknown topology {kind!r}; choose from {TOPOLOGY_KINDS}"
    )

"""MPI-like communicator over the simulated cluster.

The communicator is the *only* channel through which bytes move between
node memories.  Every operation does two things: it physically copies
data between the nodes' private NumPy buffers (functional effect), and it
advances the participating nodes' simulated clocks by the modeled cost
(timing effect).  Collective semantics follow MPI: all ranks participate,
and completion synchronizes clocks to the common finish time.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import collectives as coll
from repro.cluster.faults import CorruptionFault, FaultInjector, TransientFault
from repro.cluster.node import Node
from repro.cluster.topology import FlatTopology, Topology
from repro.errors import ClusterError, CollectiveTimeout, DataCorruptionError, NodeFailure
from repro.hw.specs import NetworkSpec
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, SpanKind

__all__ = ["Communicator"]


class Communicator:
    """Collective + point-to-point operations over a set of nodes.

    An optional :class:`~repro.cluster.faults.FaultInjector` can be
    attached (``injector`` attribute); when present, every collective
    consults it before moving bytes, so injected faults surface as the
    typed exceptions :class:`~repro.errors.NodeFailure`,
    :class:`~repro.errors.CollectiveTimeout` and
    :class:`~repro.errors.DataCorruptionError`.  Without an injector
    (the default) no hook runs and behaviour is exactly fault-free.

    The Allgather variants accept an ``algo`` parameter naming a zoo
    member (see :data:`repro.cluster.collectives.ALLGATHER_ALGOS`) or
    ``"auto"`` (default), which resolves through the tuning cache when
    one is attached and otherwise through the cost-model selector over
    the communicator's :class:`~repro.cluster.topology.Topology`.  Every
    algorithm moves bytes through the same schedule machinery and ends
    with bit-identical buffers; only the modeled duration differs.
    """

    def __init__(
        self,
        nodes: list[Node],
        network: NetworkSpec,
        injector: FaultInjector | None = None,
        topology: Topology | None = None,
        tuning=None,
    ):
        if not nodes:
            raise ClusterError("communicator needs at least one node")
        self.nodes = nodes
        self.network = network
        self.injector = injector
        #: network topology used for schedule pricing and auto-selection;
        #: defaults to the flat fabric the NetworkSpec describes
        self.topology = topology or FlatTopology(len(nodes), network=network)
        if self.topology.num_nodes < len(nodes):
            raise ClusterError(
                f"topology has {self.topology.num_nodes} positions for "
                f"{len(nodes)} nodes"
            )
        #: optional :class:`repro.tuning.TuningCache` consulted by "auto"
        self.tuning = tuning
        #: span tracer (the runtime attaches its own; disabled by default)
        self.tracer = NULL_TRACER
        #: metrics registry fed per collective (the autotuner swaps in a
        #: disabled one so sweep traffic does not pollute run statistics)
        self.metrics = METRICS
        #: optional :class:`repro.obs.netflow.NetFlowLedger` fed one raw
        #: record per schedule-driven collective (None-checked like the
        #: tracer: no ledger, no work)
        self.netflow = None
        #: algorithm chosen by the most recent Allgather call
        self.last_algorithm: str | None = None
        #: cumulative modeled seconds spent in communication (all ops)
        self.comm_seconds = 0.0
        #: cumulative payload bytes moved between nodes
        self.comm_bytes = 0

    @property
    def size(self) -> int:
        return len(self.nodes)

    def _positions(self) -> tuple[int, ...]:
        """Physical network positions of the current ranks (born ranks —
        stable across shrink-recovery re-ranking)."""
        return tuple(n.born_rank for n in self.nodes)

    def _resolve_algo(self, algo: str, total_bytes: float) -> str:
        """Map an ``algo`` argument to a concrete zoo member."""
        if isinstance(algo, coll.AllgatherAlgo):
            algo = algo.value
        if algo == coll.AllgatherAlgo.AUTO.value:
            if self.size <= 1:
                return coll.AllgatherAlgo.RING.value
            from repro.tuning.select import select_algorithm

            return select_algorithm(
                self.topology,
                total_bytes,
                positions=self._positions(),
                cache=self.tuning,
            )
        if algo not in coll.ALLGATHER_ALGOS:
            raise ClusterError(
                f"unknown allgather algorithm {algo!r}; choose from "
                f"{coll.ALLGATHER_ALGOS} or 'auto'"
            )
        return algo

    def _move_blocks(
        self,
        buffer: str,
        rounds,
        bounds: list[tuple[int, int]],
        corrupt_src: int | None,
    ) -> int:
        """Apply an Allgather schedule to every node's replica of
        ``buffer``; block ``b`` lives at element range ``bounds[b]``.

        Zero-length blocks are per-rank no-ops.  When ``corrupt_src`` is
        set, every copy of that rank's block *sent by the rank itself*
        carries the same corrupted bytes (one RNG draw); forwarding then
        propagates the corruption naturally while the source replica
        stays intact.  Returns the payload bytes moved.
        """
        total = 0
        corrupted = None
        link_bytes: dict[tuple[int, int], int] = {}
        for sends in rounds:
            for src_r, dst_r, blocks in sends:
                src_buf = self.nodes[src_r].buffer(buffer)
                dst_buf = self.nodes[dst_r].buffer(buffer)
                moved = 0
                for b in blocks:
                    lo, hi = bounds[b]
                    if lo == hi:
                        continue
                    chunk = src_buf[lo:hi]
                    if b == corrupt_src and src_r == corrupt_src:
                        if corrupted is None:
                            corrupted = self.injector.corrupt(chunk)
                        chunk = corrupted
                    dst_buf[lo:hi] = chunk
                    moved += chunk.nbytes
                total += moved
                if moved:
                    link = (
                        self.nodes[src_r].born_rank,
                        self.nodes[dst_r].born_rank,
                    )
                    link_bytes[link] = link_bytes.get(link, 0) + moved
        if self.metrics.enabled:
            for (src, dst), nbytes in link_bytes.items():
                self.metrics.inc("comm.link_bytes", nbytes, src=src, dst=dst)
        return total

    def _schedule(self, algo_name: str):
        """(rounds, positions) of ``algo_name`` over the current ranks."""
        positions = self._positions()
        rounds = coll.allgather_schedule(
            algo_name, self.size, coll.rank_groups(self.topology, positions)
        )
        return rounds, positions

    # -- clock helpers ---------------------------------------------------
    def _sync_start(self) -> float:
        """Collectives start when the last participant arrives."""
        return max(n.clock.now for n in self.nodes)

    def _pace(self) -> float:
        """Collective pacing factor: a degraded link slows everyone
        (1.0 without an injector — the fault-free fast path)."""
        if self.injector is None:
            return 1.0
        return max(n.network_multiplier for n in self.nodes)

    def _finish(self, start: float, duration: float) -> None:
        duration *= self._pace()
        end = start + duration
        for n in self.nodes:
            n.clock.wait_until(end)
        self.comm_seconds += duration

    # -- observability hooks ----------------------------------------------
    def _trace_collective(
        self,
        op: str,
        buffer: str,
        algo_name: str | None,
        start: float,
        duration: float,
        total_bytes: int,
        rounds=None,
        byte_counts=None,
        positions=None,
    ) -> None:
        """Record one collective span (and its per-round child spans) —
        called only when the tracer is enabled.  Round costs come from
        the same :func:`~repro.cluster.collectives.round_costs` sum that
        priced the collective, so rounds tile the span exactly."""
        pace = self._pace()
        span_args = {"op": op, "dur_s": duration * pace}
        if buffer:
            span_args["buffer"] = buffer
        if algo_name:
            span_args["algo"] = algo_name
        if total_bytes:
            span_args["bytes"] = int(total_bytes)
        if rounds:
            span_args["rounds"] = len(rounds)
        self.tracer.add(
            f"{op} {buffer}" if buffer else op,
            SpanKind.COLLECTIVE,
            start,
            start + duration * pace,
            **span_args,
        )
        if rounds:
            cur = start
            costs = coll.round_costs(
                self.topology, rounds, byte_counts, positions
            )
            for i, c in enumerate(costs):
                c *= pace
                self.tracer.add(
                    f"round {i}",
                    SpanKind.ROUND,
                    cur,
                    cur + c,
                    round=i,
                    sends=len(rounds[i]),
                    dur_s=c,
                )
                cur += c

    # -- fault hooks ------------------------------------------------------
    def _guard(self, op: str):
        """Pre-collective fault hook: detect dead participants, deliver a
        scheduled transient timeout, or hand back a corruption fault for
        the caller to apply.  No-op (returns ``None``) without an
        injector."""
        if self.injector is None:
            return None
        dead = tuple(n.born_rank for n in self.nodes if not n.alive)
        if dead:
            raise NodeFailure(
                f"{op}: participant rank(s) {list(dead)} are down", ranks=dead
            )
        fault = self.injector.begin_collective(op, self._sync_start())
        if isinstance(fault, TransientFault):
            # every participant waits out the timeout before aborting
            start = self._sync_start()
            self._finish(start, fault.timeout_s)
            raise CollectiveTimeout(
                f"{op} timed out after {fault.timeout_s * 1e3:.3f} ms "
                f"(injected transient fault)"
            )
        return fault

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        self._guard("barrier")
        start = self._sync_start()
        duration = coll.barrier_cost(self.network, self.size)
        if self.tracer.enabled:
            self._trace_collective("barrier", "", None, start, duration, 0)
        self._finish(start, duration)

    def allgather_in_place(
        self, buffer: str, base: int, per_rank: int, algo: str = "auto"
    ) -> float:
        """Balanced in-place Allgather (the paper's phase 2).

        Rank ``r`` owns elements ``[base + r*per_rank, base + (r+1)*per_rank)``
        of ``buffer`` (element offsets); after the call every node holds
        every rank's slice.  Returns the modeled duration.
        """
        if per_rank < 0:
            raise ClusterError(f"negative per-rank extent {per_rank}")
        if per_rank == 0:
            # empty payload: a modeled-cost no-op — no latency term, no
            # clock synchronization (MPI implementations short-circuit
            # zero-byte collectives the same way)
            return 0.0
        bounds: list[tuple[int, int]] = []
        for r, node in enumerate(self.nodes):
            lo = base + r * per_rank
            hi = lo + per_rank
            length = node.buffer(buffer).shape[0]
            if lo < 0 or hi > length:
                raise ClusterError(
                    f"allgather slice [{lo}:{hi}) out of range for "
                    f"{buffer!r} (len {length})"
                )
            bounds.append((lo, hi))
        itemsize = self.nodes[0].buffer(buffer).itemsize
        block_bytes = itemsize * per_rank
        algo_name = self._resolve_algo(algo, block_bytes * self.size)
        self.last_algorithm = algo_name
        fault = self._guard("allgather")
        corrupt_rank = fault.rank if isinstance(fault, CorruptionFault) else None
        if corrupt_rank is not None and (
            self.size <= 1
            or not any(n.born_rank == corrupt_rank for n in self.nodes)
        ):
            corrupt_rank = None  # no in-flight copy exists to corrupt
        corrupt_src = None
        if corrupt_rank is not None:
            corrupt_src = next(
                i for i, n in enumerate(self.nodes)
                if n.born_rank == corrupt_rank
            )
        start = self._sync_start()
        total_bytes = 0
        duration = 0.0
        if self.size > 1:
            rounds, positions = self._schedule(algo_name)
            total_bytes = self._move_blocks(buffer, rounds, bounds, corrupt_src)
            duration = coll.schedule_cost(
                self.topology, rounds, [block_bytes] * self.size, positions
            )
            if self.tracer.enabled:
                self._trace_collective(
                    "allgather", buffer, algo_name, start, duration,
                    total_bytes, rounds, [block_bytes] * self.size, positions,
                )
            if self.netflow is not None:
                self.netflow.record_collective(
                    "allgather", buffer, algo_name, self.topology, rounds,
                    [block_bytes] * self.size, positions, start,
                    self._pace(), total_bytes, duration,
                )
        self.comm_bytes += total_bytes
        if self.metrics.enabled:
            self.metrics.inc("comm.gathers", algo=algo_name)
        self._finish(start, duration)
        if corrupt_rank is not None:
            # receiver-side checksum flags the payload after the transfer
            raise DataCorruptionError(
                f"allgather of {buffer!r}: checksum mismatch on rank "
                f"{corrupt_rank}'s contribution (injected corruption)"
            )
        return duration

    def allgather_out_of_place(
        self,
        src_buffer: str,
        dst_buffer: str,
        per_rank: int,
        copy_GBs: float,
        algo: str = "auto",
    ) -> float:
        """Out-of-place Allgather: rank r's ``src_buffer[:per_rank]`` lands
        at ``dst_buffer[r*per_rank:]`` on every node (section 2.3's costlier
        variant — used by the Allgather micro-benchmark)."""
        if per_rank < 0:
            raise ClusterError(f"negative per-rank extent {per_rank}")
        itemsize = self.nodes[0].buffer(src_buffer).itemsize
        block_bytes = itemsize * per_rank
        algo_name = self._resolve_algo(algo, block_bytes * self.size)
        self.last_algorithm = algo_name
        self._guard("allgather-oop")
        start = self._sync_start()
        total_bytes = 0
        duration = 0.0
        if per_rank > 0:
            bounds: list[tuple[int, int]] = []
            for r, node in enumerate(self.nodes):
                lo = r * per_rank
                hi = lo + per_rank
                src = node.buffer(src_buffer)
                dst = node.buffer(dst_buffer)
                if per_rank > src.shape[0] or hi > dst.shape[0]:
                    raise ClusterError(
                        f"allgather-oop slice [{lo}:{hi}) out of range for "
                        f"{dst_buffer!r} (src len {src.shape[0]}, dst len "
                        f"{dst.shape[0]})"
                    )
                # local phase: every rank's own slice moves into place
                dst[lo:hi] = src[:per_rank]
                bounds.append((lo, hi))
            if self.size > 1:
                rounds, positions = self._schedule(algo_name)
                total_bytes = self._move_blocks(dst_buffer, rounds, bounds, None)
                duration = coll.schedule_cost(
                    self.topology, rounds, [block_bytes] * self.size, positions
                )
                # the input->output copy is what makes this variant
                # costlier than the in-place one (section 2.3)
                duration += 2.0 * block_bytes / (copy_GBs * 1e9)
                if self.tracer.enabled:
                    self._trace_collective(
                        "allgather-oop", dst_buffer, algo_name, start,
                        duration, total_bytes, rounds,
                        [block_bytes] * self.size, positions,
                    )
                if self.netflow is not None:
                    self.netflow.record_collective(
                        "allgather-oop", dst_buffer, algo_name,
                        self.topology, rounds, [block_bytes] * self.size,
                        positions, start, self._pace(), total_bytes,
                        duration,
                    )
        self.comm_bytes += total_bytes
        if self.metrics.enabled:
            self.metrics.inc("comm.gathers", algo=algo_name)
        self._finish(start, duration)
        return duration

    def allgatherv_in_place(
        self, buffer: str, base: int, counts: list[int], algo: str = "auto"
    ) -> float:
        """Imbalanced (v-variant) in-place Allgather: rank r contributes
        ``counts[r]`` elements at its running offset.  Zero-length
        contributions are per-rank no-ops."""
        if len(counts) != self.size:
            raise ClusterError("counts must have one entry per rank")
        counts = [int(c) for c in counts]
        if any(c < 0 for c in counts):
            raise ClusterError(f"negative contribution in counts {counts}")
        offsets = np.concatenate([[0], np.cumsum(counts)])
        bounds: list[tuple[int, int]] = []
        for r, node in enumerate(self.nodes):
            lo = base + int(offsets[r])
            hi = lo + counts[r]
            length = node.buffer(buffer).shape[0]
            if counts[r] and (lo < 0 or hi > length):
                raise ClusterError(
                    f"allgatherv slice [{lo}:{hi}) out of range for "
                    f"{buffer!r} (len {length})"
                )
            bounds.append((lo, hi))
        itemsize = self.nodes[0].buffer(buffer).itemsize
        byte_counts = [c * itemsize for c in counts]
        algo_name = self._resolve_algo(algo, float(sum(byte_counts)))
        self.last_algorithm = algo_name
        self._guard("allgatherv")
        start = self._sync_start()
        total_bytes = 0
        duration = 0.0
        if self.size > 1 and sum(byte_counts) > 0:
            rounds, positions = self._schedule(algo_name)
            total_bytes = self._move_blocks(buffer, rounds, bounds, None)
            duration = coll.schedule_cost(
                self.topology, rounds, byte_counts, positions
            )
            if self.tracer.enabled:
                self._trace_collective(
                    "allgatherv", buffer, algo_name, start, duration,
                    total_bytes, rounds, byte_counts, positions,
                )
            if self.netflow is not None:
                self.netflow.record_collective(
                    "allgatherv", buffer, algo_name, self.topology, rounds,
                    byte_counts, positions, start, self._pace(),
                    total_bytes, duration,
                )
        self.comm_bytes += total_bytes
        if self.metrics.enabled:
            self.metrics.inc("comm.gathers", algo=algo_name)
        self._finish(start, duration)
        return duration

    def allreduce_sum(self, buffer: str) -> float:
        """Element-wise sum of every node's replica of ``buffer``; all
        nodes receive the result (ring-Allreduce cost model).

        Floating-point summation order is fixed (ascending rank) so the
        result is deterministic and identical on every node.
        """
        self._guard("allreduce")
        start = self._sync_start()
        ref = self.nodes[0].buffer(buffer)
        acc = ref.astype(np.float64 if ref.dtype.kind == "f" else ref.dtype,
                         copy=True)
        for node in self.nodes[1:]:
            b = node.buffer(buffer)
            if b.shape != ref.shape or b.dtype != ref.dtype:
                raise ClusterError(
                    f"allreduce shape/dtype mismatch for {buffer!r} on rank "
                    f"{node.rank}"
                )
            acc += b
        result = acc.astype(ref.dtype, copy=False)
        for node in self.nodes:
            node.buffer(buffer)[:] = result
        duration = coll.allreduce_cost(self.network, self.size, ref.nbytes)
        moved = 2 * ref.nbytes * max(0, self.size - 1)
        self.comm_bytes += moved
        if self.tracer.enabled:
            self._trace_collective(
                "allreduce", buffer, None, start, duration, moved
            )
        self._finish(start, duration)
        return duration

    def bcast(self, buffer: str, root: int = 0) -> float:
        """Broadcast ``buffer`` from ``root`` to all nodes."""
        if not 0 <= root < self.size:
            raise ClusterError(f"root {root} out of range")
        self._guard("bcast")
        start = self._sync_start()
        src = self.nodes[root].buffer(buffer)
        for n in self.nodes:
            if n.rank != root:
                dst = n.buffer(buffer)
                if dst.shape != src.shape or dst.dtype != src.dtype:
                    raise ClusterError(
                        f"bcast shape/dtype mismatch for {buffer!r} on rank "
                        f"{n.rank}"
                    )
                dst[:] = src
                self.comm_bytes += src.nbytes
        duration = coll.bcast_cost(self.network, self.size, src.nbytes)
        if self.tracer.enabled:
            self._trace_collective(
                "bcast", buffer, None, start, duration,
                src.nbytes * max(0, self.size - 1),
            )
        self._finish(start, duration)
        return duration

    # -- point-to-point ---------------------------------------------------
    def send_slice(
        self,
        buffer: str,
        src_rank: int,
        dst_rank: int,
        lo: int,
        hi: int,
    ) -> float:
        """Copy ``buffer[lo:hi]`` from one node to another (blocking)."""
        if src_rank == dst_rank:
            return 0.0
        src = self.nodes[src_rank].buffer(buffer)
        chunk = src[lo:hi]
        self.nodes[dst_rank].buffer(buffer)[lo:hi] = chunk
        duration = coll.ptp_cost(self.network, chunk.nbytes)
        start = max(
            self.nodes[src_rank].clock.now, self.nodes[dst_rank].clock.now
        )
        end = start + duration
        self.nodes[src_rank].clock.wait_until(end)
        self.nodes[dst_rank].clock.wait_until(end)
        self.comm_bytes += chunk.nbytes
        self.comm_seconds += duration
        return duration

    def charge_rma(self, rank: int, nops: float, nbytes: float) -> float:
        """Charge a node for a batch of fine-grained remote accesses
        (the PGAS path); returns the modeled duration."""
        duration = coll.rma_cost(self.network, nops, nbytes)
        self.nodes[rank].clock.advance(duration)
        self.comm_seconds += duration
        self.comm_bytes += nbytes
        return duration

"""MPI-like communicator over the simulated cluster.

The communicator is the *only* channel through which bytes move between
node memories.  Every operation does two things: it physically copies
data between the nodes' private NumPy buffers (functional effect), and it
advances the participating nodes' simulated clocks by the modeled cost
(timing effect).  Collective semantics follow MPI: all ranks participate,
and completion synchronizes clocks to the common finish time.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import collectives as coll
from repro.cluster.node import Node
from repro.errors import ClusterError
from repro.hw.specs import NetworkSpec

__all__ = ["Communicator"]


class Communicator:
    """Collective + point-to-point operations over a set of nodes."""

    def __init__(self, nodes: list[Node], network: NetworkSpec):
        if not nodes:
            raise ClusterError("communicator needs at least one node")
        self.nodes = nodes
        self.network = network
        #: cumulative modeled seconds spent in communication (all ops)
        self.comm_seconds = 0.0
        #: cumulative payload bytes moved between nodes
        self.comm_bytes = 0

    @property
    def size(self) -> int:
        return len(self.nodes)

    # -- clock helpers ---------------------------------------------------
    def _sync_start(self) -> float:
        """Collectives start when the last participant arrives."""
        return max(n.clock.now for n in self.nodes)

    def _finish(self, start: float, duration: float) -> None:
        end = start + duration
        for n in self.nodes:
            n.clock.wait_until(end)
        self.comm_seconds += duration

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        start = self._sync_start()
        self._finish(start, coll.barrier_cost(self.network, self.size))

    def allgather_in_place(self, buffer: str, base: int, per_rank: int) -> float:
        """Balanced in-place Allgather (the paper's phase 2).

        Rank ``r`` owns elements ``[base + r*per_rank, base + (r+1)*per_rank)``
        of ``buffer`` (element offsets); after the call every node holds
        every rank's slice.  Returns the modeled duration.
        """
        if per_rank < 0:
            raise ClusterError(f"negative per-rank extent {per_rank}")
        start = self._sync_start()
        total_bytes = 0
        if per_rank > 0 and self.size > 1:
            for r, src_node in enumerate(self.nodes):
                src = src_node.buffer(buffer)
                lo = base + r * per_rank
                hi = lo + per_rank
                if lo < 0 or hi > src.shape[0]:
                    raise ClusterError(
                        f"allgather slice [{lo}:{hi}) out of range for "
                        f"{buffer!r} (len {src.shape[0]})"
                    )
                chunk = src[lo:hi]
                total_bytes += chunk.nbytes * (self.size - 1)
                for dst_node in self.nodes:
                    if dst_node is not src_node:
                        dst_node.buffer(buffer)[lo:hi] = chunk
        payload = (
            self.nodes[0].buffer(buffer).itemsize * per_rank * self.size
            if per_rank > 0
            else 0
        )
        duration = coll.allgather_inplace_cost(self.network, self.size, payload)
        self.comm_bytes += total_bytes
        self._finish(start, duration)
        return duration

    def allgather_out_of_place(
        self, src_buffer: str, dst_buffer: str, per_rank: int, copy_GBs: float
    ) -> float:
        """Out-of-place Allgather: rank r's ``src_buffer[:per_rank]`` lands
        at ``dst_buffer[r*per_rank:]`` on every node (section 2.3's costlier
        variant — used by the Allgather micro-benchmark)."""
        start = self._sync_start()
        total_bytes = 0
        if per_rank > 0:
            for r, src_node in enumerate(self.nodes):
                chunk = src_node.buffer(src_buffer)[:per_rank]
                lo = r * per_rank
                for dst_node in self.nodes:
                    dst_node.buffer(dst_buffer)[lo : lo + per_rank] = chunk
                    if dst_node is not src_node:
                        total_bytes += chunk.nbytes
        payload = self.nodes[0].buffer(src_buffer).itemsize * per_rank * self.size
        duration = coll.allgather_outofplace_cost(
            self.network, self.size, payload, copy_GBs
        )
        self.comm_bytes += total_bytes
        self._finish(start, duration)
        return duration

    def allgatherv_in_place(
        self, buffer: str, base: int, counts: list[int]
    ) -> float:
        """Imbalanced (v-variant) in-place Allgather: rank r contributes
        ``counts[r]`` elements at its running offset."""
        if len(counts) != self.size:
            raise ClusterError("counts must have one entry per rank")
        start = self._sync_start()
        offsets = np.concatenate([[0], np.cumsum(counts)])
        total_bytes = 0
        itemsize = self.nodes[0].buffer(buffer).itemsize
        for r, src_node in enumerate(self.nodes):
            lo = base + int(offsets[r])
            hi = lo + int(counts[r])
            chunk = src_node.buffer(buffer)[lo:hi]
            total_bytes += chunk.nbytes * (self.size - 1)
            for dst_node in self.nodes:
                if dst_node is not src_node:
                    dst_node.buffer(buffer)[lo:hi] = chunk
        duration = coll.allgather_imbalanced_cost(
            self.network, [c * itemsize for c in counts]
        )
        self.comm_bytes += total_bytes
        self._finish(start, duration)
        return duration

    def allreduce_sum(self, buffer: str) -> float:
        """Element-wise sum of every node's replica of ``buffer``; all
        nodes receive the result (ring-Allreduce cost model).

        Floating-point summation order is fixed (ascending rank) so the
        result is deterministic and identical on every node.
        """
        start = self._sync_start()
        ref = self.nodes[0].buffer(buffer)
        acc = ref.astype(np.float64 if ref.dtype.kind == "f" else ref.dtype,
                         copy=True)
        for node in self.nodes[1:]:
            b = node.buffer(buffer)
            if b.shape != ref.shape or b.dtype != ref.dtype:
                raise ClusterError(
                    f"allreduce shape/dtype mismatch for {buffer!r} on rank "
                    f"{node.rank}"
                )
            acc += b
        result = acc.astype(ref.dtype, copy=False)
        for node in self.nodes:
            node.buffer(buffer)[:] = result
        duration = coll.allreduce_cost(self.network, self.size, ref.nbytes)
        self.comm_bytes += 2 * ref.nbytes * max(0, self.size - 1)
        self._finish(start, duration)
        return duration

    def bcast(self, buffer: str, root: int = 0) -> float:
        """Broadcast ``buffer`` from ``root`` to all nodes."""
        if not 0 <= root < self.size:
            raise ClusterError(f"root {root} out of range")
        start = self._sync_start()
        src = self.nodes[root].buffer(buffer)
        for n in self.nodes:
            if n.rank != root:
                dst = n.buffer(buffer)
                if dst.shape != src.shape or dst.dtype != src.dtype:
                    raise ClusterError(
                        f"bcast shape/dtype mismatch for {buffer!r} on rank "
                        f"{n.rank}"
                    )
                dst[:] = src
                self.comm_bytes += src.nbytes
        duration = coll.bcast_cost(self.network, self.size, src.nbytes)
        self._finish(start, duration)
        return duration

    # -- point-to-point ---------------------------------------------------
    def send_slice(
        self,
        buffer: str,
        src_rank: int,
        dst_rank: int,
        lo: int,
        hi: int,
    ) -> float:
        """Copy ``buffer[lo:hi]`` from one node to another (blocking)."""
        if src_rank == dst_rank:
            return 0.0
        src = self.nodes[src_rank].buffer(buffer)
        chunk = src[lo:hi]
        self.nodes[dst_rank].buffer(buffer)[lo:hi] = chunk
        duration = coll.ptp_cost(self.network, chunk.nbytes)
        start = max(
            self.nodes[src_rank].clock.now, self.nodes[dst_rank].clock.now
        )
        end = start + duration
        self.nodes[src_rank].clock.wait_until(end)
        self.nodes[dst_rank].clock.wait_until(end)
        self.comm_bytes += chunk.nbytes
        self.comm_seconds += duration
        return duration

    def charge_rma(self, rank: int, nops: float, nbytes: float) -> float:
        """Charge a node for a batch of fine-grained remote accesses
        (the PGAS path); returns the modeled duration."""
        duration = coll.rma_cost(self.network, nops, nbytes)
        self.nodes[rank].clock.advance(duration)
        self.comm_seconds += duration
        self.comm_bytes += nbytes
        return duration

"""Simulated distributed-memory CPU cluster.

Substitutes for the paper's MPI-over-InfiniBand substrate: per-node
private memory spaces with real data movement through an MPI-like
communicator, and an alpha-beta network cost model advancing per-node
simulated clocks.
"""

from repro.cluster.cluster import Cluster, make_cluster
from repro.cluster.comm import Communicator
from repro.cluster.faults import (
    CorruptionFault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    StragglerFault,
    TransientFault,
    parse_fault_spec,
)
from repro.cluster.node import Node
from repro.cluster.simtime import SimClock
from repro.cluster.topology import (
    FatTreeTopology,
    FlatTopology,
    RingTopology,
    Topology,
    TorusTopology,
    TOPOLOGY_KINDS,
    make_topology,
)
from repro.cluster.collectives import ALLGATHER_ALGOS, AllgatherAlgo
from repro.cluster import collectives, faults, topology

__all__ = [
    "Cluster",
    "make_cluster",
    "Communicator",
    "Node",
    "SimClock",
    "collectives",
    "faults",
    "topology",
    "Topology",
    "FlatTopology",
    "FatTreeTopology",
    "RingTopology",
    "TorusTopology",
    "TOPOLOGY_KINDS",
    "make_topology",
    "AllgatherAlgo",
    "ALLGATHER_ALGOS",
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "NodeCrash",
    "TransientFault",
    "CorruptionFault",
    "StragglerFault",
    "parse_fault_spec",
]

"""The CuCC runtime: compile CUDA kernels, launch them on a CPU cluster.

Implements the paper's three-phase execution workflow (section 4):

1. **Partial Block Execution** — each node executes its contiguous range
   of ``p_size`` GPU blocks against its *own* memory replica;
2. **Balanced-In-Place Allgather** — one collective per written buffer
   restores the replication invariant for the partial phase's writes;
3. **Callback Block Execution** — tail-divergent and remainder blocks
   execute on *every* node, keeping replicas identical without
   communication.

Kernels the analysis rejects (or whose launch-time checks fail) fall
back to replicated execution of all blocks — always correct, never
communicating, exactly the paper's trivial case.

Functional execution is performed by the vectorized SPMD interpreter on
each node's buffers; timing comes from the roofline model applied to the
dynamic op counts each node actually incurred.

**Fault tolerance.**  Constructed with a
:class:`~repro.cluster.faults.FaultPlan`, the runtime executes launches
under a :class:`RecoveryPolicy`:

* transient collective failures (timeouts, detected payload corruption)
  are retried with exponential backoff;
* stragglers are detected when a node's partial-phase time exceeds a
  multiple of the median (and optionally evicted);
* permanent node loss triggers **shrink-and-repartition recovery**: the
  dead rank is dropped, the communicator is rebuilt over the survivors,
  buffer state is restored from the last replication-invariant point (a
  lightweight :class:`~repro.runtime.memory_manager.Checkpoint` taken at
  the kernel-launch boundary — or, after phase 2 completed, the restored
  invariant itself), the distribution plan is re-finalized for the
  smaller node count, and only the lost work is replayed.

All recovery work is charged to the simulated clocks and recorded in the
launch's :class:`~repro.runtime.program.PhaseTimes` (``recovery`` field),
so benchmarks can quantify fault overhead.  Without a fault plan the
runtime takes exactly the fault-free code path: identical modeled times,
identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.distributable import analyze_kernel, finalize_plan
from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.errors import (
    ClusterError,
    CollectiveTimeout,
    DataCorruptionError,
    LaunchError,
    NodeFailure,
)
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams, cpu_node_time
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.machine import BlockExecutor
from repro.ir.stmt import Kernel
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, SpanKind, Tracer
from repro.runtime.memory_manager import ClusterMemory
from repro.runtime.program import CompiledKernel, LaunchRecord, PhaseTimes
from repro.transform.blockwrap import generate_kernel_module
from repro.transform.hostgen import generate_host_module
from repro.transform.simplify import simplify_kernel
from repro.transform.vectorize import analyze_vectorizability

__all__ = ["CuCCRuntime", "RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the runtime's fault-recovery behaviour.

    All durations are modeled seconds charged to the simulated clocks;
    none of them affect a fault-free run.
    """

    #: transient collective failures retried before giving up
    max_retries: int = 3
    #: first retry backoff; attempt k waits base * factor**(k-1)
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    #: heartbeat timeout charged to survivors when a node loss is detected
    failure_detect_s: float = 5e-3
    #: a node is flagged as a straggler when its partial-phase time
    #: exceeds this multiple of the median node's time
    straggler_factor: float = 4.0
    #: evict detected stragglers (treated as a permanent node loss)
    evict_stragglers: bool = False
    #: recovery is refused (ClusterError) below this many surviving nodes
    min_nodes: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor <= 0:
            raise ValueError(
                f"backoff_factor must be > 0, got {self.backoff_factor}"
            )
        if self.failure_detect_s < 0:
            raise ValueError(
                f"failure_detect_s must be >= 0, got {self.failure_detect_s}"
            )
        if self.straggler_factor <= 0:
            raise ValueError(
                f"straggler_factor must be > 0, got {self.straggler_factor}"
            )
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")


class CuCCRuntime:
    """Compile-and-launch interface over a simulated CPU cluster.

    Args:
        cluster: target cluster.
        params: performance-model constants.
        simd_enabled: model switch for the section 8.2 no-SIMD ablation.
        bounds_check: verify kernel memory accesses (debugging aid).
        faithful_replication: execute replicated work on *every* node's
            memory (maximum bug-catching power).  When ``False``,
            replicated work runs once on rank 0 and the deterministic
            result is copied to the other replicas — functionally
            identical, much faster for large node counts.  Timing is
            unaffected (every node is charged the full work either way).
        fault_plan: optional deterministic fault schedule (see
            :mod:`repro.cluster.faults`).  ``None`` (default) disables
            every fault hook — zero overhead, identical modeled times.
        recovery: recovery policy; defaults to :class:`RecoveryPolicy()`.
        sanitize: run the kernel sanitizer — the static race detector at
            :meth:`compile` (``CompiledKernel.sanitizer_report``) and the
            dynamic shadow checks on every launch
            (``LaunchRecord.sanitizer_report``, one report accumulated
            across all node executions).  Sanitizer hooks never touch the
            op counters, so modeled times are identical either way.
        trace: span tracing (see :mod:`repro.obs`).  ``True`` builds a
            fresh :class:`~repro.obs.tracer.Tracer`; an existing tracer
            is adopted as-is (shared across runtimes).  ``False``
            (default) attaches the disabled :data:`NULL_TRACER` — zero
            overhead, bit-identical modeled times and buffers.
        profile: per-line hotspot profiling (see
            :mod:`repro.obs.profiler`).  ``True`` builds a fresh
            :class:`~repro.obs.profiler.Profiler`; an existing profiler
            is adopted as-is (shared across runtimes).  ``False``
            (default) leaves the interpreter's profile hook dormant —
            identical counters, traces and modeled times.  With tracing
            also on, each launch additionally emits Perfetto
            counter-track samples of cumulative profiled work.
        drift: model-drift telemetry (see :mod:`repro.obs.drift`) —
            after every distributed launch, re-predict the partial /
            Allgather phase times with the analytical cost model and
            record the signed relative error into METRICS.  Opt-in
            because the prediction pass exercises the tuning selector
            (cache hit/miss counters) and annotates launch spans.
        checkpoint: durable checkpointing (see :mod:`repro.ops`): a
            :class:`~repro.ops.policy.CheckpointPolicy` makes the
            runtime serialize its full state to disk at phase
            boundaries, resumable via
            :func:`repro.ops.resume.resume_runtime`.  ``None``
            (default) never imports the ops layer — zero overhead,
            bit-identical modeled times (checkpoint writes charge zero
            simulated time either way: durability is host I/O).
        drift_guard: a :class:`~repro.ops.guard.DriftGuardPolicy`
            installs a circuit breaker on the drift telemetry
            (warn → force-retune → refuse-launch); implies
            ``drift=True``.  ``None`` (default) installs nothing.
        backend: kernel-execution backend.  ``"interp"`` walks the IR
            tree (the semantic reference); ``"jit"`` compiles each
            kernel to a specialized vectorized closure (bit-identical
            buffers and op counters — see DESIGN.md §13) and fails on
            kernels the codegen cannot handle; ``"auto"`` (default)
            uses the JIT where supported and falls back silently.
            Sanitizer and profiler hooks observe the tree-walking
            interpreter, so ``backend="jit"`` rejects ``sanitize``/
            ``profile`` (with ``"auto"`` those launches just take the
            interpreter).
        jit_cache: persistent compile cache for the JIT backend — a
            :class:`~repro.interp.jit.CompileCache` or a path to one
            (created on first save).  ``None`` (default) compiles per
            process and memoizes in memory only.
    """

    def __init__(
        self,
        cluster: Cluster,
        params: ModelParams = DEFAULT_PARAMS,
        simd_enabled: bool = True,
        bounds_check: bool = True,
        faithful_replication: bool = True,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
        sanitize: bool = False,
        allgather_algo: str = "auto",
        trace: bool | Tracer = False,
        profile: object = False,
        drift: bool = False,
        checkpoint: object = None,
        drift_guard: object = None,
        backend: str = "auto",
        jit_cache: object = None,
        netflow: object = False,
    ):
        if backend not in ("interp", "jit", "auto"):
            raise LaunchError(
                f"unknown backend {backend!r}; expected 'interp', 'jit' "
                "or 'auto'"
            )
        if backend == "jit" and (sanitize or profile):
            raise LaunchError(
                "backend='jit' does not support sanitize/profile hooks; "
                "they observe the tree-walking interpreter"
            )
        self.backend = backend
        #: JIT compile cache (repro.interp.jit.CompileCache) or None;
        #: the import is deferred so an interpreter-only runtime never
        #: loads the JIT package
        self.jit_cache = None
        if jit_cache is not None and backend != "interp":
            from repro.interp.jit import CompileCache

            self.jit_cache = (
                jit_cache
                if isinstance(jit_cache, CompileCache)
                else CompileCache.load(jit_cache)
            )
        self.cluster = cluster
        self.params = params
        self.simd_enabled = simd_enabled
        self.bounds_check = bounds_check
        self.faithful_replication = faithful_replication
        self.sanitize = sanitize
        self.drift = bool(drift)
        #: per-line hotspot profiler; ``None`` = profiling off (the
        #: import is deferred so an unprofiled runtime never loads it)
        self.profiler = None
        if profile:
            from repro.obs.profiler import Profiler

            self.profiler = (
                profile if isinstance(profile, Profiler) else Profiler()
            )
            # cumulative counter-track state (Perfetto "C" samples)
            self._counter_cum = {"ops": 0.0, "bytes": 0.0}
        #: span tracer shared with the communicator and fault injector
        self.tracer: Tracer = (
            trace if isinstance(trace, Tracer)
            else (Tracer() if trace else NULL_TRACER)
        )
        #: Allgather algorithm for phase 2: a zoo member (see
        #: repro.cluster.collectives.ALLGATHER_ALGOS) or "auto" (default),
        #: which resolves through the cluster's tuning cache / topology
        #: cost model; what each launch actually ran is recorded in its
        #: LaunchRecord.allgather_algo
        self.allgather_algo = allgather_algo
        self._cur_san = None  # per-launch DynamicSanitizer (shared by nodes)
        self.memory = ClusterMemory(cluster)
        self.launches: list[LaunchRecord] = []
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.injector: FaultInjector | None = (
            FaultInjector(fault_plan)
            if fault_plan is not None and fault_plan.faults
            else None
        )
        #: per-link flow ledger fed by the communicator; ``None`` =
        #: netflow off (the import is deferred so an unobserved runtime
        #: never loads repro.obs.netflow)
        self.netflow = None
        # identity checks, not truthiness: a fresh (empty) ledger passed
        # in by the serving layer is falsy but must still be attached
        if netflow is not None and netflow is not False:
            from repro.obs.netflow import NetFlowLedger

            self.netflow = (
                netflow if isinstance(netflow, NetFlowLedger)
                else NetFlowLedger()
            )
        cluster.comm.injector = self.injector
        cluster.comm.tracer = self.tracer
        if self.netflow is not None:
            cluster.comm.netflow = self.netflow
        if self.injector is not None:
            self.injector.tracer = self.tracer
        self._compiled: dict[str, CompiledKernel] = {}
        #: elastic-operations hooks (repro.ops); ``None`` = layer absent,
        #: the imports below are deferred so an un-checkpointed runtime
        #: never loads the package
        self.ops = None
        if checkpoint is not None:
            from repro.ops.manager import CheckpointManager

            self.ops = CheckpointManager(self, checkpoint)
        #: drift circuit breaker; a guard needs the telemetry it watches
        self.guard = None
        if drift_guard is not None:
            from repro.ops.guard import DriftGuard

            self.guard = DriftGuard(drift_guard)
            self.drift = True
        #: execution cursor set by repro.ops.resume.resume_runtime
        self._resume = None

    # ------------------------------------------------------------------
    def compile(self, kernel: Kernel, simplify: bool = True) -> CompiledKernel:
        """Run the CuCC compiler pipeline on a kernel IR.

        ``simplify`` applies the exact constant-folding/identity pass
        before analysis and execution (semantics-preserving; see
        :mod:`repro.transform.simplify`).  With ``sanitize`` on, the
        static race detector runs over the lowered IR and its report is
        attached as ``CompiledKernel.sanitizer_report``.
        """
        if kernel.name in self._compiled:
            cached = self._compiled[kernel.name]
            if cached.original_kernel is kernel:
                if self.sanitize and cached.sanitizer_report is None:
                    from repro.sanitize import sanitize_kernel

                    cached.sanitizer_report = sanitize_kernel(cached.kernel)
                return cached
        lowered = simplify_kernel(kernel) if simplify else kernel
        analysis = analyze_kernel(lowered)
        vect = analyze_vectorizability(lowered)
        report = None
        if self.sanitize:
            from repro.sanitize import sanitize_kernel

            report = sanitize_kernel(lowered)
        compiled = CompiledKernel(
            kernel=lowered,
            analysis=analysis,
            vectorization=vect,
            kernel_module_src=generate_kernel_module(lowered, vect),
            host_module_src=generate_host_module(lowered, analysis.metadata),
            original_kernel=kernel,
            sanitizer_report=report,
        )
        self._compiled[kernel.name] = compiled
        if self.tracer.enabled:
            # compilation is host-side work: zero simulated duration,
            # stamped at the cluster's current makespan
            t = self.cluster.max_clock
            self.tracer.add(
                f"compile {kernel.name}",
                SpanKind.COMPILE,
                t,
                t,
                kernel=kernel.name,
                distributable=analysis.distributable,
                vectorizable=vect.vectorizable,
            )
        if METRICS.enabled:
            METRICS.inc("runtime.compiles")
        return compiled

    # ------------------------------------------------------------------
    def launch(
        self,
        compiled: CompiledKernel | Kernel,
        grid,
        block,
        args: dict[str, object],
    ) -> LaunchRecord:
        """Execute one kernel launch with the three-phase workflow.

        ``args`` maps parameter names to buffer names (strings, for
        pointer parameters — allocated via :attr:`memory`) or scalars.
        """
        if isinstance(compiled, Kernel):
            compiled = self.compile(compiled)
        config = LaunchConfig.make(grid, block)
        kernel = compiled.kernel

        buffer_args: dict[str, str] = {}
        scalar_args: dict[str, object] = {}
        for p in kernel.params:
            if p.name not in args:
                raise LaunchError(f"missing argument {p.name!r}")
            v = args[p.name]
            if p.is_pointer:
                if not isinstance(v, str):
                    raise LaunchError(
                        f"pointer argument {p.name!r} must be a buffer name"
                    )
                self.memory.size_of(v)  # validates existence
                buffer_args[p.name] = v
            else:
                scalar_args[p.name] = v

        if self.guard is not None:
            self.guard.admit(kernel.name)

        plan = finalize_plan(
            compiled.analysis, config, scalar_args, self.cluster.num_nodes
        )
        vectorized = compiled.vectorization.vectorizable
        working_set = sum(
            self.memory.size_of(b) * self.memory.dtype_of(b).itemsize
            for b in set(buffer_args.values())
        )

        overhead = self.params.cpu_launch_overhead_s
        pending = None
        if self._resume is not None:
            ff, pending = self._take_resume_step(kernel, config)
            if ff is not None:
                # launch completed before the checkpoint: replay its
                # record verbatim, zero clock movement
                from repro.ops.resume import record_from_dict

                record = record_from_dict(ff, config, plan)
                self.launches.append(record)
                return record
            if pending is not None:
                # mid-flight launch: its overhead was charged (and
                # checkpointed into the clocks) before the interrupt
                overhead = float(pending["overhead"])
        lspan = (
            self.tracer.begin(
                f"launch {kernel.name}",
                SpanKind.LAUNCH,
                self.cluster.max_clock,
            )
            if self.tracer.enabled
            else None
        )
        if pending is None:
            for node in self.cluster.nodes:
                node.clock.advance(overhead)

        if self.sanitize:
            from repro.sanitize import DynamicSanitizer

            # one sanitizer for the whole launch: every node executor
            # feeds the same shadow state, so divergence *between* the
            # replicated executions surfaces as a non-replicated write
            self._cur_san = DynamicSanitizer(kernel.name)
        try:
            if self.injector is None:
                record = self._launch_plain(
                    kernel, config, plan, buffer_args, scalar_args,
                    vectorized, working_set, overhead, pending=pending,
                )
            else:
                record = self._launch_fault_tolerant(
                    compiled, kernel, config, plan, buffer_args, scalar_args,
                    vectorized, working_set, overhead, pending=pending,
                )
        finally:
            san, self._cur_san = self._cur_san, None
            if lspan is not None:
                self.tracer.end(lspan, self.cluster.max_clock)
        if san is not None:
            record.sanitizer_report = san.report
        if lspan is not None:
            # the launch span carries the *exact* PhaseTimes floats, so
            # exported traces reconstruct PhaseTimes bit-identically
            p = record.phases
            lspan.args.update(
                kernel=kernel.name,
                replicated=record.plan.replicated,
                partial_s=p.partial,
                allgather_s=p.allgather,
                callback_s=p.callback,
                overhead_s=p.overhead,
                recovery_s=p.recovery,
                algos=list(p.allgather_algos),
                comm_bytes=record.comm_bytes,
                retries=record.retries,
                recoveries=record.recoveries,
            )
        if METRICS.enabled:
            METRICS.inc("runtime.launches", kernel=kernel.name)
            if record.retries:
                METRICS.inc("runtime.retries", record.retries)
            if record.recoveries:
                METRICS.inc("runtime.recoveries", record.recoveries)
            rep = record.sanitizer_report
            if rep is not None and rep.findings:
                METRICS.inc("sanitize.findings", len(rep.findings))
        if self.drift:
            from repro.obs.drift import observe_launch_drift

            pred = observe_launch_drift(
                self, kernel, record, vectorized, working_set, lspan=lspan
            )
            if self.guard is not None and pred is not None:
                self.guard.observe(self, kernel.name, record, pred)
        if self.profiler is not None and lspan is not None:
            self._emit_counter_samples(lspan, record)
        self.launches.append(record)
        if self.ops is not None:
            self.ops.on_launch_end(record)
        return record

    def _take_resume_step(self, kernel, config):
        """Consume one step of the resume cursor (see repro.ops.resume).

        Returns ``(fast_forward_dict, pending_dict)``: exactly one is
        non-None while the cursor lasts.  Raises CheckpointError when
        the replayed launch sequence diverges from the checkpointed one.
        """
        from repro.errors import CheckpointError

        rs = self._resume
        step = (
            rs.completed.pop(0) if rs.completed else rs.pending
        )
        if not rs.completed:
            # pending (if any) is handed out on this or the next call
            if step is rs.pending:
                rs.pending = None
            if rs.exhausted:
                self._resume = None
        if (
            step["kernel"] != kernel.name
            or tuple(step["grid"]) != config.grid
            or tuple(step["block"]) != config.block
        ):
            raise CheckpointError(
                f"resume mismatch: checkpoint recorded launch "
                f"{step['kernel']}<<<{tuple(step['grid'])},"
                f"{tuple(step['block'])}>>>, caller replayed "
                f"{kernel.name}<<<{config.grid},{config.block}>>> — "
                f"resume must replay the original launch sequence",
                path=rs.path,
            )
        if "stage" in step:
            return None, step
        return step, None

    def _emit_counter_samples(self, lspan, record) -> None:
        """Perfetto counter-track samples (ph ``C``): cumulative profiled
        work sampled at the launch span's boundaries, so the exported
        trace renders a work-over-time track alongside the spans."""
        tot = OpCounters()
        for c in record.partial_counters:
            tot.add(c)
        tot.add(record.callback_counters)
        cum = self._counter_cum
        t1 = lspan.t1 if lspan.t1 is not None else self.cluster.max_clock
        self.tracer.add(
            "profile.cumulative", SpanKind.COUNTER, lspan.t0, lspan.t0,
            weighted_ops=cum["ops"], dram_bytes=cum["bytes"],
        )
        cum["ops"] += tot.weighted_ops
        cum["bytes"] += tot.global_line_bytes or tot.global_bytes
        self.tracer.add(
            "profile.cumulative", SpanKind.COUNTER, t1, t1,
            weighted_ops=cum["ops"], dram_bytes=cum["bytes"],
        )

    # ------------------------------------------------------------------
    # fault-free path (exactly the seed behaviour)
    # ------------------------------------------------------------------
    def _launch_plain(
        self, kernel, config, plan, buffer_args, scalar_args,
        vectorized, working_set, overhead, pending=None,
    ) -> LaunchRecord:
        stage = pending["stage"] if pending is not None else None
        if stage is None:
            partial_time, partial_counters = self._run_partial_phase(
                kernel, config, plan, buffer_args, scalar_args, vectorized,
                working_set,
            )
            if self.ops is not None:
                self.ops.on_stage(
                    "allgather",
                    self._pending_dict(
                        "allgather", kernel, config, overhead,
                        partial_time, partial_counters,
                    ),
                )
        else:
            # resumed mid-launch: the partial phase already ran (its
            # results are in the restored replicas and clocks)
            partial_time = float(pending["partial_time"])
            partial_counters = [
                OpCounters(**c) for c in pending["partial_counters"]
            ]
        if stage != "callback":
            allgather_time, algos = self._run_allgather_phase(
                plan, buffer_args
            )
            if self.ops is not None:
                self.ops.on_stage(
                    "callback",
                    self._pending_dict(
                        "callback", kernel, config, overhead,
                        partial_time, partial_counters,
                        allgather_time=allgather_time, algos=algos,
                    ),
                )
        else:
            allgather_time = float(pending["allgather_time"])
            algos = list(pending["allgather_algos"])
        callback_counters = OpCounters()
        callback_time = 0.0
        cb = plan.callback_blocks
        if len(cb) > 0:
            callback_time = self._run_replicated(
                kernel, config, buffer_args, scalar_args, cb,
                callback_counters, vectorized, working_set,
            )
        return LaunchRecord(
            kernel_name=kernel.name,
            config=config,
            plan=plan,
            phases=PhaseTimes(
                partial=partial_time,
                allgather=allgather_time,
                callback=callback_time,
                overhead=overhead,
                allgather_algos=tuple(algos),
            ),
            partial_counters=partial_counters,
            callback_counters=callback_counters,
            comm_bytes=plan.comm_bytes,
        )

    # ------------------------------------------------------------------
    # fault-tolerant path
    # ------------------------------------------------------------------
    def _launch_fault_tolerant(
        self, compiled, kernel, config, plan, buffer_args, scalar_args,
        vectorized, working_set, overhead, pending=None,
    ) -> LaunchRecord:
        """Drive the three phases under the recovery policy.

        The loop re-enters after every survived permanent failure; the
        ``allgather_done`` flag encodes the replication-invariant point
        reached, which decides how much work a recovery must replay.

        ``pending`` (from a durable-checkpoint resume) re-enters the
        loop at the recorded stage with the restored phase accounting;
        completed phases are skipped structurally, so the stage points a
        resumed launch reaches are exactly the uninterrupted run's
        remaining ones.
        """
        inj = self.injector
        pol = self.recovery
        written = sorted(
            {
                buffer_args[r.buffer]
                for r in compiled.analysis.records
                if r.buffer in buffer_args
            }
        )
        if pending is None:
            events_start = inj.begin_launch(self.cluster.nodes)
            ckpt = (
                self.memory.checkpoint(written, label=f"launch:{kernel.name}")
                if written
                else None
            )
            retries = 0
            recoveries = 0
            recovery_time = 0.0
            allgather_done = False
            allgather_algos: list[str] = []
            partial_time = allgather_time = 0.0
            partial_counters: list[OpCounters] = []
            resume_stage = None
        else:
            events_start = int(pending["events_start"])
            ckpt = pending.get("_ckpt_obj")
            retries = int(pending["retries"])
            recoveries = int(pending["recoveries"])
            recovery_time = float(pending["recovery_time"])
            partial_time = float(pending["partial_time"])
            partial_counters = [
                OpCounters(**c) for c in pending["partial_counters"]
            ]
            allgather_time = float(pending["allgather_time"])
            allgather_algos = list(pending["allgather_algos"])
            resume_stage = pending["stage"]
            allgather_done = resume_stage == "callback"
        callback_time = 0.0
        callback_counters = OpCounters()

        while True:
            attempt_partial = attempt_allgather = 0.0
            try:
                if not allgather_done:
                    if resume_stage == "allgather":
                        # resumed right before phase 2: the partial
                        # phase's work and time are already restored
                        resume_stage = None
                        attempt_partial = partial_time
                    else:
                        self._fault_boundary("partial")
                        attempt_partial, partial_counters = (
                            self._run_partial_phase(
                                kernel, config, plan, buffer_args,
                                scalar_args, vectorized, working_set,
                                node_times=(node_times := []),
                            )
                        )
                        self._check_stragglers(plan, node_times)
                        if self.ops is not None:
                            self.ops.on_stage(
                                "allgather",
                                self._pending_dict(
                                    "allgather", kernel, config, overhead,
                                    attempt_partial, partial_counters,
                                    retries=retries, recoveries=recoveries,
                                    recovery_time=recovery_time,
                                    events_start=events_start, ckpt=ckpt,
                                ),
                                ckpt=ckpt,
                                recovered=recoveries > 0,
                            )
                    self._fault_boundary("allgather")
                    attempt_allgather, extra, nretry, allgather_algos = (
                        self._run_allgather_retrying(plan, buffer_args)
                    )
                    retries += nretry
                    recovery_time += extra
                    partial_time, allgather_time = (
                        attempt_partial, attempt_allgather,
                    )
                    allgather_done = True
                    if self.ops is not None:
                        self.ops.on_stage(
                            "callback",
                            self._pending_dict(
                                "callback", kernel, config, overhead,
                                partial_time, partial_counters,
                                allgather_time=allgather_time,
                                algos=allgather_algos,
                                retries=retries, recoveries=recoveries,
                                recovery_time=recovery_time,
                                events_start=events_start, ckpt=ckpt,
                            ),
                            ckpt=ckpt,
                            recovered=recoveries > 0,
                        )
                self._fault_boundary("callback")
                callback_counters = OpCounters()
                callback_time = 0.0
                cb = plan.callback_blocks
                if len(cb) > 0:
                    callback_time = self._run_replicated(
                        kernel, config, buffer_args, scalar_args, cb,
                        callback_counters, vectorized, working_set,
                    )
                break
            except NodeFailure as e:
                recoveries += 1
                # work of the failed attempt is lost: account it as
                # recovery cost, not as productive phase time
                recovery_time += attempt_partial + attempt_allgather
                recovery_time += self._recover_from_node_loss(
                    e, compiled, config, scalar_args, ckpt, allgather_done
                )
                if not allgather_done:
                    plan = finalize_plan(
                        compiled.analysis, config, scalar_args,
                        self.cluster.num_nodes,
                    )
                    inj.record(
                        "replan",
                        self.cluster.max_clock,
                        detail=(
                            f"{'replicated' if plan.replicated else 'distributed'}"
                            f" plan over {self.cluster.num_nodes} nodes"
                        ),
                    )

        return LaunchRecord(
            kernel_name=kernel.name,
            config=config,
            plan=plan,
            phases=PhaseTimes(
                partial=partial_time,
                allgather=allgather_time,
                callback=callback_time,
                overhead=overhead,
                recovery=recovery_time,
                allgather_algos=tuple(allgather_algos),
            ),
            partial_counters=partial_counters,
            callback_counters=callback_counters,
            comm_bytes=plan.comm_bytes,
            fault_events=list(inj.events[events_start:]),
            retries=retries,
            recoveries=recoveries,
        )

    def _pending_dict(
        self, stage, kernel, config, overhead, partial_time,
        partial_counters, allgather_time=0.0, algos=(), retries=0,
        recoveries=0, recovery_time=0.0, events_start=0, ckpt=None,
    ) -> dict:
        """The mid-launch state a durable checkpoint needs to resume the
        current launch at ``stage`` (see repro.ops.manager); the ckpt's
        bulk data travels separately as PENDING_RANK segments."""
        return {
            "stage": stage,
            "kernel": kernel.name,
            "grid": list(config.grid),
            "block": list(config.block),
            "overhead": overhead,
            "partial_time": partial_time,
            "partial_counters": [c.as_dict() for c in partial_counters],
            "allgather_time": allgather_time,
            "allgather_algos": list(algos),
            "retries": retries,
            "recoveries": recoveries,
            "recovery_time": recovery_time,
            "events_start": events_start,
            "ckpt": (
                None
                if ckpt is None
                else {
                    "label": ckpt.label,
                    "sim_time": ckpt.sim_time,
                    "buffers": sorted(ckpt.data),
                }
            ),
        }

    def _fault_boundary(self, phase: str) -> None:
        """Deliver scheduled crashes due at this phase boundary; any dead
        node surfaces as a NodeFailure for the recovery driver."""
        nodes = self.cluster.nodes
        self.injector.poll_crashes(phase, self.cluster.max_clock, nodes)
        dead = tuple(n.born_rank for n in nodes if not n.alive)
        if dead:
            raise NodeFailure(
                f"node(s) {list(dead)} down at {phase} boundary", ranks=dead
            )

    def _check_stragglers(self, plan, node_times: list[float]) -> None:
        """Flag nodes whose partial-phase time ran past the policy's
        timeout (straggler_factor x the median node); optionally evict."""
        import statistics

        nodes = self.cluster.nodes
        if plan.replicated or len(nodes) < 2 or len(node_times) != len(nodes):
            return
        median = statistics.median(node_times)
        if median <= 0.0:
            return
        slow = [
            n for n, t in zip(nodes, node_times)
            if t > self.recovery.straggler_factor * median
        ]
        for n in slow:
            t = node_times[n.rank]
            self.injector.record(
                "straggler-detected",
                self.cluster.max_clock,
                rank=n.born_rank,
                detail=(
                    f"partial phase {t * 1e3:.3f} ms vs "
                    f"median {median * 1e3:.3f} ms "
                    f"(timeout factor {self.recovery.straggler_factor:g})"
                ),
            )
            if self.recovery.evict_stragglers:
                n.fail("evicted as straggler")
        if self.recovery.evict_stragglers and slow:
            raise NodeFailure(
                f"straggler rank(s) {[n.born_rank for n in slow]} evicted",
                ranks=tuple(n.born_rank for n in slow),
            )

    def _run_allgather_retrying(self, plan, buffer_args):
        """Phase 2 under the retry policy.

        Returns ``(productive_time, recovery_time, retries, algos)``: the
        cost of the successful collectives vs. the time burned on failed
        attempts, timeouts and exponential backoff, plus the unique
        concrete algorithm(s) the communicator ran, in first-use order.
        """
        pol = self.recovery
        comm = self.cluster.comm
        total = 0.0
        extra = 0.0
        retries = 0
        algos: list[str] = []
        if plan.replicated or plan.p_size <= 0:
            return total, extra, retries, algos
        tracer = self.tracer
        aspan = (
            tracer.begin("allgather", SpanKind.PHASE, self.cluster.max_clock)
            if tracer.enabled
            else None
        )
        try:
            for bp in plan.buffers:
                attempt = 0
                while True:
                    before = self.cluster.max_clock
                    try:
                        total += comm.allgather_in_place(
                            buffer_args[bp.buffer],
                            bp.base_elem,
                            plan.p_size * bp.unit_elems,
                            algo=self.allgather_algo,
                        )
                        if (
                            comm.last_algorithm
                            and comm.last_algorithm not in algos
                        ):
                            algos.append(comm.last_algorithm)
                        break
                    except (CollectiveTimeout, DataCorruptionError) as e:
                        # the failed attempt's wire/timeout cost is already
                        # on the clocks; book it as recovery, then back off
                        extra += self.cluster.max_clock - before
                        attempt += 1
                        retries += 1
                        if attempt > pol.max_retries:
                            # preserve the concrete failure class; enrich
                            # the message so the CLI's one-line diagnosis
                            # names the exhausted policy, not just the
                            # last symptom
                            raise type(e)(
                                f"recovery exhausted: allgather of "
                                f"{bp.buffer!r} still failing after "
                                f"{pol.max_retries} retries ({e})"
                            ) from e
                        backoff = pol.backoff_base_s * (
                            pol.backoff_factor ** (attempt - 1)
                        )
                        start = self.cluster.max_clock
                        for n in self.cluster.nodes:
                            n.clock.wait_until(start + backoff)
                        extra += backoff
                        self.injector.record(
                            "retry",
                            self.cluster.max_clock,
                            detail=(
                                f"allgather {bp.buffer!r} attempt "
                                f"{attempt}/{pol.max_retries} after "
                                f"{backoff * 1e3:.3f} ms backoff"
                            ),
                        )
        finally:
            if aspan is not None:
                aspan.args["algos"] = list(algos)
                tracer.end(aspan, self.cluster.max_clock)
        return total, extra, retries, algos

    def _recover_from_node_loss(
        self, failure, compiled, config, scalar_args, ckpt, allgather_done
    ) -> float:
        """Shrink-and-repartition recovery; returns the modeled time it
        charged (detection timeout).  Raises ClusterError when too few
        nodes survive."""
        pol = self.recovery
        survivors = self.cluster.alive_nodes
        if len(survivors) < max(1, pol.min_nodes):
            raise ClusterError(
                f"unrecoverable failure: {len(survivors)} surviving node(s) "
                f"below the policy minimum of {max(1, pol.min_nodes)} "
                f"({failure})"
            )
        tracer = self.tracer
        rspan = (
            tracer.begin(
                "recovery",
                SpanKind.PHASE,
                max(n.clock.now for n in survivors),
                ranks=list(failure.ranks),
            )
            if tracer.enabled
            else None
        )
        # failure detection: survivors wait out the heartbeat timeout
        start = max(n.clock.now for n in survivors)
        for n in survivors:
            n.clock.wait_until(start + pol.failure_detect_s)
        dead = self.cluster.remove_dead()
        self.injector.record(
            "recover-shrink",
            self.cluster.max_clock,
            detail=(
                f"dropped rank(s) {[n.born_rank for n in dead]}, "
                f"{len(survivors)} survivors"
            ),
        )
        if not allgather_done and ckpt is not None:
            # pre-launch replication invariant: restore written buffers
            self.memory.restore(ckpt)
            self.injector.record(
                "restore",
                self.cluster.max_clock,
                detail=(
                    f"checkpoint {ckpt.label!r} "
                    f"({ckpt.nbytes} B x {len(survivors)} replicas)"
                ),
            )
        if rspan is not None:
            tracer.end(rspan, self.cluster.max_clock)
        return pol.failure_detect_s

    # ------------------------------------------------------------------
    # phase executors (shared by both paths)
    # ------------------------------------------------------------------
    def _run_partial_phase(
        self, kernel, config, plan, buffer_args, scalar_args, vectorized,
        working_set, node_times: list[float] | None = None,
    ):
        """Phase 1: each node runs its own block range; returns the phase
        duration (max over nodes) and the per-rank op counters.

        ``node_times`` (when given) receives each node's individual time —
        the signal the recovery policy's straggler detector reads.
        """
        partial_counters: list[OpCounters] = []
        partial_time = 0.0
        if not plan.replicated and plan.p_size > 0:
            tracer = self.tracer
            pspan = (
                tracer.begin("partial", SpanKind.PHASE, self.cluster.max_clock)
                if tracer.enabled
                else None
            )
            # one shared line sink per phase: every rank's executor feeds
            # it, merging per-line counts across the cluster
            prof = (
                self.profiler.sink(kernel, "partial", vectorized=vectorized)
                if self.profiler is not None
                else None
            )
            for node in self.cluster.nodes:
                counters = OpCounters()
                ex = self._executor(kernel, config, buffer_args, scalar_args,
                                    node, counters, prof)
                blocks = plan.node_blocks(node.rank)
                ex.run_blocks(blocks)
                t = cpu_node_time(
                    node.spec,
                    counters,
                    len(blocks),
                    vectorized,
                    simd_enabled=self.simd_enabled,
                    working_set_bytes=working_set,
                    params=self.params,
                ) * node.compute_multiplier
                if pspan is not None:
                    t0 = node.clock.now
                    tracer.add(
                        f"partial rank {node.born_rank}",
                        SpanKind.EXEC,
                        t0,
                        t0 + t,
                        rank=node.born_rank,
                        phase="partial",
                        blocks=len(blocks),
                        dur_s=t,
                    )
                node.clock.advance(t)
                partial_counters.append(counters)
                if node_times is not None:
                    node_times.append(t)
                partial_time = max(partial_time, t)
            if pspan is not None:
                tracer.end(pspan, self.cluster.max_clock)
        return partial_time, partial_counters

    def _run_allgather_phase(
        self, plan, buffer_args
    ) -> tuple[float, list[str]]:
        """Phase 2: one balanced in-place Allgather per written buffer.

        Returns the phase duration and the unique concrete algorithm(s)
        the communicator ran, in first-use order."""
        allgather_time = 0.0
        algos: list[str] = []
        if not plan.replicated and plan.p_size > 0:
            tracer = self.tracer
            aspan = (
                tracer.begin(
                    "allgather", SpanKind.PHASE, self.cluster.max_clock
                )
                if tracer.enabled
                else None
            )
            comm = self.cluster.comm
            for bp in plan.buffers:
                allgather_time += comm.allgather_in_place(
                    buffer_args[bp.buffer],
                    bp.base_elem,
                    plan.p_size * bp.unit_elems,
                    algo=self.allgather_algo,
                )
                if comm.last_algorithm and comm.last_algorithm not in algos:
                    algos.append(comm.last_algorithm)
            if aspan is not None:
                aspan.args["algos"] = list(algos)
                tracer.end(aspan, self.cluster.max_clock)
        return allgather_time, algos

    # ------------------------------------------------------------------
    def _executor(self, kernel, config, buffer_args, scalar_args, node,
                  counters, prof=None):
        run_args: dict[str, object] = dict(scalar_args)
        for pname, bname in buffer_args.items():
            run_args[pname] = node.buffer(bname)
        # the JIT carries no sanitizer/profiler hooks; hooked launches
        # (only possible under backend="auto" — "jit" rejects the hooks
        # at construction) take the reference interpreter
        if self.backend != "interp" and self._cur_san is None and prof is None:
            from repro.interp.jit import JITBlockExecutor, JITUnsupported

            try:
                return JITBlockExecutor(
                    kernel, config, run_args, counters,
                    bounds_check=self.bounds_check, cache=self.jit_cache,
                )
            except JITUnsupported:
                if self.backend == "jit":
                    raise
        return BlockExecutor(
            kernel, config, run_args, counters, bounds_check=self.bounds_check,
            sanitize=self._cur_san if self._cur_san is not None else False,
            profile=prof,
        )

    def _run_replicated(
        self,
        kernel,
        config,
        buffer_args,
        scalar_args,
        blocks,
        counters: OpCounters,
        vectorized: bool,
        working_set: float,
    ) -> float:
        """Execute ``blocks`` identically on every node; returns duration.

        With ``faithful_replication`` the interpreter really runs on every
        replica; otherwise it runs once and the (deterministic) result is
        copied — either way every node's clock advances by the full cost.
        """
        nodes = self.cluster.nodes
        tracer = self.tracer
        cspan = (
            tracer.begin("callback", SpanKind.PHASE, self.cluster.max_clock)
            if tracer.enabled
            else None
        )
        first = nodes[0]
        # only the first executor profiles: its counters are the phase's
        # accounting (scratch replicas below are charged but not counted),
        # so per-line totals keep summing exactly to the aggregate
        prof = (
            self.profiler.sink(kernel, "callback", vectorized=vectorized)
            if self.profiler is not None
            else None
        )
        ex = self._executor(kernel, config, buffer_args, scalar_args, first,
                            counters, prof)
        ex.run_blocks(blocks)
        t = cpu_node_time(
            first.spec,
            counters,
            len(blocks),
            vectorized,
            simd_enabled=self.simd_enabled,
            working_set_bytes=working_set,
            params=self.params,
        )
        if self.faithful_replication:
            for node in nodes[1:]:
                scratch = OpCounters()
                ex_n = self._executor(
                    kernel, config, buffer_args, scalar_args, node, scratch
                )
                ex_n.run_blocks(blocks)
        else:
            # deterministic execution: replicate rank 0's buffer state
            for bname in set(buffer_args.values()):
                src = first.buffer(bname)
                for node in nodes[1:]:
                    node.buffer(bname)[:] = src
        for node in nodes:
            tn = t * node.compute_multiplier
            if cspan is not None:
                t0 = node.clock.now
                tracer.add(
                    f"callback rank {node.born_rank}",
                    SpanKind.EXEC,
                    t0,
                    t0 + tn,
                    rank=node.born_rank,
                    phase="callback",
                    blocks=len(blocks),
                    dur_s=tn,
                )
            node.clock.advance(tn)
        if cspan is not None:
            tracer.end(cspan, self.cluster.max_clock)
        return t

    # ------------------------------------------------------------------
    @property
    def sim_time(self) -> float:
        """Cluster makespan (slowest node's simulated clock)."""
        return self.cluster.max_clock

    def report(self) -> str:
        """Per-kernel summary of every launch so far (see
        :mod:`repro.runtime.trace`)."""
        from repro.runtime.trace import format_trace_report

        return format_trace_report(self.launches)

"""The CuCC runtime: compile CUDA kernels, launch them on a CPU cluster.

Implements the paper's three-phase execution workflow (section 4):

1. **Partial Block Execution** — each node executes its contiguous range
   of ``p_size`` GPU blocks against its *own* memory replica;
2. **Balanced-In-Place Allgather** — one collective per written buffer
   restores the replication invariant for the partial phase's writes;
3. **Callback Block Execution** — tail-divergent and remainder blocks
   execute on *every* node, keeping replicas identical without
   communication.

Kernels the analysis rejects (or whose launch-time checks fail) fall
back to replicated execution of all blocks — always correct, never
communicating, exactly the paper's trivial case.

Functional execution is performed by the vectorized SPMD interpreter on
each node's buffers; timing comes from the roofline model applied to the
dynamic op counts each node actually incurred.
"""

from __future__ import annotations

from repro.analysis.distributable import analyze_kernel, finalize_plan
from repro.cluster.cluster import Cluster
from repro.errors import LaunchError
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams, cpu_node_time
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.machine import BlockExecutor
from repro.ir.stmt import Kernel
from repro.runtime.memory_manager import ClusterMemory
from repro.runtime.program import CompiledKernel, LaunchRecord, PhaseTimes
from repro.transform.blockwrap import generate_kernel_module
from repro.transform.hostgen import generate_host_module
from repro.transform.simplify import simplify_kernel
from repro.transform.vectorize import analyze_vectorizability

__all__ = ["CuCCRuntime"]


class CuCCRuntime:
    """Compile-and-launch interface over a simulated CPU cluster.

    Args:
        cluster: target cluster.
        params: performance-model constants.
        simd_enabled: model switch for the section 8.2 no-SIMD ablation.
        bounds_check: verify kernel memory accesses (debugging aid).
        faithful_replication: execute replicated work on *every* node's
            memory (maximum bug-catching power).  When ``False``,
            replicated work runs once on rank 0 and the deterministic
            result is copied to the other replicas — functionally
            identical, much faster for large node counts.  Timing is
            unaffected (every node is charged the full work either way).
    """

    def __init__(
        self,
        cluster: Cluster,
        params: ModelParams = DEFAULT_PARAMS,
        simd_enabled: bool = True,
        bounds_check: bool = True,
        faithful_replication: bool = True,
    ):
        self.cluster = cluster
        self.params = params
        self.simd_enabled = simd_enabled
        self.bounds_check = bounds_check
        self.faithful_replication = faithful_replication
        self.memory = ClusterMemory(cluster)
        self.launches: list[LaunchRecord] = []
        self._compiled: dict[str, CompiledKernel] = {}

    # ------------------------------------------------------------------
    def compile(self, kernel: Kernel, simplify: bool = True) -> CompiledKernel:
        """Run the CuCC compiler pipeline on a kernel IR.

        ``simplify`` applies the exact constant-folding/identity pass
        before analysis and execution (semantics-preserving; see
        :mod:`repro.transform.simplify`).
        """
        if kernel.name in self._compiled:
            cached = self._compiled[kernel.name]
            if cached.original_kernel is kernel:
                return cached
        lowered = simplify_kernel(kernel) if simplify else kernel
        analysis = analyze_kernel(lowered)
        vect = analyze_vectorizability(lowered)
        compiled = CompiledKernel(
            kernel=lowered,
            analysis=analysis,
            vectorization=vect,
            kernel_module_src=generate_kernel_module(lowered, vect),
            host_module_src=generate_host_module(lowered, analysis.metadata),
            original_kernel=kernel,
        )
        self._compiled[kernel.name] = compiled
        return compiled

    # ------------------------------------------------------------------
    def launch(
        self,
        compiled: CompiledKernel | Kernel,
        grid,
        block,
        args: dict[str, object],
    ) -> LaunchRecord:
        """Execute one kernel launch with the three-phase workflow.

        ``args`` maps parameter names to buffer names (strings, for
        pointer parameters — allocated via :attr:`memory`) or scalars.
        """
        if isinstance(compiled, Kernel):
            compiled = self.compile(compiled)
        config = LaunchConfig.make(grid, block)
        kernel = compiled.kernel

        buffer_args: dict[str, str] = {}
        scalar_args: dict[str, object] = {}
        for p in kernel.params:
            if p.name not in args:
                raise LaunchError(f"missing argument {p.name!r}")
            v = args[p.name]
            if p.is_pointer:
                if not isinstance(v, str):
                    raise LaunchError(
                        f"pointer argument {p.name!r} must be a buffer name"
                    )
                self.memory.size_of(v)  # validates existence
                buffer_args[p.name] = v
            else:
                scalar_args[p.name] = v

        plan = finalize_plan(
            compiled.analysis, config, scalar_args, self.cluster.num_nodes
        )
        vectorized = compiled.vectorization.vectorizable
        working_set = sum(
            self.memory.size_of(b) * self.memory.dtype_of(b).itemsize
            for b in set(buffer_args.values())
        )

        overhead = self.params.cpu_launch_overhead_s
        for node in self.cluster.nodes:
            node.clock.advance(overhead)

        # ---- phase 1: partial block execution -------------------------
        partial_counters: list[OpCounters] = []
        partial_time = 0.0
        if not plan.replicated and plan.p_size > 0:
            for node in self.cluster.nodes:
                counters = OpCounters()
                ex = self._executor(kernel, config, buffer_args, scalar_args,
                                    node, counters)
                blocks = plan.node_blocks(node.rank)
                ex.run_blocks(blocks)
                t = cpu_node_time(
                    node.spec,
                    counters,
                    len(blocks),
                    vectorized,
                    simd_enabled=self.simd_enabled,
                    working_set_bytes=working_set,
                    params=self.params,
                )
                node.clock.advance(t)
                partial_counters.append(counters)
                partial_time = max(partial_time, t)

        # ---- phase 2: balanced in-place Allgather ----------------------
        allgather_time = 0.0
        if not plan.replicated and plan.p_size > 0:
            for bp in plan.buffers:
                allgather_time += self.cluster.comm.allgather_in_place(
                    buffer_args[bp.buffer],
                    bp.base_elem,
                    plan.p_size * bp.unit_elems,
                )

        # ---- phase 3: callback block execution --------------------------
        callback_counters = OpCounters()
        callback_time = 0.0
        cb = plan.callback_blocks
        if len(cb) > 0:
            callback_time = self._run_replicated(
                kernel, config, buffer_args, scalar_args, cb,
                callback_counters, vectorized, working_set,
            )

        record = LaunchRecord(
            kernel_name=kernel.name,
            config=config,
            plan=plan,
            phases=PhaseTimes(
                partial=partial_time,
                allgather=allgather_time,
                callback=callback_time,
                overhead=overhead,
            ),
            partial_counters=partial_counters,
            callback_counters=callback_counters,
            comm_bytes=plan.comm_bytes,
        )
        self.launches.append(record)
        return record

    # ------------------------------------------------------------------
    def _executor(self, kernel, config, buffer_args, scalar_args, node, counters):
        run_args: dict[str, object] = dict(scalar_args)
        for pname, bname in buffer_args.items():
            run_args[pname] = node.buffer(bname)
        return BlockExecutor(
            kernel, config, run_args, counters, bounds_check=self.bounds_check
        )

    def _run_replicated(
        self,
        kernel,
        config,
        buffer_args,
        scalar_args,
        blocks,
        counters: OpCounters,
        vectorized: bool,
        working_set: float,
    ) -> float:
        """Execute ``blocks`` identically on every node; returns duration.

        With ``faithful_replication`` the interpreter really runs on every
        replica; otherwise it runs once and the (deterministic) result is
        copied — either way every node's clock advances by the full cost.
        """
        nodes = self.cluster.nodes
        first = nodes[0]
        ex = self._executor(kernel, config, buffer_args, scalar_args, first,
                            counters)
        ex.run_blocks(blocks)
        t = cpu_node_time(
            first.spec,
            counters,
            len(blocks),
            vectorized,
            simd_enabled=self.simd_enabled,
            working_set_bytes=working_set,
            params=self.params,
        )
        if self.faithful_replication:
            for node in nodes[1:]:
                scratch = OpCounters()
                ex_n = self._executor(
                    kernel, config, buffer_args, scalar_args, node, scratch
                )
                ex_n.run_blocks(blocks)
        else:
            # deterministic execution: replicate rank 0's buffer state
            for bname in set(buffer_args.values()):
                src = first.buffer(bname)
                for node in nodes[1:]:
                    node.buffer(bname)[:] = src
        for node in nodes:
            node.clock.advance(t)
        return t

    # ------------------------------------------------------------------
    @property
    def sim_time(self) -> float:
        """Cluster makespan (slowest node's simulated clock)."""
        return self.cluster.max_clock

    def report(self) -> str:
        """Per-kernel summary of every launch so far (see
        :mod:`repro.runtime.trace`)."""
        from repro.runtime.trace import format_trace_report

        return format_trace_report(self.launches)

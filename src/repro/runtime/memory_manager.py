"""Cluster device-memory manager: the CUDA memory API over N nodes.

CuCC maps GPU global memory to a buffer *replicated* in every node's
private memory.  The replication invariant — all nodes hold identical
copies between kernel launches — is what the three-phase workflow
restores after every distributed launch, and what host-side transfers
must establish:

* ``memcpy_h2d`` writes the host data into every node's copy (physically
  a broadcast; by default it is not charged to the simulated clock, as
  the paper's figures measure kernel execution);
* ``memcpy_d2h`` reads node 0's copy, optionally verifying that all
  replicas agree (a strong consistency check used throughout the tests).

The replication invariant doubles as a built-in recovery point: because
every node holds a full copy of every buffer between launches (and of all
written regions after phase-2 Allgather), a :class:`Checkpoint` needs
only *one* canonical copy per buffer — not per node — to restore any
surviving subset of nodes after a crash.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import DeviceMemoryError

__all__ = ["ClusterMemory", "Checkpoint"]


@dataclass(frozen=True)
class Checkpoint:
    """Lightweight snapshot of replicated buffers at an invariant point.

    Because the replication invariant guarantees all replicas are
    identical when the checkpoint is taken, one host-side copy per buffer
    suffices; :meth:`ClusterMemory.restore` writes it back into every
    node currently in the cluster — including a cluster that has shrunk
    since the snapshot.
    """

    label: str
    sim_time: float
    data: dict[str, np.ndarray]

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.data.values())


class ClusterMemory:
    """Replicated device-buffer allocator over a simulated cluster."""

    def __init__(self, cluster: Cluster, charge_transfers: bool = False):
        self.cluster = cluster
        #: charge host<->device transfers to the simulated clocks
        self.charge_transfers = charge_transfers
        self._sizes: dict[str, tuple[int, np.dtype]] = {}

    def alloc(self, name: str, size: int, dtype) -> str:
        """Allocate a zeroed buffer of ``size`` elements on every node."""
        dtype = np.dtype(dtype)
        if name in self._sizes:
            raise DeviceMemoryError(f"buffer {name!r} already allocated")
        if size <= 0:
            raise DeviceMemoryError(f"buffer {name!r}: size must be positive")
        for node in self.cluster.nodes:
            node.alloc(name, size, dtype)
        self._sizes[name] = (int(size), dtype)
        return name

    def free(self, name: str) -> None:
        self._require(name)
        for node in self.cluster.nodes:
            node.free(name)
        del self._sizes[name]

    def _require(self, name: str) -> None:
        if name not in self._sizes:
            raise DeviceMemoryError(f"unknown buffer {name!r}")

    def memcpy_h2d(self, name: str, host: np.ndarray) -> None:
        """Copy host data into every node's replica of ``name``."""
        self._require(name)
        size, dtype = self._sizes[name]
        host = np.ascontiguousarray(host).reshape(-1)
        if host.dtype != dtype:
            raise DeviceMemoryError(
                f"memcpy_h2d {name!r}: host dtype {host.dtype} != {dtype}"
            )
        if host.size != size:
            raise DeviceMemoryError(
                f"memcpy_h2d {name!r}: host size {host.size} != {size}"
            )
        for node in self.cluster.nodes:
            node.buffer(name)[:] = host
        if self.charge_transfers:
            from repro.cluster.collectives import bcast_cost

            dur = bcast_cost(self.cluster.network, self.cluster.num_nodes, host.nbytes)
            start = max(n.clock.now for n in self.cluster.nodes)
            for n in self.cluster.nodes:
                n.clock.wait_until(start + dur)

    def memcpy_d2h(self, name: str, check_consistency: bool = False) -> np.ndarray:
        """Read back a buffer (node 0's replica).

        ``check_consistency=True`` asserts every node holds bit-identical
        data — the invariant the CuCC workflow must maintain.
        """
        self._require(name)
        ref = self.cluster.nodes[0].buffer(name)
        if check_consistency:
            for node in self.cluster.nodes[1:]:
                if not np.array_equal(node.buffer(name), ref, equal_nan=True):
                    bad = np.flatnonzero(
                        ~_eq_nan(node.buffer(name), ref)
                    )
                    raise DeviceMemoryError(
                        f"replicas of {name!r} diverge between rank 0 and rank "
                        f"{node.rank} at {bad.size} elements "
                        f"(first at index {int(bad[0])})"
                    )
        return ref.copy()

    # -- checkpoint / restore (fault recovery) ------------------------------
    def checkpoint(
        self, names: list[str] | None = None, label: str = ""
    ) -> Checkpoint:
        """Snapshot buffers at a replication-invariant point.

        ``names`` defaults to every allocated buffer.  The snapshot reads
        rank 0's replica (the invariant makes all replicas identical at
        valid checkpoint times) into host memory, so it survives the
        death of any — even all — of the nodes it was taken from.
        """
        names = self.buffer_names if names is None else names
        for n in names:
            self._require(n)
        ref = self.cluster.nodes[0]
        return Checkpoint(
            label=label,
            sim_time=self.cluster.max_clock,
            data={n: ref.buffer(n).copy() for n in names},
        )

    def restore(self, ckpt: Checkpoint) -> None:
        """Write a checkpoint back into every current node's replica.

        Buffers freed since the snapshot are skipped; shrunken clusters
        restore onto the survivors only.  Simulated clocks are *not*
        touched — time already burned stays charged, which is how
        recovery cost shows up in modeled time.
        """
        for name, arr in ckpt.data.items():
            if name not in self._sizes:
                continue
            for node in self.cluster.nodes:
                node.buffer(name)[:] = arr

    # -- durable-checkpoint support -----------------------------------------
    def export_rank_states(
        self, names: list[str] | None = None
    ) -> list[tuple[str, int, np.ndarray]]:
        """Per-rank raw buffer state as ``(buffer, born_rank, array)``.

        Unlike :meth:`checkpoint` (one canonical copy, valid only at
        replication-invariant points) this captures *every* replica, so a
        durable checkpoint taken mid-launch — after the partial phase,
        when replicas legitimately diverge — still restores exactly.
        Arrays are views; callers serialize them before mutating buffers.
        """
        names = self.buffer_names if names is None else names
        for n in names:
            self._require(n)
        return [
            (name, node.born_rank, node.buffer(name))
            for name in names
            for node in self.cluster.nodes
        ]

    def import_rank_state(
        self, name: str, born_rank: int, data: np.ndarray
    ) -> None:
        """Write one rank's replica of ``name`` (inverse of
        :meth:`export_rank_states`); unknown buffers or absent ranks are
        an error — a resume must account for every byte it was given."""
        self._require(name)
        size, dtype = self._sizes[name]
        arr = np.frombuffer(data, dtype=dtype) if data.dtype != dtype else data
        if arr.size != size:
            raise DeviceMemoryError(
                f"import_rank_state {name!r}: got {arr.size} elements, "
                f"buffer holds {size}"
            )
        for node in self.cluster.nodes:
            if node.born_rank == born_rank:
                node.buffer(name)[:] = arr
                return
        raise DeviceMemoryError(
            f"import_rank_state {name!r}: no node with born rank {born_rank}"
        )

    def replicate_to(self, nodes) -> None:
        """Copy rank 0's replica of every buffer onto ``nodes`` (grow
        recovery: replacement nodes join with empty memory and must be
        brought back to the replication invariant).  Buffers are
        allocated on the target nodes as needed."""
        src = self.cluster.nodes[0]
        for name, (size, dtype) in self._sizes.items():
            data = src.buffer(name)
            for node in nodes:
                if not node.has_buffer(name):
                    node.alloc(name, size, dtype)
                node.buffer(name)[:] = data

    def consistent(self, name: str) -> bool:
        """Whether all replicas of ``name`` agree."""
        self._require(name)
        ref = self.cluster.nodes[0].buffer(name)
        return all(
            np.array_equal(n.buffer(name), ref, equal_nan=True)
            for n in self.cluster.nodes[1:]
        )

    def size_of(self, name: str) -> int:
        self._require(name)
        return self._sizes[name][0]

    def dtype_of(self, name: str) -> np.dtype:
        self._require(name)
        return self._sizes[name][1]

    @property
    def buffer_names(self) -> list[str]:
        return sorted(self._sizes)

    def total_bytes_per_node(self) -> int:
        return sum(s * d.itemsize for s, d in self._sizes.values())


def _eq_nan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    eq = a == b
    if a.dtype.kind == "f":
        eq |= np.isnan(a) & np.isnan(b)
    return eq

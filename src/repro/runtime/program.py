"""Compiled-program and launch-record containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.distributable import KernelAnalysis
from repro.analysis.metadata import DistributionPlan
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.ir.stmt import Kernel
from repro.sanitize.report import SanitizerReport
from repro.transform.vectorize import Vectorization

__all__ = ["CompiledKernel", "PhaseTimes", "LaunchRecord"]


@dataclass
class CompiledKernel:
    """Everything CuCC's compiler produces for one kernel.

    Bundles the IR, the Allgather distributable analysis result, the
    SIMD vectorizability verdict, and the generated CPU source modules
    (human-readable renderings of what the runtime executes).
    """

    kernel: Kernel
    analysis: KernelAnalysis
    vectorization: Vectorization
    kernel_module_src: str
    host_module_src: str
    #: the pre-simplification IR as handed to compile() (cache identity)
    original_kernel: Kernel | None = None
    #: static-sanitizer findings over the lowered IR (None: not requested)
    sanitizer_report: SanitizerReport | None = None

    def __post_init__(self) -> None:
        if self.original_kernel is None:
            self.original_kernel = self.kernel

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def distributable(self) -> bool:
        return self.analysis.distributable

    def describe(self) -> str:
        return "\n".join(
            [
                self.analysis.metadata.describe(),
                f"  vectorization: {self.vectorization.describe()}",
            ]
        )


@dataclass(frozen=True)
class PhaseTimes:
    """Modeled durations of the three workflow phases for one launch."""

    partial: float  # phase 1: max over nodes
    allgather: float  # phase 2
    callback: float  # phase 3
    overhead: float = 0.0  # launch overhead
    #: time lost to faults and their recovery: failed attempts, collective
    #: timeouts, retry backoff, failure detection, restore + re-plan work
    recovery: float = 0.0
    #: concrete Allgather algorithms phase 2 ran — what ``"auto"``
    #: resolved to, unique, in first-use order (empty for replicated
    #: launches that never communicated)
    allgather_algos: tuple[str, ...] = ()

    @property
    def total(self) -> float:
        return (
            self.partial
            + self.allgather
            + self.callback
            + self.overhead
            + self.recovery
        )

    @property
    def allgather_algo(self) -> str | None:
        """The algorithm list rendered the legacy way ("+"-joined when
        buffers picked differently; ``None`` when never communicated)."""
        return "+".join(self.allgather_algos) if self.allgather_algos else None

    @property
    def network_fraction(self) -> float:
        """Fraction of the launch spent in communication (Figure 9)."""
        t = self.total
        return self.allgather / t if t > 0 else 0.0


@dataclass
class LaunchRecord:
    """Trace entry for one kernel launch on the cluster."""

    kernel_name: str
    config: LaunchConfig
    plan: DistributionPlan
    phases: PhaseTimes
    #: per-rank dynamic counts of phase 1 (what each node executed)
    partial_counters: list[OpCounters]
    #: dynamic counts of the callback phase (identical on every node)
    callback_counters: OpCounters
    comm_bytes: int
    #: injected faults and recovery decisions during this launch, in order
    #: (empty without fault injection — see repro.cluster.faults)
    fault_events: list = field(default_factory=list)
    #: transient-collective retries performed during this launch
    retries: int = 0
    #: shrink-and-repartition recoveries (permanent node losses survived)
    recoveries: int = 0
    #: dynamic-sanitizer findings accumulated across every node's
    #: execution of this launch (None: runtime built without sanitize)
    sanitizer_report: SanitizerReport | None = None

    @property
    def time(self) -> float:
        return self.phases.total

    @property
    def allgather_algo(self) -> str | None:
        """Concrete Allgather algorithm phase 2 ran (``None`` when the
        launch was replicated and never communicated)."""
        return self.phases.allgather_algo

    @property
    def allgather_algos(self) -> tuple[str, ...]:
        """Unique algorithms phase 2 ran, in first-use order."""
        return self.phases.allgather_algos

    def describe(self) -> str:
        p = self.phases
        algo = f", {p.allgather_algo} allgather" if p.allgather_algo else ""
        text = (
            f"{self.kernel_name}<<<{self.config.grid},{self.config.block}>>> "
            f"{'replicated' if self.plan.replicated else 'distributed'}: "
            f"total {p.total * 1e3:.3f} ms (partial {p.partial * 1e3:.3f}, "
            f"allgather {p.allgather * 1e3:.3f}, callback "
            f"{p.callback * 1e3:.3f}{algo})"
        )
        if p.recovery > 0 or self.retries or self.recoveries:
            text += (
                f" [faults: {self.retries} retries, {self.recoveries} "
                f"recoveries, {p.recovery * 1e3:.3f} ms recovery]"
            )
        return text

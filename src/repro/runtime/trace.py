"""Launch-trace reporting: aggregate per-kernel statistics.

After an application run (e.g. the iterative KMeans or the BERT layer),
the runtime holds one :class:`~repro.runtime.program.LaunchRecord` per
launch.  :func:`summarize_launches` folds them into a per-kernel table —
counts, time split by phase, communication volume — the data behind the
paper's Figure 9-style breakdowns for whole applications.

The same per-launch phase data is also available as spans when the
runtime is traced (``trace=True``); see
:func:`repro.obs.export.phase_times_from_spans`, which reconstructs
each launch's :class:`~repro.runtime.program.PhaseTimes` bit-identically
from the exported span tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.program import LaunchRecord

__all__ = ["KernelStats", "summarize_launches", "format_trace_report"]


def _pct(part: float, total: float) -> float:
    """Percentage with a zero-total guard (0.0 when nothing to divide)."""
    return 100.0 * part / total if total > 0 else 0.0


@dataclass
class KernelStats:
    """Aggregated statistics for one kernel across its launches."""

    kernel: str
    launches: int = 0
    distributed: int = 0
    total_s: float = 0.0
    partial_s: float = 0.0
    allgather_s: float = 0.0
    callback_s: float = 0.0
    comm_bytes: int = 0
    recovery_s: float = 0.0
    retries: int = 0
    recoveries: int = 0
    fault_events: int = 0
    #: concrete Allgather algorithms phase 2 ran across the launches,
    #: unique, in first-use order (empty: never communicated)
    algos: list[str] = field(default_factory=list)

    @property
    def network_fraction(self) -> float:
        return self.allgather_s / self.total_s if self.total_s > 0 else 0.0

    @property
    def recovery_fraction(self) -> float:
        """Fraction of the kernel's time lost to faults and recovery."""
        return self.recovery_s / self.total_s if self.total_s > 0 else 0.0

    def add(self, rec: LaunchRecord) -> None:
        self.launches += 1
        self.distributed += 0 if rec.plan.replicated else 1
        self.total_s += rec.time
        self.partial_s += rec.phases.partial
        self.allgather_s += rec.phases.allgather
        self.callback_s += rec.phases.callback
        self.comm_bytes += rec.comm_bytes
        self.recovery_s += rec.phases.recovery
        self.retries += rec.retries
        self.recoveries += rec.recoveries
        self.fault_events += len(rec.fault_events)
        for a in rec.phases.allgather_algos:
            if a not in self.algos:
                self.algos.append(a)


def summarize_launches(launches: list[LaunchRecord]) -> list[KernelStats]:
    """Fold a launch trace into per-kernel statistics, slowest first."""
    by_kernel: dict[str, KernelStats] = {}
    for rec in launches:
        by_kernel.setdefault(rec.kernel_name, KernelStats(rec.kernel_name)).add(
            rec
        )
    return sorted(by_kernel.values(), key=lambda s: -s.total_s)


def format_trace_report(launches: list[LaunchRecord]) -> str:
    """A printable per-kernel report for a whole application trace."""
    from repro.bench.harness import format_table

    stats = summarize_launches(launches)
    # the recovery column appears only when some launch actually lost
    # time to faults, so fault-free traces render byte-identically to a
    # build without fault injection
    show_recovery = any(s.recovery_s > 0 for s in stats)
    rows = []
    for s in stats:
        row = [
            s.kernel,
            f"{s.launches} ({s.distributed} dist)",
            f"{s.total_s * 1e6:.1f}",
            f"{s.partial_s * 1e6:.1f}",
            f"{s.allgather_s * 1e6:.1f}",
            "+".join(s.algos) or "-",
            f"{s.callback_s * 1e6:.1f}",
        ]
        if show_recovery:
            row.append(f"{s.recovery_s * 1e6:.1f}")
        row += [
            f"{_pct(s.allgather_s, s.total_s):.0f}%",
            s.comm_bytes,
        ]
        rows.append(row)
    total = sum(s.total_s for s in stats)
    comm = sum(s.allgather_s for s in stats)
    headers = ["kernel", "launches", "total (us)", "partial", "allgather",
               "algo", "callback"]
    if show_recovery:
        headers.append("recovery")
    headers += ["net%", "bytes"]
    table = format_table(headers, rows)
    report = (
        table
        + f"\ntotal {total * 1e6:.1f} us across {sum(s.launches for s in stats)}"
        f" launches; {_pct(comm, total):.1f}% in Allgather"
    )
    # fault summary only when something was injected (same reasoning as
    # the recovery column)
    events = sum(s.fault_events for s in stats)
    if events or any(s.retries or s.recoveries for s in stats):
        recovery = sum(s.recovery_s for s in stats)
        report += (
            f"\nfaults: {events} events, "
            f"{sum(s.retries for s in stats)} retries, "
            f"{sum(s.recoveries for s in stats)} recoveries; "
            f"{recovery * 1e6:.1f} us ({_pct(recovery, total):.1f}%)"
            " lost to recovery"
        )
    return report

"""CuCC runtime: memory manager, compiled programs, three-phase launcher."""

from repro.runtime.cucc import CuCCRuntime, RecoveryPolicy
from repro.runtime.memory_manager import Checkpoint, ClusterMemory
from repro.runtime.program import CompiledKernel, LaunchRecord, PhaseTimes
from repro.runtime.trace import KernelStats, format_trace_report, summarize_launches

__all__ = [
    "CuCCRuntime",
    "RecoveryPolicy",
    "ClusterMemory",
    "Checkpoint",
    "CompiledKernel",
    "LaunchRecord",
    "PhaseTimes",
    "KernelStats",
    "summarize_launches",
    "format_trace_report",
]

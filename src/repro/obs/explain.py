"""``repro explain``: offline regression attribution between two runs.

Given two artifacts — Chrome traces written by ``repro serve --trace``
or ``repro run --trace``, or two ``BENCH_*.json`` continuous-benchmark
documents — align their spans and report a **ranked breakdown of where
the time delta comes from**:

* serve traces align per job by ``job_id`` and decompose each job's
  latency into queue wait, phase-1 compute, Allgather, callback,
  recovery and pipeline/packing stall — the serve span publishes the
  exact floats, so the decomposition reproduces the latency to the bit
  (``latency = wait + pre + allgather + post + stall``);
* launch traces align by (kernel, occurrence index) and reuse
  :func:`~repro.obs.export.phase_times_from_spans` for the phase
  decomposition;
* BENCH documents diff their ``metrics`` maps directly.

The report ranks categories by how much they moved (B minus A), flags
jobs present in only one run, and — when run B newly overlaps jobs and
its tail improves — attributes the p99 improvement to
**allgather-window overlap**, quantified by the hidden phase-1 seconds.

Pure function of the two inputs: no clocks, no environment — the same
pair of files always explains to the same bytes.  Loaded lazily via
``repro.obs.__getattr__``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = ["ExplainReport", "explain", "format_explain_report"]

#: attribution categories of one served job, in decomposition order
CATEGORIES = (
    ("queue_wait", "queue wait"),
    ("compute", "phase-1 compute"),
    ("allgather", "allgather"),
    ("callback", "callback"),
    ("recovery", "recovery"),
    ("stall", "pipeline/packing stall"),
)

#: floats below this (seconds / metric units) count as an exact match
EPS = 1e-12


@dataclass
class ExplainReport:
    """The attribution verdict for run B measured against run A."""

    mode: str  # "serve" | "launch" | "bench"
    a_path: str
    b_path: str
    matched: int
    only_a: tuple[str, ...]
    only_b: tuple[str, ...]
    #: category -> total seconds (or metric units) moved, B minus A
    deltas: dict = field(default_factory=dict)
    total_delta_s: float = 0.0
    latency_p99_a: float | None = None
    latency_p99_b: float | None = None
    #: jobs overlapped in B but not in A, and the phase-1 seconds their
    #: overlap hid inside predecessors' Allgather windows
    newly_overlapped: int = 0
    hidden_delta_s: float = 0.0

    @property
    def zero_delta(self) -> bool:
        """True when the two runs are time-identical span for span."""
        return (
            not self.only_a and not self.only_b and self.matched > 0
            and all(abs(v) < EPS for v in self.deltas.values())
        )

    @property
    def attribution(self) -> str:
        """One-line verdict: what moved the time, ranked evidence first."""
        if self.zero_delta:
            return (
                f"zero delta: the two runs are identical — all "
                f"{self.matched} aligned {self._unit()}(s) agree to the bit"
            )
        ranked = self.ranked()
        if not ranked:
            return "no overlapping spans to attribute"
        if (
            self.mode == "serve"
            and self.newly_overlapped > 0
            and self.hidden_delta_s > 0
            and (self.latency_p99_b or 0.0) < (self.latency_p99_a or 0.0)
        ):
            return (
                f"p99 improvement attributed to allgather-window overlap: "
                f"{self.newly_overlapped} job(s) newly overlapped in B, "
                f"hiding {self.hidden_delta_s * 1e6:.2f} us of phase-1 "
                f"compute inside predecessors' Allgather windows "
                f"(p99 {self.latency_p99_a * 1e6:.2f} -> "
                f"{self.latency_p99_b * 1e6:.2f} us)"
            )
        top, delta = ranked[0]
        direction = "regression" if delta > 0 else "improvement"
        share = (
            abs(delta) / sum(abs(v) for _, v in ranked)
            if any(abs(v) >= EPS for _, v in ranked) else 0.0
        )
        return (
            f"dominant {direction} driver: {self._label(top)} "
            f"({'+' if delta >= 0 else ''}{self._fmt(delta)}, "
            f"{share * 100:.1f}% of total movement)"
        )

    def ranked(self) -> list[tuple[str, float]]:
        """Categories by |delta| descending, name breaking ties."""
        return sorted(
            self.deltas.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )

    def _unit(self) -> str:
        return {"serve": "job", "launch": "launch", "bench": "metric"}[
            self.mode
        ]

    def _label(self, key: str) -> str:
        return dict(CATEGORIES).get(key, key)

    def _fmt(self, v: float) -> str:
        if self.mode == "bench":
            return f"{v:g}"
        return f"{v * 1e6:.2f} us"


# ---------------------------------------------------------------------------
# loaders: one job/launch/metric table per artifact
# ---------------------------------------------------------------------------
def _load(path) -> dict:
    p = Path(path)
    if not p.exists():
        raise ReproError(f"no such file: {str(p)!r}")
    try:
        return json.loads(p.read_text())
    except ValueError as e:
        raise ReproError(f"cannot parse {str(p)!r} as JSON: {e}") from e


def _doc_mode(doc: dict, path) -> str:
    if "traceEvents" in doc:
        return "trace"
    if "metrics" in doc and "schema_version" in doc:
        return "bench"
    raise ReproError(
        f"{str(path)!r} is neither a Chrome trace nor a BENCH_*.json "
        f"document"
    )


def _serve_jobs(doc: dict) -> dict[str, dict]:
    """Per-job category table from a serve trace's job spans."""
    out: dict[str, dict] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("cat") != "serve" or ev.get("ph") != "X":
            continue
        a = ev.get("args", {})
        job = a.get("job_id")
        if job is None or "latency_s" not in a:
            continue
        pre = a.get("pre_s", 0.0)
        recovery = a.get("recovery_s", 0.0)
        out[job] = {
            "queue_wait": a.get("wait_s", 0.0),
            "compute": pre - recovery,
            "allgather": a.get("allgather_s", 0.0),
            "callback": a.get("post_s", 0.0),
            "recovery": recovery,
            "stall": a.get("stall_s", 0.0),
            "latency": a["latency_s"],
            "overlapped": bool(a.get("overlapped", False)),
            "hidden": a.get("hidden_s", 0.0),
        }
    return out


def _launch_jobs(doc: dict) -> dict[str, dict]:
    """Per-launch category table, keyed ``kernel#occurrence``."""
    from repro.obs.export import phase_times_from_spans

    out: dict[str, dict] = {}
    seen: dict[str, int] = {}
    for kernel, p in phase_times_from_spans(doc):
        idx = seen.get(kernel, 0)
        seen[kernel] = idx + 1
        out[f"{kernel}#{idx}"] = {
            "queue_wait": 0.0,
            "compute": p.partial + p.overhead,
            "allgather": p.allgather,
            "callback": p.callback,
            "recovery": p.recovery,
            "stall": 0.0,
            "latency": p.total,
            "overlapped": False,
            "hidden": 0.0,
        }
    return out


def _p99(jobs: dict[str, dict]) -> float | None:
    from repro.serve.accounting import percentile

    if not jobs:
        return None
    return percentile([j["latency"] for j in jobs.values()], 99)


def explain(a_path, b_path) -> ExplainReport:
    """Diff two run artifacts (trace JSON or BENCH JSON) and attribute
    the time delta of B relative to A."""
    doc_a, doc_b = _load(a_path), _load(b_path)
    mode_a, mode_b = _doc_mode(doc_a, a_path), _doc_mode(doc_b, b_path)
    if mode_a != mode_b:
        raise ReproError(
            f"cannot explain a {mode_a} against a {mode_b}: pass two "
            f"traces or two BENCH documents"
        )
    if mode_a == "bench":
        ma, mb = doc_a.get("metrics", {}), doc_b.get("metrics", {})
        common = sorted(set(ma) & set(mb))
        deltas = {k: mb[k] - ma[k] for k in common}
        return ExplainReport(
            mode="bench", a_path=str(a_path), b_path=str(b_path),
            matched=len(common),
            only_a=tuple(sorted(set(ma) - set(mb))),
            only_b=tuple(sorted(set(mb) - set(ma))),
            deltas=deltas,
            total_delta_s=sum(deltas.values()),
        )

    jobs_a = _serve_jobs(doc_a)
    jobs_b = _serve_jobs(doc_b)
    mode = "serve"
    if not jobs_a and not jobs_b:
        jobs_a, jobs_b = _launch_jobs(doc_a), _launch_jobs(doc_b)
        mode = "launch"
    if not jobs_a or not jobs_b:
        raise ReproError(
            "the two traces have no alignable spans in common (one has "
            "serve/launch spans, the other has neither)"
        )
    common = sorted(set(jobs_a) & set(jobs_b))
    deltas = {
        key: sum(jobs_b[j][key] - jobs_a[j][key] for j in common)
        for key, _ in CATEGORIES
    }
    total = sum(jobs_b[j]["latency"] - jobs_a[j]["latency"] for j in common)
    newly = [
        j for j in common
        if jobs_b[j]["overlapped"] and not jobs_a[j]["overlapped"]
    ]
    return ExplainReport(
        mode=mode, a_path=str(a_path), b_path=str(b_path),
        matched=len(common),
        only_a=tuple(sorted(set(jobs_a) - set(jobs_b))),
        only_b=tuple(sorted(set(jobs_b) - set(jobs_a))),
        deltas=deltas,
        total_delta_s=total,
        latency_p99_a=_p99(jobs_a),
        latency_p99_b=_p99(jobs_b),
        newly_overlapped=len(newly),
        hidden_delta_s=sum(
            jobs_b[j]["hidden"] - jobs_a[j]["hidden"] for j in common
        ),
    )


def format_explain_report(rep: ExplainReport) -> str:
    """The CLI rendering: header, ranked table, attribution verdict."""
    from repro.bench.harness import format_table

    unit = rep._unit()
    lines = [
        f"repro explain: B = {rep.b_path} vs A = {rep.a_path}",
        f"aligned {rep.matched} {unit}(s)"
        + (f"; only in A: {', '.join(rep.only_a)}" if rep.only_a else "")
        + (f"; only in B: {', '.join(rep.only_b)}" if rep.only_b else ""),
    ]
    if rep.mode != "bench" and rep.latency_p99_a is not None:
        lines.append(
            f"latency p99: A {rep.latency_p99_a * 1e6:.3f} us -> "
            f"B {rep.latency_p99_b * 1e6:.3f} us; total latency delta "
            f"{rep.total_delta_s * 1e6:+.3f} us over aligned {unit}s"
        )
    ranked = rep.ranked()
    movement = sum(abs(v) for _, v in ranked)
    rows = []
    for i, (key, delta) in enumerate(ranked, start=1):
        if rep.mode == "bench" and abs(delta) < EPS:
            continue  # bench docs carry many flat metrics; skip them
        share = abs(delta) / movement * 100 if movement >= EPS else 0.0
        rows.append([
            i, rep._label(key),
            f"{'+' if delta >= 0 else ''}{rep._fmt(delta)}",
            f"{share:.1f}%",
        ])
    if rows:
        header = "delta" if rep.mode == "bench" else "delta (B-A)"
        lines.append(format_table(["rank", "category", header, "share"],
                                  rows))
    lines.append("attribution: " + rep.attribution)
    return "\n".join(lines)

"""Text rendering of netflow documents — the ``repro netview`` CLI.

Consumes the deterministic JSON written by
:meth:`repro.obs.netflow.NetFlowLedger.dump` (``kind: "run"``) or by
``repro tune --netflow`` (``kind: "tune"``) and renders the network
story as text: the hottest physical links, the per-pair traffic matrix
as a shaded heatmap, the contention ranking that names the leaf-switch
uplinks responsible for queueing, bisection/oversubscription accounting,
and — for tune documents — the modeled-vs-measured per-algorithm
comparison that explains why the autotuner's winner won.
"""

from __future__ import annotations

import json

from repro.errors import ReproError
from repro.obs.netflow import NETFLOW_FORMAT_VERSION

__all__ = [
    "load_netflow",
    "format_netview",
    "format_heatmap",
    "format_explain_tune",
]

#: shade ramp for the traffic heatmap, lightest to heaviest
_SHADES = " .:-=+*#%@"


def load_netflow(path) -> dict:
    """Load + validate a netflow JSON document (run or tune kind)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise ReproError(f"cannot read netflow document {path}: {e}") from e
    if not isinstance(doc, dict) or "netflow_format_version" not in doc:
        raise ReproError(
            f"{path} is not a netflow document (missing "
            f"netflow_format_version; was it written by --netflow?)"
        )
    version = doc["netflow_format_version"]
    if version != NETFLOW_FORMAT_VERSION:
        raise ReproError(
            f"{path}: netflow format v{version} is not supported "
            f"(this build reads v{NETFLOW_FORMAT_VERSION})"
        )
    if doc.get("kind") not in ("run", "tune"):
        raise ReproError(
            f"{path}: unknown netflow document kind {doc.get('kind')!r}"
        )
    return doc


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024.0 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def _fmt_s(t: float) -> str:
    t = float(t)
    if t == 0.0:
        return "0"
    if abs(t) < 1e-3:
        return f"{t * 1e6:.2f} us"
    if abs(t) < 1.0:
        return f"{t * 1e3:.3f} ms"
    return f"{t:.4f} s"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    out.append("  ".join("-" * w for w in widths))
    for r in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    return out


def format_heatmap(matrix: dict[str, float]) -> str:
    """Shaded src×dst traffic heatmap from a ``"s->d": bytes`` matrix."""
    if not matrix:
        return "(no traffic)"
    pairs = {}
    nodes: set[int] = set()
    for key, nbytes in matrix.items():
        s, d = key.split("->")
        s, d = int(s), int(d)
        pairs[(s, d)] = float(nbytes)
        nodes.add(s)
        nodes.add(d)
    order = sorted(nodes)
    peak = max(pairs.values())
    w = max(2, len(str(order[-1])))
    lines = [
        "src\\dst " + " ".join(str(d).rjust(w) for d in order),
    ]
    for s in order:
        cells = []
        for d in order:
            v = pairs.get((s, d), 0.0)
            if v <= 0.0:
                cells.append(".".rjust(w))
                continue
            shade = _SHADES[min(
                len(_SHADES) - 1,
                int(v / peak * (len(_SHADES) - 1) + 0.999),
            )]
            cells.append((shade * 2).rjust(w))
        lines.append(f"{str(s).rjust(7)} " + " ".join(cells))
    lines.append(
        f"(shade ramp '{_SHADES[1:]}' scales linearly to the peak pair, "
        f"{_fmt_bytes(peak)})"
    )
    return "\n".join(lines)


def format_netview(doc: dict, top: int = 10) -> str:
    """Render a ``kind="run"`` netflow document as the netview report."""
    if doc.get("kind") != "run":
        raise ReproError(
            "this is a tune-sweep netflow document; render it with "
            "'repro netview --explain-tune'"
        )
    totals = doc.get("totals", {})
    lines = ["== network view =="]
    span = float(totals.get("span_s", 0.0)) or 0.0
    lines.append(
        f"{totals.get('collectives', 0)} collectives, "
        f"{totals.get('flows', 0)} messages, "
        f"{_fmt_bytes(totals.get('bytes', 0))} moved, "
        f"{_fmt_s(span)} of collective time"
    )
    if span > 0:
        parts = []
        for key, label in (("alpha_s", "alpha"), ("serial_s", "serial"),
                           ("contention_s", "contention"),
                           ("local_s", "local")):
            v = float(totals.get(key, 0.0))
            parts.append(f"{label} {_fmt_s(v)} ({v / span * 100.0:.1f}%)")
        lines.append("decomposition: " + ", ".join(parts))

    links = doc.get("links", {})
    if links:
        lines.append("")
        lines.append(f"-- hottest links (top {top} by bytes) --")
        hottest = sorted(
            links.items(), key=lambda kv: (-kv[1]["bytes"], kv[0])
        )[:top]
        lines.extend(_table(
            ["link", "kind", "bytes", "msgs", "busy", "queued"],
            [
                [label, e["kind"], _fmt_bytes(e["bytes"]), str(e["msgs"]),
                 _fmt_s(e["busy_s"]), _fmt_s(e["queue_s"])]
                for label, e in hottest
            ],
        ))
        contended = sorted(
            (kv for kv in links.items() if kv[1]["queue_s"] > 0.0),
            key=lambda kv: (-kv[1]["queue_s"], kv[0]),
        )[:top]
        if contended:
            lines.append("")
            lines.append("-- contention ranking (queueing seconds) --")
            lines.extend(_table(
                ["link", "kind", "queued", "msgs", "bytes"],
                [
                    [label, e["kind"], _fmt_s(e["queue_s"]), str(e["msgs"]),
                     _fmt_bytes(e["bytes"])]
                    for label, e in contended
                ],
            ))
        else:
            lines.append("")
            lines.append("no link contention observed")

    matrix = doc.get("matrix", {})
    if matrix:
        lines.append("")
        lines.append("-- traffic matrix (bytes, src -> dst) --")
        lines.append(format_heatmap(matrix))

    ops = doc.get("ops", {})
    if len(ops) > 1:
        lines.append("")
        lines.append("-- per-op traffic --")
        lines.extend(_table(
            ["op", "bytes", "pairs"],
            [
                [op, _fmt_bytes(sum(m.values())), str(len(m))]
                for op, m in sorted(ops.items())
            ],
        ))

    jobs = doc.get("jobs", {})
    if jobs:
        lines.append("")
        lines.append("-- per-job traffic --")
        rows = []
        for job, j in sorted(
            jobs.items(), key=lambda kv: (-kv[1]["bytes"], kv[0])
        ):
            rows.append([
                job, str(j["collectives"]), _fmt_bytes(j["bytes"]),
                _fmt_s(j["span_s"]), _fmt_s(j["contention_s"]),
            ])
        lines.extend(_table(
            ["job", "collectives", "bytes", "net time", "contention"], rows
        ))

    bisect = doc.get("bisection", {})
    if bisect:
        lines.append("")
        lines.append("-- bisection --")
        rows = []
        for sig, b in sorted(bisect.items()):
            rows.append([
                sig,
                f"{b['bisection_bytes_per_s'] / 1e9:.1f} GB/s",
                f"{b['oversubscription']:.2f}x",
                _fmt_bytes(b["bytes_crossing"]),
            ])
        lines.extend(_table(
            ["topology", "bisection bw", "oversub", "bytes crossing"], rows
        ))
    return "\n".join(lines)


def format_explain_tune(doc: dict, top: int = 3) -> str:
    """Render a ``kind="tune"`` document: per payload, the measured and
    modeled cost of every algorithm, its exact cost decomposition, and
    its hottest links — why the winner won, what the rejected
    algorithms would have cost the wires."""
    if doc.get("kind") != "tune":
        raise ReproError(
            "this is a run netflow document, not a tune sweep; render it "
            "with plain 'repro netview'"
        )
    lines = [
        "== tune explain ==",
        f"{doc.get('nodes', '?')} nodes on {doc.get('topology', '?')}",
    ]
    for entry in doc.get("payloads", []):
        lines.append("")
        lines.append(
            f"-- payload {_fmt_bytes(entry['payload_bytes'])} "
            f"(winner: {entry['winner']}) --"
        )
        trials = entry.get("trials", {})
        ordered = sorted(
            trials.items(), key=lambda kv: (kv[1]["measured_s"], kv[0])
        )
        rows = []
        for algo, t in ordered:
            modeled = t.get("modeled_s")
            hot = sorted(
                t.get("links", {}).items(),
                key=lambda kv: (-kv[1]["bytes"], kv[0]),
            )[:top]
            rows.append([
                ("*" if t.get("chosen") else " ") + algo,
                _fmt_s(t["measured_s"]),
                _fmt_s(modeled) if modeled is not None else "-",
                _fmt_s(t["alpha_s"]),
                _fmt_s(t["serial_s"]),
                _fmt_s(t["contention_s"]),
                str(t["rounds"]),
                ", ".join(label for label, _ in hot) or "-",
            ])
        lines.extend(_table(
            ["algorithm", "measured", "modeled", "alpha", "serial",
             "contention", "rounds", "hottest links"],
            rows,
        ))
        mismodeled = [
            algo for algo, t in ordered
            if t.get("modeled_s") is not None
            and (min(
                trials,
                key=lambda a: (trials[a].get("modeled_s", float("inf")),
                               a),
            ) == algo) != bool(t.get("chosen"))
        ]
        if mismodeled:
            lines.append(
                "note: the cost model's cheapest pick differs from the "
                "measured winner here (model refinement candidate: "
                + ", ".join(sorted(mismodeled)) + ")"
            )
    return "\n".join(lines)

"""Declarative service-level objectives for the serving loop.

An :class:`SLOPolicy` states what the service promises — per-job queue
wait and latency ceilings, and an end-of-run pool-utilization floor —
and an :class:`SLOMonitor` evaluates it *online* as the serving loop
places jobs, with windowed burn-rate accounting:

* each latency-class objective keeps a sliding window of the last
  ``window`` jobs and marks each as violating or not;
* the **burn rate** is the violating fraction divided by the error
  ``budget`` (the fraction of jobs the policy tolerates missing the
  objective).  Burn >= 1 means the budget is being consumed exactly as
  fast as it accrues — a ``warn``; burn >= ``breach_burn`` (default 2x)
  is a hard ``breach``;
* events are emitted on upward level transitions only (ok -> warn,
  warn -> breach), so a sustained violation storm produces one warn and
  one breach, not one event per job.

The monitor is pure bookkeeping over simulated timestamps — evaluation
order is the deterministic placement order of the serving loop, so the
event stream is byte-stable per seed.  Breaches surface in the
:class:`~repro.serve.accounting.ServeReport`, in the trace (``slo``
instants), in metrics, in the flight recorder, and as a non-zero
``repro serve --slo`` exit status.

Loaded lazily via ``repro.obs.__getattr__``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["SLOPolicy", "SLOEvent", "SLOMonitor"]

#: escalation order of monitor levels
_LEVELS = {"ok": 0, "warn": 1, "breach": 2}


@dataclass(frozen=True)
class SLOPolicy:
    """What the service promises (simulated seconds throughout)."""

    #: per-job queue-wait ceiling (arrival -> admission), or None
    max_wait_s: float | None = None
    #: per-job latency ceiling (arrival -> finish), or None
    max_latency_s: float | None = None
    #: end-of-run pool-utilization floor in [0, 1], or None
    min_utilization: float | None = None
    #: sliding-window length (jobs) for burn-rate accounting
    window: int = 8
    #: error budget: tolerated violating fraction of the window
    budget: float = 0.25
    #: burn rate at which a warn hardens into a breach
    breach_burn: float = 2.0

    def __post_init__(self):
        if self.window < 1:
            raise ServeError(f"SLO window must be >= 1, got {self.window}")
        if not 0 < self.budget <= 1:
            raise ServeError(
                f"SLO budget must be in (0, 1], got {self.budget}"
            )
        if self.breach_burn < 1:
            raise ServeError(
                f"SLO breach burn must be >= 1, got {self.breach_burn}"
            )
        if all(o is None for o in (self.max_wait_s, self.max_latency_s,
                                   self.min_utilization)):
            raise ServeError(
                "SLO policy needs at least one objective "
                "(wait, latency or utilization)"
            )

    @classmethod
    def parse(cls, spec: str) -> "SLOPolicy":
        """Parse a CLI spec like
        ``"wait<=2e-5,latency<=1e-4,utilization>=0.5,window=8,budget=0.25"``.

        ``wait``/``latency`` take ``<=`` ceilings (seconds),
        ``utilization`` (alias ``util``) a ``>=`` floor; ``window``,
        ``budget`` and ``burn`` tune the burn-rate accounting.
        """
        kw: dict = {}
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            for op in ("<=", ">=", "="):
                if op in token:
                    name, _, value = token.partition(op)
                    break
            else:
                raise ServeError(
                    f"bad SLO term {token!r}: expected name<=value, "
                    f"name>=value or name=value"
                )
            name = name.strip().lower()
            try:
                num = float(value)
            except ValueError:
                raise ServeError(
                    f"bad SLO value in {token!r}: {value!r} is not a number"
                ) from None
            if name == "wait":
                kw["max_wait_s"] = num
            elif name == "latency":
                kw["max_latency_s"] = num
            elif name in ("utilization", "util"):
                kw["min_utilization"] = num
            elif name == "window":
                kw["window"] = int(num)
            elif name == "budget":
                kw["budget"] = num
            elif name == "burn":
                kw["breach_burn"] = num
            else:
                raise ServeError(
                    f"unknown SLO objective {name!r}; known: wait, "
                    f"latency, utilization, window, budget, burn"
                )
        return cls(**kw)

    def describe(self) -> str:
        parts = []
        if self.max_wait_s is not None:
            parts.append(f"wait<={self.max_wait_s:g}s")
        if self.max_latency_s is not None:
            parts.append(f"latency<={self.max_latency_s:g}s")
        if self.min_utilization is not None:
            parts.append(f"utilization>={self.min_utilization:g}")
        parts.append(f"window={self.window}")
        parts.append(f"budget={self.budget:g}")
        parts.append(f"burn={self.breach_burn:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class SLOEvent:
    """One structured warn/breach instant (simulated seconds)."""

    t: float
    level: str  # "warn" | "breach"
    objective: str  # "wait" | "latency" | "utilization"
    value: float  # the observation that crossed the line
    threshold: float
    burn: float  # burn rate at emission (budget multiples)
    job_id: str | None = None

    def describe(self) -> str:
        who = f" (job {self.job_id})" if self.job_id else ""
        cmp = ">=" if self.objective == "utilization" else "<="
        return (
            f"[{self.t * 1e6:10.3f} us] SLO {self.level.upper()}: "
            f"{self.objective} {self.value:g} vs {cmp} {self.threshold:g}, "
            f"burn {self.burn:.2f}x budget{who}"
        )


class SLOMonitor:
    """Online evaluator of one :class:`SLOPolicy` over a serve run."""

    def __init__(self, policy: SLOPolicy):
        self.policy = policy
        self.events: list[SLOEvent] = []
        self._windows: dict[str, deque] = {
            "wait": deque(maxlen=policy.window),
            "latency": deque(maxlen=policy.window),
        }
        self._levels = {"wait": "ok", "latency": "ok", "utilization": "ok"}

    @property
    def warned(self) -> bool:
        return any(e.level == "warn" for e in self.events)

    @property
    def breached(self) -> bool:
        return any(e.level == "breach" for e in self.events)

    def _transition(
        self, objective: str, level: str, t: float, value: float,
        threshold: float, burn: float, job_id: str | None,
    ) -> list[SLOEvent]:
        """Emit events for an upward level change; record the new level
        either way (de-escalation is silent but re-arms emission)."""
        new: list[SLOEvent] = []
        if _LEVELS[level] > _LEVELS[self._levels[objective]]:
            # escalating straight to breach still logs the warn->breach
            # story as one breach event — the warn threshold was never
            # the steady state
            new.append(SLOEvent(
                t=t, level=level, objective=objective, value=value,
                threshold=threshold, burn=burn, job_id=job_id,
            ))
            self.events.extend(new)
        self._levels[objective] = level
        return new

    def observe(
        self, t: float, job_id: str, wait_s: float, latency_s: float,
    ) -> list[SLOEvent]:
        """Feed one placed job (at its finish instant ``t``); returns
        any newly emitted events."""
        p = self.policy
        out: list[SLOEvent] = []
        for objective, value, threshold in (
            ("wait", wait_s, p.max_wait_s),
            ("latency", latency_s, p.max_latency_s),
        ):
            if threshold is None:
                continue
            win = self._windows[objective]
            win.append(1 if value > threshold else 0)
            burn = (sum(win) / len(win)) / p.budget
            level = (
                "breach" if burn >= p.breach_burn
                else "warn" if burn >= 1.0 else "ok"
            )
            if value > threshold or level == "ok":
                out += self._transition(
                    objective, level, t, value, threshold, burn, job_id,
                )
        return out

    def finalize(self, t: float, utilization: float) -> list[SLOEvent]:
        """End-of-run check of the utilization floor at makespan ``t``."""
        p = self.policy
        if p.min_utilization is None or utilization >= p.min_utilization:
            return []
        burn = (
            p.min_utilization / utilization
            if utilization > 0 else float(p.breach_burn)
        )
        level = "breach" if burn >= p.breach_burn else "warn"
        return self._transition(
            "utilization", level, t, utilization, p.min_utilization, burn,
            None,
        )

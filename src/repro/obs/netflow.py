"""Per-link network flow ledger: who moved bytes over which wire, when.

The tracer's ``collective``/``round`` spans say *when* a collective ran
and how long each schedule round took; the metrics registry says how
many bytes each (src, dst) pair exchanged in total.  What neither can
answer is the link-level story the paper's network analysis needs:
which physical links carried the bytes of round 3, how much of a
collective's duration was alpha latency vs. serialization vs. fat-tree
uplink queueing, and which leaf switch caused the queueing.

:class:`NetFlowLedger` closes that gap.  The communicator calls
:meth:`NetFlowLedger.record_collective` (through a None-checked
``comm.netflow`` attribute — the zero-cost-when-off pattern every
observability hook in this repository follows) once per schedule-driven
collective, passing exactly the inputs the pricing already used: the
send-schedule, per-block byte counts, physical positions and topology.
Recording is two calls and one tuple append; *everything* else — flow
expansion, link attribution, cost decomposition, utilization series —
is computed lazily on demand, so an enabled ledger stays inside the
<2% call budget ``bench_obs_overhead`` gates.

Analysis re-derives the per-message pricing with the very same float
expressions :meth:`~repro.cluster.topology.Topology.round_cost` used
(including the fat-tree crossing count and ceil-share), so the derived
quantities are *exact*, not approximations:

* the left-to-right sum of re-priced round costs reproduces each
  collective's modeled duration bit-for-bit;
* the cost decomposition ``alpha + serialization + contention
  (+ local copies)`` reconstructs each collective span exactly
  (serialization is defined as the residual that completes the
  identity; contention is exactly ``0.0`` whenever no round shared an
  uplink);
* per-pair byte sums equal the communicator's ``comm.link_bytes``
  metrics exactly (the conservation property test).

Contention attribution follows the topology model: a spine-crossing
message is attributed to the *source* leaf switch's uplink (label
``uplink:s<switch>``), because that is the port whose sharing divided
the message's bandwidth.  Intra-switch and flat/ring/torus paths get
per-pair labels.

The ledger also exports two Perfetto counter tracks —
``net.link_busy`` (links with at least one in-flight message) and
``net.contention`` (in-flight messages currently sharing an uplink) —
via :meth:`append_counters`, which only ever *appends* counter events
to an existing trace, preserving the byte-identical-prefix guarantee
of plain traces.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.cluster.collectives import priced_round
from repro.cluster.topology import FatTreeTopology, FlatTopology

__all__ = [
    "NetFlowLedger",
    "Flow",
    "CollectiveFlow",
    "NETFLOW_FORMAT_VERSION",
]

#: schema version stamped into every dumped ledger document
NETFLOW_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Flow:
    """One message on one physical link in one schedule round."""

    src: int  #: source node id (pool id after serving adoption)
    dst: int  #: destination node id
    link: str  #: physical-link label ("uplink:s0", "intra:2->3", ...)
    kind: str  #: link class: "uplink" | "intra" | "path" | "flat"
    nbytes: int  #: payload bytes carried (0 for an empty v-block)
    t0: float  #: message start (simulated seconds, service clock)
    t1: float  #: message end
    share: int  #: uplink bandwidth divisor (1 = uncontended)
    queue_s: float  #: contention delay this message experienced
    collective: int  #: index into the ledger's collectives
    round: int  #: schedule round within the collective
    job_id: str | None  #: owning job after serving adoption


@dataclass(frozen=True)
class CollectiveFlow:
    """One recorded collective with its exact cost decomposition.

    ``alpha_s + serial_s + contention_s + local_s == span_s`` holds
    bit-exactly: alpha and contention are per-round sums over the
    critical (round-defining) message, ``local_s`` is the non-network
    remainder (the out-of-place variant's input copy; exactly ``0.0``
    otherwise) and ``serial_s`` is defined as the residual that
    completes the identity.
    """

    index: int
    op: str
    buffer: str
    algo: str | None
    job_id: str | None
    t0: float  #: collective start on the (service) clock
    span_s: float  #: traced span duration (duration * pace), bit-exact
    nbytes: int  #: payload bytes the collective moved
    rounds: int
    alpha_s: float
    serial_s: float
    contention_s: float
    local_s: float

    @property
    def reconstructed_s(self) -> float:
        """The decomposition re-summed in canonical order."""
        return ((self.alpha_s + self.serial_s) + self.contention_s) \
            + self.local_s


def _message_costs(topo, priced):
    """Per-message ``(alpha_s, beta_unshared, share, cost_s)`` of one
    round, with the identical float expressions (and crossing-count /
    ceil-share semantics) ``Topology.round_cost`` uses."""
    fat = isinstance(topo, FatTreeTopology)
    crossing: dict[int, int] = {}
    if fat:
        for src, dst, _ in priced:
            s = topo.switch_of(src)
            if s != topo.switch_of(dst):
                crossing[s] = crossing.get(s, 0) + 1
    out = []
    for src, dst, nbytes in priced:
        alpha, beta = topo.link(src, dst)
        base = beta
        share = 1
        if fat:
            s = topo.switch_of(src)
            if s != topo.switch_of(dst):
                share = -(-crossing[s] // topo.uplinks)  # ceil
                beta = beta / share
        out.append((alpha, base, share, alpha + nbytes / beta))
    return out


def _fit_serial(total: float, alpha: float, contention: float,
                local: float) -> float:
    """Serialization seconds: the residual completing the decomposition
    identity, nudged (at most a few ulps) so the canonical re-sum
    ``((alpha + serial) + contention) + local`` equals ``total``
    bit-exactly."""
    r = total - alpha - contention - local
    for _ in range(8):
        err = ((alpha + r) + contention) + local - total
        if err == 0.0:
            return r
        r = math.nextafter(r, -math.inf if err > 0.0 else math.inf)
    return total - alpha - contention - local


def _union_seconds(intervals) -> float:
    """Total covered length of a set of ``(t0, t1)`` intervals."""
    busy = 0.0
    end = -math.inf
    start = None
    for t0, t1 in sorted(intervals):
        if start is None or t0 > end:
            if start is not None:
                busy += end - start
            start, end = t0, t1
        else:
            end = max(end, t1)
    if start is not None:
        busy += end - start
    return busy


def _step_series(spans) -> list[tuple[float, int]]:
    """Concurrency step series of ``(t, key)`` interval/key pairs: at
    each boundary, how many distinct keys have an active interval.
    Timestamps are strictly increasing (same-instant changes coalesce,
    with ends applied before starts)."""
    events = []
    for t0, t1, key in spans:
        if t1 > t0:
            events.append((t0, 1, key))
            events.append((t1, -1, key))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    series: list[tuple[float, int]] = []
    counts: dict[object, int] = {}
    active = 0
    i = 0
    while i < len(events):
        t = events[i][0]
        while i < len(events) and events[i][0] == t:
            _, d, key = events[i]
            c = counts.get(key, 0) + d
            counts[key] = c
            if d > 0 and c == 1:
                active += 1
            elif d < 0 and c == 0:
                active -= 1
            i += 1
        series.append((t, active))
    return series


class NetFlowLedger:
    """Append-only per-collective flow ledger with lazy analysis.

    The hot path is :meth:`record_collective`; every derived view
    (flows, links, decompositions, series, conservation sums) is
    computed on first use and cached until the next append.
    """

    def __init__(self) -> None:
        #: raw per-collective tuples, in record order
        self._raw: list[tuple] = []
        self._cache = None

    def __len__(self) -> int:
        return len(self._raw)

    def clear(self) -> None:
        """Drop every record (a server reuses its ledger across runs)."""
        self._raw.clear()
        self._cache = None

    # -- recording (the hot path) ----------------------------------------
    def record_collective(self, op, buffer, algo, topology, rounds,
                          byte_counts, positions, start, pace,
                          total_bytes, duration) -> None:
        """Append one schedule-driven collective.  O(1): the schedule
        and byte counts are kept by reference, pricing happens lazily."""
        self._cache = None
        self._raw.append((op, buffer, algo, topology, rounds, byte_counts,
                          positions, start, pace, total_bytes, duration,
                          None, None))

    def adopt(self, records, shift: float = 0.0, job_id=None,
              node_map=None) -> None:
        """Merge raw records from another ledger (a job's) onto this
        one: shift starts onto the service clock, stamp the ``job_id``
        and remap job-local positions to the leased pool node ids for
        display (pricing keeps the original positions/topology)."""
        self._cache = None
        if isinstance(records, NetFlowLedger):
            records = records._raw
        nm = tuple(node_map) if node_map is not None else None
        for r in records:
            self._raw.append(r[:7] + (r[7] + shift,) + r[8:11]
                             + (job_id if job_id is not None else r[11],
                                nm if nm is not None else r[12]))

    # -- lazy analysis ---------------------------------------------------
    def _analyze(self):
        if self._cache is not None:
            return self._cache
        colls: list[CollectiveFlow] = []
        flows: list[Flow] = []
        bisect: dict[str, dict] = {}
        for ci, rec in enumerate(self._raw):
            (op, buffer, algo, topo, rounds, byte_counts, positions,
             start, pace, total_bytes, duration, job_id, node_map) = rec
            half = topo.num_nodes // 2
            b = bisect.setdefault(topo.signature, _bisection_info(topo))
            cur = start
            alpha_sum = 0.0
            cont_sum = 0.0
            rounds_total = 0.0
            for ri, sends in enumerate(rounds):
                if not sends:
                    continue  # round_costs prices an empty round at 0.0
                priced = priced_round(sends, byte_counts, positions)
                costs = _message_costs(topo, priced)
                full = topo.round_cost(priced)
                rounds_total += full
                # the round-defining (critical) message, replicating the
                # max chain in round_cost (earliest message wins ties)
                worst = 0.0
                crit = None
                for j, (_, _, _, c) in enumerate(costs):
                    if c > worst:
                        worst, crit = c, j
                if crit is not None:
                    ca, cb, _, _ = costs[crit]
                    nocont = ca + priced[crit][2] / cb
                    alpha_sum += ca
                    # exactly 0.0 when the critical message was unshared
                    cont_sum += full - nocont
                d_paced = full * pace
                for j, (src_r, dst_r, blocks) in enumerate(sends):
                    a, base, share, c = costs[j]
                    sp, dp = positions[src_r], positions[dst_r]
                    nb = 0
                    for blk in blocks:
                        nb += byte_counts[blk]
                    nb = int(nb)
                    if nb and (sp < half) != (dp < half):
                        b["bytes_crossing"] += nb
                    kind, link = _classify(topo, sp, dp, job_id)
                    if node_map is not None:
                        if sp < len(node_map):
                            sp = node_map[sp]
                        if dp < len(node_map):
                            dp = node_map[dp]
                    if kind != "uplink":
                        link = f"{kind}:{sp}->{dp}"
                    flows.append(Flow(
                        src=sp, dst=dp, link=link, kind=kind, nbytes=nb,
                        t0=cur, t1=cur + c * pace, share=share,
                        queue_s=c - (a + priced[j][2] / base),
                        collective=ci, round=ri, job_id=job_id,
                    ))
                cur += d_paced
            span_s = duration * pace
            alpha_s = alpha_sum * pace
            contention_s = cont_sum * pace
            local_s = (duration - rounds_total) * pace
            colls.append(CollectiveFlow(
                index=ci, op=op, buffer=buffer, algo=algo, job_id=job_id,
                t0=start, span_s=span_s, nbytes=int(total_bytes),
                rounds=len(rounds), alpha_s=alpha_s,
                serial_s=_fit_serial(span_s, alpha_s, contention_s,
                                     local_s),
                contention_s=contention_s, local_s=local_s,
            ))
        self._cache = (colls, flows, bisect)
        return self._cache

    def collectives(self) -> list[CollectiveFlow]:
        return self._analyze()[0]

    def flows(self) -> list[Flow]:
        return self._analyze()[1]

    # -- derived views ---------------------------------------------------
    def pair_bytes(self) -> dict[tuple[int, int], int]:
        """Bytes per (src, dst) node pair — comparable 1:1 with the
        communicator's ``comm.link_bytes`` metric series (zero-byte
        messages are skipped on both sides)."""
        out: dict[tuple[int, int], int] = {}
        for f in self.flows():
            if f.nbytes:
                key = (f.src, f.dst)
                out[key] = out.get(key, 0) + f.nbytes
        return out

    def links(self) -> dict[str, dict]:
        """Per-physical-link aggregation: bytes, message count, busy
        seconds (union of in-flight intervals) and queueing seconds."""
        agg: dict[str, dict] = {}
        for f in self.flows():
            e = agg.get(f.link)
            if e is None:
                e = agg[f.link] = {
                    "kind": f.kind, "bytes": 0, "msgs": 0,
                    "queue_s": 0.0, "intervals": [],
                }
            e["bytes"] += f.nbytes
            e["msgs"] += 1
            e["queue_s"] += f.queue_s
            e["intervals"].append((f.t0, f.t1))
        for e in agg.values():
            e["busy_s"] = _union_seconds(e.pop("intervals"))
        return agg

    def traffic_matrix(self, op: str | None = None) -> dict:
        """Bytes per (src, dst) pair, optionally for one collective op."""
        out: dict[tuple[int, int], int] = {}
        if op is None:
            return self.pair_bytes()
        index = {c.index: c.op for c in self.collectives()}
        for f in self.flows():
            if f.nbytes and index[f.collective] == op:
                key = (f.src, f.dst)
                out[key] = out.get(key, 0) + f.nbytes
        return out

    def link_busy_series(self) -> list[tuple[float, int]]:
        """Step series: number of links with an in-flight message."""
        return _step_series(
            (f.t0, f.t1, f.link) for f in self.flows()
        )

    def contention_series(self) -> list[tuple[float, int]]:
        """Step series: in-flight messages sharing an uplink."""
        return _step_series(
            (f.t0, f.t1, i)
            for i, f in enumerate(self.flows()) if f.share > 1
        )

    def append_counters(self, tracer) -> None:
        """Export the flow series as Perfetto counter tracks
        (``net.link_busy`` / ``net.contention``).  Counter events are
        strictly appended after whatever the tracer already holds, so
        enabling netflow never perturbs the plain-trace prefix."""
        if not tracer.enabled:
            return
        from repro.obs.tracer import SpanKind

        for name, series in (
            ("net.link_busy", self.link_busy_series()),
            ("net.contention", self.contention_series()),
        ):
            for t, v in series:
                tracer.add(name, SpanKind.COUNTER, t, t, value=v)

    # -- export ----------------------------------------------------------
    def to_doc(self) -> dict:
        """The ledger as a JSON-ready document (``repro netview``'s
        input).  Keys are deterministic; every quantity is simulated."""
        colls, flows, bisect = self._analyze()
        links = self.links()
        matrix = {
            f"{s}->{d}": nb for (s, d), nb in self.pair_bytes().items()
        }
        ops: dict[str, dict[str, int]] = {}
        jobs: dict[str, dict] = {}
        index = {c.index: c for c in colls}
        for f in flows:
            c = index[f.collective]
            if f.nbytes:
                m = ops.setdefault(c.op, {})
                key = f"{f.src}->{f.dst}"
                m[key] = m.get(key, 0) + f.nbytes
        for c in colls:
            if c.job_id is None:
                continue
            j = jobs.setdefault(c.job_id, {
                "bytes": 0, "collectives": 0, "alpha_s": 0.0,
                "serial_s": 0.0, "contention_s": 0.0, "span_s": 0.0,
            })
            j["bytes"] += c.nbytes
            j["collectives"] += 1
            j["alpha_s"] += c.alpha_s
            j["serial_s"] += c.serial_s
            j["contention_s"] += c.contention_s
            j["span_s"] += c.span_s
        totals = {
            "collectives": len(colls),
            "flows": len(flows),
            "bytes": sum(c.nbytes for c in colls),
            "alpha_s": sum(c.alpha_s for c in colls),
            "serial_s": sum(c.serial_s for c in colls),
            "contention_s": sum(c.contention_s for c in colls),
            "local_s": sum(c.local_s for c in colls),
            "span_s": sum(c.span_s for c in colls),
        }
        return {
            "netflow_format_version": NETFLOW_FORMAT_VERSION,
            "kind": "run",
            "collectives": [
                {
                    "op": c.op, "buffer": c.buffer, "algo": c.algo,
                    "job_id": c.job_id, "t0": c.t0, "span_s": c.span_s,
                    "bytes": c.nbytes, "rounds": c.rounds,
                    "alpha_s": c.alpha_s, "serial_s": c.serial_s,
                    "contention_s": c.contention_s, "local_s": c.local_s,
                }
                for c in colls
            ],
            "links": {
                label: {k: e[k] for k in
                        ("kind", "bytes", "msgs", "busy_s", "queue_s")}
                for label, e in links.items()
            },
            "matrix": matrix,
            "ops": ops,
            "jobs": jobs,
            "bisection": bisect,
            "series": {
                "link_busy": [[t, v] for t, v in self.link_busy_series()],
                "contention": [[t, v] for t, v in self.contention_series()],
            },
            "totals": totals,
        }

    def dump(self, path):
        """Write the ledger document as deterministic JSON; returns the
        path written (a :class:`~pathlib.Path`)."""
        from repro.ioutil import atomic_write_text

        text = json.dumps(self.to_doc(), indent=1, sort_keys=True) + "\n"
        return atomic_write_text(path, text)


def _classify(topo, src: int, dst: int, job_id) -> tuple[str, str]:
    """Link class + label of a priced path.  Spine-crossing fat-tree
    messages are attributed to the *source* leaf switch's uplink — the
    port whose sharing divided their bandwidth (labels are job-scoped
    under serving, where switch ids are job-local)."""
    if isinstance(topo, FatTreeTopology):
        s = topo.switch_of(src)
        if s != topo.switch_of(dst):
            prefix = f"uplink:{job_id}:" if job_id is not None else "uplink:"
            return "uplink", f"{prefix}s{s}"
        return "intra", ""
    if isinstance(topo, FlatTopology):
        return "flat", ""
    return "path", ""


def _bisection_info(topo) -> dict:
    """Bisection bandwidth + oversubscription accounting per topology.

    Oversubscription is injection-based: the aggregate bandwidth one
    half could inject divided by what the bisection cut can carry
    (1.0 on a non-blocking fabric).  Crossing bytes accumulate as
    flows are analyzed."""
    n = topo.num_nodes
    half = max(1, n // 2)
    if isinstance(topo, FatTreeTopology):
        switches = -(-n // topo.nodes_per_switch)
        bw = max(1, switches // 2) * topo.uplinks \
            * topo.inter_beta_GBs * 1e9
        inject = half * topo.intra_beta_GBs * 1e9
    elif isinstance(topo, FlatTopology):
        bw = half * topo.network.beta_bytes_per_s
        inject = bw
    else:  # ring / torus: the cut severs 2 (ring) or 2*min(dims) links
        links = 2
        dims = getattr(topo, "dims", None)
        if dims is not None:
            links = 2 * min(dims)
        bw = links * topo.beta_GBs * 1e9
        inject = half * topo.beta_GBs * 1e9
    return {
        "bisection_bytes_per_s": bw,
        "oversubscription": inject / bw if bw else 0.0,
        "bytes_crossing": 0,
    }

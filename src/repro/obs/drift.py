"""Model-drift telemetry: predicted vs. executed phase times.

The analytical cost model (:func:`repro.hw.perfmodel.cpu_node_time`, the
tuning selector's :func:`repro.cluster.collectives.allgather_algo_cost`)
is what `repro.bench.profile.model_cucc_time` and the autotuner's
cache-miss path reason with — if it drifts from what the simulated
runtime actually executes, every capacity-planning answer built on it is
wrong.  This module closes the loop: after every CuCC launch (opt-in,
``CuCCRuntime(drift=True)``) it re-predicts the partial and Allgather
phase times *from the launch's own dynamic counts and plan*, compares
them against the executed :class:`~repro.runtime.program.PhaseTimes`,
and records the signed relative error

    err = (executed - predicted) / predicted

into the process-wide :data:`~repro.obs.metrics.METRICS` registry as the
``model.drift_rel_err`` histogram, labelled by phase, kernel, topology
kind and collective algorithm.  The predictions are also published into
the launch span's args so ``repro report --drift`` can tabulate them
from a saved trace and flag any prediction off by more than a
configurable bound (default ±25%).

Drift is **opt-in** precisely because the prediction pass calls the
tuning selector, which counts cache hits/misses — running it by default
would perturb metrics (and traced-run bytes) of ordinary runs.
"""

from __future__ import annotations

from repro.hw.perfmodel import cpu_node_time
from repro.obs.metrics import METRICS

__all__ = [
    "DEFAULT_DRIFT_BOUND",
    "predicted_phase_times",
    "signed_rel_error",
    "observe_launch_drift",
    "format_drift_report",
]

#: default |relative error| above which ``report --drift`` flags a launch
DEFAULT_DRIFT_BOUND = 0.25

#: histogram observations are clamped to this magnitude — the executed >
#: 0 / predicted = 0 corner yields an infinite relative error, and the
#: power-of-two histogram cannot bucket infinity
_OBSERVE_CLAMP = 1e9


def _topology_kind(topo) -> str:
    """``FatTreeTopology`` → ``"fattree"`` — the metrics label value."""
    name = type(topo).__name__
    if name.endswith("Topology"):
        name = name[: -len("Topology")]
    return name.lower()


def signed_rel_error(executed: float, predicted: float) -> float:
    """Signed relative error of ``executed`` against ``predicted``.

    Both zero (e.g. an empty phase) is perfect agreement; a positive
    prediction gives the usual ratio; predicting zero for real executed
    time is infinitely wrong.
    """
    if predicted > 0:
        return (executed - predicted) / predicted
    if executed <= 0:
        return 0.0
    return float("inf")


def predicted_phase_times(runtime, record, vectorized, working_set) -> dict | None:
    """Re-predict partial/Allgather times for one launch from its plan.

    Uses exactly the model the offline estimator
    (`repro.bench.profile.model_cucc_time`) uses: rank 0's partial
    counters through :func:`cpu_node_time`, and the plan's per-buffer
    Allgather payloads through the tuning selector +
    :func:`allgather_algo_cost`.  Returns ``None`` for replicated
    launches (nothing modeled phase-wise) and plans without partial
    work.
    """
    plan = record.plan
    if plan.replicated or plan.p_size <= 0 or not record.partial_counters:
        return None
    from repro.cluster.collectives import allgather_algo_cost
    from repro.tuning.select import select_algorithm

    comm = runtime.cluster.comm
    topo = comm.topology
    nodes = runtime.cluster.nodes
    nblocks0 = len(plan.node_blocks(0))
    partial = cpu_node_time(
        nodes[0].spec,
        record.partial_counters[0],
        nblocks0,
        vectorized,
        simd_enabled=runtime.simd_enabled,
        working_set_bytes=working_set,
        params=runtime.params,
    )
    allgather = 0.0
    algos: list[str] = []
    for bp in plan.buffers:
        payload = plan.p_size * bp.unit_elems * bp.elem_size * comm.size
        if payload <= 0:
            continue
        algo = runtime.allgather_algo
        if algo == "auto":
            algo = select_algorithm(topo, payload, cache=comm.tuning)
        allgather += allgather_algo_cost(algo, topo, payload)
        if algo not in algos:
            algos.append(algo)
    return {"partial": partial, "allgather": allgather, "algos": tuple(algos)}


def observe_launch_drift(
    runtime, kernel, record, vectorized, working_set, lspan=None
) -> dict | None:
    """Record model-vs-executed drift of one launch into METRICS.

    Observes ``model.drift_rel_err`` once per phase (partial, allgather)
    with labels ``phase``/``kernel``/``topology``/``algo``, skipping
    phases that are empty in both views.  When ``lspan`` (the launch's
    open trace span) is given, the predictions are published into its
    args for trace-side reporting.  Returns the prediction dict (or
    ``None`` when the launch has no phase predictions).
    """
    pred = predicted_phase_times(runtime, record, vectorized, working_set)
    if pred is None:
        return None
    topo_kind = _topology_kind(runtime.cluster.comm.topology)
    times = record.phases
    executed_algo = "+".join(times.allgather_algos) or "-"
    for phase, predicted, executed, algo in (
        ("partial", pred["partial"], times.partial, "-"),
        ("allgather", pred["allgather"], times.allgather, executed_algo),
    ):
        if predicted <= 0 and executed <= 0:
            continue
        err = signed_rel_error(executed, predicted)
        METRICS.observe(
            "model.drift_rel_err",
            max(-_OBSERVE_CLAMP, min(_OBSERVE_CLAMP, err)),
            phase=phase,
            kernel=kernel.name,
            topology=topo_kind,
            algo=algo,
        )
    if lspan is not None:
        lspan.args["predicted_partial_s"] = pred["partial"]
        lspan.args["predicted_allgather_s"] = pred["allgather"]
        lspan.args["predicted_algos"] = "+".join(pred["algos"]) or "-"
    return pred


def format_drift_report(source, bound: float = DEFAULT_DRIFT_BOUND) -> str:
    """Model-drift table from a trace file / span list with predictions.

    ``source`` is anything :func:`repro.obs.export.load_trace` accepts
    (path or parsed events) or a list of spans.  Only launches recorded
    with drift telemetry on (``predicted_partial_s`` in the launch args)
    appear; others are skipped silently.
    """
    from repro.bench.harness import format_table
    from repro.obs.export import _views
    from repro.obs.tracer import SpanKind

    launches = [v for v in _views(source) if v.kind == SpanKind.LAUNCH]
    rows = []
    over = 0
    for i, ev in enumerate(launches):
        args = ev.args
        if "predicted_partial_s" not in args:
            continue
        for phase, pkey, ekey, algo in (
            ("partial", "predicted_partial_s", "partial_s", "-"),
            (
                "allgather",
                "predicted_allgather_s",
                "allgather_s",
                args.get("predicted_algos", "-"),
            ),
        ):
            predicted = float(args.get(pkey, 0.0))
            executed = float(args.get(ekey, 0.0))
            if predicted <= 0 and executed <= 0:
                continue
            err = signed_rel_error(executed, predicted)
            flagged = not (abs(err) <= bound)
            over += flagged
            rows.append(
                [
                    i,
                    args.get("kernel", ev.name),
                    phase,
                    algo,
                    f"{predicted * 1e6:.2f}",
                    f"{executed * 1e6:.2f}",
                    f"{err * 100:+.1f}%" if err != float("inf") else "+inf",
                    "OVER" if flagged else "ok",
                ]
            )
    if not rows:
        return (
            "drift: no launches with model predictions in this trace "
            "(re-run with --drift to record them)"
        )
    table = format_table(
        ["launch", "kernel", "phase", "algo", "model (us)", "executed (us)",
         "err", f"|err|<={bound * 100:.0f}%"],
        rows,
    )
    verdict = (
        f"{over} of {len(rows)} phase predictions exceed the "
        f"{bound * 100:.0f}% drift bound"
        if over
        else f"all {len(rows)} phase predictions within the "
        f"{bound * 100:.0f}% drift bound"
    )
    return f"{table}\n{verdict}"

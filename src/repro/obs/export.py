"""Trace export and span-tree analysis.

Two consumers of the :class:`~repro.obs.tracer.Tracer`'s span data:

* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome trace-event
  JSON (the ``traceEvents`` array format) loadable in Perfetto or
  ``chrome://tracing``.  One ``pid`` per timeline: pid 0 is the cluster
  (launches, phases, collectives, rounds), pid ``1 + rank`` is each
  node's born rank (its block execution), pid 999 the autotuner.  Fault
  and recovery events render as instant events.  Output is fully
  deterministic — timestamps are simulated seconds scaled to
  microseconds, keys are sorted, and no wall-clock value ever enters the
  file — so the same seeded run exports byte-identical JSON.

* :func:`format_critical_report` — a text critical-path / imbalance
  report computed from the span tree (or from a previously exported
  JSON file, which carries the same ``id``/``parent`` linkage in every
  event's ``args``): per launch, the straggler rank, its slack over the
  fastest rank, and the phase split along the critical path.

:func:`phase_times_from_spans` rebuilds each launch's
:class:`~repro.runtime.program.PhaseTimes` from the span data alone.
The runtime publishes the exact phase durations into the launch span's
``args``, so the reconstruction is bit-identical to the
``LaunchRecord`` — the test suite pins the two views together, which is
what keeps the span path and the ``format_trace_report`` path from
drifting.

This module is imported lazily (``repro.obs`` exposes it via
``__getattr__``) so that building a runtime with tracing enabled never
pays for JSON machinery it may not use.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Span, SpanKind, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_trace",
    "phase_times_from_spans",
    "format_critical_report",
]

#: pid of the cluster-scope timeline in the exported trace
CLUSTER_PID = 0
#: pid of the autotuner timeline (tune spans overlay restored clocks, so
#: they get their own row instead of corrupting the cluster's nesting)
TUNER_PID = 999


def _pid(span: Span) -> int:
    if span.kind == SpanKind.TUNE:
        return TUNER_PID
    return CLUSTER_PID if span.rank is None else 1 + span.rank


def chrome_trace(source: Tracer | list[Span]) -> dict:
    """The Chrome trace-event object for a tracer's spans."""
    spans = source.spans if isinstance(source, Tracer) else list(source)
    events: list[dict] = []
    pids: dict[int, str] = {}
    for s in spans:
        pid = _pid(s)
        if pid not in pids:
            if pid == CLUSTER_PID:
                pids[pid] = "cluster"
            elif pid == TUNER_PID:
                pids[pid] = "autotuner"
            else:
                pids[pid] = f"rank {s.rank}"
        if s.kind == SpanKind.COUNTER:
            # Perfetto counter-track sample: numeric args only, no span
            # identity (counters are a value series, not an interval)
            events.append(
                {
                    "name": s.name,
                    "cat": s.kind,
                    "pid": pid,
                    "tid": 0,
                    "ts": s.t0 * 1e6,
                    "ph": "C",
                    "args": dict(s.args),
                }
            )
            continue
        args = {"id": s.id}
        if s.parent is not None:
            args["parent"] = s.parent
        if s.rank is not None:
            args["rank"] = s.rank
        args.update(s.args)
        ev = {
            "name": s.name,
            "cat": s.kind,
            "pid": pid,
            "tid": 0,
            "ts": s.t0 * 1e6,
            "args": args,
        }
        if s.instant:
            ev["ph"] = "i"
            ev["s"] = "g" if s.rank is None else "t"
        else:
            ev["ph"] = "X"
            ev["dur"] = s.duration * 1e6
        events.append(ev)
    meta = []
    for pid in sorted(pids):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": pids[pid]},
            }
        )
        meta.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": meta + events}


def write_chrome_trace(source: Tracer | list[Span], path: str | Path) -> Path:
    """Write the trace JSON (sorted keys, deterministic bytes)."""
    target = Path(path)
    target.write_text(
        json.dumps(chrome_trace(source), sort_keys=True, indent=1) + "\n"
    )
    return target


def load_trace(path: str | Path) -> dict:
    """Read back a previously exported trace file."""
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# span-tree analysis (works on Span objects or exported JSON events)
# ---------------------------------------------------------------------------
class _View:
    """Uniform read view over a Span or an exported JSON event."""

    __slots__ = ("name", "kind", "id", "parent", "rank", "args")

    def __init__(self, name, kind, id, parent, rank, args):
        self.name = name
        self.kind = kind
        self.id = id
        self.parent = parent
        self.rank = rank
        self.args = args


def _views(source) -> list[_View]:
    if isinstance(source, (str, Path)):
        source = load_trace(source)
    if isinstance(source, Tracer):
        source = source.spans
    if isinstance(source, dict):
        out = []
        for ev in source.get("traceEvents", ()):
            if ev.get("ph") not in ("X", "i"):
                continue
            args = ev.get("args", {})
            out.append(
                _View(ev["name"], ev.get("cat", ""), args.get("id"),
                      args.get("parent"), args.get("rank"), args)
            )
        return out
    return [
        _View(s.name, s.kind, s.id, s.parent, s.rank,
              {"rank": s.rank, **s.args})
        for s in source
    ]


def phase_times_from_spans(source):
    """Rebuild each launch's ``PhaseTimes`` from span data alone.

    Returns ``[(kernel_name, PhaseTimes), ...]`` in launch order.  The
    durations come from the exact floats the runtime published into the
    launch span's ``args``, so each entry is bit-identical to the
    corresponding ``LaunchRecord.phases``.
    """
    from repro.runtime.program import PhaseTimes

    out = []
    for v in _views(source):
        if v.kind != SpanKind.LAUNCH:
            continue
        a = v.args
        out.append(
            (
                a.get("kernel", v.name),
                PhaseTimes(
                    partial=a["partial_s"],
                    allgather=a["allgather_s"],
                    callback=a["callback_s"],
                    overhead=a["overhead_s"],
                    recovery=a["recovery_s"],
                    allgather_algos=tuple(a.get("algos", ())),
                ),
            )
        )
    return out


def format_critical_report(source) -> str:
    """Critical-path / per-rank imbalance report from the span tree.

    For every distributed launch: the slowest (straggler) rank of the
    partial phase, its slack over the fastest rank, and the imbalance
    (max over mean).  The footer aggregates which rank straggled most
    and the phase split of the whole trace.  ``source`` may be a
    :class:`Tracer`, a span list, a loaded trace dict, or a path to an
    exported JSON file.
    """
    from repro.bench.harness import format_table

    views = _views(source)
    launches = [v for v in views if v.kind == SpanKind.LAUNCH]
    if not launches:
        return "critical-path report: no launch spans in trace"
    # exec spans nest under phase spans, which nest under the launch:
    # walk each span's parent chain up to its owning launch
    parent_of = {v.id: v.parent for v in views if v.id is not None}
    launch_ids = {v.id for v in launches}

    def _owner(vid):
        seen = set()
        while vid is not None and vid not in seen:
            if vid in launch_ids:
                return vid
            seen.add(vid)
            vid = parent_of.get(vid)
        return None

    execs_by_launch: dict[int, list[_View]] = {}
    for v in views:
        if v.kind == SpanKind.EXEC and v.parent is not None:
            owner = _owner(v.parent)
            if owner is not None:
                execs_by_launch.setdefault(owner, []).append(v)

    rows = []
    straggles: dict[int, int] = {}
    slack_total = 0.0
    agg = {"partial": 0.0, "allgather": 0.0, "callback": 0.0,
           "overhead": 0.0, "recovery": 0.0}
    total = 0.0
    for i, launch in enumerate(launches, start=1):
        a = launch.args
        phases = {
            "partial": a.get("partial_s", 0.0),
            "allgather": a.get("allgather_s", 0.0),
            "callback": a.get("callback_s", 0.0),
            "overhead": a.get("overhead_s", 0.0),
            "recovery": a.get("recovery_s", 0.0),
        }
        for k in agg:
            agg[k] += phases[k]
        launch_total = sum(phases.values())
        total += launch_total
        ranks = {
            v.rank: v.args.get("dur_s", 0.0)
            for v in execs_by_launch.get(launch.id, ())
            if v.args.get("phase") == "partial" and v.rank is not None
        }
        if ranks:
            slowest = max(ranks, key=lambda r: (ranks[r], -r))
            fastest = min(ranks, key=lambda r: (ranks[r], r))
            slack = ranks[slowest] - ranks[fastest]
            mean = sum(ranks.values()) / len(ranks)
            imbal = (ranks[slowest] / mean - 1.0) * 100 if mean > 0 else 0.0
            straggles[slowest] = straggles.get(slowest, 0) + 1
            slack_total += slack
            who = f"rank {slowest}"
            slack_txt = f"{slack * 1e6:.2f}"
            imbal_txt = f"{imbal:.1f}%"
        else:
            who, slack_txt, imbal_txt = "-", "-", "-"
        rows.append(
            [
                i,
                a.get("kernel", launch.name),
                f"{launch_total * 1e6:.1f}",
                f"{phases['partial'] * 1e6:.1f}",
                who,
                slack_txt,
                imbal_txt,
                f"{phases['allgather'] * 1e6:.1f}",
                f"{phases['callback'] * 1e6:.1f}",
            ]
        )
    table = format_table(
        ["launch", "kernel", "total (us)", "partial", "straggler",
         "slack (us)", "imbal", "allgather", "callback"],
        rows,
    )
    lines = [f"critical-path report: {len(launches)} launch(es), "
             f"{total * 1e6:.1f} us total", table]
    if straggles:
        worst = max(straggles, key=lambda r: (straggles[r], -r))
        lines.append(
            f"straggler: rank {worst} was slowest in "
            f"{straggles[worst]}/{sum(straggles.values())} distributed "
            f"launch(es); total straggler slack "
            f"{slack_total * 1e6:.2f} us"
            + (f" ({100 * slack_total / total:.1f}% of trace)"
               if total > 0 else "")
        )
    else:
        lines.append("straggler: no distributed partial phases in trace")
    if total > 0:
        split = " | ".join(
            f"{k} {100 * v / total:.1f}%" for k, v in agg.items() if v > 0
        )
        lines.append(f"critical path split: {split}")
    return "\n".join(lines)

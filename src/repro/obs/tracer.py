"""Span-based tracing over simulated clocks.

A :class:`Tracer` collects :class:`Span` records — named, kinded
intervals of *simulated* time (:class:`~repro.cluster.simtime.SimClock`
seconds), optionally pinned to one rank — plus zero-duration instant
events (fault injections, recovery decisions).  The runtime opens one
``launch`` span per kernel launch; phases, per-rank block execution,
collectives and their individual send rounds, autotune trials and fault
events all nest under it, giving the per-rank / per-round structure the
paper's Figures 8-10 are built from.

Tracing is **zero-overhead when disabled**: every recording method
checks :attr:`Tracer.enabled` first and returns immediately, and hot
call sites guard argument construction behind the same flag.  The
module-level :data:`NULL_TRACER` is the shared disabled instance that
every component holds by default, so a runtime constructed without
``trace=True`` takes exactly the untraced code path — identical modeled
times, identical buffers.

Span timestamps come exclusively from simulated clocks; wall-clock time
never enters a span, which is what makes exported traces byte-identical
across runs of the same seeded workload.
"""

from __future__ import annotations

__all__ = ["Span", "SpanKind", "Tracer", "NULL_TRACER"]


class SpanKind:
    """Span categories (the ``cat`` field of the Chrome trace export)."""

    COMPILE = "compile"  # compiler pipeline work (analysis, vectorization)
    LAUNCH = "launch"  # one kernel launch, all phases
    PHASE = "phase"  # partial / allgather / callback (cluster scope)
    EXEC = "exec"  # one rank's block execution inside a phase
    COLLECTIVE = "collective"  # one collective operation (cluster scope)
    ROUND = "round"  # one send round of a collective schedule
    FAULT = "fault"  # injected fault / recovery decision (instant)
    TUNE = "tune"  # one autotuner trial
    COUNTER = "counter"  # Perfetto counter-track sample (profiler)
    CKPT = "ckpt"  # durable checkpoint written (instant; repro.ops)
    SERVE = "serve"  # one served job, queue-to-finish (repro.serve)
    SLO = "slo"  # SLO warn/breach instant (repro.obs.slo)

    ALL = (COMPILE, LAUNCH, PHASE, EXEC, COLLECTIVE, ROUND, FAULT, TUNE,
           COUNTER, CKPT, SERVE, SLO)


class Span:
    """One traced interval (or instant) of simulated time."""

    __slots__ = ("id", "name", "kind", "t0", "t1", "rank", "parent",
                 "instant", "args")

    def __init__(
        self,
        id: int,
        name: str,
        kind: str,
        t0: float,
        t1: float | None,
        rank: int | None,
        parent: int | None,
        instant: bool = False,
        args: dict | None = None,
    ):
        self.id = id
        self.name = name
        self.kind = kind
        self.t0 = t0
        self.t1 = t1
        #: born rank the span belongs to; ``None`` = cluster scope
        self.rank = rank
        #: id of the enclosing span (``None`` at top level)
        self.parent = parent
        self.instant = instant
        self.args = args or {}

    @property
    def duration(self) -> float:
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def __repr__(self) -> str:
        tail = "instant" if self.instant else f"{self.duration * 1e6:.3f} us"
        who = f" rank {self.rank}" if self.rank is not None else ""
        return f"Span({self.kind}:{self.name!r}{who}, {tail})"


class Tracer:
    """Collects spans; every method is a no-op when ``enabled`` is False.

    Two recording styles:

    * :meth:`begin` / :meth:`end` for spans that enclose other spans
      (the runtime's ``launch`` spans) — ``begin`` pushes onto the open
      stack so everything recorded until ``end`` nests under it;
    * :meth:`add` for spans whose start *and* end are already known
      (simulation computes durations before charging clocks), parented
      under the innermost open span;
    * :meth:`instant` for zero-duration events (faults, recoveries).
    """

    __slots__ = ("enabled", "spans", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------
    def begin(
        self, name: str, kind: str, t0: float, rank: int | None = None,
        **args,
    ) -> Span | None:
        """Open a span; subsequent records nest under it until :meth:`end`."""
        if not self.enabled:
            return None
        span = Span(len(self.spans), name, kind, t0, None, rank,
                    self._stack[-1].id if self._stack else None, args=args)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span | None, t1: float) -> None:
        """Close an open span at simulated time ``t1``."""
        if not self.enabled or span is None:
            return
        span.t1 = t1
        while self._stack:
            top = self._stack.pop()
            if top.id == span.id:
                break
            top.t1 = t1  # abandoned child (exception unwound past it)

    def add(
        self, name: str, kind: str, t0: float, t1: float,
        rank: int | None = None, **args,
    ) -> Span | None:
        """Record a complete span under the innermost open span."""
        if not self.enabled:
            return None
        span = Span(len(self.spans), name, kind, t0, t1, rank,
                    self._stack[-1].id if self._stack else None, args=args)
        self.spans.append(span)
        return span

    def instant(
        self, name: str, kind: str, t: float, rank: int | None = None,
        **args,
    ) -> Span | None:
        """Record a zero-duration event under the innermost open span."""
        if not self.enabled:
            return None
        span = Span(len(self.spans), name, kind, t, t, rank,
                    self._stack[-1].id if self._stack else None,
                    instant=True, args=args)
        self.spans.append(span)
        return span

    # -- introspection -------------------------------------------------
    def by_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.id]

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.spans)} spans)"


#: the shared disabled tracer every component holds by default — one
#: instance, so ``tracer is NULL_TRACER`` identifies "tracing off"
NULL_TRACER = Tracer(enabled=False)

"""Process-wide metrics registry: counters, gauges, histograms.

The runtime and cluster layers feed a single registry as they work —
payload bytes per physical link, Allgather invocations per algorithm,
tuning-cache hits and misses, collective retries, sanitizer findings —
so that after any run (traced or not) ``repro.obs.metrics.METRICS``
answers "how many / how much" questions without re-running anything.

Metrics never feed back into the simulation: incrementing a counter
cannot change a modeled time or a buffer byte, so determinism of the
simulated execution is unaffected.  The registry can be disabled
(:attr:`MetricsRegistry.enabled`) to measure its own (small, wall-clock
only) overhead — the observability benchmark gates on that.

Label cardinality is the caller's responsibility; the per-link byte
counters are bounded by ``nodes**2`` pairs, everything else by small
enums (algorithm names, fault kinds).
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "get_metrics",
]

#: label-set key: a deterministically ordered tuple of (label, value)
LabelKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Power-of-two bucketed distribution (count/sum/min/max + buckets).

    Bucket ``b`` counts observations in ``(2**(b-1), 2**b]`` (bucket 0
    holds everything up to 1), mirroring the tuning cache's payload
    bucketing so the two views line up.
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        v = abs(float(value))
        b = 0 if v <= 1.0 else (int(v) - 1).bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named, labeled metric instruments behind one flat namespace.

    One instrument per ``(name, sorted labels)`` pair; a name must keep
    one instrument type for its lifetime (mixing raises ``TypeError``).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, dict[LabelKey, object]] = {}
        self._types: dict[str, type] = {}

    # -- instrument access --------------------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, object]):
        want = self._types.setdefault(name, cls)
        if want is not cls:
            raise TypeError(
                f"metric {name!r} is a {want.__name__}, not a {cls.__name__}"
            )
        series = self._metrics.setdefault(name, {})
        key = _labels_key(labels)
        inst = series.get(key)
        if inst is None:
            inst = series[key] = cls()
        return inst

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Increment the counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        self._get(Counter, name, labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        self._get(Gauge, name, labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into the histogram ``name``."""
        if not self.enabled:
            return
        self._get(Histogram, name, labels).observe(value)

    # -- reads ---------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        inst = self._metrics.get(name, {}).get(_labels_key(labels))
        return inst.value if inst is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across every label combination."""
        return sum(m.value for m in self._metrics.get(name, {}).values())

    def histogram(self, name: str, **labels) -> Histogram | None:
        inst = self._metrics.get(name, {}).get(_labels_key(labels))
        return inst if isinstance(inst, Histogram) else None

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A plain-dict view (sorted keys) of every instrument."""
        out: dict[str, dict[str, object]] = {}
        for name in self.names():
            series = {}
            for key in sorted(self._metrics[name]):
                inst = self._metrics[name][key]
                label = ",".join(f"{k}={v}" for k, v in key)
                if isinstance(inst, Histogram):
                    series[label] = {
                        "count": inst.count,
                        "sum": inst.sum,
                        "min": inst.min if inst.count else 0.0,
                        "max": inst.max if inst.count else 0.0,
                    }
                else:
                    series[label] = inst.value
            out[name] = series
        return out

    def snapshot_json(self) -> str:
        """:meth:`snapshot` as deterministic JSON: schema-versioned,
        sorted names and label strings, one value (or histogram dict)
        per series.  Two registries fed the same increments in any
        order serialize byte-identically, so CI and ``repro netview``
        can diff metrics without parsing the text render."""
        import json

        doc = {
            "metrics_format_version": 1,
            "metrics": self.snapshot(),
        }
        return json.dumps(doc, indent=1, sort_keys=True) + "\n"

    def render(self) -> str:
        """Text snapshot, one ``name{labels} value`` line per series."""
        lines = []
        for name, series in self.snapshot().items():
            for label, value in series.items():
                tag = f"{{{label}}}" if label else ""
                if isinstance(value, dict):
                    body = (
                        f"count={value['count']} sum={value['sum']:.6g} "
                        f"min={value['min']:.6g} max={value['max']:.6g}"
                    )
                else:
                    body = f"{value:.6g}"
                lines.append(f"{name}{tag} {body}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._metrics.clear()
        self._types.clear()


#: the process-wide registry every layer feeds
METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (one per interpreter)."""
    return METRICS

"""Observability: span tracing, metrics, timeline export, profiling.

Five pieces (see DESIGN.md sections 10-11):

* :mod:`repro.obs.tracer` — nested spans stamped from the simulated
  clocks, zero-overhead when disabled;
* :mod:`repro.obs.metrics` — the process-wide counters / gauges /
  histograms registry fed by the runtime and cluster layers;
* :mod:`repro.obs.export` — Chrome-trace-event JSON (Perfetto) export
  and the critical-path / imbalance report, **loaded lazily**: importing
  ``repro.obs`` (or ``repro.api``) does not import the export module;
* :mod:`repro.obs.profiler` — per-source-line hotspot attribution over
  the interpreter's op counters, also loaded lazily;
* :mod:`repro.obs.drift` — model-vs-executed phase-time drift telemetry,
  also loaded lazily;
* :mod:`repro.obs.observatory` — serving-fleet timelines, idle
  attribution and the failure flight recorder (DESIGN.md section 15),
  loaded lazily;
* :mod:`repro.obs.slo` — declarative SLO policies with windowed
  burn-rate monitoring for the serving loop, loaded lazily;
* :mod:`repro.obs.explain` — offline regression attribution between two
  exported runs (``repro explain``), loaded lazily;
* :mod:`repro.obs.netflow` — the per-link network flow ledger
  (per-collective link attribution, contention decomposition,
  ``net.*`` counter tracks; DESIGN.md section 16), loaded lazily;
* :mod:`repro.obs.netview` — text rendering of netflow documents
  (``repro netview``), loaded lazily.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS, MetricsRegistry, get_metrics
from repro.obs.tracer import NULL_TRACER, Span, SpanKind, Tracer

__all__ = [
    "Tracer", "Span", "SpanKind", "NULL_TRACER",
    "MetricsRegistry", "METRICS", "get_metrics",
    # lazily resolved from repro.obs.export:
    "chrome_trace", "write_chrome_trace", "load_trace",
    "phase_times_from_spans", "format_critical_report",
    # lazily resolved from repro.obs.profiler:
    "Profiler", "KernelProfile", "roofline_placement",
    # lazily resolved from repro.obs.drift:
    "observe_launch_drift", "format_drift_report", "predicted_phase_times",
    "signed_rel_error", "DEFAULT_DRIFT_BOUND",
    # lazily resolved from repro.obs.observatory:
    "Observatory", "FleetEvent", "POSTMORTEM_FORMAT_VERSION",
    "validate_postmortem", "format_postmortem",
    # lazily resolved from repro.obs.slo:
    "SLOPolicy", "SLOEvent", "SLOMonitor",
    # lazily resolved from repro.obs.explain:
    "explain", "ExplainReport", "format_explain_report",
    # lazily resolved from repro.obs.netflow:
    "NetFlowLedger", "Flow", "CollectiveFlow", "NETFLOW_FORMAT_VERSION",
    # lazily resolved from repro.obs.netview:
    "load_netflow", "format_netview", "format_explain_tune",
]

_EXPORT_NAMES = frozenset(
    [
        "chrome_trace",
        "write_chrome_trace",
        "load_trace",
        "phase_times_from_spans",
        "format_critical_report",
    ]
)

_PROFILER_NAMES = frozenset(["Profiler", "KernelProfile", "roofline_placement"])

_DRIFT_NAMES = frozenset(
    [
        "observe_launch_drift",
        "format_drift_report",
        "predicted_phase_times",
        "signed_rel_error",
        "DEFAULT_DRIFT_BOUND",
    ]
)

_OBSERVATORY_NAMES = frozenset(
    [
        "Observatory",
        "FleetEvent",
        "POSTMORTEM_FORMAT_VERSION",
        "validate_postmortem",
        "format_postmortem",
    ]
)

_SLO_NAMES = frozenset(["SLOPolicy", "SLOEvent", "SLOMonitor"])

_EXPLAIN_NAMES = frozenset(
    ["explain", "ExplainReport", "format_explain_report"]
)

_NETFLOW_NAMES = frozenset(
    ["NetFlowLedger", "Flow", "CollectiveFlow", "NETFLOW_FORMAT_VERSION"]
)

_NETVIEW_NAMES = frozenset(
    ["load_netflow", "format_netview", "format_explain_tune"]
)


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        from repro.obs import export

        return getattr(export, name)
    if name in _PROFILER_NAMES:
        from repro.obs import profiler

        return getattr(profiler, name)
    if name in _DRIFT_NAMES:
        from repro.obs import drift

        return getattr(drift, name)
    if name in _OBSERVATORY_NAMES:
        from repro.obs import observatory

        return getattr(observatory, name)
    if name in _SLO_NAMES:
        from repro.obs import slo

        return getattr(slo, name)
    if name in _EXPLAIN_NAMES:
        from repro.obs import explain

        return getattr(explain, name)
    if name in _NETFLOW_NAMES:
        from repro.obs import netflow

        return getattr(netflow, name)
    if name in _NETVIEW_NAMES:
        from repro.obs import netview

        return getattr(netview, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Observability: span tracing, metrics, and timeline export.

Three pieces (see DESIGN.md section 10):

* :mod:`repro.obs.tracer` — nested spans stamped from the simulated
  clocks, zero-overhead when disabled;
* :mod:`repro.obs.metrics` — the process-wide counters / gauges /
  histograms registry fed by the runtime and cluster layers;
* :mod:`repro.obs.export` — Chrome-trace-event JSON (Perfetto) export
  and the critical-path / imbalance report, **loaded lazily**: importing
  ``repro.obs`` (or ``repro.api``) does not import the export module.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS, MetricsRegistry, get_metrics
from repro.obs.tracer import NULL_TRACER, Span, SpanKind, Tracer

__all__ = [
    "Tracer", "Span", "SpanKind", "NULL_TRACER",
    "MetricsRegistry", "METRICS", "get_metrics",
    # lazily resolved from repro.obs.export:
    "chrome_trace", "write_chrome_trace", "load_trace",
    "phase_times_from_spans", "format_critical_report",
]

_EXPORT_NAMES = frozenset(
    [
        "chrome_trace",
        "write_chrome_trace",
        "load_trace",
        "phase_times_from_spans",
        "format_critical_report",
    ]
)


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

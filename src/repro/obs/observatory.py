"""Serving-fleet observability: the event-sourced occupancy ledger.

The :class:`Observatory` is fed lease/release/suspend/resume/fault
instants (simulated clocks only) by :class:`~repro.serve.server.
CuCCServer` and :class:`~repro.serve.packer.AdmissionPacker` hooks and
turns them into fleet timelines:

* node-utilization and queue-depth **time series** (step samples at
  every state change), exportable as Perfetto counter tracks through
  the existing Chrome-trace writer;
* a per-job **Gantt/text timeline** over the service makespan;
* **idle-gap attribution** — every free node-second is charged either
  to an empty queue (nothing to run) or to packing (work was waiting
  but the head did not fit the free fragment).

It also hosts the **failure flight recorder**: a bounded ring buffer of
recent events per job, dumped as a self-contained post-mortem JSON
document (format version :data:`POSTMORTEM_FORMAT_VERSION`) whenever a
job fails terminally or an SLO hard-breaches.  ``repro postmortem``
pretty-prints the dump with :func:`format_postmortem`;
:func:`validate_postmortem` is the structural gate CI uses.

Everything here is derived from simulated timestamps recorded by the
deterministic serving loop, so every rendering and every dumped byte is
deterministic per seed.  The module is imported lazily (``repro.obs``
exposes it via ``__getattr__``); a server built without
``observatory=True`` never touches it.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "FleetEvent",
    "Observatory",
    "POSTMORTEM_FORMAT_VERSION",
    "validate_postmortem",
    "format_postmortem",
]

#: version stamp of the post-mortem JSON dump (bump on breaking change;
#: ``validate_postmortem`` and ``repro postmortem`` check it)
POSTMORTEM_FORMAT_VERSION = 1

#: event kinds the ledger understands, in no particular order
EVENT_KINDS = (
    "arrival",   # job entered the submission queue
    "lease",     # fresh lease granted (node_ids leave the free pool)
    "attach",    # overlapped successor attached to an existing lease
    "suspend",   # successor's phase-1 remainder paused (owner callback)
    "resume",    # successor's phase-1 remainder resumed
    "finish",    # job left its subset
    "release",   # node_ids returned to the free pool
    "shrink",    # excess width shed at owner->successor handoff
    "wreck",     # terminal job failure (subset was busy with the wreck)
    "slo",       # SLO warn/breach instant
)

#: default flight-recorder ring size (events retained per job)
RING_SIZE = 64


@dataclass(frozen=True)
class FleetEvent:
    """One instant in the fleet ledger (simulated seconds)."""

    t: float
    seq: int  # recording order; breaks timestamp ties deterministically
    kind: str
    job_id: str | None = None
    node_ids: tuple[int, ...] = ()
    detail: dict = field(default_factory=dict)

    def describe(self) -> str:
        who = f" job {self.job_id}" if self.job_id else ""
        nodes = (
            " nodes " + ",".join(str(i) for i in self.node_ids)
            if self.node_ids else ""
        )
        extra = "".join(f" {k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.t * 1e6:10.3f} us] {self.kind}{who}{nodes}{extra}"


class Observatory:
    """Event-sourced fleet ledger + flight recorder for one serve run.

    Recording is append-only and O(1) per event; every analysis
    (series, attribution, Gantt) is computed on demand from the sorted
    ledger, so the serving loop pays only for the appends.
    """

    def __init__(self, pool_nodes: int = 0, ring: int = RING_SIZE):
        self.pool_nodes = pool_nodes
        self.ring = ring
        self.events: list[FleetEvent] = []
        self._rings: dict[str, deque] = {}
        self._seq = 0

    def reset(self, pool_nodes: int) -> None:
        """Start a fresh run over a ``pool_nodes``-wide pool."""
        self.pool_nodes = pool_nodes
        self.events.clear()
        self._rings.clear()
        self._seq = 0

    # -- recording (the only thing the serving loop calls) --------------
    def record(
        self, kind: str, t: float, job_id: str | None = None,
        node_ids=(), **detail,
    ) -> FleetEvent:
        ev = FleetEvent(
            t=t, seq=self._seq, kind=kind, job_id=job_id,
            node_ids=tuple(node_ids), detail=detail,
        )
        self._seq += 1
        self.events.append(ev)
        if job_id is not None:
            ring = self._rings.get(job_id)
            if ring is None:
                ring = self._rings[job_id] = deque(maxlen=self.ring)
            ring.append(ev)
        return ev

    # -- time series -----------------------------------------------------
    def _sorted(self) -> list[FleetEvent]:
        # suspend/resume are recorded ahead of their instants (the
        # simulation knows the future deterministically), so analysis
        # orders by timestamp, recording order breaking ties
        return sorted(self.events, key=lambda e: (e.t, e.seq))

    @property
    def makespan_s(self) -> float:
        return max((e.t for e in self.events), default=0.0)

    def _series(self, deltas) -> list[tuple[float, int]]:
        """Step samples ``(t, value)`` at every change point; events at
        equal timestamps are coalesced into the final value at that t."""
        out: list[tuple[float, int]] = []
        value = 0
        for ev in self._sorted():
            d = deltas(ev)
            if d == 0:
                continue
            value += d
            if out and out[-1][0] == ev.t:
                out[-1] = (ev.t, value)
            else:
                out.append((ev.t, value))
        return [
            s for i, s in enumerate(out)
            if i == 0 or s[1] != out[i - 1][1]
        ]

    def busy_series(self) -> list[tuple[float, int]]:
        """Leased (busy) node count over time."""

        def deltas(ev: FleetEvent) -> int:
            if ev.kind == "lease":
                return len(ev.node_ids)
            if ev.kind in ("release", "shrink"):
                return -len(ev.node_ids)
            return 0

        return self._series(deltas)

    def queue_series(self) -> list[tuple[float, int]]:
        """Waiting-queue depth over time (arrival in, lease/attach out)."""

        def deltas(ev: FleetEvent) -> int:
            if ev.kind == "arrival":
                return 1
            if ev.kind in ("lease", "attach"):
                return -1
            return 0

        return self._series(deltas)

    # -- idle attribution ------------------------------------------------
    def idle_attribution(self) -> dict[str, float]:
        """Charge every free node-second to its cause.

        ``empty_queue`` — the pool had free nodes and nothing waited;
        ``packing`` — jobs were queued but the FCFS head did not fit the
        free fragment (fragmentation / head-of-line width).  Returned in
        node-seconds over ``[0, makespan]``; ``busy`` completes the
        ledger so the three sum to ``pool_nodes * makespan``.
        """
        busy = 0
        depth = 0
        prev_t = 0.0
        out = {"empty_queue": 0.0, "packing": 0.0, "busy": 0.0}
        for ev in self._sorted():
            dt = ev.t - prev_t
            if dt > 0:
                free = self.pool_nodes - busy
                out["busy"] += busy * dt
                if free > 0:
                    cause = "packing" if depth > 0 else "empty_queue"
                    out[cause] += free * dt
                prev_t = ev.t
            if ev.kind == "lease":
                busy += len(ev.node_ids)
                depth -= 1
            elif ev.kind in ("release", "shrink"):
                busy -= len(ev.node_ids)
            elif ev.kind == "arrival":
                depth += 1
            elif ev.kind == "attach":
                depth -= 1
        return out

    def node_intervals(self) -> dict[int, list[tuple[float, float, str]]]:
        """Per-node occupancy: ``{node_id: [(t0, t1, job_id), ...]}``.

        Intervals open at lease grant under the lease's owner and close
        when the ids return to the pool (release, or shrink at
        handoff).  Attached successors ride the owner's interval — the
        nodes are busy either way.
        """
        open_at: dict[int, tuple[float, str]] = {}
        out: dict[int, list[tuple[float, float, str]]] = {}
        for ev in self._sorted():
            if ev.kind == "lease":
                for n in ev.node_ids:
                    open_at[n] = (ev.t, ev.job_id or "?")
            elif ev.kind in ("release", "shrink"):
                for n in ev.node_ids:
                    if n in open_at:
                        t0, job = open_at.pop(n)
                        out.setdefault(n, []).append((t0, ev.t, job))
        for n, (t0, job) in sorted(open_at.items()):
            out.setdefault(n, []).append((t0, self.makespan_s, job))
        return out

    # -- rendering -------------------------------------------------------
    def gantt(self, results, width: int = 60) -> str:
        """Per-job text timeline over ``[0, makespan]``.

        Legend: ``.`` queued, ``#`` phase-1 compute, ``z`` suspended,
        ``=`` Allgather, ``+`` callback, ``~`` waiting on the subset's
        wire/CPUs, ``X`` terminal wreck.
        """
        makespan = max(
            [self.makespan_s] + [r.timing.finish_s for r in results]
        )
        if makespan <= 0 or not results:
            return "fleet gantt: nothing served"

        def col(t: float) -> int:
            return min(width - 1, int(t / makespan * width))

        lines = []
        for r in sorted(results, key=lambda r: (r.timing.admit_s,
                                                r.request.job_id)):
            t = r.timing
            row = [" "] * width
            segs: list[tuple[float, float, str]] = [
                (r.request.arrival_s, t.admit_s, "."),
            ]
            if r.status != "ok":
                segs.append((t.start_s, t.finish_s, "X"))
            else:
                pre1_end = t.start_s + (
                    t.hidden_s if t.suspended_s > 0 else r.profile.pre_s
                )
                segs.append((t.start_s, pre1_end, "#"))
                if t.suspended_s > 0:
                    susp_end = pre1_end + t.suspended_s
                    segs.append((pre1_end, susp_end, "z"))
                    segs.append((
                        susp_end,
                        susp_end + (r.profile.pre_s - t.hidden_s), "#",
                    ))
                segs.append((t.allgather_start_s, t.allgather_end_s, "="))
                segs.append((t.finish_s - r.profile.post_s, t.finish_s, "+"))
            for t0, t1, ch in segs:
                if t1 <= t0:
                    continue
                for c in range(col(t0), col(max(t0, t1 - 1e-300)) + 1):
                    row[c] = ch
            # any service-interval gap left blank is schedule stall
            for c in range(col(t.start_s), col(t.finish_s) + 1):
                if row[c] == " ":
                    row[c] = "~"
            nodes = ",".join(str(i) for i in r.node_ids)
            lines.append(
                f"{r.request.job_id:>8} |{''.join(row)}| "
                f"n[{nodes}] {r.status}"
            )
        scale = (f"0 us {'-' * max(0, width - 18)} "
                 f"{makespan * 1e6:.2f} us")
        legend = ("legend: . queued  # compute  z suspended  = allgather  "
                  "+ callback  ~ stall  X wreck")
        return "\n".join(lines + [f"{'':>8}  {scale}", f"{'':>8}  {legend}"])

    def format_fleet_report(self, results=()) -> str:
        """The fleet section of the serve report: occupancy, queue and
        idle attribution over the whole run, plus the Gantt."""
        makespan = self.makespan_s
        attribution = self.idle_attribution()
        denom = self.pool_nodes * makespan
        busy = self.busy_series()
        queue = self.queue_series()
        peak_busy = max((v for _, v in busy), default=0)
        peak_queue = max((v for _, v in queue), default=0)
        lines = [
            f"fleet: {self.pool_nodes} nodes over "
            f"{makespan * 1e6:.2f} us ({len(self.events)} ledger events)",
            f"  peak occupancy {peak_busy}/{self.pool_nodes} node(s), "
            f"peak queue depth {peak_queue}",
        ]
        if denom > 0:
            lines.append(
                "  node-seconds: busy {:.1f}%  idle/empty-queue {:.1f}%  "
                "idle/packing {:.1f}%".format(
                    100 * attribution["busy"] / denom,
                    100 * attribution["empty_queue"] / denom,
                    100 * attribution["packing"] / denom,
                )
            )
        if results:
            lines.append("")
            lines.append(self.gantt(results))
        return "\n".join(lines)

    def append_counters(self, tracer) -> None:
        """Export the fleet time series as Perfetto counter tracks
        (``fleet.busy_nodes`` / ``fleet.queue_depth``) on the cluster
        pid, via the existing Chrome-trace writer."""
        if not tracer.enabled:
            return
        from repro.obs.tracer import SpanKind

        for name, series in (
            ("fleet.busy_nodes", self.busy_series()),
            ("fleet.queue_depth", self.queue_series()),
        ):
            for t, v in series:
                tracer.add(name, SpanKind.COUNTER, t, t, value=v)

    # -- flight recorder -------------------------------------------------
    def events_for(self, job_id: str) -> list[FleetEvent]:
        """The job's ring-buffer contents (the last ``ring`` events)."""
        return list(self._rings.get(job_id, ()))

    def postmortem(
        self, job_id: str, result=None, reason: str = "terminal-failure",
        context: dict | None = None,
    ) -> dict:
        """Self-contained post-mortem document for one job.

        Captures the job timeline, its lease history, the fault story,
        the last-N ledger events and a snapshot of fleet/cache/backend
        state — everything needed to read the failure without the run.
        """
        ring = self.events_for(job_id)
        doc: dict = {
            "format_version": POSTMORTEM_FORMAT_VERSION,
            "reason": reason,
            "job_id": job_id,
            "events": [
                {
                    "t_s": ev.t, "kind": ev.kind,
                    "node_ids": list(ev.node_ids),
                    **{k: v for k, v in sorted(ev.detail.items())},
                }
                for ev in ring
            ],
            "lease_history": [
                {"t_s": ev.t, "kind": ev.kind,
                 "node_ids": list(ev.node_ids)}
                for ev in ring
                if ev.kind in ("lease", "attach", "suspend", "resume",
                               "finish", "release", "shrink")
            ],
            "fleet": {
                "pool_nodes": self.pool_nodes,
                "ledger_events": len(self.events),
                "makespan_so_far_s": self.makespan_s,
            },
            "context": dict(context or {}),
        }
        if result is not None:
            req = result.request
            t = result.timing
            doc["request"] = {
                "job_id": req.job_id, "workload": req.workload,
                "nodes": req.nodes, "arrival_s": req.arrival_s,
                "size": req.size, "seed": req.seed,
                "faults": req.faults, "fault_seed": req.fault_seed,
            }
            doc["status"] = result.status
            doc["error"] = result.error
            doc["timeline"] = {
                "admit_s": t.admit_s, "start_s": t.start_s,
                "allgather_start_s": t.allgather_start_s,
                "allgather_end_s": t.allgather_end_s,
                "finish_s": t.finish_s, "overlapped": t.overlapped,
                "hidden_s": t.hidden_s, "suspended_s": t.suspended_s,
                "wait_s": t.admit_s - req.arrival_s,
                "latency_s": result.latency_s,
            }
            doc["profile"] = {
                "pre_s": result.profile.pre_s,
                "allgather_s": result.profile.allgather_s,
                "post_s": result.profile.post_s,
            }
            doc["node_ids"] = list(result.node_ids)
            story: dict = {"faults_spec": req.faults}
            rec = result.record
            if rec is not None:
                story.update(
                    fault_events=len(rec.fault_events),
                    retries=rec.retries,
                    recoveries=rec.recoveries,
                )
            doc["fault_story"] = story
        return doc

    def dump_postmortem(self, doc: dict, directory) -> str:
        """Write ``doc`` atomically as ``postmortem-<job>.json`` under
        ``directory`` (created if missing); returns the path."""
        from pathlib import Path

        from repro.ioutil import atomic_write_text

        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        path = d / f"postmortem-{doc['job_id']}.json"
        atomic_write_text(path, json.dumps(doc, indent=1, sort_keys=True)
                          + "\n")
        return str(path)


# ---------------------------------------------------------------------------
# post-mortem schema + pretty printer (standalone consumers of the dump)
# ---------------------------------------------------------------------------
def validate_postmortem(obj) -> list[str]:
    """Structural check of one post-mortem document; empty list = valid."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"post-mortem must be an object, got {type(obj).__name__}"]
    if obj.get("format_version") != POSTMORTEM_FORMAT_VERSION:
        problems.append(
            f"format_version must be {POSTMORTEM_FORMAT_VERSION}, "
            f"got {obj.get('format_version')!r}"
        )
    if not isinstance(obj.get("job_id"), str) or not obj.get("job_id"):
        problems.append("missing non-empty 'job_id'")
    if not isinstance(obj.get("reason"), str):
        problems.append("missing 'reason'")
    events = obj.get("events")
    if not isinstance(events, list):
        problems.append("'events' must be an array")
    else:
        for i, ev in enumerate(events):
            if not isinstance(ev, dict):
                problems.append(f"events[{i}]: not an object")
                continue
            if not isinstance(ev.get("t_s"), (int, float)):
                problems.append(f"events[{i}]: 't_s' must be a number")
            if ev.get("kind") not in EVENT_KINDS:
                problems.append(
                    f"events[{i}]: unknown kind {ev.get('kind')!r}"
                )
    for key in ("lease_history", ):
        if not isinstance(obj.get(key), list):
            problems.append(f"'{key}' must be an array")
    for key in ("fleet", "context"):
        if not isinstance(obj.get(key), dict):
            problems.append(f"'{key}' must be an object")
    if "timeline" in obj:
        tl = obj["timeline"]
        if not isinstance(tl, dict):
            problems.append("'timeline' must be an object")
        else:
            for k in ("admit_s", "start_s", "finish_s", "latency_s"):
                if not isinstance(tl.get(k), (int, float)):
                    problems.append(f"timeline.{k} must be a number")
    if "status" in obj and obj["status"] not in ("ok", "failed"):
        problems.append(f"unknown status {obj['status']!r}")
    return problems


def format_postmortem(doc: dict) -> str:
    """Human-readable rendering of a post-mortem dump (the CLI's
    ``repro postmortem`` output)."""
    lines = [
        f"post-mortem (format v{doc.get('format_version')}): "
        f"job {doc.get('job_id')} — {doc.get('reason')}",
    ]
    if "status" in doc:
        lines.append(f"status: {doc['status']}"
                     + (f" — {doc['error']}" if doc.get("error") else ""))
    req = doc.get("request")
    if req:
        lines.append(
            f"request: {req.get('workload')} on {req.get('nodes')} node(s), "
            f"size {req.get('size')}, seed {req.get('seed')}, "
            f"faults {req.get('faults') or 'none'}"
        )
    tl = doc.get("timeline")
    if tl:
        lines.append(
            "timeline: arrival->admit wait {:.3f} us, service "
            "[{:.3f}, {:.3f}] us, latency {:.3f} us{}".format(
                tl.get("wait_s", 0.0) * 1e6,
                tl.get("start_s", 0.0) * 1e6,
                tl.get("finish_s", 0.0) * 1e6,
                tl.get("latency_s", 0.0) * 1e6,
                " (overlapped)" if tl.get("overlapped") else "",
            )
        )
    prof = doc.get("profile")
    if prof:
        lines.append(
            "profile: pre {:.3f} us, allgather {:.3f} us, post "
            "{:.3f} us".format(
                prof.get("pre_s", 0.0) * 1e6,
                prof.get("allgather_s", 0.0) * 1e6,
                prof.get("post_s", 0.0) * 1e6,
            )
        )
    story = doc.get("fault_story")
    if story:
        parts = [f"{k.replace('_', ' ')}={v}"
                 for k, v in sorted(story.items()) if v is not None]
        lines.append("fault story: " + (", ".join(parts) or "none"))
    fleet = doc.get("fleet", {})
    lines.append(
        f"fleet at dump: {fleet.get('pool_nodes')} node pool, "
        f"{fleet.get('ledger_events')} ledger event(s), makespan so far "
        f"{fleet.get('makespan_so_far_s', 0.0) * 1e6:.3f} us"
    )
    ctx = doc.get("context", {})
    if ctx:
        lines.append("context: " + ", ".join(
            f"{k}={v}" for k, v in sorted(ctx.items())
        ))
    events = doc.get("events", [])
    lines.append(f"last {len(events)} event(s):")
    for ev in events:
        extra = "".join(
            f" {k}={v}" for k, v in sorted(ev.items())
            if k not in ("t_s", "kind", "node_ids")
        )
        nodes = (
            " nodes " + ",".join(str(i) for i in ev["node_ids"])
            if ev.get("node_ids") else ""
        )
        lines.append(
            f"  [{ev.get('t_s', 0.0) * 1e6:10.3f} us] "
            f"{ev.get('kind')}{nodes}{extra}"
        )
    return "\n".join(lines)

"""Per-line kernel profiler: hotspot attribution over the interpreter.

The interpreter already meters every executed operation into one
aggregate :class:`~repro.interp.counters.OpCounters`.  This module adds
the *where*: a :class:`Profiler` hands the interpreter a per-phase
``_LineSink`` whose ``line(loc)`` method returns a per-source-line
``OpCounters`` bucket, and the interpreter mirrors every count it books
into the bucket of the statement currently executing.  ``loc`` is the
1-based source line the CUDA frontend stamped on the IR statement
(threaded parser → IR → simplify); DSL-built IR has ``loc None`` and
aggregates under a single ``None`` bucket.

Attribution rules (see DESIGN.md section 11):

* counts are attributed to the line of the *innermost executing
  statement* — ops evaluated for an ``if`` condition bill the ``if``
  line, the loop-condition re-evaluation of a ``while`` bills the loop
  header line on every iteration;
* divergent lanes follow the interpreter's own accounting: a statement
  executed under a mask with ``k`` active lanes contributes ``k``, so
  per-line counts sum *exactly* (field by field) to the aggregate
  counters of the run — an invariant the test suite pins with a
  hypothesis property;
* phases are kept apart (``partial`` vs ``callback``) and ranks are
  merged: every node executor of one phase feeds the same sink, giving
  cluster-wide per-line totals.

On top of the raw buckets a :class:`KernelProfile` offers *self/total*
rollups for control-flow nests (``total`` adds every line nested under a
statement of that line), a text hotspot table with the kernel source
inlined, and a roofline placement of the whole kernel via the same
constants :func:`repro.hw.perfmodel.cpu_node_time` prices with.

Everything here is **opt-in and pay-for-use**: the interpreter's profile
hook is two attribute checks when disabled, the runtime only imports
this module when constructed with ``profile=True``, and the overhead
benchmark gates that a profiler-off run stays bit-identical.
"""

from __future__ import annotations

from dataclasses import fields as _dc_fields

from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams
from repro.interp.counters import OpCounters
from repro.ir.stmt import Kernel, Stmt

__all__ = ["Profiler", "KernelProfile", "roofline_placement"]

#: counter fields compared / summed by the profile (all of them)
_FIELDS = tuple(f.name for f in _dc_fields(OpCounters))


class _LineSink:
    """What the interpreter holds: per-line OpCounters buckets of one
    kernel × phase.  ``line(loc)`` is the only method on the hot path."""

    __slots__ = ("lines",)

    def __init__(self, lines: dict):
        self.lines = lines

    def line(self, loc) -> OpCounters:
        c = self.lines.get(loc)
        if c is None:
            c = self.lines[loc] = OpCounters()
        return c


def _line_descendants(body: list[Stmt]) -> dict[int, set[int]]:
    """For every source line hosting a control-flow statement, the set of
    *other* lines nested under it (transitively) — the self→total map."""
    desc: dict[int, set[int]] = {}

    def walk(stmts: list[Stmt]) -> set:
        lines: set = set()
        for s in stmts:
            sub: set = set()
            for blk in s.blocks():
                sub |= walk(blk)
            if s.loc is not None and sub:
                desc.setdefault(s.loc, set()).update(sub - {s.loc})
            if s.loc is not None:
                lines.add(s.loc)
            lines |= sub
        return lines

    walk(body)
    return desc


def roofline_placement(
    counters: OpCounters,
    spec,
    vectorized: bool,
    simd_enabled: bool = True,
    params: ModelParams = DEFAULT_PARAMS,
) -> dict:
    """Where a kernel sits on ``spec``'s roofline, from its dynamic counts.

    Mirrors the rate/bandwidth constants of
    :func:`repro.hw.perfmodel.cpu_node_time`: the attainable compute peak
    (SIMD or scalar issue, scaled by the migration efficiency) and the
    streaming bandwidth cap decide the ridge point; the kernel's
    arithmetic intensity (weighted ops per line-granular DRAM byte)
    places it left (memory-bound) or right (compute-bound) of it.
    """
    if vectorized and simd_enabled:
        core_rate = (spec.peak_flops / spec.cores) * spec.simd_efficiency
    else:
        core_rate = spec.scalar_ops_per_sec_core * params.cpu_scalar_eff
    core_rate *= params.cpu_migration_eff
    peak_ops = core_rate * spec.cores
    bw = spec.mem_bw_gbs * 1e9 * params.cpu_mem_eff
    per_core_stream = (
        params.vector_stream_bw_per_core
        if vectorized and simd_enabled
        else params.scalar_stream_bw_per_core
    )
    bw = min(bw, spec.cores * per_core_stream)
    traffic = counters.global_line_bytes or counters.global_bytes
    ops = counters.weighted_ops
    intensity = ops / traffic if traffic > 0 else float("inf")
    ridge = peak_ops / bw if bw > 0 else float("inf")
    return {
        "intensity_ops_per_byte": intensity,
        "ridge_ops_per_byte": ridge,
        "bound": "compute" if intensity >= ridge else "memory",
        "peak_gops": peak_ops / 1e9,
        "stream_gbs": bw / 1e9,
        "vectorized": bool(vectorized and simd_enabled),
    }


class KernelProfile:
    """Per-line × per-phase dynamic counts of one kernel."""

    def __init__(self, kernel: Kernel, vectorized: bool | None = None):
        self.kernel = kernel
        #: SIMD verdict of the kernel (for the roofline); ``None`` unknown
        self.vectorized = vectorized
        #: phase name -> {source line (or None) -> OpCounters}
        self.phases: dict[str, dict] = {}

    # -- recording ------------------------------------------------------
    def sink(self, phase: str) -> _LineSink:
        """The line sink interpreter executors of ``phase`` feed."""
        return _LineSink(self.phases.setdefault(phase, {}))

    # -- aggregation ----------------------------------------------------
    def lines(self, phase: str | None = None) -> dict:
        """Merged per-line counters (one phase, or all phases)."""
        keys = [phase] if phase is not None else list(self.phases)
        out: dict = {}
        for k in keys:
            for loc, c in self.phases.get(k, {}).items():
                bucket = out.get(loc)
                if bucket is None:
                    bucket = out[loc] = OpCounters()
                bucket.add(c)
        return out

    def total(self, phase: str | None = None) -> OpCounters:
        """Sum of every per-line bucket — equals the aggregate counters."""
        out = OpCounters()
        for c in self.lines(phase).values():
            out.add(c)
        return out

    def rollups(self, phase: str | None = None) -> list[tuple]:
        """``(loc, self_counters, total_counters)`` per line, hotspots
        first (by self weighted ops, then DRAM bytes, then line).

        ``total`` folds in every line nested under a control-flow
        statement on ``loc`` (loop bodies under their loop header), so a
        loop's ``total`` shows the cost of the whole nest while ``self``
        isolates the header's own work.
        """
        per_line = self.lines(phase)
        desc = _line_descendants(self.kernel.body)
        out = []
        for loc, own in per_line.items():
            tot = own.copy()
            if loc is not None:
                for d in desc.get(loc, ()):
                    sub = per_line.get(d)
                    if sub is not None:
                        tot.add(sub)
            out.append((loc, own, tot))
        out.sort(
            key=lambda r: (
                -r[1].weighted_ops,
                -r[1].global_line_bytes,
                r[0] if r[0] is not None else -1,
            )
        )
        return out

    # -- presentation ---------------------------------------------------
    def source_line(self, loc) -> str:
        if loc is None:
            return "<no source loc>"
        src = self.kernel.source
        if src:
            lines = src.splitlines()
            if 1 <= loc <= len(lines):
                return lines[loc - 1].strip()
        return "?"

    def hotspot_table(self, phase: str | None = None, top: int | None = None) -> str:
        """The per-source-line hotspot table (text)."""
        from repro.bench.harness import format_table

        rolled = self.rollups(phase)
        if top is not None:
            rolled = rolled[:top]
        grand = self.total(phase)
        ops_total = grand.weighted_ops
        mem_total = grand.global_line_bytes

        def pct(v: float, total: float) -> str:
            return f"{100.0 * v / total:.1f}%" if total > 0 else "-"

        rows = []
        for loc, own, tot in rolled:
            rows.append(
                [
                    loc if loc is not None else "-",
                    self.source_line(loc)[:48],
                    f"{own.weighted_ops:,.0f}",
                    pct(own.weighted_ops, ops_total),
                    pct(tot.weighted_ops, ops_total),
                    f"{own.global_line_bytes:,.0f}",
                    pct(own.global_line_bytes, mem_total),
                ]
            )
        rows.append(
            [
                "TOTAL",
                f"({len(self.lines(phase))} lines)",
                f"{ops_total:,.0f}",
                pct(ops_total, ops_total),
                "",
                f"{mem_total:,.0f}",
                pct(mem_total, mem_total),
            ]
        )
        return format_table(
            ["line", "source", "w.ops", "self", "total", "dram B", "mem"],
            rows,
        )

    def phase_split(self) -> dict[str, float]:
        """Weighted-ops share per phase (``{"partial": 0.8, ...}``)."""
        totals = {ph: self.total(ph).weighted_ops for ph in self.phases}
        s = sum(totals.values())
        return {ph: (v / s if s > 0 else 0.0) for ph, v in totals.items()}


class Profiler:
    """Collects :class:`KernelProfile`\\ s across launches of a runtime."""

    def __init__(self):
        self.profiles: dict[str, KernelProfile] = {}

    def ensure(self, kernel: Kernel, vectorized: bool | None = None) -> KernelProfile:
        prof = self.profiles.get(kernel.name)
        if prof is None:
            prof = self.profiles[kernel.name] = KernelProfile(kernel, vectorized)
        if vectorized is not None:
            prof.vectorized = vectorized
        return prof

    def sink(self, kernel: Kernel, phase: str, vectorized: bool | None = None):
        """The per-line sink for one kernel × phase (creates on demand).
        All rank executors of the phase share it, merging across ranks."""
        return self.ensure(kernel, vectorized).sink(phase)

    def total(self, kernel_name: str) -> OpCounters:
        prof = self.profiles.get(kernel_name)
        return prof.total() if prof is not None else OpCounters()

    def hotspot_digest(self, top: int = 3) -> list[dict]:
        """Machine-readable top lines per kernel (for BENCH_*.json)."""
        out = []
        for name, prof in self.profiles.items():
            grand = prof.total().weighted_ops
            for loc, own, _tot in prof.rollups()[:top]:
                out.append(
                    {
                        "kernel": name,
                        "line": loc,
                        "source": prof.source_line(loc),
                        "ops_share": (
                            own.weighted_ops / grand if grand > 0 else 0.0
                        ),
                    }
                )
        return out

    def report(
        self,
        spec=None,
        simd_enabled: bool = True,
        params: ModelParams = DEFAULT_PARAMS,
        top: int | None = None,
    ) -> str:
        """Text report: per kernel, roofline placement + hotspot table."""
        if not self.profiles:
            return "profiler: no kernels profiled"
        sections = []
        for name, prof in self.profiles.items():
            lines = [f"== kernel {name} =="]
            if spec is not None and prof.vectorized is not None:
                r = roofline_placement(
                    prof.total(), spec, prof.vectorized,
                    simd_enabled=simd_enabled, params=params,
                )
                lines.append(
                    f"roofline: {r['bound']}-bound — intensity "
                    f"{r['intensity_ops_per_byte']:.3g} ops/B vs ridge "
                    f"{r['ridge_ops_per_byte']:.3g} ops/B "
                    f"(peak {r['peak_gops']:.1f} Gops/s, "
                    f"stream {r['stream_gbs']:.1f} GB/s, "
                    f"{'SIMD' if r['vectorized'] else 'scalar'})"
                )
            split = prof.phase_split()
            if split:
                lines.append(
                    "phase split (w.ops): "
                    + "  ".join(
                        f"{ph} {100 * v:.1f}%" for ph, v in split.items()
                    )
                )
            lines.append(prof.hotspot_table(top=top))
            sections.append("\n".join(lines))
        return "\n\n".join(sections)

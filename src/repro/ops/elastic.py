"""Grow recovery: rejoin replacement nodes after shrink recovery.

Shrink recovery (see :class:`~repro.runtime.cucc.CuCCRuntime`) keeps a
job alive through permanent node loss by re-partitioning over the
survivors — but the job then runs narrow forever.  This module is the
other half of elasticity: when replacement hardware comes back (a
repaired node, a new allocation), :func:`grow_cluster` rejoins nodes at
the freed physical positions and restores the cluster's original
execution shape:

* the cluster is re-ranked in born-rank order
  (:meth:`~repro.cluster.cluster.Cluster.grow`), so growing back to
  full width restores the *exact original rank layout* — and with it
  the original partition widths of every subsequent launch;
* replacement nodes join with empty memory; every buffer is
  re-replicated onto them from rank 0 (grow is only legal at a
  replication-invariant point, i.e. between launches) and the broadcast
  is charged to **every** node's simulated clock, so elasticity costs
  show up in modeled time exactly like shrink-recovery costs do;
* the tracer/metrics/tuning state and the fault injector carry over
  through the communicator rebuild, and the rejoin is recorded as a
  ``recover-grow`` event in the injector's log.

:func:`rebalance_workload` re-grids a workload spec onto the restored
core count (see :mod:`repro.transform.regrid`) — re-gridding an
already-re-gridded spec recomputes the geometry only, so workloads can
be rebalanced at every width change.
"""

from __future__ import annotations

from repro.cluster.collectives import bcast_cost
from repro.obs.metrics import METRICS
from repro.obs.tracer import SpanKind

__all__ = ["freed_positions", "grow_cluster", "rebalance_workload"]


def freed_positions(cluster) -> tuple[int, ...]:
    """Physical positions (born ranks) not currently occupied.

    The communicator's topology keeps the cluster's *born* width through
    shrink recovery, which is what makes the freed positions knowable
    after the dead nodes themselves are gone.
    """
    born = cluster.comm.topology.num_nodes
    taken = {n.born_rank for n in cluster.nodes}
    return tuple(r for r in range(born) if r not in taken)


def grow_cluster(runtime, born_ranks=None) -> list:
    """Rejoin replacement nodes and restore the replication invariant.

    ``born_ranks`` defaults to every freed position — i.e. grow back to
    full born width.  Must be called between launches (the replication
    invariant is what makes rank 0 a valid re-replication source).
    Returns the new nodes (empty when nothing was freed).
    """
    cluster = runtime.cluster
    if born_ranks is None:
        born_ranks = freed_positions(cluster)
    born_ranks = tuple(born_ranks)
    if not born_ranks:
        return []
    fresh = cluster.grow(born_ranks)
    # replacement nodes join empty: re-replicate every buffer from rank
    # 0 and charge the broadcast to the whole cluster's clocks
    runtime.memory.replicate_to(fresh)
    nbytes = runtime.memory.total_bytes_per_node()
    dur = (
        bcast_cost(cluster.network, cluster.num_nodes, nbytes)
        if nbytes > 0
        else 0.0
    )
    start = cluster.max_clock
    for n in cluster.nodes:
        n.clock.wait_until(start + dur)
    detail = (
        f"rejoined position(s) {sorted(born_ranks)}, re-replicated "
        f"{nbytes} B/node in {dur * 1e3:.3f} ms, "
        f"{cluster.num_nodes} nodes now"
    )
    if runtime.injector is not None:
        runtime.injector.record(
            "recover-grow", cluster.max_clock, detail=detail
        )
    elif runtime.tracer.enabled:
        runtime.tracer.instant(
            "recover-grow", SpanKind.FAULT, cluster.max_clock, detail=detail
        )
    if METRICS.enabled:
        METRICS.inc("ops.grow_nodes", len(fresh))
    return fresh


def rebalance_workload(spec, cluster):
    """Re-grid a workload onto the cluster's current core count.

    Returns the re-gridded spec, or ``None`` when the workload is not
    re-griddable (see :func:`repro.transform.regrid.regrid_workload`).
    Safe to call after every width change — an already-re-gridded spec
    gets its geometry recomputed rather than double-wrapped.
    """
    from repro.transform.regrid import regrid_workload

    return regrid_workload(spec, cluster.total_cores)

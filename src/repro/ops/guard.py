"""Drift guard: a circuit breaker on the cost model's honesty.

The drift telemetry (:mod:`repro.obs.drift`) *records* how far the
analytical cost model strays from what the runtime executes; this
module *acts* on it.  A :class:`DriftGuard` (installed via
``CuCCRuntime(drift_guard=policy)``) watches the per-launch
``model.drift_rel_err`` observations and escalates through three
responses as consecutive launches breach the policy's bound:

1. **warn** — after ``warn_after`` consecutive breaches the guard logs
   a warning entry (``guard.log``) and counts
   ``ops.drift_breaches`` in METRICS;
2. **force-retune** — after ``retune_after`` consecutive breaches it
   re-runs the collective autotuner against the live cluster (the
   autotuner is clock-side-effect-free, so modeled times are not
   perturbed) — stale tuning tables are the most common drift source;
3. **refuse** — after ``refuse_after`` consecutive breaches the
   breaker opens and the *next* launch admission raises
   :class:`~repro.errors.DriftBreakerOpen`: the model can no longer be
   trusted and capacity-planning answers built on it would be wrong.

A launch back inside the bound closes the streak (the breaker itself,
once open, stays open — operators resolve the drift and restart).
Constructing a runtime with a guard implies ``drift=True``; without a
guard the runtime never imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DriftBreakerOpen
from repro.obs.metrics import METRICS

__all__ = ["DriftGuardPolicy", "DriftGuard"]


def _default_bound() -> float:
    # lazy: repro.ops is on the api facade's import path, and the drift
    # telemetry module must not load until a guard is actually built
    from repro.obs.drift import DEFAULT_DRIFT_BOUND

    return DEFAULT_DRIFT_BOUND


@dataclass(frozen=True)
class DriftGuardPolicy:
    """Escalation thresholds of the drift breaker (validated)."""

    #: |relative error| above which a launch counts as a breach
    #: (default: repro.obs.drift.DEFAULT_DRIFT_BOUND)
    bound: float = field(default_factory=_default_bound)
    #: consecutive breaches before a warning is logged
    warn_after: int = 1
    #: consecutive breaches before the autotuner is forced
    retune_after: int = 3
    #: consecutive breaches before the breaker opens (refuse launches)
    refuse_after: int = 5

    def __post_init__(self) -> None:
        if not self.bound > 0:
            raise ValueError(f"bound must be > 0, got {self.bound}")
        for name in ("warn_after", "retune_after", "refuse_after"):
            v = getattr(self, name)
            if v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")
        if not (
            self.warn_after <= self.retune_after <= self.refuse_after
        ):
            raise ValueError(
                "thresholds must escalate: warn_after <= retune_after "
                f"<= refuse_after, got {self.warn_after} / "
                f"{self.retune_after} / {self.refuse_after}"
            )


class DriftGuard:
    """Consecutive-breach tracker + breaker for one runtime."""

    def __init__(self, policy: DriftGuardPolicy | None = None):
        self.policy = policy if policy is not None else DriftGuardPolicy()
        #: current run of consecutive out-of-bound launches
        self.consecutive = 0
        #: worst |error| seen during the current streak
        self.worst = 0.0
        #: breaker state; once open, admission refuses every launch
        self.open = False
        self.retunes = 0
        #: escalation history: dicts with action/kernel/err/consecutive
        self.log: list[dict] = []

    # -- admission (called before every launch) ------------------------
    def admit(self, kernel_name: str) -> None:
        if self.open:
            raise DriftBreakerOpen(
                f"drift breaker is open: {self.consecutive} consecutive "
                f"launches exceeded the ±{self.policy.bound:.0%} model "
                f"bound (worst |err| {self.worst:.2f}); refusing to "
                f"launch {kernel_name!r} — re-tune or fix the cost "
                f"model, then restart"
            )

    # -- observation (called after every drift-telemetry launch) -------
    def observe(self, runtime, kernel_name: str, record, pred) -> None:
        """Feed one launch's executed-vs-predicted phase times."""
        from repro.obs.drift import signed_rel_error

        times = record.phases
        worst = 0.0
        for predicted, executed in (
            (pred["partial"], times.partial),
            (pred["allgather"], times.allgather),
        ):
            if predicted <= 0 and executed <= 0:
                continue
            worst = max(worst, abs(signed_rel_error(executed, predicted)))
        if worst <= self.policy.bound:
            self.consecutive = 0
            self.worst = 0.0
            return
        self.consecutive += 1
        self.worst = max(self.worst, worst)
        if METRICS.enabled:
            METRICS.inc("ops.drift_breaches", kernel=kernel_name)
        if self.consecutive >= self.policy.warn_after:
            self._log("warn", kernel_name, worst)
        if self.consecutive == self.policy.retune_after:
            self._force_retune(runtime, kernel_name, worst)
        if self.consecutive >= self.policy.refuse_after:
            self.open = True
            self._log("open", kernel_name, worst)

    def _force_retune(self, runtime, kernel_name: str, err: float) -> None:
        """Re-tune the collective selector against the live cluster.

        ``autotune`` snapshots and restores clocks, comm counters and
        observers, so forcing it mid-run cannot perturb modeled time —
        only the tuning table the next launches select from.
        """
        from repro.tuning.autotune import autotune
        from repro.tuning.cache import TuningCache

        comm = runtime.cluster.comm
        if comm.tuning is None:
            comm.tuning = TuningCache()
        autotune(runtime.cluster, cache=comm.tuning)
        self.retunes += 1
        if METRICS.enabled:
            METRICS.inc("ops.drift_forced_retunes")
        self._log("retune", kernel_name, err)

    def _log(self, action: str, kernel_name: str, err: float) -> None:
        self.log.append(
            {
                "action": action,
                "kernel": kernel_name,
                "worst_abs_err": err,
                "consecutive": self.consecutive,
            }
        )

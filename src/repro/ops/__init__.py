"""Elastic operations: durable checkpoint/restart, grow recovery,
drift-guarded execution.

The runtime's built-in fault tolerance (shrink recovery, retries —
:mod:`repro.runtime.cucc`) keeps one launch alive *inside* one process.
This package is the layer above it: keeping a whole *run* alive across
process death and cluster-shape changes.

* :mod:`repro.ops.policy` / :mod:`repro.ops.manager` /
  :mod:`repro.ops.checkpoint` — versioned, checksummed on-disk
  checkpoints written at phase boundaries (atomic, corruption-detected,
  inspectable via ``repro ckpt``);
* :mod:`repro.ops.resume` — rebuild a runtime from a checkpoint and
  continue bit-identically to the uninterrupted run;
* :mod:`repro.ops.elastic` — rejoin replacement nodes after shrink
  recovery, restoring the original partition widths;
* :mod:`repro.ops.guard` — a circuit breaker on cost-model drift
  (warn → force-retune → refuse-launch).

Zero-cost contract: none of this is imported unless a policy object is
passed to the runtime, and a runtime without one takes exactly the seed
code path — the ``bench_obs_overhead`` gate proves both the call-count
budget and bit-identical modeled times.
"""

from repro.ops.checkpoint import (
    diff_checkpoints,
    inspect_checkpoint,
    latest_checkpoint,
    read_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from repro.ops.elastic import freed_positions, grow_cluster, rebalance_workload
from repro.ops.guard import DriftGuard, DriftGuardPolicy
from repro.ops.manager import CheckpointManager
from repro.ops.policy import CHECKPOINT_MODES, CheckpointPolicy
from repro.ops.resume import resume_on_cucc, resume_runtime

__all__ = [
    "CheckpointPolicy",
    "CHECKPOINT_MODES",
    "CheckpointManager",
    "write_checkpoint",
    "read_checkpoint",
    "validate_checkpoint",
    "inspect_checkpoint",
    "diff_checkpoints",
    "latest_checkpoint",
    "resume_runtime",
    "resume_on_cucc",
    "freed_positions",
    "grow_cluster",
    "rebalance_workload",
    "DriftGuard",
    "DriftGuardPolicy",
]

"""Checkpoint policy: when the elastic-operations layer writes to disk.

A :class:`CheckpointPolicy` is the only thing a user passes to turn
durable checkpointing on (``CuCCRuntime(checkpoint=policy)`` or
``repro run --checkpoint DIR``); without one the runtime never imports
this package and takes exactly the seed code path.

Three modes, all evaluated at the runtime's stage points (the
replication-relevant boundaries of the three-phase workflow, plus the
end of every launch):

``phase-boundary``
    write at every stage point — maximum resumability, one file per
    phase transition;
``interval``
    write at a stage point only when at least ``interval_s`` of
    *simulated* time has passed since the last write (the simulator has
    no wall clock, and determinism forbids one);
``on-recovery``
    write only at stage points reached after a shrink recovery in the
    current launch, and at the end of launches that recovered — the
    cheapest mode, capturing exactly the states that are expensive to
    recompute.

``halt_after`` deliberately stops the process (exit code 3 from the
CLI) right after the N-th checkpoint is written — a deterministic
"kill -9" for restart drills and the CI elastic-smoke gate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CheckpointPolicy", "CHECKPOINT_MODES"]

#: recognized values of :attr:`CheckpointPolicy.mode`
CHECKPOINT_MODES = ("phase-boundary", "interval", "on-recovery")


@dataclass(frozen=True)
class CheckpointPolicy:
    """Knobs of durable checkpointing (validated at construction)."""

    #: directory the manager writes ``ckpt-NNNNNN.rckp`` files (and the
    #: ``latest.rckp`` alias) into; created on first write
    directory: str
    #: one of :data:`CHECKPOINT_MODES`
    mode: str = "phase-boundary"
    #: minimum simulated seconds between writes (``interval`` mode only)
    interval_s: float = 0.0
    #: keep only the newest N numbered checkpoints (0 = keep all);
    #: ``latest.rckp`` is never pruned
    keep: int = 0
    #: stop deliberately (:class:`~repro.errors.CheckpointHalt`) after
    #: writing this many checkpoints; ``None`` = never
    halt_after: int | None = None

    def __post_init__(self) -> None:
        if not self.directory:
            raise ValueError("checkpoint directory must be non-empty")
        if self.mode not in CHECKPOINT_MODES:
            raise ValueError(
                f"unknown checkpoint mode {self.mode!r}; "
                f"expected one of {CHECKPOINT_MODES}"
            )
        if self.interval_s < 0:
            raise ValueError(
                f"interval_s must be >= 0, got {self.interval_s}"
            )
        if self.mode == "interval" and self.interval_s <= 0:
            raise ValueError(
                "interval mode needs interval_s > 0 "
                f"(got {self.interval_s})"
            )
        if self.keep < 0:
            raise ValueError(f"keep must be >= 0, got {self.keep}")
        if self.halt_after is not None and self.halt_after < 1:
            raise ValueError(
                f"halt_after must be >= 1 or None, got {self.halt_after}"
            )

"""The durable checkpoint file format (``.rckp``) and its tools.

Layout (all integers little-endian)::

    offset 0   magic  b"RCKP"
           4   u32    format version (1)
           8   u64    metadata length in bytes
          16   u32    CRC32 of the metadata bytes
          20   metadata: UTF-8 JSON, sorted keys
    20+len     data region: concatenated raw per-rank buffer segments

The metadata object carries everything non-bulk — cluster shape,
runtime configuration, simulated clocks, fault-injector state, the
completed-launch log and the optional mid-launch pending state — plus a
``segments`` list describing each raw segment in the data region
(buffer name, born rank, dtype, element count, offset, byte length and
its own CRC32).  Segment data is stored per *born rank* because a
checkpoint taken between the partial phase and the Allgather captures
legitimately divergent replicas.

Every field a resume depends on is integrity-checked: a flipped byte in
the header, the metadata or any segment is reported as a
:class:`~repro.errors.CheckpointError` that names the file and the
corrupted region, never as a crash deeper in the stack.

Determinism: nothing in the format depends on wall-clock time, file
paths or dict iteration order (keys are sorted, segments are emitted in
a canonical order), so two identical simulator states serialize to
byte-identical checkpoints — which is what lets ``repro ckpt diff``
prove a resumed run converged to the uninterrupted one.

Writes are atomic (temp file + ``os.replace``) and also refresh a
``latest.rckp`` alias, so a crash mid-write can never destroy the
previous good checkpoint.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError

__all__ = [
    "CKPT_MAGIC",
    "CKPT_VERSION",
    "CKPT_SUFFIX",
    "LATEST_NAME",
    "encode_checkpoint",
    "write_checkpoint",
    "read_checkpoint",
    "validate_checkpoint",
    "inspect_checkpoint",
    "diff_checkpoints",
    "latest_checkpoint",
]

CKPT_MAGIC = b"RCKP"
CKPT_VERSION = 1
CKPT_SUFFIX = ".rckp"
LATEST_NAME = "latest" + CKPT_SUFFIX

_HEADER = struct.Struct("<4sIQI")  # magic, version, meta_len, meta_crc

#: metadata keys that differ between equivalent states (write ordinal,
#: free-form label) — ignored by :func:`diff_checkpoints`
VOLATILE_META_KEYS = ("seq", "label")


# ---------------------------------------------------------------------------
# encode / write
# ---------------------------------------------------------------------------
def encode_checkpoint(meta: dict, segments) -> bytes:
    """Serialize a checkpoint to bytes.

    ``segments`` is an iterable of ``(buffer, born_rank, array)``; the
    canonical on-disk order is (buffer name, born rank).  ``meta`` must
    be JSON-serializable; its ``segments`` key is overwritten with the
    generated descriptors.
    """
    ordered = sorted(segments, key=lambda s: (s[0], s[1]))
    descs = []
    chunks = []
    offset = 0
    for name, born, arr in ordered:
        arr = np.ascontiguousarray(arr)
        raw = arr.tobytes()
        descs.append(
            {
                "buffer": name,
                "born_rank": int(born),
                "dtype": arr.dtype.str,
                "size": int(arr.size),
                "offset": offset,
                "nbytes": len(raw),
                "crc32": zlib.crc32(raw),
            }
        )
        chunks.append(raw)
        offset += len(raw)
    meta = dict(meta)
    meta["segments"] = descs
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    header = _HEADER.pack(
        CKPT_MAGIC, CKPT_VERSION, len(meta_bytes), zlib.crc32(meta_bytes)
    )
    return b"".join([header, meta_bytes, *chunks])


def write_checkpoint(path, meta: dict, segments) -> Path:
    """Atomically write a checkpoint file and refresh ``latest.rckp``.

    The payload is fully serialized first, written to a temp file in the
    target directory and renamed into place, so readers only ever see
    complete checkpoints.  Returns the written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = encode_checkpoint(meta, segments)
    _atomic_write(path, payload)
    latest = path.parent / LATEST_NAME
    if path.name != LATEST_NAME:
        _atomic_write(latest, payload)
    return path


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError as e:
        raise CheckpointError(f"write failed: {e}", path=str(path)) from e
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


def latest_checkpoint(directory) -> Path | None:
    """The ``latest.rckp`` alias in ``directory``, or the
    highest-numbered checkpoint, or ``None`` when there is none."""
    directory = Path(directory)
    latest = directory / LATEST_NAME
    if latest.exists():
        return latest
    numbered = sorted(directory.glob("ckpt-*" + CKPT_SUFFIX))
    return numbered[-1] if numbered else None


# ---------------------------------------------------------------------------
# read / validate
# ---------------------------------------------------------------------------
def read_checkpoint(path) -> tuple[dict, dict[tuple[str, int], np.ndarray]]:
    """Load and integrity-check a checkpoint file.

    Returns ``(meta, data)`` where ``data`` maps ``(buffer, born_rank)``
    to a fresh writable array.  Any corruption — bad magic, truncation,
    checksum mismatch in metadata or any segment — raises
    :class:`CheckpointError` naming the file and the damaged region.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as e:
        raise CheckpointError(f"cannot read: {e}", path=str(path)) from e
    if len(blob) < _HEADER.size:
        raise CheckpointError(
            f"truncated header: {len(blob)} bytes, need {_HEADER.size}",
            path=str(path),
        )
    magic, version, meta_len, meta_crc = _HEADER.unpack_from(blob, 0)
    if magic != CKPT_MAGIC:
        raise CheckpointError(
            f"bad magic {magic!r} (not a checkpoint file)", path=str(path)
        )
    if version != CKPT_VERSION:
        raise CheckpointError(
            f"unsupported format version {version} "
            f"(this build reads version {CKPT_VERSION})",
            path=str(path),
        )
    meta_end = _HEADER.size + meta_len
    if len(blob) < meta_end:
        raise CheckpointError(
            f"truncated metadata: header promises {meta_len} bytes, "
            f"file holds {len(blob) - _HEADER.size}",
            path=str(path),
        )
    meta_bytes = blob[_HEADER.size:meta_end]
    got_crc = zlib.crc32(meta_bytes)
    if got_crc != meta_crc:
        raise CheckpointError(
            f"metadata checksum mismatch at offset {_HEADER.size} "
            f"(stored {meta_crc:#010x}, computed {got_crc:#010x})",
            path=str(path),
        )
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except ValueError as e:
        raise CheckpointError(
            f"metadata is not valid JSON: {e}", path=str(path)
        ) from e
    data_region = blob[meta_end:]
    data: dict[tuple[str, int], np.ndarray] = {}
    expected_end = 0
    for d in meta.get("segments", ()):
        name, born = d["buffer"], int(d["born_rank"])
        off, nbytes = int(d["offset"]), int(d["nbytes"])
        where = f"segment {name!r} rank {born}"
        if off < 0 or off + nbytes > len(data_region):
            raise CheckpointError(
                f"{where}: extends past end of file "
                f"(offset {off} + {nbytes} B > {len(data_region)} B "
                f"of data)",
                path=str(path),
            )
        raw = data_region[off:off + nbytes]
        got = zlib.crc32(raw)
        if got != int(d["crc32"]):
            raise CheckpointError(
                f"{where}: checksum mismatch at data offset {off} "
                f"(stored {int(d['crc32']):#010x}, computed {got:#010x})",
                path=str(path),
            )
        arr = np.frombuffer(raw, dtype=np.dtype(d["dtype"]))
        if arr.size != int(d["size"]):
            raise CheckpointError(
                f"{where}: holds {arr.size} elements, descriptor "
                f"promises {int(d['size'])}",
                path=str(path),
            )
        data[(name, born)] = arr.copy()
        expected_end = max(expected_end, off + nbytes)
    if len(data_region) != expected_end:
        raise CheckpointError(
            f"data region is {len(data_region)} bytes but segments "
            f"account for {expected_end}",
            path=str(path),
        )
    return meta, data


def validate_checkpoint(path) -> list[str]:
    """Every integrity problem in a checkpoint file, as strings
    (an empty list means the file is valid)."""
    try:
        read_checkpoint(path)
    except CheckpointError as e:
        return [str(e)]
    return []


# ---------------------------------------------------------------------------
# inspect / diff
# ---------------------------------------------------------------------------
def inspect_checkpoint(path) -> str:
    """Human-readable summary of one checkpoint file."""
    meta, data = read_checkpoint(path)
    c = meta.get("cluster", {})
    lines = [
        f"checkpoint {path}",
        (
            f"  format v{CKPT_VERSION}, seq {meta.get('seq', '?')}, "
            f"stage {meta.get('stage', '?')!r}, "
            f"label {meta.get('label', '')!r}"
        ),
        f"  sim time {meta.get('sim_time', 0.0):.9f} s",
        (
            f"  cluster {c.get('name', '?')!r}: "
            f"{len(c.get('nodes', ()))}/{c.get('born_nodes', '?')} nodes "
            f"alive, topology {c.get('topology_kind', '?')}"
        ),
        (
            f"  launches completed: {len(meta.get('launches', ()))}; "
            f"pending: "
            + (
                f"{meta['pending']['kernel']!r} at stage "
                f"{meta['pending']['stage']!r}"
                if meta.get("pending")
                else "none"
            )
        ),
    ]
    inj = meta.get("injector")
    if inj is not None:
        lines.append(
            f"  faults: {len(inj.get('events', ()))} events, "
            f"{len(inj.get('fired', ()))}/{len(inj.get('faults', ()))} "
            f"fired, op cursor {inj.get('op_index', 0)}"
        )
    app = meta.get("app") or {}
    if app:
        ctx = ", ".join(f"{k}={v!r}" for k, v in sorted(app.items()))
        lines.append(f"  app: {ctx}")
    by_buffer: dict[str, list] = {}
    for d in meta.get("segments", ()):
        by_buffer.setdefault(d["buffer"], []).append(d)
    lines.append(f"  buffers ({len(by_buffer)}):")
    for name in sorted(by_buffer):
        segs = by_buffer[name]
        total = sum(d["nbytes"] for d in segs)
        ranks = sorted(d["born_rank"] for d in segs)
        lines.append(
            f"    {name}: {segs[0]['size']} x {segs[0]['dtype']} "
            f"on rank(s) {ranks}, {total} B total"
        )
    return "\n".join(lines)


def diff_checkpoints(path_a, path_b) -> list[str]:
    """Differences between two checkpoints, as strings.

    An empty list means the two files describe the same simulator state:
    identical metadata (modulo the write ordinal and free-form label —
    see :data:`VOLATILE_META_KEYS`) and bit-identical segment data.
    This is the differential gate's primitive: a resumed run and the
    uninterrupted baseline must diff clean.
    """
    meta_a, data_a = read_checkpoint(path_a)
    meta_b, data_b = read_checkpoint(path_b)
    diffs: list[str] = []
    _diff_value("meta", _strip(meta_a), _strip(meta_b), diffs)
    for key in sorted(set(data_a) | set(data_b)):
        name, born = key
        where = f"data {name!r} rank {born}"
        if key not in data_a:
            diffs.append(f"{where}: only in {path_b}")
        elif key not in data_b:
            diffs.append(f"{where}: only in {path_a}")
        elif not np.array_equal(data_a[key], data_b[key], equal_nan=True):
            bad = np.flatnonzero(
                data_a[key].view(np.uint8) != data_b[key].view(np.uint8)
            )
            diffs.append(
                f"{where}: {bad.size} differing byte(s), "
                f"first at byte {int(bad[0])}"
            )
    return diffs


def _strip(meta: dict) -> dict:
    out = {
        k: v
        for k, v in meta.items()
        if k not in VOLATILE_META_KEYS and k != "segments"
    }
    # a pending state carries the same volatile keys nested one level in
    if isinstance(out.get("pending"), dict):
        out["pending"] = {
            k: v
            for k, v in out["pending"].items()
            if k not in VOLATILE_META_KEYS
        }
    return out


def _diff_value(where: str, a, b, diffs: list[str]) -> None:
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        diffs.append(
            f"{where}: type {type(a).__name__} vs {type(b).__name__}"
        )
        return
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            sub = f"{where}.{k}"
            if k not in a:
                diffs.append(f"{sub}: only in second")
            elif k not in b:
                diffs.append(f"{sub}: only in first")
            else:
                _diff_value(sub, a[k], b[k], diffs)
    elif isinstance(a, list):
        if len(a) != len(b):
            diffs.append(f"{where}: length {len(a)} vs {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _diff_value(f"{where}[{i}]", x, y, diffs)
    elif a != b:
        diffs.append(f"{where}: {a!r} vs {b!r}")

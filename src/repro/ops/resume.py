"""Restart: rebuild a runtime from a durable checkpoint and continue.

:func:`resume_runtime` is the inverse of the
:class:`~repro.ops.manager.CheckpointManager`'s capture: it reads one
``.rckp`` file and reconstructs

* the cluster — hardware and network specs, topology (by kind, verified
  against the stored signature), tuning cache, the exact set of alive
  nodes with their ranks, born ranks, simulated clocks and straggler
  multipliers, and the cumulative communication accounting;
* an equivalent :class:`~repro.runtime.cucc.CuCCRuntime` — model
  params, recovery policy and feature flags come from the checkpoint,
  not from the caller;
* device memory — every buffer reallocated and every born rank's
  replica restored byte-for-byte (mid-launch checkpoints legitimately
  hold divergent replicas);
* the fault injector — cursors, fired set, RNG bit-generator state and
  event log, so the remaining fault schedule delivers bit-identically;
* the execution cursor — completed launches are replayed as
  zero-cost fast-forwards (their records reappear in
  ``runtime.launches`` with the recorded PhaseTimes floats), and a
  launch interrupted mid-flight re-enters the three-phase driver at the
  exact stage it halted.

The determinism contract: interrupt a run at *any* stage point, resume
from the file, and the final buffers, op counters and PhaseTimes are
bit-identical to the uninterrupted run — ``tests/test_ops_resume.py``
enforces this differentially at every halt point.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultInjector, event_from_dict
from repro.cluster.topology import make_topology
from repro.errors import CheckpointError
from repro.hw.cpu import CPUSpec
from repro.hw.perfmodel import ModelParams
from repro.hw.specs import NetworkSpec
from repro.interp.counters import OpCounters
from repro.ops.checkpoint import read_checkpoint
from repro.ops.manager import PENDING_RANK
from repro.runtime.memory_manager import Checkpoint
from repro.runtime.program import LaunchRecord, PhaseTimes

__all__ = [
    "ResumeState",
    "resume_runtime",
    "resume_on_cucc",
    "record_from_dict",
]


class ResumeState:
    """The execution cursor a resumed runtime carries until caught up.

    ``completed`` holds the serialized records of launches that finished
    before the checkpoint (consumed FIFO as the caller replays its
    launch sequence); ``pending`` the mid-flight state of a launch
    interrupted between phases (or ``None``).
    """

    def __init__(self, completed, pending, path, app=None):
        self.completed: list[dict] = list(completed)
        self.pending: dict | None = pending
        self.path = str(path)
        #: app-level context stored in the checkpoint (workload name...)
        self.app: dict = dict(app or {})

    @property
    def exhausted(self) -> bool:
        return not self.completed and self.pending is None


def record_from_dict(d: dict, config, plan) -> LaunchRecord:
    """Rebuild a completed launch's record from its serialized form.

    ``config`` and ``plan`` come from the replaying caller (the plan is
    re-finalized at resume time; every numeric field of the record is
    restored from the checkpoint, not recomputed).
    """
    ph = d["phases"]
    return LaunchRecord(
        kernel_name=d["kernel"],
        config=config,
        plan=plan,
        phases=PhaseTimes(
            partial=ph["partial"],
            allgather=ph["allgather"],
            callback=ph["callback"],
            overhead=ph["overhead"],
            recovery=ph["recovery"],
            allgather_algos=tuple(ph["algos"]),
        ),
        partial_counters=[OpCounters(**c) for c in d["partial_counters"]],
        callback_counters=OpCounters(**d["callback_counters"]),
        comm_bytes=int(d["comm_bytes"]),
        fault_events=[event_from_dict(e) for e in d["fault_events"]],
        retries=int(d["retries"]),
        recoveries=int(d["recoveries"]),
    )


def _rebuild_cluster(cmeta: dict, path) -> Cluster:
    """Reconstruct the checkpoint's cluster, including dead positions."""
    from repro.tuning.cache import TuningCache

    spec = CPUSpec(**cmeta["node_spec"])
    network = NetworkSpec(**cmeta["network"])
    born = int(cmeta["born_nodes"])
    topo = make_topology(cmeta["topology_kind"], born, network=network)
    if topo.signature != cmeta["topology_signature"]:
        raise CheckpointError(
            f"topology {cmeta['topology_kind']!r} rebuilt as "
            f"{topo.signature!r} but the checkpoint recorded "
            f"{cmeta['topology_signature']!r} (a custom topology cannot "
            f"be reconstructed from its kind alone)",
            path=str(path),
        )
    tuning = (
        TuningCache(entries=dict(cmeta["tuning"]))
        if cmeta["tuning"] is not None
        else None
    )
    cluster = Cluster(
        spec,
        born,
        network=network,
        name=cmeta["name"],
        topology=topo,
        tuning=tuning,
    )
    present = {int(n["born_rank"]): n for n in cmeta["nodes"]}
    lost = [n for n in cluster.nodes if n.born_rank not in present]
    for n in lost:
        n.fail("lost before the checkpoint was taken")
    if lost:
        cluster.remove_dead()
    for node in cluster.nodes:
        st = present[node.born_rank]
        if node.rank != int(st["rank"]):
            raise CheckpointError(
                f"rank layout mismatch: born rank {node.born_rank} "
                f"reconstructs as rank {node.rank}, checkpoint recorded "
                f"rank {int(st['rank'])}",
                path=str(path),
            )
        node.clock.reset(float(st["clock"]))
        node.compute_multiplier = float(st["compute_multiplier"])
        node.network_multiplier = float(st["network_multiplier"])
    cluster.comm.comm_seconds = float(cmeta["comm_seconds"])
    cluster.comm.comm_bytes = int(cmeta["comm_bytes"])
    return cluster


def resume_runtime(
    path, checkpoint=None, drift_guard=None, trace=False, profile=False,
    backend=None, jit_cache=None,
):
    """Rebuild a :class:`~repro.runtime.cucc.CuCCRuntime` from a
    checkpoint file, ready to continue the interrupted run.

    ``checkpoint`` (a :class:`~repro.ops.policy.CheckpointPolicy`)
    re-arms durable checkpointing in the resumed process — write
    numbering continues from the file's ordinal.  ``drift_guard``,
    ``trace`` and ``profile`` are process-local observers and may differ
    from the original run; everything that affects simulated state is
    restored from the file.

    ``backend=None`` (the default) resumes on the backend the
    checkpoint recorded — a JIT run resumes on JIT — falling back to
    ``"auto"`` for checkpoints written before the backend was recorded.
    An explicit ``backend`` overrides the record (safe either way: both
    backends are bit-identical by the differential gate).  ``jit_cache``
    (a :class:`~repro.interp.jit.cache.CompileCache` or path) seeds the
    resumed runtime's compile cache; caches are process-local and never
    part of checkpointed state.

    The caller then replays its launch sequence: launches completed
    before the checkpoint fast-forward (identical records, zero clock
    movement), the interrupted launch resumes mid-flight, and later
    launches run normally.
    """
    from repro.runtime.cucc import CuCCRuntime, RecoveryPolicy

    meta, data = read_checkpoint(path)
    cluster = _rebuild_cluster(meta["cluster"], path)
    r = meta["runtime"]
    if backend is None:
        backend = r.get("backend", "auto")
        if backend == "jit" and (profile or r["sanitize"]):
            # a recorded hard-jit backend cannot carry profile/sanitize
            # hooks (they observe the interpreter); auto keeps the run
            # going — bit-identical either way
            backend = "auto"
    rt = CuCCRuntime(
        cluster,
        params=ModelParams(**r["params"]),
        simd_enabled=r["simd_enabled"],
        bounds_check=r["bounds_check"],
        faithful_replication=r["faithful_replication"],
        recovery=RecoveryPolicy(**r["recovery"]),
        sanitize=r["sanitize"],
        allgather_algo=r["allgather_algo"],
        trace=trace,
        profile=profile,
        drift=r["drift"],
        checkpoint=checkpoint,
        drift_guard=drift_guard,
        backend=backend,
        jit_cache=jit_cache,
    )
    inj_state = meta["injector"]
    if inj_state is not None:
        inj = FaultInjector.from_state(inj_state)
        inj.tracer = rt.tracer
        rt.injector = inj
        cluster.comm.injector = inj
    for name, info in sorted(meta["memory"]["buffers"].items()):
        rt.memory.alloc(name, int(info["size"]), np.dtype(info["dtype"]))
    for (name, born), arr in data.items():
        if born != PENDING_RANK:
            rt.memory.import_rank_state(name, born, arr)
    pending = meta["pending"]
    if pending is not None and pending.get("ckpt") is not None:
        ck = pending["ckpt"]
        pending = dict(pending)
        pending["_ckpt_obj"] = Checkpoint(
            label=ck["label"],
            sim_time=ck["sim_time"],
            data={
                n: data[(n, PENDING_RANK)].copy() for n in ck["buffers"]
            },
        )
    rt._resume = ResumeState(
        meta["launches"], pending, path, app=meta.get("app")
    )
    if rt.ops is not None:
        rt.ops.seq = int(meta["seq"])
        rt.ops.app.update(meta.get("app") or {})
        rt.ops._last_write_t = float(meta["sim_time"])
    return rt


def resume_on_cucc(spec, path, verify=True, **kwargs):
    """Resume a single-workload run from a checkpoint (the restart-side
    twin of :func:`repro.bench.harness.run_on_cucc`).

    ``spec`` must be the same workload the checkpoint was taken from —
    buffers are *not* re-uploaded (the checkpoint holds the state),
    only the kernel is recompiled and the launch sequence replayed.
    ``kwargs`` forward to :func:`resume_runtime`.
    """
    from repro.bench.harness import CuCCResult

    rt = resume_runtime(path, **kwargs)
    stored = rt._resume.app.get("workload")
    if stored is not None and stored != spec.name:
        raise CheckpointError(
            f"checkpoint was taken from workload {stored!r}, refusing to "
            f"resume workload {spec.name!r} onto it",
            path=str(path),
        )
    missing = [n for n in spec.arrays if n not in rt.memory.buffer_names]
    if missing:
        raise CheckpointError(
            f"checkpoint holds no state for buffer(s) {missing} of "
            f"workload {spec.name!r}",
            path=str(path),
        )
    compiled = rt.compile(spec.kernel)
    rec = rt.launch(compiled, spec.grid, spec.block, spec.args())
    if verify:
        results = {
            o: rt.memory.memcpy_d2h(o, check_consistency=True)
            for o in spec.outputs
        }
        spec.verify(results)
    return CuCCResult(time=rec.time, record=rec, runtime=rt)

"""Checkpoint manager: captures runtime state and schedules writes.

The :class:`CheckpointManager` is what ``CuCCRuntime(checkpoint=...)``
installs as ``runtime.ops``.  The runtime calls exactly two hooks —
:meth:`on_stage` at the mid-launch stage points ("allgather" = partial
phase done, "callback" = Allgather done) and :meth:`on_launch_end` after
every completed launch — and each hook decides, per the
:class:`~repro.ops.policy.CheckpointPolicy`, whether to serialize the
full simulator state to disk.

What a checkpoint captures (see :mod:`repro.ops.checkpoint` for the
container format):

* the cluster: hardware/network specs, topology, born width, per-node
  identity (rank, born rank), simulated clocks, straggler multipliers,
  cumulative communication accounting and the tuning cache;
* the runtime configuration (model params, recovery policy, feature
  flags) — a resume reconstructs an equivalent runtime without the
  caller re-stating anything;
* buffer state per *born rank* (replicas legitimately diverge between
  the partial phase and the Allgather);
* the fault injector's complete mutable state (cursors, fired set, RNG
  bit-generator state, event log), so fault delivery resumes
  bit-identically;
* the completed-launch log, and — mid-launch — the pending launch's
  recovery state (phase progress, retry/recovery accounting, the
  in-memory pre-launch snapshot).

Checkpoint writes charge **zero simulated time**: durability is host
I/O, invisible to the modeled cluster, which is what keeps a
checkpointed run's PhaseTimes bit-identical to an uncheckpointed one.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.cluster.faults import event_to_dict
from repro.errors import CheckpointHalt
from repro.obs.metrics import METRICS
from repro.obs.tracer import SpanKind
from repro.ops.checkpoint import CKPT_SUFFIX, LATEST_NAME, write_checkpoint
from repro.ops.policy import CheckpointPolicy

__all__ = [
    "CheckpointManager",
    "PENDING_RANK",
    "capture_meta",
    "record_to_dict",
]

#: pseudo born-rank under which a pending launch's in-memory pre-launch
#: snapshot (one canonical copy per buffer) is stored as segments
PENDING_RANK = -1

#: topology class name -> the CLI kind name that reconstructs it
_TOPOLOGY_KINDS = {
    "FlatTopology": "flat",
    "FatTreeTopology": "fat-tree",
    "RingTopology": "ring",
    "TorusTopology": "torus",
}


def _topology_kind(topo) -> str:
    name = type(topo).__name__
    kind = _TOPOLOGY_KINDS.get(name, name)
    if kind == "fat-tree":
        # carry the leaf-switch size so resume rebuilds the same tree
        # even when it differs from the network spec's switch radix
        # (make_topology parses the "fat-tree:K" suffix)
        return f"fat-tree:{topo.nodes_per_switch}"
    return kind


# ---------------------------------------------------------------------------
# state capture
# ---------------------------------------------------------------------------
def capture_meta(
    runtime, stage: str, seq: int, pending: dict | None = None,
    app: dict | None = None,
) -> dict:
    """The full JSON-serializable state of a runtime (sans bulk data)."""
    cluster = runtime.cluster
    comm = cluster.comm
    topo = comm.topology
    memory = runtime.memory
    return {
        "stage": stage,
        "seq": seq,
        "label": f"{stage} #{seq}",
        "sim_time": cluster.max_clock,
        "cluster": {
            "name": cluster.name,
            "node_spec": dataclasses.asdict(cluster.node_spec),
            "network": dataclasses.asdict(cluster.network),
            "born_nodes": topo.num_nodes,
            "topology_kind": _topology_kind(topo),
            "topology_signature": topo.signature,
            "tuning": (
                dict(comm.tuning.entries) if comm.tuning is not None else None
            ),
            "comm_seconds": comm.comm_seconds,
            "comm_bytes": comm.comm_bytes,
            "nodes": [
                {
                    "rank": n.rank,
                    "born_rank": n.born_rank,
                    "clock": n.clock.now,
                    "compute_multiplier": n.compute_multiplier,
                    "network_multiplier": n.network_multiplier,
                }
                for n in cluster.nodes
            ],
        },
        "runtime": {
            "params": dataclasses.asdict(runtime.params),
            "recovery": dataclasses.asdict(runtime.recovery),
            "simd_enabled": runtime.simd_enabled,
            "bounds_check": runtime.bounds_check,
            "faithful_replication": runtime.faithful_replication,
            "sanitize": runtime.sanitize,
            "allgather_algo": runtime.allgather_algo,
            "drift": runtime.drift,
            "backend": runtime.backend,
        },
        "memory": {
            "buffers": {
                name: {
                    "size": memory.size_of(name),
                    "dtype": memory.dtype_of(name).str,
                }
                for name in memory.buffer_names
            }
        },
        "injector": (
            runtime.injector.export_state()
            if runtime.injector is not None
            else None
        ),
        "launches": [record_to_dict(r) for r in runtime.launches],
        "pending": pending,
        "app": dict(app or {}),
    }


def record_to_dict(record) -> dict:
    """One completed :class:`~repro.runtime.program.LaunchRecord` as a
    JSON-serializable dict (sanitizer reports are not carried — a
    resumed runtime reports ``None`` for fast-forwarded launches)."""
    p = record.phases
    return {
        "kernel": record.kernel_name,
        "grid": list(record.config.grid),
        "block": list(record.config.block),
        "phases": {
            "partial": p.partial,
            "allgather": p.allgather,
            "callback": p.callback,
            "overhead": p.overhead,
            "recovery": p.recovery,
            "algos": list(p.allgather_algos),
        },
        "partial_counters": [c.as_dict() for c in record.partial_counters],
        "callback_counters": record.callback_counters.as_dict(),
        "comm_bytes": record.comm_bytes,
        "fault_events": [event_to_dict(e) for e in record.fault_events],
        "retries": record.retries,
        "recoveries": record.recoveries,
    }


# ---------------------------------------------------------------------------
# the manager
# ---------------------------------------------------------------------------
class CheckpointManager:
    """Owns the checkpoint directory of one runtime.

    Never constructed directly by users — pass a
    :class:`~repro.ops.policy.CheckpointPolicy` to
    :class:`~repro.runtime.cucc.CuCCRuntime` instead.
    """

    def __init__(self, runtime, policy: CheckpointPolicy):
        self.runtime = runtime
        self.policy = policy
        #: caller-supplied context stored verbatim in every checkpoint
        #: (the CLI records the workload name/size so a resume can refuse
        #: a mismatched workload)
        self.app: dict = {}
        #: write ordinal (continues from the checkpoint on resume)
        self.seq = 0
        #: files written by *this* process (drives ``halt_after``)
        self.written = 0
        self.paths: list[Path] = []
        self._last_write_t: float | None = None

    # -- hooks the runtime calls ---------------------------------------
    def on_stage(
        self, stage: str, pending: dict, ckpt=None, recovered: bool = False
    ) -> None:
        """Mid-launch stage point: ``pending`` is the launch's resumable
        state, ``ckpt`` its in-memory pre-launch snapshot (or None).

        A launch resumed mid-flight never re-reaches the stage point it
        was restored from (the runtime skips the completed phases
        structurally), so every call here captures genuinely new state —
        ``halt_after=1`` restart drills ratchet forward one checkpoint
        per process."""
        if self._due(recovered):
            self.write(stage, pending=pending, ckpt=ckpt)

    def on_launch_end(self, record) -> None:
        if self._due(recovered=record.recoveries > 0):
            self.write("launch-end")

    # -- policy evaluation ---------------------------------------------
    def _due(self, recovered: bool) -> bool:
        mode = self.policy.mode
        if mode == "phase-boundary":
            return True
        if mode == "interval":
            now = self.runtime.cluster.max_clock
            return (
                self._last_write_t is None
                or now - self._last_write_t >= self.policy.interval_s
            )
        return recovered  # on-recovery

    # -- writing --------------------------------------------------------
    def write(self, stage: str, pending: dict | None = None, ckpt=None) -> Path:
        """Serialize the runtime to a numbered checkpoint file now.

        Also refreshes ``latest.rckp``, prunes per the policy's ``keep``,
        and raises :class:`~repro.errors.CheckpointHalt` when the
        policy's ``halt_after`` quota is reached.
        """
        self.seq += 1
        meta = capture_meta(
            self.runtime, stage, self.seq, pending=pending, app=self.app
        )
        segments = list(self.runtime.memory.export_rank_states())
        if ckpt is not None and pending is not None:
            segments += [
                (name, PENDING_RANK, arr) for name, arr in ckpt.data.items()
            ]
        path = (
            Path(self.policy.directory) / f"ckpt-{self.seq:06d}{CKPT_SUFFIX}"
        )
        write_checkpoint(path, meta, segments)
        self._last_write_t = self.runtime.cluster.max_clock
        self.written += 1
        self.paths.append(path)
        self._prune()
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.instant(
                "checkpoint",
                SpanKind.CKPT,
                self.runtime.cluster.max_clock,
                stage=stage,
                seq=self.seq,
                path=str(path),
            )
        if METRICS.enabled:
            METRICS.inc("ops.checkpoints", stage=stage)
        if (
            self.policy.halt_after is not None
            and self.written >= self.policy.halt_after
        ):
            raise CheckpointHalt(
                f"halted after checkpoint {self.written} as requested "
                f"(halt_after={self.policy.halt_after}); resume from "
                f"{path}",
                path=str(path),
            )
        return path

    def _prune(self) -> None:
        if self.policy.keep <= 0:
            return
        directory = Path(self.policy.directory)
        numbered = sorted(
            p
            for p in directory.glob("ckpt-*" + CKPT_SUFFIX)
            if p.name != LATEST_NAME
        )
        for stale in numbered[: -self.policy.keep]:
            stale.unlink(missing_ok=True)

"""Exception hierarchy for the CuCC reproduction.

All package-specific errors derive from :class:`ReproError` so callers can
catch failures from any layer (frontend, analysis, runtime, cluster) with a
single handler while still being able to discriminate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class IRError(ReproError):
    """Malformed IR: bad types, unknown operators, invalid structure."""


class IRTypeError(IRError):
    """An IR node was built with operands of incompatible types."""


class ParseError(ReproError):
    """The CUDA-subset frontend rejected the input source.

    Carries ``line``/``col`` when the location is known so error messages
    can point at the offending token.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        if line is not None:
            message = f"line {line}:{col if col is not None else '?'}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col


class DSLError(ReproError):
    """The Python-embedded kernel DSL was used incorrectly."""


class AnalysisError(ReproError):
    """The compiler analysis hit an internal inconsistency.

    Note that a kernel merely *failing* the Allgather-distributable
    criteria is not an error — the analysis returns a negative verdict
    with a reason instead (paper section 6.2: false negatives degrade to
    replicated execution, never to an exception).
    """


class LaunchError(ReproError):
    """A kernel launch was configured incorrectly (bad grid/args)."""


class DeviceMemoryError(ReproError):
    """Device-memory manager misuse (unknown buffer, double free, ...)."""


#: Deprecated alias — the exception was originally published under this
#: name; existing imports keep working.
MemoryError_ = DeviceMemoryError


class ClusterError(ReproError):
    """Simulated-cluster misuse (rank out of range, mismatched collective)."""


class NodeFailure(ClusterError):
    """A node of the simulated cluster crashed (injected permanent fault).

    ``ranks`` lists the born ranks of the failed nodes so recovery code
    can report exactly who was lost.
    """

    def __init__(self, message: str, ranks: tuple[int, ...] = ()):
        super().__init__(message)
        self.ranks = tuple(ranks)


class CollectiveTimeout(ClusterError):
    """A collective operation timed out (injected transient fault).

    Transient by definition: retrying the same collective may succeed.
    The runtime's recovery policy retries with exponential backoff.
    """


class DataCorruptionError(ClusterError):
    """A collective delivered a corrupted payload (detected by checksum).

    The source replica is intact, so retrying the collective repairs the
    corrupted destination copies.
    """


class CheckpointError(ReproError):
    """A durable checkpoint could not be written, read, or applied.

    Raised with a *source-located* message: loading a corrupt or
    truncated file reports the path and the offset/section where the
    damage was detected, so operators can tell a bad disk from a bad
    run.  ``path`` carries the file involved when one is known.
    """

    def __init__(self, message: str, path: str | None = None):
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)
        self.path = path


class CheckpointHalt(ReproError):
    """Deliberate stop after writing a checkpoint (``halt_after``).

    Not a failure: the run was interrupted *on purpose* at a durable
    point (deterministic stand-in for kill -9 in tests and CI), and can
    be continued with ``CuCCRuntime.resume``.  ``path`` is the
    checkpoint the run can resume from.
    """

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message)
        self.path = path


class DriftBreakerOpen(ReproError):
    """The drift guard refused a launch: model predictions have been
    outside the configured bound for too many consecutive launches and
    escalation (warn, force-retune) did not restore prediction quality.
    """


class InterpError(ReproError):
    """The SPMD interpreter encountered an unsupported construct at runtime."""


class JITError(ReproError):
    """The JIT codegen tier failed (bad cache file, compile failure)."""


class JITUnsupported(JITError):
    """A kernel the JIT compiler cannot specialize.

    Not fatal under ``backend="auto"`` — the runtime falls back to the
    tree-walking interpreter, which remains the reference semantics for
    every construct.
    """


class ServeError(ReproError):
    """The serving layer was misused (bad mix spec, oversized job,
    unknown workload in a submission).

    A *job* failing under injected faults is not a ``ServeError`` — the
    server isolates it, marks the job failed and keeps serving.
    """


class SanitizerError(ReproError):
    """The kernel sanitizer was misused (bad target, unknown kernel).

    Note that a kernel merely *having* findings is not an error — the
    sanitizer returns a report; callers decide how to surface it.
    """

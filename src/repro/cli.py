"""Command-line interface: the ``cucc``-style compiler driver.

    python -m repro compile kernel.cu            # analysis + generated C
    python -m repro compile kernel.cu --nodes 4 --grid 5 --block 256 \\
                            --set n=1200         # + launch-time plan
    python -m repro analyze kernel.cu            # verdict table only
    python -m repro run FIR --cluster simd-focused --nodes 4
    python -m repro tune --nodes 8 --topology fat-tree   # autotune Allgather
    python -m repro run FIR --nodes 8 --topology fat-tree \\
                            --tuning .repro-tuning.json  # use cached winners
    python -m repro run kmeans --nodes 4 --trace t.json  # span tracing
    python -m repro report t.json                # critical-path report
    python -m repro profile kmeans --nodes 4     # per-line hotspot table
    python -m repro run kmeans --trace t.json --drift    # drift telemetry
    python -m repro report t.json --drift        # model-vs-executed table
    python -m repro run FIR --checkpoint ckpts/  # durable checkpoints
    python -m repro run FIR --checkpoint ckpts/ --halt-after 1  # exit 3
    python -m repro run FIR --resume ckpts/      # continue where it died
    python -m repro ckpt inspect ckpts/          # summarize latest .rckp
    python -m repro ckpt validate ckpts/latest.rckp   # integrity check
    python -m repro ckpt diff a.rckp b.rckp      # exit 1 when state differs
    python -m repro run FIR --drift-guard 0.25   # arm the drift breaker
    python -m repro sanitize FIR                 # static + dynamic sanitizer
    python -m repro sanitize kernel.cu           # static race detector
    python -m repro sanitize --all               # every bundled workload
    python -m repro sanitize --violations        # seeded-hazard self-check
    python -m repro serve --jobs 8 --observatory # fleet timeline report
    python -m repro serve --slo 'latency<=2e-5'  # exit 4 on hard breach
    python -m repro serve --faults crash:rank=0,phase=partial \\
                          --fault-every 3 --postmortem pm/  # flight recorder
    python -m repro postmortem pm/postmortem-job-0002.json  # render dump
    python -m repro explain a.json b.json        # where did the time go?
    python -m repro run KMeans --nodes 8 --topology fat-tree:2 \\
                            --netflow net.json   # per-link flow ledger
    python -m repro netview net.json             # hottest links, contention
    python -m repro tune --nodes 8 --topology fat-tree:2 --netflow tn.json
    python -m repro netview --explain-tune tn.json   # measured vs modeled
    python -m repro run FIR --nodes 4 --metrics-json m.json  # counters JSON
    python -m repro report --metrics-json m.json # render the snapshot
    python -m repro specs                        # Table 1
    python -m repro bench fig08 ...              # == python -m repro.bench

``compile`` mirrors what the paper's end-to-end framework produces from
a ``.cu`` file: the Allgather-distributable metadata (Figure 6), the
wrapped CPU kernel module (Listing 2), the three-phase host module, and
— when a launch geometry is given — the concrete block partition and
callback-block set.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import analyze_kernel, finalize_plan
from repro.errors import CheckpointHalt, ReproError
from repro.frontend.parser import parse_cuda
from repro.interp.grid import LaunchConfig
from repro.transform import (
    analyze_vectorizability,
    generate_host_module,
    generate_kernel_module,
)

__all__ = ["main"]


def _ensure_parent(path: str) -> None:
    """Create the parent directory of an output path (``run --trace
    out/t.json`` into a missing ``out/`` must not crash)."""
    from pathlib import Path

    Path(path).expanduser().resolve().parent.mkdir(parents=True, exist_ok=True)


def _find_workload(name: str):
    """Case-insensitive workload lookup over the full catalog."""
    from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

    catalog = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}
    key = {k.lower(): k for k in catalog}.get(name.lower())
    if key is None:
        raise ReproError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(catalog))}"
        )
    return catalog[key]


def _parse_scalar_args(pairs: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--set expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        out[name] = float(value) if "." in value else int(value)
    return out


def _cmd_compile(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    kernels = parse_cuda(source)
    for kernel in kernels:
        analysis = analyze_kernel(kernel)
        vect = analyze_vectorizability(kernel)
        print(f"===== kernel {kernel.name} =====")
        print(analysis.metadata.describe())
        print(f"  vectorization: {vect.describe()}")
        print()
        print("----- CPU kernel module -----")
        print(generate_kernel_module(kernel, vect))
        print()
        print("----- CPU host module -----")
        print(generate_host_module(kernel, analysis.metadata))
        if args.grid is not None:
            if args.block is None or args.nodes is None:
                raise ReproError("--grid requires --block and --nodes")
            plan = finalize_plan(
                analysis,
                LaunchConfig.make(args.grid, args.block),
                _parse_scalar_args(args.set or []),
                args.nodes,
            )
            print()
            print(f"----- launch plan: <<<{args.grid},{args.block}>>> on "
                  f"{args.nodes} nodes -----")
            print(plan.describe())
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    rows = []
    for kernel in parse_cuda(source):
        analysis = analyze_kernel(kernel)
        vect = analyze_vectorizability(kernel)
        m = analysis.metadata
        rows.append(
            [
                kernel.name,
                "yes" if m.distributable else "no",
                "yes" if m.tail_divergent else "no",
                "yes" if vect.vectorizable else "no",
                "; ".join(m.reasons) or "-",
            ]
        )
    from repro.bench.harness import format_table

    print(
        format_table(
            ["kernel", "distributable", "tail-divergent", "SIMD", "notes"],
            rows,
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_on_cucc, run_on_gpu, run_on_pgas
    from repro.cluster import make_cluster
    from repro.hw import GPUS

    build = _find_workload(args.workload)
    spec = build(args.size, seed=args.seed)
    print(f"workload {spec.name} ({args.size}): grid={spec.grid} "
          f"block={spec.block}")
    fault_plan = None
    if args.faults:
        if args.platform != "cucc":
            raise ReproError("--faults requires --platform cucc")
        from repro.cluster.faults import FaultPlan

        fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    tuning = None
    if args.tuning:
        from repro.tuning import TuningCache

        tuning = TuningCache.load(args.tuning)
        print(f"loaded {tuning!r}")
    for flag in ("trace", "profile", "drift", "netflow"):
        if getattr(args, flag) and args.platform != "cucc":
            raise ReproError(f"--{flag} requires --platform cucc")
    if args.platform != "cucc" and args.backend != "auto":
        raise ReproError("--backend requires --platform cucc")
    for flag in ("checkpoint", "resume", "drift_guard"):
        if getattr(args, flag) and args.platform != "cucc":
            opt = flag.replace("_", "-")
            raise ReproError(f"--{opt} requires --platform cucc")
    checkpoint = None
    if args.checkpoint:
        from repro.ops import CheckpointPolicy

        checkpoint = CheckpointPolicy(
            directory=args.checkpoint,
            mode=args.checkpoint_mode,
            interval_s=args.checkpoint_interval,
            keep=args.checkpoint_keep,
            halt_after=args.halt_after,
        )
    elif args.halt_after is not None:
        raise ReproError("--halt-after requires --checkpoint DIR")
    drift_guard = None
    if args.drift_guard is not None:
        from repro.ops import DriftGuardPolicy

        drift_guard = DriftGuardPolicy(bound=args.drift_guard)
    if args.platform == "cucc":
        if args.resume:
            if args.faults:
                raise ReproError(
                    "--resume restores the fault schedule from the "
                    "checkpoint itself; drop --faults"
                )
            if args.netflow:
                raise ReproError(
                    "--netflow is not supported with --resume (the "
                    "ledger would miss the replayed prefix)"
                )
            import os

            from repro.ops import latest_checkpoint, resume_on_cucc

            if os.path.isdir(args.resume):
                latest = latest_checkpoint(args.resume)
                if latest is None:
                    raise ReproError(
                        f"no checkpoints in directory {args.resume!r}"
                    )
                args.resume = str(latest)
            res = resume_on_cucc(
                spec, args.resume, checkpoint=checkpoint,
                drift_guard=drift_guard, trace=bool(args.trace),
                profile=bool(args.profile),
                # "auto" (the flag default) defers to the backend the
                # checkpoint recorded, so a JIT run resumes on JIT
                backend=None if args.backend == "auto" else args.backend,
                jit_cache=args.jit_cache,
            )
            done = len(res.runtime.launches) - 1
            print(f"resumed from {args.resume} on "
                  f"{res.runtime.cluster.num_nodes} nodes "
                  f"({done} completed launch(es) replayed)")
        else:
            cluster = make_cluster(
                args.cluster, args.nodes, topology=args.topology,
                tuning=tuning,
            )
            res = run_on_cucc(
                spec, cluster, fault_plan=fault_plan, trace=bool(args.trace),
                profile=bool(args.profile), drift=bool(args.drift),
                checkpoint=checkpoint, drift_guard=drift_guard,
                app_meta={"workload": spec.name, "size": args.size},
                backend=args.backend, jit_cache=args.jit_cache,
                netflow=bool(args.netflow),
            )
        if res.runtime.ops is not None and res.runtime.ops.written:
            print(f"wrote {res.runtime.ops.written} checkpoint(s) to "
                  f"{args.checkpoint}")
        print(res.record.describe())
        print(res.record.plan.describe())
        for ev in res.record.fault_events:
            print(ev.describe())
        survivors = res.runtime.cluster.num_nodes
        print(f"verified on all {survivors} node replicas")
        if args.trace:
            from repro.obs.export import write_chrome_trace

            _ensure_parent(args.trace)
            path = write_chrome_trace(res.runtime.tracer, args.trace)
            n_spans = len(res.runtime.tracer)
            print(f"wrote {n_spans} spans to {path} (load in Perfetto or "
                  f"inspect with 'python -m repro report {path}')")
        if args.profile:
            report = res.runtime.profiler.report(
                spec=res.runtime.cluster.nodes[0].spec,
                simd_enabled=res.runtime.simd_enabled,
                params=res.runtime.params,
            )
            _ensure_parent(args.profile)
            with open(args.profile, "w") as f:
                f.write(report + "\n")
            print(f"wrote per-line profile to {args.profile}")
        if args.netflow:
            _ensure_parent(args.netflow)
            path = res.runtime.netflow.dump(args.netflow)
            print(f"wrote netflow ledger "
                  f"({len(res.runtime.netflow)} collective(s)) to {path} "
                  f"(render with 'python -m repro netview {path}')")
        if args.metrics:
            from repro.obs.metrics import METRICS

            print()
            print(METRICS.render())
        if args.metrics_json:
            from repro.obs.metrics import METRICS

            _ensure_parent(args.metrics_json)
            with open(args.metrics_json, "w") as f:
                f.write(METRICS.snapshot_json())
            print(f"wrote metrics JSON to {args.metrics_json}")
    elif args.platform == "pgas":
        cluster = make_cluster(args.cluster, args.nodes)
        t = run_on_pgas(spec, cluster)
        print(f"PGAS time: {t * 1e3:.4f} ms (verified)")
    else:  # gpu
        gpu = GPUS[args.platform]
        t = run_on_gpu(spec, gpu)
        print(f"{gpu.name} time: {t * 1e3:.4f} ms (verified)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Per-line hotspot profile of one workload on the CuCC runtime.

    Exits 1 if the per-line totals fail to reproduce the aggregate
    OpCounters exactly — that invariant is what makes the table
    trustworthy, so the CLI checks it on every run.
    """
    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster
    from repro.interp.counters import OpCounters

    build = _find_workload(args.workload)
    spec = build(args.size, seed=args.seed)
    cluster = make_cluster(args.cluster, args.nodes, topology=args.topology)
    res = run_on_cucc(spec, cluster, profile=True)
    rt = res.runtime
    report = rt.profiler.report(
        spec=rt.cluster.nodes[0].spec,
        simd_enabled=rt.simd_enabled,
        params=rt.params,
    )
    print(f"workload {spec.name} ({args.size}) on {args.nodes} nodes, "
          f"time {res.time * 1e3:.4f} ms")
    print()
    print(report)
    if args.out:
        _ensure_parent(args.out)
        with open(args.out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote profile to {args.out}")
    aggregate = OpCounters()
    for c in res.record.partial_counters:
        aggregate.add(c)
    aggregate.add(res.record.callback_counters)
    match = rt.profiler.total(res.record.kernel_name).as_dict() == aggregate.as_dict()
    print()
    print(f"per-line totals match aggregate OpCounters: "
          f"{'yes' if match else 'NO'}")
    return 0 if match else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    """Autotune the Allgather zoo on a simulated cluster and persist the
    winners to a JSON tuning cache (hot-loaded by ``run --tuning``)."""
    from repro.bench.harness import format_table
    from repro.cluster import make_cluster
    from repro.tuning import TuningCache, autotune

    cache = TuningCache.load(args.cache)
    loaded = len(cache)
    cluster = make_cluster(args.cluster, args.nodes, topology=args.topology)
    payloads = tuple(int(p) for p in args.payload) if args.payload else None
    if args.netflow:
        _ensure_parent(args.netflow)
    autotune(cluster, payloads=payloads, cache=cache,
             flow_log=args.netflow)
    topo = cluster.comm.topology
    print(f"tuned {cluster.name} over topology {topo.describe()}")
    rows = []
    for key in sorted(cache.entries, key=lambda k: (k.rsplit("|b=", 1)[0],
                                                    int(k.rsplit("=", 1)[1]))):
        entry = cache.entries[key]
        costs = entry.get("costs", {})
        rows.append(
            [
                key,
                entry["algo"],
                "  ".join(f"{a}={v * 1e6:.2f}us" for a, v in costs.items()),
            ]
        )
    print(format_table(["bucket", "winner", "modeled costs"], rows))
    _ensure_parent(args.cache)
    path = cache.save(args.cache)
    fresh = len(cache) - loaded
    print(f"wrote {len(cache)} entries ({fresh} new) to {path}")
    if args.netflow:
        print(f"wrote per-trial flow ledgers to {args.netflow} (render "
              f"with 'python -m repro netview --explain-tune "
              f"{args.netflow}')")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Critical-path / imbalance report over an exported trace file,
    and/or a diff-friendly render of a metrics JSON snapshot."""
    import os

    if args.metrics_json:
        _render_metrics_json(args.metrics_json)
        if args.trace_file is None:
            return 0
        print()
    if args.trace_file is None:
        raise ReproError(
            "nothing to report: pass a trace file and/or --metrics-json"
        )

    from repro.obs.export import format_critical_report

    if not os.path.exists(args.trace_file):
        raise ReproError(f"no such trace file: {args.trace_file!r}")
    try:
        print(format_critical_report(args.trace_file))
        if args.drift:
            from repro.obs.drift import DEFAULT_DRIFT_BOUND, format_drift_report

            bound = (
                args.drift_bound
                if args.drift_bound is not None
                else DEFAULT_DRIFT_BOUND
            )
            print()
            print(format_drift_report(args.trace_file, bound=bound))
    except (ValueError, KeyError) as e:
        raise ReproError(
            f"cannot analyze {args.trace_file!r}: {e} "
            "(is it a trace written by 'repro run --trace'?)"
        ) from e
    return 0


def _render_metrics_json(path: str) -> None:
    """Validate + render a snapshot written by ``--metrics-json``."""
    import json

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise ReproError(f"cannot load {path!r}: {e}") from e
    if not isinstance(doc, dict) or "metrics_format_version" not in doc:
        raise ReproError(
            f"{path!r} is not a metrics snapshot (missing "
            "metrics_format_version; was it written by --metrics-json?)"
        )
    print(f"metrics snapshot {path} "
          f"(format v{doc['metrics_format_version']})")
    for name, series in sorted(doc.get("metrics", {}).items()):
        for label, value in sorted(series.items()):
            tag = f"{{{label}}}" if label else ""
            if isinstance(value, dict):
                body = (f"count={value['count']} sum={value['sum']:.6g} "
                        f"min={value['min']:.6g} max={value['max']:.6g}")
            else:
                body = f"{value:.6g}"
            print(f"{name}{tag} {body}")


def _cmd_netview(args: argparse.Namespace) -> int:
    """Render a netflow document: hottest links, traffic heatmap,
    contention ranking — or the tune-sweep explanation."""
    from repro.obs.netview import (
        format_explain_tune,
        format_netview,
        load_netflow,
    )

    doc = load_netflow(args.file)
    if args.explain_tune:
        print(format_explain_tune(doc))
    else:
        print(format_netview(doc, top=args.top))
    return 0


def _cmd_ckpt(args: argparse.Namespace) -> int:
    """Durable-checkpoint toolbox: inspect / validate / diff.

    ``validate`` and ``diff`` exit 1 when problems or differences exist,
    so CI can gate on them (the elastic-smoke job diffs the resumed
    run's final checkpoint against the uninterrupted baseline's).
    """
    import os

    from repro.ops import (
        diff_checkpoints,
        inspect_checkpoint,
        latest_checkpoint,
        validate_checkpoint,
    )

    def resolve(path: str) -> str:
        # a directory means "its latest checkpoint"
        if os.path.isdir(path):
            latest = latest_checkpoint(path)
            if latest is None:
                raise ReproError(f"no checkpoints in directory {path!r}")
            return str(latest)
        if not os.path.exists(path):
            raise ReproError(f"no such checkpoint: {path!r}")
        return path

    if args.ckpt_command == "inspect":
        print(inspect_checkpoint(resolve(args.file)))
        return 0
    if args.ckpt_command == "validate":
        path = resolve(args.file)
        problems = validate_checkpoint(path)
        if problems:
            for p in problems:
                print(p)
            print(f"{path}: INVALID ({len(problems)} problem(s))")
            return 1
        print(f"{path}: ok")
        return 0
    # diff
    diffs = diff_checkpoints(resolve(args.a), resolve(args.b))
    if diffs:
        for d in diffs:
            print(d)
        print(f"{len(diffs)} difference(s)")
        return 1
    print("checkpoints describe identical simulator state "
          "(volatile fields ignored)")
    return 0


def _cmd_specs(_args: argparse.Namespace) -> int:
    from repro.bench.figures import tab01_specs

    print(tab01_specs().render())
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    """Kernel sanitizer driver; exit status 0 means "all clean" (or, with
    --violations, "every seeded hazard was caught") so CI can gate on it."""
    from repro.sanitize import sanitize_kernel, sanitize_launch, sanitize_spec
    from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

    catalog = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}

    if args.violations:
        from repro.sanitize.violations import VIOLATIONS

        ok = True
        for name, case in VIOLATIONS.items():
            k = case.kernel()
            st = sanitize_kernel(k)
            dy = sanitize_launch(k, case.grid, case.block, case.make_args())
            st_ok = case.expect_static <= st.kinds() and (
                bool(case.expect_static) or st.clean
            )
            dy_ok = case.expect_dynamic <= dy.kinds()
            expected = sorted(
                x.value for x in case.expect_static | case.expect_dynamic
            )
            caught = st_ok and dy_ok
            print(f"{name}: {'caught' if caught else 'MISSED'} "
                  f"(expected: {', '.join(expected)})")
            for f in st.findings + dy.findings:
                print("  " + f.describe().replace("\n", "\n  "))
            if not caught:
                ok = False
        print()
        print("all seeded violations caught" if ok
              else "sanitizer MISSED seeded violations")
        return 0 if ok else 1

    if args.all:
        targets = sorted(catalog)
    elif args.target is None:
        raise ReproError(
            "sanitize needs a workload name, a .cu file, or --all"
        )
    elif args.target in catalog:
        targets = [args.target]
    else:
        targets = []

    clean = True
    if targets:
        for name in targets:
            spec = catalog[name](args.size)
            report = sanitize_spec(spec)
            print(report.describe())
            clean &= report.clean
    else:
        # a .cu file: static layer only (the dynamic layer needs concrete
        # launch geometry and buffers, which a bare file does not carry)
        source = _read_source(args.target)
        for kernel in parse_cuda(source):
            report = sanitize_kernel(kernel)
            print(report.describe())
            clean &= report.clean
    return 0 if clean else 1


def _cmd_jit(args: argparse.Namespace) -> int:
    """Differential gate driver: every workload kernel through both
    backends, bit-for-bit.  Exit status 0 means "no divergence" — every
    buffer byte, every OpCounters field, every phase time identical — so
    CI can gate on it."""
    from repro.bench.harness import format_table
    from repro.interp.jit import CompileCache, compile_stats, run_gate
    from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

    catalog = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}
    if args.workload:
        missing = [w for w in args.workload if w not in catalog]
        if missing:
            raise ReproError(
                f"unknown workload(s) {missing}; known: {sorted(catalog)}"
            )
        catalog = {w: catalog[w] for w in args.workload}

    cache = None
    if args.cache:
        cache = CompileCache.load(args.cache)
        print(f"loaded {cache!r}")
    before = dict(compile_stats)

    results = run_gate(args.size, seed=args.seed, workloads=catalog,
                       cache=cache)

    rows = []
    for r in results:
        rows.append([
            r.name,
            "yes" if r.mask_free else "no",
            r.compile_s * 1e3,
            r.interp_s * 1e3,
            r.jit_s * 1e3,
            r.speedup,
            "ok" if r.identical else "DIVERGED",
        ])
    print(format_table(
        ["kernel", "mask-free", "compile ms", "interp ms", "jit ms",
         "speedup", "differential"],
        rows,
    ))
    delta = {k: compile_stats[k] - before[k] for k in compile_stats}
    print(f"\ncompiles={delta['compiles']} memo_hits={delta['memo_hits']} "
          f"cache_hits={delta['cache_hits']} "
          f"cache_rejects={delta['cache_rejects']}")
    if cache is not None:
        cache.save()
        print(f"saved {cache!r}")

    bad = [r for r in results if not r.identical]
    for r in bad:
        print(f"\n{r.name} DIVERGED:")
        for m in r.mismatches:
            print(f"  {m}")
    if bad:
        print(f"\ndifferential gate FAILED: {len(bad)} kernel(s) diverged "
              "(each divergence is a JIT bug or a latent interpreter bug)")
        return 1
    print(f"differential gate passed: {len(results)} kernel(s) "
          "bit-identical under both backends")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Concurrent multi-job serving driver (see DESIGN.md §14).

    Synthesizes a seeded arrival trace from the workload mix, serves it
    on a simulated node pool (pipelined by default), prints the per-job
    table and throughput/latency accountant, and — with --check-serial
    — reruns the same jobs serially and exits 1 unless every job is
    bit-identical to its serial twin.
    """
    from repro.serve import (
        ServeConfig,
        CuCCServer,
        serve_serially,
        synth_requests,
        verify_against_serial,
    )

    if args.jobs is None and args.duration is None:
        args.jobs = 8
    requests = synth_requests(
        args.mix,
        rate=args.rate,
        jobs=args.jobs,
        duration_s=args.duration,
        nodes=tuple(args.job_nodes) if args.job_nodes else 2,
        size=args.size,
        seed=args.seed,
        faults=args.faults,
        fault_every=args.fault_every,
    )
    if not requests:
        raise ReproError(
            "the arrival process produced no jobs; raise --rate, --jobs "
            "or --duration"
        )
    config = ServeConfig(
        nodes=args.nodes,
        cluster=args.cluster,
        topology=args.topology,
        pipeline=not args.no_pipeline,
        backend=args.backend,
        tuning=args.tuning,
        jit_cache=args.jit_cache,
        trace=bool(args.trace),
        observatory=bool(args.observatory),
        slo=args.slo,
        postmortem_dir=args.postmortem,
        netflow=bool(args.netflow),
    )
    server = CuCCServer(config)
    if server.jit_cache is not None:
        from repro.interp.jit.executor import compile_stats

        compiles_before = compile_stats["compiles"]
    report = server.run(requests)
    report.seed = args.seed
    print(report.format_report())
    if server.jit_cache is not None:
        _ensure_parent(str(server.jit_cache.path))
        server.jit_cache.save()
        print(f"\ncompiles={compile_stats['compiles'] - compiles_before} "
              f"cache_hits={server.jit_cache.hits} "
              f"cache_rejects={server.jit_cache.rejected}; "
              f"saved {server.jit_cache!r}")
    if args.trace:
        from repro.obs.export import write_chrome_trace

        _ensure_parent(args.trace)
        path = write_chrome_trace(server.tracer, args.trace)
        print(f"wrote {len(server.tracer)} spans to {path} (job spans "
              f"carry job_id; ranks are physical pool node ids)")
    if args.netflow:
        _ensure_parent(args.netflow)
        path = report.netflow.dump(args.netflow)
        print(f"wrote netflow ledger ({len(report.netflow)} "
              f"collective(s), attributed by job_id) to {path} (render "
              f"with 'python -m repro netview {path}')")
    if args.metrics:
        from repro.obs.metrics import METRICS

        print()
        print(METRICS.render())
    if args.metrics_json:
        from repro.obs.metrics import METRICS

        _ensure_parent(args.metrics_json)
        with open(args.metrics_json, "w") as f:
            f.write(METRICS.snapshot_json())
        print(f"wrote metrics JSON to {args.metrics_json}")
    if args.check_serial:
        serial = serve_serially(requests, ServeConfig(
            nodes=args.nodes, cluster=args.cluster, topology=args.topology,
            backend=args.backend, tuning=args.tuning,
            jit_cache=args.jit_cache,
        ))
        mismatches = verify_against_serial(report, serial)
        if mismatches:
            print(f"\nserial-identity check FAILED "
                  f"({len(mismatches)} divergence(s)):")
            for m in mismatches:
                print(f"  {m}")
            return 1
        print(f"\nserial-identity check passed: all {len(requests)} job(s) "
              "bit-identical to serial execution in submission order")
    failed = [r for r in report.results if r.status != "ok"]
    for r in failed:
        print(f"note: job {r.request.job_id} failed in isolation: {r.error}")
    for path in server.postmortem_paths:
        print(f"wrote post-mortem {path} (render with "
              f"'python -m repro postmortem {path}')")
    if args.slo and report.slo_breached:
        # distinct status so scripts can tell an SLO hard breach (4)
        # from an error (1) and the checkpoint-halt drill (3)
        print("\nSLO BREACHED (exit status 4)")
        return 4
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Offline regression attribution between two exported runs."""
    from repro.obs.explain import explain, format_explain_report

    report = explain(args.a, args.b)
    print(format_explain_report(report))
    return 0


def _cmd_postmortem(args: argparse.Namespace) -> int:
    """Validate + pretty-print a flight-recorder post-mortem dump."""
    import json

    from repro.obs.observatory import format_postmortem, validate_postmortem

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise ReproError(f"cannot load {args.file!r}: {e}") from e
    problems = validate_postmortem(doc)
    if problems:
        for p in problems:
            print(f"SCHEMA: {p}", file=sys.stderr)
        print(f"{args.file}: INVALID post-mortem "
              f"({len(problems)} problem(s))", file=sys.stderr)
        return 1
    print(format_postmortem(doc))
    return 0


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path) as f:
            return f.read()
    except OSError as e:
        raise ReproError(f"cannot read {path!r}: {e}") from e


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CuCC: migrate CUDA kernels to simulated CPU clusters",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="analysis + generated CPU modules")
    p.add_argument("file", help="CUDA source file ('-' for stdin)")
    p.add_argument("--nodes", type=int, help="cluster size for the plan")
    p.add_argument("--grid", type=int, help="grid size (1-D)")
    p.add_argument("--block", type=int, help="block size (1-D)")
    p.add_argument("--set", action="append", metavar="NAME=VALUE",
                   help="scalar kernel argument (repeatable)")
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("analyze", help="verdict table for every kernel")
    p.add_argument("file", help="CUDA source file ('-' for stdin)")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("run", help="run an evaluation workload")
    p.add_argument("workload", help="e.g. FIR, KMeans, BinomialOption")
    p.add_argument("--platform", default="cucc",
                   choices=("cucc", "pgas", "a100", "v100"))
    p.add_argument("--cluster", default="simd-focused",
                   choices=("simd-focused", "thread-focused"))
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--size", default="small", choices=("small", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults (cucc only), e.g. "
             "'crash:rank=1,phase=allgather;transient:op=1'",
    )
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault plan's random choices")
    p.add_argument("--topology", default=None, metavar="KIND",
                   help="network topology: flat, fat-tree[:K], ring or "
                        "torus (default: flat alpha-beta fabric; "
                        "fat-tree:K forces K nodes per leaf switch)")
    p.add_argument("--tuning", metavar="PATH", default=None,
                   help="JSON tuning cache consulted by the 'auto' "
                        "Allgather (written by 'repro tune')")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record spans (cucc only) and export Chrome "
                        "trace-event JSON (Perfetto / chrome://tracing)")
    p.add_argument("--netflow", metavar="PATH", default=None,
                   help="record the per-link network flow ledger (cucc "
                        "only) and write its JSON document to PATH "
                        "(render with 'repro netview')")
    p.add_argument("--metrics", action="store_true",
                   help="print the metrics-registry snapshot after the run")
    p.add_argument("--metrics-json", metavar="PATH", default=None,
                   help="write the metrics-registry snapshot as "
                        "deterministic JSON (sorted names/labels) to PATH")
    p.add_argument("--profile", metavar="PATH", default=None,
                   help="attribute op counts per kernel source line (cucc "
                        "only) and write the hotspot report to PATH")
    p.add_argument("--drift", action="store_true",
                   help="record model-vs-executed phase-time drift (cucc "
                        "only); view with --metrics or "
                        "'repro report --drift <trace>'")
    p.add_argument("--checkpoint", metavar="DIR", default=None,
                   help="write durable checkpoints to DIR at phase "
                        "boundaries (cucc only); resume with --resume")
    from repro.ops.policy import CHECKPOINT_MODES

    p.add_argument("--checkpoint-mode", default="phase-boundary",
                   choices=CHECKPOINT_MODES,
                   help="when checkpoints are due (default: %(default)s)")
    p.add_argument("--checkpoint-interval", type=float, default=0.0,
                   metavar="SECONDS",
                   help="minimum simulated seconds between checkpoints "
                        "(with --checkpoint-mode interval)")
    p.add_argument("--checkpoint-keep", type=int, default=0, metavar="N",
                   help="keep only the N newest checkpoints (0 = all)")
    p.add_argument("--halt-after", type=int, default=None, metavar="N",
                   help="stop (exit status 3) after the Nth checkpoint is "
                        "written — simulates a mid-run kill for the "
                        "restart drill")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume from a checkpoint file or directory "
                        "written by --checkpoint (cucc only; cluster, "
                        "faults and feature flags come from the file, so "
                        "--nodes/--topology/--faults are rejected or "
                        "ignored)")
    p.add_argument("--drift-guard", type=float, default=None,
                   metavar="BOUND",
                   help="arm the drift breaker (cucc only): refuse "
                        "launches after repeated |relative model error| "
                        "above BOUND (implies --drift)")
    p.add_argument("--backend", default="auto",
                   choices=("interp", "jit", "auto"),
                   help="kernel-execution backend (cucc only): the "
                        "tree-walking interpreter, the compiled JIT fast "
                        "path, or auto-fallback (default); outputs and "
                        "simulated times are bit-identical either way")
    p.add_argument("--jit-cache", metavar="PATH", default=None,
                   help="persistent JIT compile cache consulted before "
                        "codegen and updated after (like the tuning "
                        "cache; integrity-checked)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "profile",
        help="per-source-line hotspot profile of a workload",
        description=(
            "Run a workload on the CuCC runtime with per-line profiling "
            "and print, for each kernel, its roofline placement, phase "
            "split, and a hotspot table attributing every counted op and "
            "byte to the kernel source line that executed it.  Exits 1 "
            "if the per-line totals do not reproduce the aggregate "
            "OpCounters exactly."
        ),
    )
    p.add_argument("workload", help="e.g. FIR, KMeans, BinomialOption")
    p.add_argument("--cluster", default="simd-focused",
                   choices=("simd-focused", "thread-focused"))
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--size", default="small", choices=("small", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--topology", default=None, metavar="KIND",
                   help="network topology: flat, fat-tree[:K], ring or "
                        "torus (default: flat alpha-beta fabric; "
                        "fat-tree:K forces K nodes per leaf switch)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="also write the report to a file")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "report",
        help="critical-path / imbalance report from an exported trace",
        description=(
            "Analyze a Chrome trace-event JSON file written by "
            "'repro run --trace': per launch, the straggler rank of the "
            "partial phase, its slack over the fastest rank, and the "
            "phase split along the critical path."
        ),
    )
    p.add_argument("trace_file", nargs="?", default=None,
                   help="trace JSON written by 'run --trace'")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   help="also (or instead) render a metrics snapshot "
                        "written by 'run/serve --metrics-json'")
    p.add_argument("--drift", action="store_true",
                   help="also print the model-drift table (needs a trace "
                        "recorded by 'run --trace ... --drift')")
    p.add_argument("--drift-bound", type=float, default=None,
                   help="|relative error| that flags a prediction "
                        "(default 0.25)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "netview",
        help="render a netflow ledger: hottest links, contention, heatmap",
        description=(
            "Read the JSON document written by 'run --netflow', "
            "'serve --netflow' or 'tune --netflow' and tell the network "
            "story: collective-time decomposition (alpha / serialization "
            "/ contention / local), the hottest physical links, the "
            "contention ranking naming the leaf-switch uplinks that "
            "caused queueing, the src->dst traffic heatmap, per-op and "
            "per-job traffic, and bisection/oversubscription accounting. "
            "With --explain-tune (on a tune document) it prints the "
            "measured-vs-modeled per-algorithm comparison explaining "
            "the autotuner's choices."
        ),
    )
    p.add_argument("file", help="netflow JSON written by --netflow")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="rows in the link/contention rankings "
                        "(default: %(default)s)")
    p.add_argument("--explain-tune", action="store_true",
                   help="render a tune-sweep document: per payload, each "
                        "algorithm's measured vs modeled cost, exact "
                        "decomposition and hottest links")
    p.set_defaults(fn=_cmd_netview)

    p = sub.add_parser(
        "tune",
        help="autotune the Allgather zoo, persist winners to JSON",
        description=(
            "Benchmark every Allgather algorithm (ring, recursive "
            "doubling, Bruck, hierarchical) through the real communicator "
            "per payload bucket, verify they gather identical bytes, and "
            "write the winners to a tuning cache that 'run --tuning' and "
            "the 'auto' algorithm resolution hot-load."
        ),
    )
    p.add_argument("--cluster", default="simd-focused",
                   choices=("simd-focused", "thread-focused"))
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--topology", default=None, metavar="KIND",
                   help="network topology: flat, fat-tree[:K], ring or "
                        "torus (default: flat alpha-beta fabric; "
                        "fat-tree:K forces K nodes per leaf switch)")
    p.add_argument("--payload", action="append", metavar="BYTES",
                   help="total Allgather bytes to tune (repeatable; "
                        "default: 1 KiB .. 4 MiB sweep)")
    p.add_argument("--cache", metavar="PATH", default=".repro-tuning.json",
                   help="tuning-cache file to merge into (default: "
                        "%(default)s)")
    p.add_argument("--netflow", metavar="PATH", default=None,
                   help="dump every trial's flow ledger (measured vs "
                        "modeled per algorithm) as a tune netflow "
                        "document; render with "
                        "'repro netview --explain-tune'")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser(
        "sanitize",
        help="static race detector + dynamic shadow checks",
        description=(
            "Run the kernel sanitizer.  For a bundled workload name, both "
            "layers run (static over the IR, dynamic over a real launch); "
            "for a .cu file, the static layer runs on every kernel. "
            "Exits 1 when findings exist, so CI can gate on it."
        ),
    )
    p.add_argument("target", nargs="?",
                   help="workload name (e.g. FIR) or CUDA source file")
    p.add_argument("--all", action="store_true",
                   help="sanitize every bundled workload")
    p.add_argument("--violations", action="store_true",
                   help="run the seeded-violation kernels; exit 0 only if "
                        "every hazard is caught (sanitizer self-check)")
    p.add_argument("--size", default="small", choices=("small", "paper"))
    p.set_defaults(fn=_cmd_sanitize)

    p = sub.add_parser(
        "ckpt",
        help="inspect / validate / diff durable checkpoints",
        description=(
            "Toolbox for the .rckp files written by 'repro run "
            "--checkpoint'.  Paths may be files or checkpoint "
            "directories (a directory means its latest checkpoint)."
        ),
    )
    ckpt_sub = p.add_subparsers(dest="ckpt_command", required=True)
    q = ckpt_sub.add_parser("inspect", help="human-readable summary")
    q.add_argument("file", help="checkpoint file or directory")
    q.set_defaults(fn=_cmd_ckpt)
    q = ckpt_sub.add_parser(
        "validate",
        help="integrity check; exit 1 when corrupt",
    )
    q.add_argument("file", help="checkpoint file or directory")
    q.set_defaults(fn=_cmd_ckpt)
    q = ckpt_sub.add_parser(
        "diff",
        help="compare simulator state; exit 1 when it differs",
    )
    q.add_argument("a", help="checkpoint file or directory")
    q.add_argument("b", help="checkpoint file or directory")
    q.set_defaults(fn=_cmd_ckpt)

    p = sub.add_parser(
        "jit",
        help="JIT differential gate: interp vs compiled, bit-for-bit",
        description=(
            "Compile every workload kernel with the JIT tier and run it "
            "through both backends — the tree-walking interpreter and "
            "the compiled closure — comparing output buffers, OpCounters "
            "and CuCC phase times bit-for-bit.  Exits 1 on any "
            "divergence, so CI can gate on it.  With --cache, the "
            "compile cache is consulted first and saved after (run "
            "twice to prove cache hits skip codegen)."
        ),
    )
    p.add_argument("workload", nargs="*",
                   help="workload name(s); default: the whole zoo")
    p.add_argument("--size", default="small", choices=("small", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache", metavar="PATH", default=None,
                   help="persistent compile-cache file to consult and "
                        "update (e.g. .repro-jit-cache.json)")
    p.set_defaults(fn=_cmd_jit)

    p = sub.add_parser(
        "serve",
        help="serve a queue of concurrent launches on one node pool",
        description=(
            "Synthesize a seeded arrival trace from a workload mix, feed "
            "it through the submission queue, and serve it on a simulated "
            "service pool: the admission scheduler leases disjoint node "
            "subsets FCFS, and (unless --no-pipeline) overlaps a queued "
            "job's phase-1 compute with the in-flight Allgather of the "
            "job owning the subset.  Prints the per-job table and the "
            "throughput/latency accountant; with --check-serial the same "
            "jobs are rerun one at a time and the command exits 1 unless "
            "every job is bit-identical to its serial twin."
        ),
    )
    p.add_argument("--mix", default="FIR:2,KMeans:1,Transpose:1",
                   metavar="SPEC",
                   help="workload mix as 'Name:weight,...' "
                        "(default: %(default)s)")
    p.add_argument("--rate", type=float, default=1e6,
                   help="mean arrival rate in jobs per *simulated* second "
                        "(Poisson process; default: %(default)s — phase "
                        "times are microseconds, so ~1e6/s builds backlog)")
    p.add_argument("--jobs", type=int, default=None,
                   help="number of arrivals to synthesize (default: 8 "
                        "unless --duration is given)")
    p.add_argument("--duration", type=float, default=None,
                   metavar="SECONDS",
                   help="synthesize arrivals for this many simulated "
                        "seconds instead of a fixed --jobs count")
    p.add_argument("--nodes", type=int, default=8,
                   help="service pool width (default: %(default)s)")
    p.add_argument("--job-nodes", action="append", type=int, metavar="N",
                   help="node width(s) jobs draw from, repeatable "
                        "(default: every job asks for 2)")
    p.add_argument("--size", default="small", choices=("small", "paper"))
    p.add_argument("--seed", type=int, default=0,
                   help="seed for arrivals, mix draws and per-job data")
    p.add_argument("--cluster", default="simd-focused",
                   choices=("simd-focused", "thread-focused"))
    p.add_argument("--topology", default=None, metavar="KIND",
                   help="per-job network topology: flat, fat-tree[:K], "
                        "ring or torus")
    p.add_argument("--no-pipeline", action="store_true",
                   help="disable Allgather-window pipelining (jobs still "
                        "run concurrently on disjoint subsets)")
    p.add_argument("--backend", default="auto",
                   choices=("interp", "jit", "auto"),
                   help="kernel-execution backend for every job")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="fault plan injected into selected jobs, e.g. "
                        "'crash:rank=1,phase=allgather'")
    p.add_argument("--fault-every", type=int, default=0, metavar="K",
                   help="inject --faults into every Kth job (0 = none)")
    p.add_argument("--tuning", metavar="PATH", default=None,
                   help="persistent tuning cache shared by all jobs")
    p.add_argument("--jit-cache", metavar="PATH", default=None,
                   help="persistent JIT compile cache shared by all jobs "
                        "(consulted first, saved after; warm caches serve "
                        "repeat jobs with zero recompiles)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="export a Chrome trace of the whole service run; "
                        "every span carries its job_id")
    p.add_argument("--netflow", metavar="PATH", default=None,
                   help="record the per-link flow ledger across all jobs "
                        "(traffic attributed by job_id, links by pool "
                        "node id) and write its JSON document to PATH")
    p.add_argument("--metrics", action="store_true",
                   help="print the metrics-registry snapshot after the run")
    p.add_argument("--metrics-json", metavar="PATH", default=None,
                   help="write the metrics-registry snapshot as "
                        "deterministic JSON (sorted names/labels) to PATH")
    p.add_argument("--check-serial", action="store_true",
                   help="rerun the same jobs serially and exit 1 unless "
                        "every job is bit-identical")
    p.add_argument("--observatory", action="store_true",
                   help="record the fleet ledger and print the fleet "
                        "report: occupancy/queue timelines, idle "
                        "attribution, per-job Gantt (DESIGN.md §15)")
    p.add_argument("--slo", metavar="SPEC", default=None,
                   help="declarative SLO policy, e.g. "
                        "'wait<=2e-6,latency<=2e-5,utilization>=0.5"
                        "[,window=8,budget=0.25,burn=2.0]'; warn/breach "
                        "events go to the report, metrics and trace, and "
                        "a hard breach exits 4 (implies --observatory)")
    p.add_argument("--postmortem", metavar="DIR", default=None,
                   help="dump a self-contained post-mortem JSON into DIR "
                        "for every terminally-failed job and every SLO "
                        "hard breach (implies --observatory); render "
                        "with 'repro postmortem FILE'")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "explain",
        help="attribute the latency delta between two exported runs",
        description=(
            "Offline regression attribution: load two runs — serve/launch "
            "trace JSONs (written by --trace) or BENCH_*.json pairs — "
            "align their spans, and rank where the time went: queue wait "
            "vs compute vs Allgather vs callback vs recovery vs stall.  "
            "Two runs of the same seed and config report a zero delta."
        ),
    )
    p.add_argument("a", help="baseline run (trace or BENCH json)")
    p.add_argument("b", help="candidate run (trace or BENCH json)")
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "postmortem",
        help="validate + pretty-print a flight-recorder dump",
        description=(
            "Render a post-mortem JSON written by 'repro serve "
            "--postmortem DIR': the job's request, fault story, lease "
            "history and last-N fleet events.  Exits 1 when the file "
            "fails schema validation."
        ),
    )
    p.add_argument("file", help="postmortem-<job>.json written by serve")
    p.set_defaults(fn=_cmd_postmortem)

    p = sub.add_parser("specs", help="print Table 1")
    p.set_defaults(fn=_cmd_specs)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CheckpointHalt as e:
        # the --halt-after restart drill: the checkpoint landed on disk
        # and the process "dies" — a distinct status so scripts can tell
        # the planned kill (3) from a real failure (1)
        print(f"halted: {e}")
        return 3
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

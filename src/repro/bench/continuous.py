"""Continuous benchmarking: schema-validated ``BENCH_<name>.json`` files.

``repro bench --json DIR`` runs a small, deterministic benchmark subset
through :mod:`repro.bench.harness` and writes one JSON document per
benchmark — geomean speedups, phase splits, network fractions and
profiler hotspot digests — that the repository tracks over time.  A CI
job regenerates them on every change and
``benchmarks/check_regression.py`` diffs the fresh numbers against the
committed baseline under ``benchmarks/baselines/`` with tolerances.

The document schema (version 1, validated by
:func:`validate_bench_json`; see DESIGN.md section 11):

.. code-block:: json

    {
      "schema_version": 1,
      "name": "scaling",
      "size": "small",
      "metrics": {"geomean_speedup_2to4": 1.93},
      "hotspots": [
        {"kernel": "kmeans_assign", "line": 12, "source": "...",
         "ops_share": 0.65}
      ],
      "details": {}
    }

``metrics`` is a flat map of metric name to finite number — the only
part the regression gate compares.  ``hotspots`` (optional) carries the
profiler's top-line digest; ``details`` (optional) holds auxiliary
context excluded from regression checking.  Everything is derived from
the simulated clocks and seeded workloads, so the files are
deterministic — no timestamps, no environment capture.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "validate_bench_json",
    "run_continuous",
    "BENCHMARKS",
]

BENCH_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9_]+$")
_SIZES = ("small", "paper")


def validate_bench_json(obj) -> list[str]:
    """Validate one BENCH document; returns a list of problems (empty =
    valid).  Pure structural check — no file IO, usable on parsed JSON."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"document must be an object, got {type(obj).__name__}"]
    if obj.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {obj.get('schema_version')!r}"
        )
    name = obj.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        problems.append(f"name must match {_NAME_RE.pattern}, got {name!r}")
    if obj.get("size") not in _SIZES:
        problems.append(f"size must be one of {_SIZES}, got {obj.get('size')!r}")
    metrics = obj.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics must be a non-empty object")
    else:
        for k, v in metrics.items():
            if not isinstance(k, str):
                problems.append(f"metric key {k!r} is not a string")
            if (
                isinstance(v, bool)
                or not isinstance(v, (int, float))
                or v != v
                or v in (float("inf"), float("-inf"))
            ):
                problems.append(f"metric {k!r} must be a finite number, got {v!r}")
    hotspots = obj.get("hotspots", [])
    if not isinstance(hotspots, list):
        problems.append("hotspots must be a list")
    else:
        for i, h in enumerate(hotspots):
            if not isinstance(h, dict):
                problems.append(f"hotspots[{i}] must be an object")
                continue
            if not isinstance(h.get("kernel"), str):
                problems.append(f"hotspots[{i}].kernel must be a string")
            share = h.get("ops_share")
            if isinstance(share, bool) or not isinstance(share, (int, float)):
                problems.append(f"hotspots[{i}].ops_share must be a number")
    if not isinstance(obj.get("details", {}), dict):
        problems.append("details must be an object")
    unknown = set(obj) - {
        "schema_version", "name", "size", "metrics", "hotspots", "details",
    }
    if unknown:
        problems.append(f"unknown top-level keys: {sorted(unknown)}")
    return problems


# ---------------------------------------------------------------------------
# benchmark builders — each returns one schema-valid document
# ---------------------------------------------------------------------------
def _run(workload: str, size: str, nodes: int, **kw):
    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster
    from repro.workloads import PERF_WORKLOADS

    spec = PERF_WORKLOADS[workload](size, seed=0)
    return run_on_cucc(spec, make_cluster("simd-focused", nodes), **kw)


def bench_scaling(size: str) -> dict:
    """Strong scaling 2 → 4 nodes on the SIMD-focused cluster, with the
    4-node runs profiled for a hotspot digest."""
    from repro.bench.harness import geomean
    from repro.obs.profiler import Profiler

    workloads = ("FIR", "KMeans", "Transpose")
    profiler = Profiler()
    metrics: dict[str, float] = {}
    speedups = []
    for w in workloads:
        t2 = _run(w, size, 2).time
        t4 = _run(w, size, 4, profile=profiler).time
        metrics[f"speedup_2to4.{w}"] = t2 / t4
        metrics[f"time_4n_s.{w}"] = t4
        speedups.append(t2 / t4)
    metrics["geomean_speedup_2to4"] = geomean(speedups)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "scaling",
        "size": size,
        "metrics": metrics,
        "hotspots": profiler.hotspot_digest(top=2),
    }


def bench_phase_split(size: str) -> dict:
    """Phase-time composition of 4-node runs (the paper's figure 10
    signal): fraction of each launch spent per phase, plus network
    fractions."""
    workloads = ("FIR", "KMeans", "Transpose")
    metrics: dict[str, float] = {}
    net_fracs = []
    for w in workloads:
        res = _run(w, size, 4)
        p = res.record.phases
        total = p.total
        for phase, v in (
            ("partial", p.partial),
            ("allgather", p.allgather),
            ("callback", p.callback),
        ):
            metrics[f"phase_frac.{w}.{phase}"] = v / total if total > 0 else 0.0
        metrics[f"network_fraction.{w}"] = res.network_fraction
        net_fracs.append(res.network_fraction)
    metrics["mean_network_fraction"] = sum(net_fracs) / len(net_fracs)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "phase_split",
        "size": size,
        "metrics": metrics,
    }


def bench_collectives(size: str) -> dict:
    """Collective behaviour: an 8-node fat-tree KMeans run with drift
    telemetry on, plus the algorithm zoo's modeled Allgather costs."""
    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster
    from repro.cluster.collectives import ALLGATHER_ALGOS
    from repro.tuning.select import algorithm_costs
    from repro.workloads import PERF_WORKLOADS

    spec = PERF_WORKLOADS["KMeans"](size, seed=0)
    cluster = make_cluster("simd-focused", 8, topology="fat-tree")
    res = run_on_cucc(spec, cluster, drift=True)
    metrics: dict[str, float] = {
        "kmeans_fat_tree_8n_time_s": res.time,
        "kmeans_fat_tree_8n_network_fraction": res.network_fraction,
    }
    topo = cluster.comm.topology
    for payload in (65536, 1048576):
        for algo, cost in algorithm_costs(topo, payload).items():
            metrics[f"allgather_cost_us.{algo}.{payload}"] = cost * 1e6
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "collectives",
        "size": size,
        "metrics": metrics,
        "details": {"algos": list(ALLGATHER_ALGOS)},
    }


def bench_fault_overhead(size: str) -> dict:
    """Fault recovery + elastic operations: modeled cost of crash
    recovery, and the (asserted-zero) overhead of durable checkpointing
    and the halt/resume drill."""
    import tempfile

    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster
    from repro.cluster.faults import FaultPlan, NodeCrash
    from repro.errors import CheckpointHalt
    from repro.ops import CheckpointPolicy, latest_checkpoint, resume_on_cucc
    from repro.workloads import fir

    nodes = 4
    spec = fir.build(size, seed=0)

    def crash_plan():
        return FaultPlan((NodeCrash(rank=3, phase="allgather"),), seed=1)

    ref = run_on_cucc(spec, make_cluster("simd-focused", nodes))
    crash = run_on_cucc(
        spec, make_cluster("simd-focused", nodes), fault_plan=crash_plan()
    )
    with tempfile.TemporaryDirectory() as td:
        meta = {"workload": spec.name, "size": size}
        ck = run_on_cucc(
            spec, make_cluster("simd-focused", nodes),
            fault_plan=crash_plan(),
            checkpoint=CheckpointPolicy(directory=td), app_meta=meta,
        )
        halt_dir = td + "/halt"
        try:
            run_on_cucc(
                spec, make_cluster("simd-focused", nodes),
                fault_plan=crash_plan(),
                checkpoint=CheckpointPolicy(
                    directory=halt_dir, halt_after=1
                ),
                app_meta=meta,
            )
            raise AssertionError("halt-after drill never halted")
        except CheckpointHalt:
            pass
        resumed = resume_on_cucc(spec, latest_checkpoint(halt_dir))
        checkpoints_written = ck.runtime.ops.written
    metrics = {
        "fault_free_time_s": ref.time,
        "crash_allgather_time_s": crash.time,
        "crash_recovery_ratio": crash.time / ref.time,
        "crash_recoveries": float(crash.record.recoveries),
        # contract metrics: must be exactly 0.0 (checked at tight atol
        # by check_regression.py, asserted here too)
        "checkpoint_time_delta_s": ck.time - crash.time,
        "resume_time_delta_s": resumed.time - crash.time,
        "checkpoints_written": float(checkpoints_written),
    }
    if metrics["checkpoint_time_delta_s"] != 0.0:
        raise AssertionError("checkpointing perturbed simulated time")
    if metrics["resume_time_delta_s"] != 0.0:
        raise AssertionError("resumed run diverged from uninterrupted run")
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "fault_overhead",
        "size": size,
        "metrics": metrics,
    }


def bench_jit(size: str) -> dict:
    """JIT fast-path backend: the identity contract as gated metrics.

    Divergence counts and the runtime-level simulated-time delta are
    asserted here and gated at exactly ``0.0`` by the regression check
    (the ``fault_overhead`` precedent); the mask-free kernel census
    pins the divergence analysis.  Wall-clock is nondeterministic, so
    only a conservative floor is gated (geomean kernel-execution
    speedup >= 2x -> 1.0) and the raw timings go to ``details``, which
    the gate ignores."""
    import time

    from repro.bench.harness import geomean, run_on_cucc
    from repro.cluster import make_cluster
    from repro.interp import LaunchConfig, run_grid
    from repro.interp.jit import run_gate
    from repro.workloads import PERF_WORKLOADS

    gate = run_gate(size, seed=0)
    divergences = float(sum(len(r.mismatches) for r in gate))
    if divergences:
        raise AssertionError(
            "differential gate diverged: "
            + "; ".join(m for r in gate for m in r.mismatches)
        )

    sim_deltas = []
    for w in ("NBody", "FIR"):
        spec = PERF_WORKLOADS[w](size, seed=0)
        ti = run_on_cucc(
            spec, make_cluster("simd-focused", 4), backend="interp"
        ).time
        tj = run_on_cucc(
            spec, make_cluster("simd-focused", 4), backend="jit"
        ).time
        sim_deltas.append(abs(ti - tj))
    sim_delta = max(sim_deltas)
    if sim_delta != 0.0:
        raise AssertionError("JIT perturbed the simulated clock")

    def wall(spec, backend, reps=3):
        config = LaunchConfig.make(spec.grid, spec.block)
        best = float("inf")
        for rep in range(reps + 1):  # first rep warms compile + caches
            args = {k: v.copy() for k, v in spec.arrays.items()}
            args.update(spec.scalars)
            t0 = time.perf_counter()
            run_grid(spec.kernel, config, args, backend=backend)
            if rep:
                best = min(best, time.perf_counter() - t0)
        return best

    speedups: dict[str, float] = {}
    times: dict[str, dict[str, float]] = {}
    for w in ("NBody", "FIR", "KMeans", "EP"):
        spec = PERF_WORKLOADS[w](size, seed=0)
        wi, wj = wall(spec, "interp"), wall(spec, "jit")
        speedups[w] = wi / wj
        times[w] = {"interp_s": wi, "jit_s": wj}
    gm = geomean(list(speedups.values()))
    if gm < 2.0:
        raise AssertionError(
            f"JIT kernel-execution speedup floor broken: geomean {gm:.2f}x"
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "jit",
        "size": size,
        "metrics": {
            # contract metrics: exact zeros, tight-atol gated
            "counter_or_buffer_divergences": divergences,
            "sim_time_max_abs_delta_s": sim_delta,
            "mask_free_kernels": float(sum(1 for r in gate if r.mask_free)),
            "gated_kernels": float(len(gate)),
            # asserted floor, reported as a deterministic boolean metric
            "wall_speedup_ge_2x": 1.0,
        },
        "details": {
            "note": "wall times are host-dependent; excluded from the gate",
            "geomean_wall_speedup": gm,
            "wall_speedup": speedups,
            "wall_time": times,
        },
    }


def bench_serving(size: str) -> dict:
    """Concurrent serving: throughput/latency against the serial reference.

    One fixed backlog (12 uniform 2-node jobs, Poisson arrivals at 2e6
    jobs per simulated second, seed 0) is served three ways on an
    8-node pool: serially (the reference), concurrently with pipelining
    off, and pipelined.  All statistics come from simulated clocks, so
    every gated metric is deterministic.  Contract metrics asserted
    here and gated at exactly ``0.0``/``1.0``: per-job bit-identity to
    serial in both modes, zero recompiles on a warm shared compile
    cache, and the paper's serving claim — pipelining raises
    launches/sec over serial *without* raising tail latency."""
    from repro.interp.jit import CompileCache
    from repro.interp.jit.executor import clear_memo, compile_stats
    from repro.serve import (
        ServeConfig,
        serve_requests,
        serve_serially,
        synth_requests,
        verify_against_serial,
    )

    requests = synth_requests(
        "FIR:2,KMeans:1,Transpose:1", rate=2e6, jobs=12, nodes=2,
        size=size, seed=0,
    )
    serial = serve_serially(requests, ServeConfig(nodes=8))
    concurrent = serve_requests(
        requests, ServeConfig(nodes=8, pipeline=False))
    pipelined = serve_requests(requests, ServeConfig(nodes=8, pipeline=True))

    mismatches = verify_against_serial(concurrent, serial)
    mismatches += verify_against_serial(pipelined, serial)
    if mismatches:
        raise AssertionError(
            "concurrent serving diverged from serial: "
            + "; ".join(mismatches)
        )

    ss, cs, ps = serial.stats, concurrent.stats, pipelined.stats
    if not (ps.launches_per_sec > ss.launches_per_sec
            and ps.latency_p99_s <= ss.latency_p99_s):
        raise AssertionError(
            "pipelining must beat serial throughput at no-worse p99: "
            f"{ps.launches_per_sec:.0f} vs {ss.launches_per_sec:.0f} "
            f"launches/sec, p99 {ps.latency_p99_s:.3e} vs "
            f"{ss.latency_p99_s:.3e} s"
        )

    # warm shared compile cache: a fresh server on the saved cache must
    # serve the same mix with zero recompiles (memo cleared so hits can
    # only come from the shared cache)
    cache = CompileCache()
    clear_memo()
    serve_requests(requests, ServeConfig(nodes=8, backend="jit",
                                         jit_cache=cache))
    clear_memo()
    before = compile_stats["compiles"]
    serve_requests(requests, ServeConfig(nodes=8, backend="jit",
                                         jit_cache=cache))
    warm_recompiles = float(compile_stats["compiles"] - before)
    if warm_recompiles:
        raise AssertionError(
            f"warm shared compile cache still recompiled "
            f"{warm_recompiles:.0f} kernel(s)"
        )

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "serving",
        "size": size,
        "metrics": {
            # contract metrics: asserted above, tight-atol gated
            "identity_divergences": 0.0,
            "warm_cache_recompiles": warm_recompiles,
            "pipelined_beats_serial_at_p99": 1.0,
            # simulated-clock statistics (deterministic per seed)
            "jobs": float(ss.jobs),
            "overlapped_jobs": float(ps.overlapped),
            "serial_launches_per_sec": ss.launches_per_sec,
            "concurrent_launches_per_sec": cs.launches_per_sec,
            "pipelined_launches_per_sec": ps.launches_per_sec,
            "serial_latency_p99_s": ss.latency_p99_s,
            "concurrent_latency_p99_s": cs.latency_p99_s,
            "pipelined_latency_p99_s": ps.latency_p99_s,
            "pipelined_latency_p50_s": ps.latency_p50_s,
            "pipelined_utilization": ps.utilization,
        },
        "details": {
            "mix": "FIR:2,KMeans:1,Transpose:1",
            "arrival_rate_per_s": 2e6,
            "pool_nodes": 8,
            "job_nodes": 2,
            "note": "all statistics are simulated-clock; see DESIGN.md "
                    "section 14 for the overlap-legality rules",
        },
    }


def bench_network(size: str) -> dict:
    """Per-topology collective-time decomposition from the flow ledger.

    The continuous twin of Figure 9's network-overhead story: one
    communication-dominated workload (Transpose) runs on every topology
    shape with the netflow ledger attached, and the gated metrics are
    the ledger's exact alpha / serialization / contention split of
    collective time plus its two correctness contracts — the
    decomposition reconstructs every span bit-exactly, and the ledger's
    per-pair byte sums equal the communicator's link-byte metrics."""
    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster, make_topology
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads import PERF_WORKLOADS

    nodes = 8
    metrics: dict[str, float] = {}
    details: dict[str, dict] = {}
    exact = conserved = True
    for kind, tag in (("flat", "flat"), ("fat-tree:2", "fat_tree"),
                      ("ring", "ring"), ("torus", "torus")):
        spec = PERF_WORKLOADS["Transpose"](size, seed=0)
        cluster = make_cluster(
            "simd-focused", nodes, topology=make_topology(kind, nodes)
        )
        # a private registry so conservation is checked against exactly
        # this run's traffic, whatever else fed the global registry
        registry = MetricsRegistry()
        cluster.comm.metrics = registry
        res = run_on_cucc(spec, cluster, netflow=True)
        ledger = res.runtime.netflow
        colls = ledger.collectives()
        exact &= all(c.reconstructed_s == c.span_s for c in colls)
        pairs = ledger.pair_bytes()
        conserved &= all(
            registry.value("comm.link_bytes", src=src, dst=dst) == nbytes
            for (src, dst), nbytes in pairs.items()
        ) and sum(pairs.values()) == registry.total("comm.link_bytes")
        span = sum(c.span_s for c in colls)
        for comp in ("alpha_s", "serial_s", "contention_s"):
            frac = (sum(getattr(c, comp) for c in colls) / span
                    if span > 0 else 0.0)
            metrics[f"{tag}_{comp[:-2]}_fraction"] = frac
        metrics[f"{tag}_collective_s"] = span
        doc = ledger.to_doc()
        details[tag] = {
            "topology": cluster.comm.topology.signature,
            "collectives": len(colls),
            "bytes": doc["totals"]["bytes"],
            "bisection": doc["bisection"],
        }
    if not conserved:
        raise AssertionError("netflow ledger and comm.link_bytes metrics "
                             "disagree on per-pair bytes")
    # Transpose's large payload autotunes to ring everywhere, which is
    # contention-free even on the fat-tree (one crossing sender per
    # leaf switch per round) — so also pin the contended regime: a
    # small-payload KMeans gather picks recursive doubling, whose
    # same-switch crossing senders queue on the shared uplinks
    spec = PERF_WORKLOADS["KMeans"](size, seed=0)
    cluster = make_cluster(
        "simd-focused", nodes, topology=make_topology("fat-tree:2", nodes)
    )
    cluster.comm.metrics = MetricsRegistry()
    res = run_on_cucc(spec, cluster, netflow=True)
    colls = res.runtime.netflow.collectives()
    exact &= all(c.reconstructed_s == c.span_s for c in colls)
    span = sum(c.span_s for c in colls)
    contended = (sum(c.contention_s for c in colls) / span
                 if span > 0 else 0.0)
    if contended <= 0.0:
        raise AssertionError(
            "small-payload gather on the oversubscribed fat-tree should "
            "show uplink contention"
        )
    metrics["fat_tree_small_payload_contention_fraction"] = contended
    if not exact:
        raise AssertionError("netflow decomposition failed to reconstruct "
                             "a collective span bit-exactly")
    metrics["decomposition_exact"] = 1.0
    metrics["bytes_conserved"] = 1.0
    # the fat-tree pays for its oversubscription in queueing seconds;
    # the full-bisection flat network must not
    assert metrics["flat_contention_fraction"] == 0.0
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "network",
        "size": size,
        "metrics": metrics,
        "details": details,
    }


def bench_obs_overhead(size: str) -> dict:
    """Serving-observatory overhead: the always-on promise as metrics.

    Serves one fixed backlog twice — plain, and with the fleet ledger
    plus a deliberately-breaching SLO monitor (the heaviest hook path,
    including an in-memory flight-recorder dump) — and gates the
    tentpole's contract: the simulated makespan moves by exactly
    ``0.0``, per-job identities are bit-equal, and the hooks add < 2%
    work, measured as deterministic function-call counts
    (``sys.setprofile``), not wall-clock.  Raw call counts are
    interpreter-version-dependent, so they live in ungated
    ``details``; the gated metrics are exact contract booleans plus
    the deterministic ledger/SLO event counts."""
    import sys as _sys

    from repro.serve import ServeConfig, serve_requests, synth_requests

    budget = 0.02
    requests = synth_requests(
        "FIR:2,KMeans:1,Transpose:1", rate=2e6, jobs=8, nodes=2,
        size=size, seed=0,
    )
    observed = ServeConfig(nodes=6, observatory=True,
                           slo="wait<=1e-9,latency<=1e-9")

    def run(config):
        return serve_requests(requests, config)

    def count_calls(fn) -> int:
        n = 0

        def prof(frame, event, arg):
            nonlocal n
            if event in ("call", "c_call"):
                n += 1

        _sys.setprofile(prof)
        try:
            fn()
        finally:
            _sys.setprofile(None)
        return n

    plain = run(ServeConfig(nodes=6))
    full = run(observed)
    sim_delta = full.stats.makespan_s - plain.stats.makespan_s
    if sim_delta != 0.0:
        raise AssertionError(
            f"observatory perturbed the simulated clock by {sim_delta!r} s"
        )
    divergences = float(sum(
        a.identity() != b.identity()
        for a, b in zip(plain.results, full.results)
    ))
    if divergences:
        raise AssertionError("observatory changed per-job outcomes")
    # both paths warmed above; the counts isolate hook cost
    calls_off = count_calls(lambda: run(ServeConfig(nodes=6)))
    calls_on = count_calls(lambda: run(observed))
    overhead = calls_on / calls_off - 1.0
    if overhead > budget:
        raise AssertionError(
            f"observatory hooks add {overhead * 100:.2f}% more calls "
            f"({calls_on} vs {calls_off}; budget {budget * 100:.0f}%)"
        )
    # -- netflow leg: same contract for the flow ledger, on the
    # topology where it does the most work (an oversubscribed fat-tree)
    ft_plain_cfg = ServeConfig(nodes=6, topology="fat-tree:2")
    ft_flow_cfg = ServeConfig(nodes=6, topology="fat-tree:2", netflow=True)
    ft_plain = run(ft_plain_cfg)
    ft_flow = run(ft_flow_cfg)
    nf_sim_delta = ft_flow.stats.makespan_s - ft_plain.stats.makespan_s
    if nf_sim_delta != 0.0:
        raise AssertionError(
            f"netflow perturbed the simulated clock by {nf_sim_delta!r} s"
        )
    nf_divergences = float(sum(
        a.identity() != b.identity()
        for a, b in zip(ft_plain.results, ft_flow.results)
    ))
    if nf_divergences:
        raise AssertionError("netflow changed per-job outcomes")
    nf_calls_off = count_calls(
        lambda: run(ServeConfig(nodes=6, topology="fat-tree:2"))
    )
    nf_calls_on = count_calls(
        lambda: run(ServeConfig(nodes=6, topology="fat-tree:2",
                                netflow=True))
    )
    nf_overhead = nf_calls_on / nf_calls_off - 1.0
    if nf_overhead > budget:
        raise AssertionError(
            f"netflow recording adds {nf_overhead * 100:.2f}% more calls "
            f"({nf_calls_on} vs {nf_calls_off}; budget {budget * 100:.0f}%)"
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": "obs_overhead",
        "size": size,
        "metrics": {
            # contract metrics: asserted above, tight-atol gated
            "observatory_sim_time_delta_s": sim_delta,
            "observatory_identity_divergences": divergences,
            "hook_call_overhead_within_budget": 1.0,
            # deterministic observability volume per seed
            "ledger_events": float(len(full.fleet.events)),
            "slo_events": float(len(full.slo_events)),
            "postmortem_dumps": float(len(full.postmortems)),
            # the netflow row: same contract for the flow ledger
            "netflow_sim_time_delta_s": nf_sim_delta,
            "netflow_identity_divergences": nf_divergences,
            "netflow_call_overhead_within_budget": 1.0,
            "netflow_collectives": float(len(ft_flow.netflow)),
        },
        "details": {
            "call_overhead_fraction": overhead,
            "calls_plain": calls_off,
            "calls_observed": calls_on,
            "netflow_call_overhead_fraction": nf_overhead,
            "netflow_calls_plain": nf_calls_off,
            "netflow_calls_on": nf_calls_on,
            "budget_fraction": budget,
            "note": "call counts depend on the interpreter version; "
                    "only the within-budget booleans are gated",
        },
    }


#: benchmark name -> builder(size) (the ``--json`` runner's registry)
BENCHMARKS = {
    "scaling": bench_scaling,
    "phase_split": bench_phase_split,
    "collectives": bench_collectives,
    "fault_overhead": bench_fault_overhead,
    "jit": bench_jit,
    "serving": bench_serving,
    "obs_overhead": bench_obs_overhead,
    "network": bench_network,
}


def run_continuous(
    out_dir, size: str = "small", names: list[str] | None = None
) -> list[Path]:
    """Run the continuous-benchmark subset, write ``BENCH_<name>.json``
    files into ``out_dir`` (created if missing), return the paths.

    Every document is self-validated against the schema before it is
    written — an invalid document is a bug, not an artifact.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    selected = names or list(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; known: {sorted(BENCHMARKS)}"
        )
    paths = []
    for name in selected:
        doc = BENCHMARKS[name](size)
        problems = validate_bench_json(doc)
        if problems:
            raise AssertionError(
                f"benchmark {name!r} produced an invalid document: "
                + "; ".join(problems)
            )
        path = out / f"BENCH_{name}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths

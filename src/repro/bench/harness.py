"""Experiment harness: run workloads on every platform, collect times.

Each ``run_on_*`` helper allocates the workload's buffers on the target
platform, uploads inputs, launches the kernel, verifies every declared
output against the NumPy reference (correctness is checked on *every*
experiment run, including benchmarks), and returns the simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu_exec import GPUDevice
from repro.baselines.pgas import PGASRuntime
from repro.cluster.cluster import Cluster, make_cluster
from repro.hw.gpu import GPUSpec
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams
from repro.runtime.cucc import CuCCRuntime
from repro.runtime.program import LaunchRecord
from repro.workloads.base import WorkloadSpec

__all__ = [
    "CuCCResult",
    "run_on_cucc",
    "run_on_gpu",
    "run_on_pgas",
    "format_table",
    "geomean",
]


@dataclass
class CuCCResult:
    """Outcome of one CuCC cluster run."""

    time: float
    record: LaunchRecord
    runtime: CuCCRuntime

    @property
    def network_fraction(self) -> float:
        return self.record.phases.network_fraction


def run_on_cucc(
    spec: WorkloadSpec,
    cluster: Cluster,
    params: ModelParams = DEFAULT_PARAMS,
    simd_enabled: bool = True,
    verify: bool = True,
    faithful_replication: bool = False,
    fault_plan=None,
    recovery=None,
    trace=False,
    profile=False,
    drift=False,
    checkpoint=None,
    drift_guard=None,
    app_meta=None,
    backend: str = "auto",
    jit_cache=None,
    netflow=False,
) -> CuCCResult:
    """Run a workload through the three-phase CuCC runtime.

    ``fault_plan``/``recovery`` (see :mod:`repro.cluster.faults` and
    :class:`~repro.runtime.cucc.RecoveryPolicy`) execute the launch under
    fault injection; verification then checks the *recovered* output.
    ``trace`` (a bool or a :class:`~repro.obs.tracer.Tracer`) forwards to
    the runtime; the spans are reachable via ``result.runtime.tracer``.
    ``profile`` (a bool or a :class:`~repro.obs.profiler.Profiler`) and
    ``drift`` likewise forward; the per-line profile is reachable via
    ``result.runtime.profiler``.  ``checkpoint`` (a
    :class:`~repro.ops.policy.CheckpointPolicy`) and ``drift_guard`` (a
    :class:`~repro.ops.guard.DriftGuardPolicy`) arm the elastic
    operations layer; ``app_meta`` is stored verbatim in every durable
    checkpoint (the workload identity the resume side validates).
    ``backend``/``jit_cache`` select the kernel-execution backend (the
    tree-walking interpreter, the JIT fast path, or auto-fallback) —
    modeled times and buffers are bit-identical either way.
    ``netflow`` (a bool or a :class:`~repro.obs.netflow.NetFlowLedger`)
    attaches the per-link flow ledger, reachable via
    ``result.runtime.netflow``.
    """
    rt = CuCCRuntime(
        cluster,
        params=params,
        simd_enabled=simd_enabled,
        faithful_replication=faithful_replication,
        fault_plan=fault_plan,
        recovery=recovery,
        trace=trace,
        profile=profile,
        drift=drift,
        checkpoint=checkpoint,
        drift_guard=drift_guard,
        backend=backend,
        jit_cache=jit_cache,
        netflow=netflow,
    )
    if app_meta and rt.ops is not None:
        rt.ops.app.update(app_meta)
    for name, arr in spec.arrays.items():
        rt.memory.alloc(name, arr.size, arr.dtype)
        rt.memory.memcpy_h2d(name, arr)
    compiled = rt.compile(spec.kernel)
    rec = rt.launch(compiled, spec.grid, spec.block, spec.args())
    if verify:
        results = {
            o: rt.memory.memcpy_d2h(o, check_consistency=True)
            for o in spec.outputs
        }
        spec.verify(results)
    return CuCCResult(time=rec.time, record=rec, runtime=rt)


def run_on_gpu(
    spec: WorkloadSpec,
    gpu: GPUSpec,
    params: ModelParams = DEFAULT_PARAMS,
    verify: bool = True,
) -> float:
    """Run the original GPU program on the GPU model; returns time."""
    dev = GPUDevice(gpu, params=params)
    for name, arr in spec.arrays.items():
        dev.alloc(name, arr.size, arr.dtype)
        dev.memcpy_h2d(name, arr)
    rec = dev.launch(spec.kernel, spec.grid, spec.block, spec.args())
    if verify:
        spec.verify({o: dev.memcpy_d2h(o) for o in spec.outputs})
    return rec.time


def run_on_pgas(
    spec: WorkloadSpec,
    cluster: Cluster,
    params: ModelParams = DEFAULT_PARAMS,
    verify: bool = True,
) -> float:
    """Run the PGAS migration of the workload; returns time."""
    rt = PGASRuntime(cluster, params=params)
    for name, arr in spec.arrays.items():
        rt.alloc(name, arr.size, arr.dtype)
        rt.memcpy_h2d(name, arr)
    rec = rt.launch(spec.kernel, spec.grid, spec.block, spec.args())
    if verify:
        spec.verify({o: rt.memcpy_d2h(o) for o in spec.outputs})
    return rec.time


def geomean(values) -> float:
    import math

    vals = [v for v in values]
    if not vals:
        raise ValueError(
            "geomean of an empty sequence is undefined — no values were "
            "collected (did every run get filtered out?)"
        )
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned plain-text table (the harness's report format)."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

"""Experiment harness: profiling, analytical sweep models, report tables."""

from repro.bench.harness import (
    CuCCResult,
    format_table,
    geomean,
    run_on_cucc,
    run_on_gpu,
    run_on_pgas,
)
from repro.bench.profile import (
    WorkloadProfile,
    get_profile,
    model_cucc_time,
    model_gpu_time,
    model_pgas_time,
    model_single_cpu_time,
    profile_workload,
)

__all__ = [
    "CuCCResult", "run_on_cucc", "run_on_gpu", "run_on_pgas",
    "format_table", "geomean",
    "WorkloadProfile", "profile_workload", "get_profile",
    "model_cucc_time", "model_gpu_time", "model_pgas_time",
    "model_single_cpu_time",
]

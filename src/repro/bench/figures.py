"""Per-figure experiment drivers: regenerate every table and figure.

Each ``figNN_*`` function reproduces one table/figure of the paper's
evaluation and returns a :class:`FigureResult` — a title, the table
rows the paper plots, and free-form notes (including the paper's
headline numbers next to ours).  ``benchmarks/bench_figNN_*.py`` wraps
each driver for pytest-benchmark; ``python -m repro.bench`` prints all
of them.

All drivers share the cached workload profiles
(:func:`repro.bench.profile.get_profile`), so the expensive instrumented
executions happen once per process regardless of how many figures run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import analyze_kernel
from repro.bench.harness import format_table, geomean
from repro.bench.profile import (
    WorkloadProfile,
    get_profile,
    make_plan,
    model_cucc_time,
    model_gpu_time,
    model_pgas_time,
    model_single_cpu_time,
)
from repro.cluster import Cluster, collectives as coll
from repro.hw import (
    A100,
    INFINIBAND_100G,
    SIMD_FOCUSED_CLUSTER,
    SIMD_FOCUSED_NODE,
    THREAD_FOCUSED_CLUSTER,
    THREAD_FOCUSED_NODE,
    V100,
    spec_table_rows,
)
from repro.workloads import PERF_WORKLOADS

__all__ = [
    "FigureResult",
    "fig01_waiting_times",
    "tab01_specs",
    "fig03_allgather",
    "fig03_allgather_zoo",
    "fig04_pgas_scaling",
    "fig06_pipeline",
    "fig07_coverage",
    "fig08_scalability",
    "fig09_network_overhead",
    "fig10_cucc_vs_pgas",
    "fig11_cpu_vs_gpu",
    "fig12_throughput",
    "fig13_simd_vs_thread",
    "ablation_regrid",
    "extra_energy",
    "ALL_FIGURES",
]

SIMD_NODE_COUNTS = (1, 2, 4, 8, 16, 32)
THREAD_NODE_COUNTS = (1, 2, 4)
NET = INFINIBAND_100G
WORKLOADS = tuple(PERF_WORKLOADS)


@dataclass
class FigureResult:
    """One regenerated table/figure, ready to print or assert against."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)
    #: free-form numeric results for programmatic assertions
    data: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"== {self.figure}: {self.title} =="]
        out.append(format_table(self.headers, self.rows))
        for n in self.notes:
            out.append(f"  note: {n}")
        return "\n".join(out)


def _simd_times(prof: WorkloadProfile, simd_enabled: bool = True) -> dict[int, float]:
    times = {
        1: model_single_cpu_time(prof, SIMD_FOCUSED_NODE, simd_enabled=simd_enabled)
    }
    for n in SIMD_NODE_COUNTS[1:]:
        times[n] = model_cucc_time(
            prof, SIMD_FOCUSED_NODE, NET, n, simd_enabled=simd_enabled
        ).total
    return times


def _thread_times(
    prof: WorkloadProfile, node=THREAD_FOCUSED_NODE, simd_enabled: bool = True
) -> dict[int, float]:
    times = {1: model_single_cpu_time(prof, node, simd_enabled=simd_enabled)}
    for n in THREAD_NODE_COUNTS[1:]:
        times[n] = model_cucc_time(
            prof, node, NET, n, simd_enabled=simd_enabled
        ).total
    return times


# ---------------------------------------------------------------------------
def fig01_waiting_times(seed: int = 0) -> FigureResult:
    """Figure 1: waiting times for CPU and GPU partitions (Slurm)."""
    from repro.slurm import simulate_campus_cluster

    stats = simulate_campus_cluster(seed=seed)
    rows = [list(s.row().values()) for s in stats]
    cpu = [s.mean_s for s in stats if s.partition.startswith("cpu")]
    gpu = [s.mean_s for s in stats if s.partition.startswith("gpu")]
    ratio = (np.mean(gpu) + 1) / (np.mean(cpu) + 1)
    return FigureResult(
        figure="Figure 1",
        title="waiting times for CPU and GPU partitions (1 simulated week)",
        headers=list(stats[0].row().keys()),
        rows=rows,
        notes=[
            f"mean GPU wait / mean CPU wait = {ratio:.0f}x "
            "(paper: GPU partitions wait significantly longer while CPUs idle)",
        ],
        data={"cpu_mean_wait_s": float(np.mean(cpu)),
              "gpu_mean_wait_s": float(np.mean(gpu))},
    )


def tab01_specs() -> FigureResult:
    """Table 1: cluster specifications (from the model database)."""
    rows = spec_table_rows()
    return FigureResult(
        figure="Table 1",
        title="cluster specifications (database used by every model)",
        headers=list(rows[0].keys()),
        rows=[list(r.values()) for r in rows],
        notes=[
            "derived TFLOP/s match the paper: 4.15 / 8.19 / 19.5 / 15.7",
        ],
        data={"rows": rows},
    )


def fig03_allgather(payload_mb: float = 256.0) -> FigureResult:
    """Section 2.3: Allgather variant comparison (cost model).

    Balanced-in-place vs out-of-place (adds local copy + 2x memory) vs
    imbalanced (one node holds 3/8 of the data) across cluster sizes.
    """
    payload = payload_mb * 1e6
    copy_GBs = SIMD_FOCUSED_NODE.mem_bw_gbs * 0.5  # memcpy: read + write
    headers = ["Nodes", "balanced in-place (ms)", "out-of-place (ms)",
               "imbalanced (ms)"]
    rows = []
    data = {}
    for n in (2, 4, 8, 16, 32):
        t_in = coll.allgather_inplace_cost(NET, n, payload)
        t_out = coll.allgather_outofplace_cost(NET, n, payload, copy_GBs)
        shares = [payload / n] * n
        shares[0] = payload * 3 / 8
        rest = (payload - shares[0]) / (n - 1)
        shares[1:] = [rest] * (n - 1)
        t_imb = coll.allgather_imbalanced_cost(NET, shares)
        rows.append([n, t_in * 1e3, t_out * 1e3, t_imb * 1e3])
        data[n] = (t_in, t_out, t_imb)
    return FigureResult(
        figure="Figure 3 / Section 2.3",
        title=f"Allgather variants, {payload_mb:.0f} MB total payload",
        headers=headers,
        rows=rows,
        notes=["balanced-in-place is fastest at every size (basis of CuCC's "
               "phase 2); out-of-place also doubles memory footprint"],
        data=data,
    )


def fig03_allgather_zoo(
    num_nodes: int = 32, topology_kind: str = "fat-tree"
) -> FigureResult:
    """Allgather algorithm-zoo crossover table (the collective engine).

    Prices every zoo algorithm across payload sizes on the paper's
    32-node fat-tree partition (16-port leaf switches over a shared
    spine) and marks the per-payload winner — the table the ``"auto"``
    selector effectively encodes.  A small real-communicator autotune
    run doubles as the functional gate: every algorithm must gather
    byte-identical buffers or this driver raises.
    """
    from repro.cluster import make_topology
    from repro.tuning import TuningCache, autotune
    from repro.tuning.select import algorithm_costs

    topo = make_topology(topology_kind, num_nodes, network=NET)
    headers = ["Payload"] + [a.replace("_", " ") + " (ms)"
                             for a in coll.ALLGATHER_ALGOS] + ["winner"]
    rows = []
    data: dict[str, object] = {"topology": topo.describe(), "winners": {}}
    for payload in (1e3, 32e3, 1e6, 32e6, 256e6):
        costs = algorithm_costs(topo, payload)
        winner = min(costs, key=costs.__getitem__)
        data["winners"][int(payload)] = winner
        label = (f"{payload / 1e6:g} MB" if payload >= 1e6
                 else f"{payload / 1e3:g} KB")
        rows.append([label] + [f"{t * 1e3:.4f}" for t in costs.values()]
                    + [winner])
    # functional gate: autotune verifies byte-identical gathers through
    # the real communicator (raises ClusterError on any mismatch)
    verified = Cluster(
        SIMD_FOCUSED_NODE, 4,
        topology=make_topology(topology_kind, 4, network=NET),
    )
    cache = autotune(verified, payloads=(1 << 12, 1 << 16), cache=TuningCache())
    data["verified_buckets"] = len(cache)
    return FigureResult(
        figure="Figure 3b / collective engine",
        title=(f"Allgather zoo on {topo.describe()} x{num_nodes} "
               f"(modeled; winner = auto selection)"),
        headers=headers,
        rows=rows,
        notes=[
            "latency-bound payloads favor log-round algorithms "
            "(recursive doubling / Bruck); bandwidth-bound payloads on "
            "oversubscribed fat-trees favor ring/hierarchical",
            f"functional gate: {len(cache)} payload buckets re-gathered "
            "bit-identically by all four algorithms on a real 4-node "
            "communicator",
        ],
        data=data,
    )


def fig04_pgas_scaling(size: str = "paper") -> FigureResult:
    """Figure 4: scalability of the PGAS migration (poor by design)."""
    headers = ["Workload"] + [f"{n} nodes" for n in SIMD_NODE_COUNTS]
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        t1 = model_pgas_time(prof, SIMD_FOCUSED_NODE, NET, 1)
        speedups = [
            t1 / model_pgas_time(prof, SIMD_FOCUSED_NODE, NET, n)
            for n in SIMD_NODE_COUNTS
        ]
        rows.append([name] + [f"{s:.2f}x" for s in speedups])
        data[name] = speedups
    slowdowns = sum(1 for v in data.values() if v[-1] < 1.0)
    return FigureResult(
        figure="Figure 4",
        title="PGAS migration strong scaling (speedup vs PGAS 1 node, "
        "SIMD-Focused)",
        headers=headers,
        rows=rows,
        notes=[
            f"{slowdowns}/8 workloads are slower on 32 nodes than on one "
            "(paper: most programs do not scale; some slow down)",
        ],
        data=data,
    )


def fig06_pipeline() -> FigureResult:
    """Figure 6 / Listings 1-2: the migration pipeline artifacts."""
    from repro.frontend import parse_kernel
    from repro.transform import (
        analyze_vectorizability,
        generate_host_module,
        generate_kernel_module,
    )
    from repro.workloads.vecadd import CUDA_SOURCE as _  # noqa: F401

    src = """
#define N 1200
__global__ void vec_copy(char *src, char *dest) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < N)
        dest[id] = src[id];
}
"""
    kernel = parse_kernel(src)
    analysis = analyze_kernel(kernel)
    vect = analyze_vectorizability(kernel)
    host = generate_host_module(kernel, analysis.metadata)
    kmod = generate_kernel_module(kernel, vect)
    meta = analysis.metadata
    rows = [
        ["tail_divergent", meta.tail_divergent],
        ["mem_ptr", ", ".join(meta.mem_ptrs)],
    ] + [
        [f"unit_size[{b}]", f"({meta.unit_elems[b]}) x {meta.elem_sizes[b]} B"]
        for b in meta.mem_ptrs
    ]
    return FigureResult(
        figure="Figure 6",
        title="GPU-to-CPU-cluster migration of Listing 1 (metadata + "
        "generated modules)",
        headers=["metadata", "value"],
        rows=rows,
        notes=["--- CPU kernel module ---"]
        + kmod.split("\n")
        + ["--- CPU host module ---"]
        + host.split("\n"),
        data={"metadata": meta, "host_module": host, "kernel_module": kmod},
    )


def fig07_coverage() -> FigureResult:
    """Figure 7: Allgather-distributable coverage of the kernel zoos."""
    from repro.workloads.ai_models import BERT_KERNELS, VIT_KERNELS
    from repro.workloads.heteromark import HETEROMARK_KERNELS, build_kernel

    rows = []
    data = {}
    for label, zoo in (
        ("BERT (Triton)", BERT_KERNELS),
        ("ViT (Triton)", VIT_KERNELS),
        ("Hetero-Mark (CUDA)", HETEROMARK_KERNELS),
    ):
        ok = overlap = indirect = 0
        for z in zoo:
            verdict = analyze_kernel(build_kernel(z)).metadata.distributable
            if verdict != z.distributable:
                raise AssertionError(
                    f"{z.name}: analysis verdict {verdict} != expected "
                    f"{z.distributable}"
                )
            if verdict:
                ok += 1
            elif z.category == "indirect":
                indirect += 1
            else:
                overlap += 1
        rows.append([label, len(zoo), ok, overlap, indirect])
        data[label] = (len(zoo), ok)
    return FigureResult(
        figure="Figure 7",
        title="coverage of the Allgather distributable analysis",
        headers=["Suite", "Kernels", "Distributable", "Overlapping writes",
                 "Indirect access"],
        rows=rows,
        notes=["paper: 21/21 AI kernels distributable; 8/13 Hetero-Mark "
               "(4 overlapping, 1 indirect) — reproduced exactly"],
        data=data,
    )


def fig08_scalability(size: str = "paper") -> FigureResult:
    """Figure 8: CuCC strong scaling on both clusters."""
    headers = (
        ["Workload"]
        + [f"S{n}" for n in SIMD_NODE_COUNTS]
        + [f"T{n}" for n in THREAD_NODE_COUNTS]
    )
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        st = _simd_times(prof)
        tt = _thread_times(prof)
        s_speed = [st[1] / st[n] for n in SIMD_NODE_COUNTS]
        t_speed = [tt[1] / tt[n] for n in THREAD_NODE_COUNTS]
        rows.append(
            [name]
            + [f"{v:.2f}" for v in s_speed]
            + [f"{v:.2f}" for v in t_speed]
        )
        data[name] = {"simd": st, "thread": tt}
    km = data["KMeans"]["simd"]
    return FigureResult(
        figure="Figure 8",
        title=f"CuCC strong scaling (speedup vs 1 node; {size} size)",
        headers=headers,
        rows=rows,
        notes=[
            "FIR scales furthest (paper: near-linear to 32 nodes)",
            f"KMeans 16 vs 32 nodes: {km[16] * 1e3:.3f} ms vs "
            f"{km[32] * 1e3:.3f} ms — slower at 32 (paper: 313 blocks -> "
            "19+9 blocks/node at 16 nodes but 9+25 at 32)",
            "Transpose and the few-block kernels (EP, GA, NBody) stop "
            "scaling (paper: communication volume constant / idle cores)",
        ],
        data=data,
    )


def fig09_network_overhead(size: str = "paper") -> FigureResult:
    """Figure 9: fraction of runtime spent in communication (SIMD-Focused)."""
    headers = ["Workload"] + [f"{n} nodes" for n in SIMD_NODE_COUNTS[1:]]
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        fr = []
        for n in SIMD_NODE_COUNTS[1:]:
            ph = model_cucc_time(prof, SIMD_FOCUSED_NODE, NET, n)
            fr.append(ph.network_fraction)
        rows.append([name] + [f"{100 * f:.1f}%" for f in fr])
        data[name] = fr
    return FigureResult(
        figure="Figure 9",
        title="network overhead share of CuCC runtime (SIMD-Focused)",
        headers=headers,
        rows=rows,
        notes=[
            "Transpose is communication-dominated (paper: its comm volume "
            "stays constant while compute shrinks); FIR/BinomialOption "
            "communicate negligibly",
        ],
        data=data,
    )


def fig10_cucc_vs_pgas(size: str = "paper") -> FigureResult:
    """Figure 10: CuCC vs the UPC++-style PGAS migration."""
    node_counts = (2, 4, 8, 16, 32)
    headers = ["Workload"] + [f"{n} nodes" for n in node_counts]
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        ratio = []
        for n in node_counts:
            tc = model_cucc_time(prof, SIMD_FOCUSED_NODE, NET, n).total
            tp = model_pgas_time(prof, SIMD_FOCUSED_NODE, NET, n)
            ratio.append(tp / tc)
        rows.append([name] + [f"{r:.2f}x" for r in ratio])
        data[name] = dict(zip(node_counts, ratio))
    avg2 = geomean([data[w][2] for w in WORKLOADS if w != "Transpose"])
    avg32 = geomean([data[w][32] for w in WORKLOADS if w != "Transpose"])
    return FigureResult(
        figure="Figure 10",
        title="PGAS / CuCC runtime ratio (SIMD-Focused; >1 = CuCC faster)",
        headers=headers,
        rows=rows,
        notes=[
            f"average excl. Transpose: {avg2:.2f}x at 2 nodes (paper 4.09x), "
            f"{avg32:.2f}x at 32 nodes (paper 12.81x)",
            f"Transpose is the outlier: {data['Transpose'][32]:.0f}x at 32 "
            "nodes (paper: largest gap — N^2 fine-grained remote accesses "
            "vs one Allgather)",
            "GA and BinomialOption are near parity (paper: infrequent / "
            "single-scalar remote writes)",
        ],
        data={"ratios": data, "avg2": avg2, "avg32": avg32},
    )


def fig11_cpu_vs_gpu(size: str = "paper") -> FigureResult:
    """Figure 11: CPU clusters (best size) vs A100 / V100."""
    headers = ["Workload", "A100 (ms)", "V100 (ms)", "SIMD best (ms)",
               "Thread best (ms)", "simd/A100", "thread/A100"]
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        ta = model_gpu_time(prof, A100)
        tv = model_gpu_time(prof, V100)
        ts = min(_simd_times(prof).values())
        tt = min(_thread_times(prof).values())
        rows.append(
            [name, ta * 1e3, tv * 1e3, ts * 1e3, tt * 1e3,
             f"{ts / ta:.2f}", f"{tt / ta:.2f}"]
        )
        data[name] = {"a100": ta, "v100": tv, "simd": ts, "thread": tt}
    gm = {
        "simd_v100": geomean([d["simd"] / d["v100"] for d in data.values()]),
        "simd_a100": geomean([d["simd"] / d["a100"] for d in data.values()]),
        "thread_v100": geomean([d["thread"] / d["v100"] for d in data.values()]),
        "thread_a100": geomean([d["thread"] / d["a100"] for d in data.values()]),
    }
    return FigureResult(
        figure="Figure 11",
        title="runtime: CPU clusters (best size) vs GPUs",
        headers=headers,
        rows=rows,
        notes=[
            f"geomean slowdowns vs paper: SIMD/V100 {gm['simd_v100']:.2f} "
            f"(2.55), SIMD/A100 {gm['simd_a100']:.2f} (4.14), Thread/V100 "
            f"{gm['thread_v100']:.2f} (1.57), Thread/A100 "
            f"{gm['thread_a100']:.2f} (2.54)",
            "Transpose: CPUs (Thread-Focused) beat both GPUs via large LLC "
            "(paper section 7.4.1)",
            "BinomialOption: Thread-Focused 4-node edges out the GPUs "
            "(paper: 32 TFLOP/s of thread parallelism vs barrier-phased GPU)",
            "EP and GA: GPUs win by ~4-13x (paper: 5-10x; too few blocks, "
            "non-SIMD loops)",
        ],
        data={"per_workload": data, "geomeans": gm},
    )


def fig12_throughput(size: str = "paper") -> FigureResult:
    """Figure 12: cluster-wide batch throughput, GPUs vs GPUs+CPUs.

    Models TACC Lonestar6: 560 CPU nodes and 16 GPU nodes.  CPU nodes are
    grouped into clusters of the throughput-optimal size per workload;
    throughput is jobs completed per second of batch processing.
    """
    CPU_NODES_TOTAL, GPU_NODES_TOTAL = 560, 16
    headers = ["Workload", "GPU jobs/s", "+CPU jobs/s", "combined/GPU",
               "CPU cluster size"]
    rows = []
    ratios = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        t_gpu = model_gpu_time(prof, A100)
        gpu_tp = GPU_NODES_TOTAL / t_gpu
        # CPU nodes are grouped into clusters of the workload's
        # runtime-best size (the configuration Figure 11 reports), as the
        # paper's batch-processing setup does
        best_t, best_k = model_single_cpu_time(prof, THREAD_FOCUSED_NODE), 1
        for k in (2, 4):
            t = model_cucc_time(prof, THREAD_FOCUSED_NODE, NET, k).total
            if t < best_t:
                best_t, best_k = t, k
        cpu_tp = (CPU_NODES_TOTAL // best_k) / best_t
        combined = gpu_tp + cpu_tp
        ratios.append(combined / gpu_tp)
        rows.append([name, gpu_tp, combined, f"{combined / gpu_tp:.2f}x",
                     best_k])
        data[name] = {"gpu": gpu_tp, "combined": combined, "k": best_k}
    avg = geomean(ratios)
    return FigureResult(
        figure="Figure 12",
        title="Lonestar6-scale throughput: 16 GPU nodes vs + 560 CPU nodes",
        headers=headers,
        rows=rows,
        notes=[
            f"average throughput gain from adding CPUs: {avg:.2f}x "
            "(paper: 3.59x in section 7.4.2; 2.59x in the abstract — our "
            "gain is larger because our modeled CPU-vs-GPU runtime gap is "
            "narrower than the paper's, see EXPERIMENTS.md)",
            "qualitative claim reproduced: idle CPU nodes add a multiple "
            "of the GPU partition's batch throughput for every workload",
        ],
        data={"per_workload": data, "avg_gain": avg},
    )


def fig13_simd_vs_thread(size: str = "paper") -> FigureResult:
    """Figure 13 / section 8.2: SIMD- vs Thread-Focused at equal peak,
    plus the no-SIMD ablation."""
    capped = THREAD_FOCUSED_NODE.limited_to_cores(64)
    headers = ["Workload", "ratio @1 node", "@2 nodes", "@4 nodes"]
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        st = {1: model_single_cpu_time(prof, SIMD_FOCUSED_NODE)}
        tt = {1: model_single_cpu_time(prof, capped)}
        for n in (2, 4):
            st[n] = model_cucc_time(prof, SIMD_FOCUSED_NODE, NET, n).total
            tt[n] = model_cucc_time(prof, capped, NET, n, ).total
        ratios = {n: st[n] / tt[n] for n in (1, 2, 4)}
        rows.append([name] + [f"{ratios[n]:.2f}x" for n in (1, 2, 4)])
        data[name] = ratios
    gms = {
        n: geomean([data[w][n] for w in WORKLOADS]) for n in (1, 2, 4)
    }
    # no-SIMD ablation on Transpose (paper section 8.2)
    prof = get_profile("Transpose", size)
    ablate = {}
    for node, label in ((SIMD_FOCUSED_NODE, "simd"), (capped, "thread64")):
        on = model_single_cpu_time(prof, node, simd_enabled=True)
        off = model_single_cpu_time(prof, node, simd_enabled=False)
        ablate[label] = off / on
    return FigureResult(
        figure="Figure 13",
        title="SIMD-Focused / Thread-Focused(64 cores) runtime ratio at "
        "equal theoretical peak",
        headers=headers,
        rows=rows,
        notes=[
            f"geomeans: {gms[1]:.2f}x / {gms[2]:.2f}x / {gms[4]:.2f}x at "
            "1/2/4 nodes (paper: 4.61 / 4.66 / 4.32)",
            "largest single-node gap: "
            + max(WORKLOADS, key=lambda w: data[w][1])
            + f" at {max(d[1] for d in data.values()):.1f}x "
            "(paper: BinomialOption at 55x)",
            f"Transpose no-SIMD slowdown: SIMD-Focused "
            f"{ablate['simd']:.2f}x vs Thread-Focused "
            f"{ablate['thread64']:.2f}x (paper: 61.66x vs none — our "
            "roofline model reproduces the direction on the SIMD-Focused "
            "node only partially; see EXPERIMENTS.md)",
        ],
        data={"ratios": data, "geomeans": gms, "ablation": ablate},
    )


def ablation_regrid(size: str = "paper") -> FigureResult:
    """Section 8.3 ablation: workload redistribution (block regridding).

    The paper's first future direction: kernels with too few blocks
    cannot feed large clusters.  This ablation applies the implemented
    regridding transformation (``repro.transform.regrid``) to the
    regriddable evaluation workloads and compares CuCC runtimes with the
    original, SM-tuned geometry on the 32-node SIMD-Focused cluster
    (768 cores — more than EP's 512 or NBody's 128 blocks).
    """
    from repro.bench.profile import profile_workload
    from repro.transform import regrid_workload

    headers = ["Workload", "orig grid x block", "regrid grid x block",
               "orig (ms)", "regrid (ms)", "speedup"]
    rows = []
    data = {}
    total_cores = 32 * SIMD_FOCUSED_NODE.cores
    for name in WORKLOADS:
        prof = get_profile(name, size)
        new_spec = regrid_workload(prof.spec, total_cores)
        if new_spec is None:
            rows.append([name, f"{prof.spec.num_blocks} x "
                         f"{prof.config.threads_per_block}", "(not regriddable)",
                         "-", "-", "-"])
            continue
        regr = profile_workload(new_spec)
        t0 = model_cucc_time(prof, SIMD_FOCUSED_NODE, NET, 32).total
        t1 = model_cucc_time(regr, SIMD_FOCUSED_NODE, NET, 32).total
        rows.append(
            [
                name,
                f"{prof.spec.num_blocks} x {prof.config.threads_per_block}",
                f"{new_spec.num_blocks} x {new_spec.block}",
                t0 * 1e3,
                t1 * 1e3,
                f"{t0 / t1:.2f}x",
            ]
        )
        data[name] = t0 / t1
    return FigureResult(
        figure="Ablation (section 8.3)",
        title="workload redistribution: regridded vs original geometry, "
        "32-node SIMD-Focused",
        headers=headers,
        rows=rows,
        notes=[
            "block-starved kernels (EP: 512 blocks for 768 cores) gain the "
            "most; kernels with shared-memory block affinity "
            "(BinomialOption, GA, Transpose rows) cannot be regridded",
            "kernels that already have enough blocks (FIR: 1024) see no "
            "gain — redistribution pays only when cores would idle",
        ],
        data=data,
    )


def extra_energy(size: str = "paper") -> FigureResult:
    """Section 8.4 extension: energy per job, CPU clusters vs the A100.

    The paper argues qualitatively that using *idle* CPUs is attractive
    because they draw non-negligible power whether or not they run jobs.
    This table quantifies it with the spec database's power figures:

    * *full*: CPU-cluster energy at load power (what a utility meter adds
      if the nodes would otherwise be off);
    * *marginal*: load minus idle power (what running the job adds when
      the nodes are powered on and idle anyway — the spot-instance
      scenario of section 8.4).
    """
    headers = ["Workload", "A100 (mJ)", "CPU full (mJ)", "full/GPU",
               "CPU marginal (mJ)", "marginal/GPU", "cluster"]
    rows = []
    data = {}
    for name in WORKLOADS:
        prof = get_profile(name, size)
        t_gpu = model_gpu_time(prof, A100)
        e_gpu = t_gpu * A100.tdp_w
        best_t, best_k = model_single_cpu_time(prof, THREAD_FOCUSED_NODE), 1
        for k in THREAD_NODE_COUNTS[1:]:
            tk = model_cucc_time(prof, THREAD_FOCUSED_NODE, NET, k).total
            if tk < best_t:
                best_t, best_k = tk, k
        node = THREAD_FOCUSED_NODE
        e_full = best_t * best_k * node.tdp_w
        e_marginal = best_t * best_k * (node.tdp_w - node.idle_w)
        rows.append(
            [
                name,
                e_gpu * 1e3,
                e_full * 1e3,
                f"{e_full / e_gpu:.2f}x",
                e_marginal * 1e3,
                f"{e_marginal / e_gpu:.2f}x",
                f"{best_k} node(s)",
            ]
        )
        data[name] = {
            "gpu": e_gpu,
            "full": e_full,
            "marginal": e_marginal,
        }
    gm_full = geomean([d["full"] / d["gpu"] for d in data.values()])
    gm_marg = geomean([d["marginal"] / d["gpu"] for d in data.values()])
    return FigureResult(
        figure="Extra (section 8.4)",
        title="energy per job: Thread-Focused cluster (best size) vs A100",
        headers=headers,
        rows=rows,
        notes=[
            f"geomean energy ratio: {gm_full:.2f}x at full power, "
            f"{gm_marg:.2f}x marginal (idle CPUs already drawing "
            f"{THREAD_FOCUSED_NODE.idle_w:.0f} W of "
            f"{THREAD_FOCUSED_NODE.tdp_w:.0f} W)",
            "the paper's section 8.4 argument: on already-powered idle "
            "CPUs the marginal energy premium over GPUs shrinks "
            "substantially",
        ],
        data={"per_workload": data, "gm_full": gm_full, "gm_marginal": gm_marg},
    )


ALL_FIGURES = (
    fig01_waiting_times,
    tab01_specs,
    fig03_allgather,
    fig03_allgather_zoo,
    fig04_pgas_scaling,
    fig06_pipeline,
    fig07_coverage,
    fig08_scalability,
    fig09_network_overhead,
    fig10_cucc_vs_pgas,
    fig11_cpu_vs_gpu,
    fig12_throughput,
    fig13_simd_vs_thread,
    ablation_regrid,
    extra_energy,
)

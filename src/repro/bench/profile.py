"""Workload profiling: execute once, model every sweep point.

The paper's figures sweep each workload over many configurations (node
counts, cluster kinds, SIMD on/off, GPU models).  The *functional* work
is identical at every point — only the block partitioning and the cost
model inputs change.  This module executes each workload exactly once
with the instrumented interpreter (verifying the result against the
NumPy reference), records dynamic op counts at block-range granularity,
and then answers "how long would configuration X take" analytically:

* :func:`profile_workload` — one instrumented reference execution;
* :func:`model_cucc_time` — three-phase time on any cluster, using the
  same :func:`~repro.analysis.distributable.finalize_plan` arithmetic as
  the real runtime (cross-checked by tests);
* :func:`model_gpu_time` — GPU wave model on the same counts;
* :func:`model_pgas_time` — PGAS cost from one instrumented locality
  measurement, scaled across node counts.

The real runtime (:mod:`repro.runtime.cucc`) with genuine per-node
memories and data movement remains the source of truth for correctness;
the test suite asserts that the model and the runtime agree on timing
for matching configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.analysis.distributable import KernelAnalysis, analyze_kernel, finalize_plan
from repro.analysis.metadata import DistributionPlan
from repro.baselines.pgas import PGAS_LOCAL_ACCESS_S
from repro.cluster import collectives as coll
from repro.cluster.topology import FlatTopology, Topology
from repro.hw.cpu import CPUSpec
from repro.hw.gpu import GPUSpec
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams, cpu_node_time, gpu_time
from repro.hw.specs import NetworkSpec
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.machine import BlockExecutor
from repro.runtime.program import PhaseTimes
from repro.transform.vectorize import analyze_vectorizability
from repro.tuning.select import select_algorithm
from repro.workloads import PERF_WORKLOADS
from repro.workloads.base import WorkloadSpec

__all__ = [
    "WorkloadProfile",
    "profile_workload",
    "get_profile",
    "model_cucc_time",
    "model_gpu_time",
    "model_pgas_time",
    "model_single_cpu_time",
]

#: how many trailing blocks are profiled individually (they may differ
#: from the regular blocks under tail divergence)
TAIL_BLOCKS = 2


@dataclass
class WorkloadProfile:
    """Dynamic profile of one workload execution."""

    spec: WorkloadSpec
    config: LaunchConfig
    analysis: KernelAnalysis
    vectorizable: bool
    total: OpCounters
    #: average counters of one regular (non-tail) block
    regular_block: OpCounters
    #: exact counters of the last TAIL_BLOCKS blocks, in order
    tail: list[OpCounters]
    working_set_bytes: int
    #: accesses (and their bytes) to PGAS global arrays — the buffers the
    #: kernel writes, which the Listing-3 migration hosts on rank 0
    pgas_global_ops: float = 0.0
    pgas_global_bytes: float = 0.0

    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    def counters_for_range(self, lo: int, hi: int) -> OpCounters:
        """Aggregate counters of blocks [lo, hi)."""
        out = OpCounters()
        if hi <= lo:
            return out
        B = self.num_blocks
        tail_start = B - len(self.tail)
        n_regular = max(0, min(hi, tail_start) - lo)
        if n_regular:
            out.add(self.regular_block.scaled(n_regular))
        for i, c in enumerate(self.tail):
            bid = tail_start + i
            if lo <= bid < hi:
                out.add(c)
        return out


def profile_workload(spec: WorkloadSpec, verify: bool = True) -> WorkloadProfile:
    """Execute the workload once on a single memory space and profile it."""
    config = LaunchConfig.make(spec.grid, spec.block)
    arrays = {n: a.copy() for n, a in spec.arrays.items()}
    run_args: dict[str, object] = dict(spec.scalars)
    run_args.update(arrays)
    B = config.num_blocks
    n_tail = min(TAIL_BLOCKS, B)

    body = OpCounters()
    ex = BlockExecutor(spec.kernel, config, run_args, body)
    ex.run_blocks(range(0, B - n_tail))
    tail: list[OpCounters] = []
    for bid in range(B - n_tail, B):
        c = OpCounters()
        ex.counters = c
        ex.run_block(bid)
        tail.append(c)

    if verify:
        spec.verify({o: arrays[o] for o in spec.outputs})

    total = body.copy()
    for c in tail:
        total.add(c)
    regular = (
        body.scaled(1.0 / (B - n_tail)) if B > n_tail else OpCounters()
    )
    analysis = analyze_kernel(spec.kernel)
    vect = analyze_vectorizability(spec.kernel)
    ws = sum(a.nbytes for a in spec.arrays.values())

    prof = WorkloadProfile(
        spec=spec,
        config=config,
        analysis=analysis,
        vectorizable=vect.vectorizable,
        total=total,
        regular_block=regular,
        tail=tail,
        working_set_bytes=ws,
    )
    _measure_pgas_locality(prof, arrays, run_args)
    return prof


def _measure_pgas_locality(
    prof: WorkloadProfile, arrays: dict[str, np.ndarray], run_args: dict[str, object]
) -> None:
    """One instrumented pass counting accesses to the written (global)
    buffers — executed as rank 1 so every such access is classified
    remote, yielding the total global-array traffic."""
    from repro.analysis.writes import collect_writes
    from repro.baselines.pgas import _PGASBlockExecutor

    written = {rec.buffer for rec in collect_writes(prof.spec.kernel)}
    global_params = {name: 0 for name in arrays if name in written}
    ex = _PGASBlockExecutor(
        prof.spec.kernel,
        prof.config,
        run_args,
        OpCounters(),
        rank=1,
        global_params=global_params,
    )
    ex.run_blocks(range(prof.num_blocks))
    prof.pgas_global_ops = ex.remote_ops
    prof.pgas_global_bytes = ex.remote_bytes


@lru_cache(maxsize=32)
def get_profile(name: str, size: str = "paper", seed: int = 0) -> WorkloadProfile:
    """Cached profile of one of the eight evaluation workloads."""
    return profile_workload(PERF_WORKLOADS[name](size, seed=seed))


# ---------------------------------------------------------------------------
# analytical time models over a profile
# ---------------------------------------------------------------------------

def make_plan(prof: WorkloadProfile, num_nodes: int) -> DistributionPlan:
    """The launch plan the CuCC runtime would use on ``num_nodes``."""
    return finalize_plan(prof.analysis, prof.config, prof.spec.scalars, num_nodes)


def model_cucc_time(
    prof: WorkloadProfile,
    node: CPUSpec,
    network: NetworkSpec,
    num_nodes: int,
    simd_enabled: bool = True,
    params: ModelParams = DEFAULT_PARAMS,
    topology: Topology | None = None,
    allgather_algo: str = "auto",
    tuning=None,
) -> PhaseTimes:
    """Three-phase CuCC time on a cluster of ``num_nodes`` x ``node``.

    Phase 2 is priced exactly the way the executing runtime prices it:
    per written buffer, the ``allgather_algo`` (``"auto"`` resolves
    through ``tuning`` and then the cost-model selector) runs over
    ``topology`` — defaulting to the flat fabric ``network`` describes,
    which is also the default :class:`~repro.cluster.cluster.Cluster`
    topology, so model and runtime stay phase-for-phase identical.
    """
    plan = make_plan(prof, num_nodes)
    topo = topology or FlatTopology(num_nodes, network=network)
    partial = 0.0
    allgather = 0.0
    algos: list[str] = []
    if not plan.replicated and plan.p_size > 0:
        # all nodes run equally-sized regular ranges; node 0 is representative
        counters = prof.counters_for_range(*_range_tuple(plan.node_blocks(0)))
        partial = cpu_node_time(
            node,
            counters,
            plan.p_size,
            prof.vectorizable,
            simd_enabled=simd_enabled,
            working_set_bytes=prof.working_set_bytes,
            params=params,
        )
        for bp in plan.buffers:
            payload = plan.executed_blocks * bp.unit_elems * bp.elem_size
            algo = allgather_algo
            if algo == coll.AllgatherAlgo.AUTO.value:
                algo = select_algorithm(topo, payload, cache=tuning)
            if algo not in algos:
                algos.append(algo)
            allgather += coll.allgather_algo_cost(algo, topo, payload)
    cb = plan.callback_blocks
    callback = 0.0
    if len(cb) > 0:
        counters = prof.counters_for_range(cb.start, cb.stop)
        callback = cpu_node_time(
            node,
            counters,
            len(cb),
            prof.vectorizable,
            simd_enabled=simd_enabled,
            working_set_bytes=prof.working_set_bytes,
            params=params,
        )
    return PhaseTimes(
        partial=partial,
        allgather=allgather,
        callback=callback,
        overhead=params.cpu_launch_overhead_s,
        allgather_algos=tuple(algos),
    )


def _range_tuple(r: range) -> tuple[int, int]:
    return (r.start, r.stop)


def model_single_cpu_time(
    prof: WorkloadProfile,
    node: CPUSpec,
    simd_enabled: bool = True,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """CuPBoP-style single-node time (all blocks, no communication)."""
    t = cpu_node_time(
        node,
        prof.total,
        prof.num_blocks,
        prof.vectorizable,
        simd_enabled=simd_enabled,
        working_set_bytes=prof.working_set_bytes,
        params=params,
    )
    return t + params.cpu_launch_overhead_s


def model_gpu_time(
    prof: WorkloadProfile,
    gpu: GPUSpec,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """GPU execution time of the original kernel."""
    return gpu_time(
        gpu,
        prof.total,
        prof.num_blocks,
        prof.config.threads_per_block,
        working_set_bytes=prof.working_set_bytes,
        params=params,
    )


def model_pgas_time(
    prof: WorkloadProfile,
    node: CPUSpec,
    network: NetworkSpec,
    num_nodes: int,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """PGAS (UPC++) migration time on ``num_nodes`` nodes.

    Mirrors :class:`~repro.baselines.pgas.PGASRuntime`'s cost model:
    written buffers live on rank 0 (Listing 3), so rank 0's share of the
    global-array accesses pays per-op software overhead while every other
    rank's share serializes into rank 0's NIC (the incast that keeps the
    PGAS gap growing with node count).
    """
    B = prof.num_blocks
    q = math.ceil(B / num_nodes)
    counters = prof.counters_for_range(0, q)
    compute = cpu_node_time(
        node,
        counters,
        q,
        vectorized=prof.vectorizable,
        working_set_bytes=prof.working_set_bytes,
        params=params,
    )
    local_ops = prof.pgas_global_ops / num_nodes  # rank 0's share
    remote_ops = prof.pgas_global_ops - local_ops
    remote_bytes = prof.pgas_global_bytes * (num_nodes - 1) / num_nodes
    local_t = local_ops * PGAS_LOCAL_ACCESS_S / max(1, node.cores)
    incast = 0.0
    if remote_ops:
        incast = (
            remote_ops / network.rma_rate_per_node
            + remote_bytes / network.beta_bytes_per_s
            + network.rma_alpha_s
        )
    barrier = coll.barrier_cost(network, num_nodes)
    return params.cpu_launch_overhead_s + compute + local_t + incast + barrier

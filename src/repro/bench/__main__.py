"""CLI: regenerate every table and figure of the paper's evaluation.

Usage::

    python -m repro.bench                 # all figures, paper-size
    python -m repro.bench --size small    # fast pass (CI-sized problems)
    python -m repro.bench fig08 fig11     # a subset, by figure id
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench.figures import ALL_FIGURES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="figure ids to run (e.g. fig08 fig11 tab01); default: all",
    )
    parser.add_argument(
        "--size",
        default="paper",
        choices=("small", "paper"),
        help="workload size preset (default: paper)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write all results (headers/rows/notes) as JSON",
    )
    args = parser.parse_args(argv)

    selected = []
    for fn in ALL_FIGURES:
        fid = fn.__name__.split("_")[0]
        if not args.figures or fid in args.figures or fn.__name__ in args.figures:
            selected.append(fn)
    if not selected:
        parser.error(f"no figures match {args.figures!r}")

    t0 = time.time()
    collected = []
    for fn in selected:
        t1 = time.time()
        kwargs = (
            {"size": args.size}
            if "size" in inspect.signature(fn).parameters
            else {}
        )
        result = fn(**kwargs)
        print(result.render())
        print(f"  [{fn.__name__}: {time.time() - t1:.1f}s]\n")
        collected.append(result)
    print(f"total: {time.time() - t0:.1f}s")
    if args.json:
        import json

        payload = [
            {
                "figure": r.figure,
                "title": r.title,
                "headers": r.headers,
                "rows": [[str(c) for c in row] for row in r.rows],
                "notes": r.notes,
            }
            for r in collected
        ]
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI: regenerate every table and figure of the paper's evaluation.

Usage::

    python -m repro.bench                 # all figures, paper-size
    python -m repro.bench --size small    # fast pass (CI-sized problems)
    python -m repro.bench fig08 fig11     # a subset, by figure id
    python -m repro.bench --json out/     # continuous-benchmark mode:
                                          # write BENCH_*.json documents
                                          # (defaults to --size small)
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench.figures import ALL_FIGURES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="figure ids to run (e.g. fig08 fig11 tab01); default: all",
    )
    parser.add_argument(
        "--size",
        default=None,
        choices=("small", "paper"),
        help="workload size preset (default: paper; small with --json)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="continuous-benchmark mode: run the tracked benchmark subset "
        "and write schema-validated BENCH_*.json files into DIR "
        "(default: current directory) instead of rendering figures; "
        "positional names select benchmarks instead of figures",
    )
    parser.add_argument(
        "--figures-json",
        metavar="PATH",
        help="also write all figure results (headers/rows/notes) as JSON",
    )
    args = parser.parse_args(argv)
    size = args.size or ("small" if args.json is not None else "paper")

    if args.json is not None:
        from repro.bench.continuous import run_continuous

        t0 = time.time()
        paths = run_continuous(args.json, size=size, names=args.figures or None)
        for p in paths:
            print(f"wrote {p}")
        print(f"total: {time.time() - t0:.1f}s")
        return 0

    selected = []
    for fn in ALL_FIGURES:
        fid = fn.__name__.split("_")[0]
        if not args.figures or fid in args.figures or fn.__name__ in args.figures:
            selected.append(fn)
    if not selected:
        parser.error(f"no figures match {args.figures!r}")

    t0 = time.time()
    collected = []
    for fn in selected:
        t1 = time.time()
        kwargs = (
            {"size": size}
            if "size" in inspect.signature(fn).parameters
            else {}
        )
        result = fn(**kwargs)
        print(result.render())
        print(f"  [{fn.__name__}: {time.time() - t1:.1f}s]\n")
        collected.append(result)
    print(f"total: {time.time() - t0:.1f}s")
    if args.figures_json:
        import json

        payload = [
            {
                "figure": r.figure,
                "title": r.title,
                "headers": r.headers,
                "rows": [[str(c) for c in row] for row in r.rows],
                "notes": r.notes,
            }
            for r in collected
        ]
        with open(args.figures_json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.figures_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Convenience facade: the one-import surface of the library.

    from repro import api

    kernel  = api.parse_cuda_kernel(CUDA_SOURCE)       # or api.kernel DSL
    cluster = api.make_cluster("simd-focused", 4)
    rt      = api.CuCCRuntime(cluster)
    compiled = rt.compile(kernel)
    print(compiled.describe())                          # analysis verdict
    rt.memory.alloc("x", n, np.float32); rt.memory.memcpy_h2d("x", data)
    record = rt.launch(compiled, grid, block, {...})
    out = rt.memory.memcpy_d2h("y", check_consistency=True)

Everything re-exported here is importable from its home package too;
this module only flattens the common path.
"""

from __future__ import annotations

from repro.analysis import analyze_kernel, finalize_plan
from repro.baselines import GPUDevice, PGASRuntime, SingleCPURuntime
from repro.cluster import (
    ALLGATHER_ALGOS,
    AllgatherAlgo,
    Cluster,
    FatTreeTopology,
    FaultPlan,
    FlatTopology,
    RingTopology,
    Topology,
    TorusTopology,
    make_cluster,
    make_topology,
)
from repro.frontend import kernel, parse_cuda, parse_kernel, ptr
from repro.hw import (
    A100,
    SIMD_FOCUSED_NODE,
    THREAD_FOCUSED_NODE,
    V100,
    ModelParams,
)
from repro.interp import LaunchConfig, OpCounters, run_grid
from repro.ir import IRBuilder, Kernel, print_kernel
from repro.obs import METRICS, MetricsRegistry, Span, SpanKind, Tracer, get_metrics
from repro.ops import (
    CheckpointPolicy,
    DriftGuardPolicy,
    grow_cluster,
    resume_on_cucc,
    resume_runtime,
)
from repro.runtime import CompiledKernel, CuCCRuntime, LaunchRecord, RecoveryPolicy
from repro.serve import (
    CuCCServer,
    JobRequest,
    ServeConfig,
    SubmissionQueue,
    serve_requests,
    serve_serially,
    synth_requests,
    verify_against_serial,
)
from repro.sanitize import (
    DynamicSanitizer,
    Finding,
    FindingKind,
    SanitizerReport,
    sanitize_kernel,
    sanitize_launch,
    sanitize_spec,
)
from repro.transform import analyze_vectorizability
from repro.tuning import TuningCache, autotune, select_algorithm
from repro.workloads import PERF_WORKLOADS

#: alias matching the docstring's name
parse_cuda_kernel = parse_kernel

__all__ = [
    # frontends
    "parse_cuda", "parse_kernel", "parse_cuda_kernel", "kernel", "ptr",
    "IRBuilder", "Kernel", "print_kernel",
    # compiler
    "analyze_kernel", "analyze_vectorizability", "finalize_plan",
    # execution
    "Cluster", "make_cluster", "CuCCRuntime", "CompiledKernel",
    "LaunchRecord", "LaunchConfig", "OpCounters", "run_grid",
    # fault injection + recovery
    "FaultPlan", "RecoveryPolicy",
    # elastic operations: durable checkpoint/restart, grow recovery,
    # drift breaker (full surface in repro.ops)
    "CheckpointPolicy", "resume_runtime", "resume_on_cucc",
    "grow_cluster", "DriftGuardPolicy",
    # collective engine: topologies, algorithm zoo, autotuning
    "Topology", "FlatTopology", "FatTreeTopology", "RingTopology",
    "TorusTopology", "make_topology",
    "AllgatherAlgo", "ALLGATHER_ALGOS",
    "TuningCache", "autotune", "select_algorithm",
    # observability: span tracing + metrics (export helpers load lazily
    # from repro.obs — chrome_trace, write_chrome_trace,
    # format_critical_report, phase_times_from_spans)
    "Tracer", "Span", "SpanKind", "MetricsRegistry", "METRICS", "get_metrics",
    # sanitizer
    "sanitize_kernel", "sanitize_launch", "sanitize_spec",
    "SanitizerReport", "Finding", "FindingKind", "DynamicSanitizer",
    # baselines + hardware
    "GPUDevice", "PGASRuntime", "SingleCPURuntime",
    "SIMD_FOCUSED_NODE", "THREAD_FOCUSED_NODE", "A100", "V100", "ModelParams",
    # workloads
    "PERF_WORKLOADS",
    # serving: concurrent multi-job execution on one pool (full surface
    # in repro.serve — packer, pipeline timing, accounting)
    "CuCCServer", "ServeConfig", "JobRequest", "SubmissionQueue",
    "serve_requests", "serve_serially", "synth_requests",
    "verify_against_serial",
]

"""Lexer for the CUDA C subset.

Produces a token stream with source positions for error reporting.  A
tiny preprocessor handles ``//`` and ``/* */`` comments and object-like
``#define NAME value`` macros (the form GPU benchmarks use for problem
sizes, e.g. ``#define N 1200`` in the paper's Listing 1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "__global__",
        "__device__",
        "__shared__",
        "__restrict__",
        "const",
        "void",
        "bool",
        "char",
        "short",
        "int",
        "long",
        "float",
        "double",
        "unsigned",
        "signed",
        "size_t",
        "uchar",
        "ushort",
        "uint",
        "ulong",
        "int8_t",
        "int16_t",
        "int32_t",
        "int64_t",
        "uint8_t",
        "uint16_t",
        "uint32_t",
        "uint64_t",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "true",
        "false",
    }
)

#: multi-character operators, longest first
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";", "?", ":", ".",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<float>
        (?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?
      | \d+[eE][+-]?\d+[fF]?
      | \d+\.[fF]
      | \d+[fF]
    )
  | (?P<hex>0[xX][0-9a-fA-F]+[uUlL]*)
  | (?P<int>\d+[uUlL]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)

_DEFINE_RE = re.compile(r"^[ \t]*#[ \t]*define[ \t]+(\w+)[ \t]+(.+?)[ \t]*$")
_DIRECTIVE_RE = re.compile(r"^[ \t]*#")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    kind: str  # 'ident' | 'int' | 'float' | 'op' | 'kw' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def _preprocess(source: str) -> tuple[str, dict[str, str]]:
    """Strip preprocessor lines; collect object-like macro definitions."""
    macros: dict[str, str] = {}
    out_lines = []
    for line in source.split("\n"):
        m = _DEFINE_RE.match(line)
        if m:
            name, value = m.group(1), m.group(2)
            if "(" in name:
                raise ParseError(f"function-like macro {name!r} not supported")
            macros[name] = value
            out_lines.append("")  # keep line numbering
        elif _DIRECTIVE_RE.match(line):
            out_lines.append("")  # #include etc.: ignored
        else:
            out_lines.append(line)
    return "\n".join(out_lines), macros


def tokenize(source: str) -> list[Token]:
    """Tokenize CUDA C subset source; macro uses are expanded in place."""
    text, macros = _preprocess(source)
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            col = pos - line_start + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line, col)
        kind = m.lastgroup
        tok_text = m.group()
        col = pos - line_start + 1
        pos = m.end()
        if kind in ("ws", "line_comment", "block_comment"):
            nl = tok_text.count("\n")
            if nl:
                line += nl
                line_start = m.end() - (len(tok_text) - tok_text.rfind("\n") - 1)
            continue
        if kind == "ident":
            if tok_text in macros:
                # expand object-like macro by re-tokenizing its body
                for sub in tokenize(macros[tok_text]):
                    if sub.kind != "eof":
                        tokens.append(Token(sub.kind, sub.text, line, col))
                continue
            k = "kw" if tok_text in KEYWORDS else "ident"
            tokens.append(Token(k, tok_text, line, col))
        elif kind == "hex":
            tokens.append(Token("int", tok_text, line, col))
        else:
            tokens.append(Token(kind, tok_text, line, col))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens

"""Recursive-descent parser for the CUDA C subset.

Parses ``__global__`` kernel definitions straight into the kernel IR
(:mod:`repro.ir`), which doubles as the AST — the IR was designed to be
exactly the abstraction level the Allgather distributable analysis needs,
so a separate surface AST would only be re-lowered node-for-node.

Supported subset (everything the paper's workloads and kernel zoos use):

* scalar and pointer parameters, ``const``/``__restrict__`` qualifiers;
* declarations with initializers, per-thread local arrays
  (``float acc[8];``), assignment (incl. ``+=`` family, ``++``/``--``),
  expression statements;
* ``if``/``else``, canonical counted ``for`` loops, ``while``,
  ``do``/``while``, ``return``, ``break``, ``continue``;
* full C expression grammar: ternary, logical, bitwise, shifts,
  comparisons, arithmetic, casts, array indexing;
* CUDA builtins (``threadIdx.x`` ...), ``__syncthreads()``,
  ``__shared__`` arrays, ``atomicAdd``-family builtins, and the usual
  math intrinsics (``sqrtf``, ``expf``, ``fminf``, ...).

Everything outside the subset raises :class:`~repro.errors.ParseError`
with a source location.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend.lexer import Token, tokenize
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
)
from repro.ir.stmt import (
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    KernelParam,
    Return,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    AddressSpace,
    DType,
    PointerType,
    dtype_from_name,
)
from repro.ir.validate import validate_kernel

__all__ = ["parse_cuda", "parse_kernel"]

_SREGS = {
    ("threadIdx", "x"): SRegKind.TID_X,
    ("threadIdx", "y"): SRegKind.TID_Y,
    ("threadIdx", "z"): SRegKind.TID_Z,
    ("blockIdx", "x"): SRegKind.CTAID_X,
    ("blockIdx", "y"): SRegKind.CTAID_Y,
    ("blockIdx", "z"): SRegKind.CTAID_Z,
    ("blockDim", "x"): SRegKind.NTID_X,
    ("blockDim", "y"): SRegKind.NTID_Y,
    ("blockDim", "z"): SRegKind.NTID_Z,
    ("gridDim", "x"): SRegKind.NCTAID_X,
    ("gridDim", "y"): SRegKind.NCTAID_Y,
    ("gridDim", "z"): SRegKind.NCTAID_Z,
}

#: CUDA math builtins -> IR intrinsic names
_INTRINSIC_MAP = {
    "sqrtf": "sqrt", "sqrt": "sqrt", "__fsqrt_rn": "sqrt",
    "rsqrtf": "rsqrt", "rsqrt": "rsqrt",
    "expf": "exp", "exp": "exp", "__expf": "exp",
    "exp2f": "exp2", "exp2": "exp2",
    "logf": "log", "log": "log", "__logf": "log",
    "log2f": "log2", "log2": "log2",
    "sinf": "sin", "sin": "sin", "__sinf": "sin",
    "cosf": "cos", "cos": "cos", "__cosf": "cos",
    "tanhf": "tanh", "tanh": "tanh",
    "erff": "erf", "erf": "erf",
    "fabsf": "fabs", "fabs": "fabs",
    "floorf": "floor", "floor": "floor",
    "ceilf": "ceil", "ceil": "ceil",
    "powf": "pow", "pow": "pow", "__powf": "pow",
    "fmodf": "fmod", "fmod": "fmod",
    "abs": "abs",
    "fminf": "min", "fmin": "min", "min": "min",
    "fmaxf": "max", "fmax": "max", "max": "max",
}

_ATOMICS = {
    "atomicAdd": "add",
    "atomicSub": "sub",
    "atomicMin": "min",
    "atomicMax": "max",
    "atomicExch": "exch",
    "atomicCAS": "cas",
}

_TYPE_KEYWORDS = frozenset(
    {
        "bool", "char", "short", "int", "long", "float", "double",
        "unsigned", "signed", "size_t",
        "uchar", "ushort", "uint", "ulong",
        "int8_t", "int16_t", "int32_t", "int64_t",
        "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    }
)

# binary operator precedence levels for precedence climbing
_BIN_LEVELS: list[list[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
               "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.i = 0
        # lexical scopes: name -> declared type (params + locals + shared)
        self.scopes: list[dict[str, DType | PointerType]] = []

    # -- token stream ---------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.i + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.peek()
        if t.kind != "eof":
            self.i += 1
        return t

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        t = self.peek()
        if t.text != text:
            raise ParseError(f"expected {text!r}, found {t.text!r}", t.line, t.col)
        return self.next()

    def error(self, msg: str) -> ParseError:
        t = self.peek()
        return ParseError(msg + f" (at {t.text!r})", t.line, t.col)

    # -- scopes -------------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, type_) -> None:
        self.scopes[-1][name] = type_

    def lookup(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- types ---------------------------------------------------------------
    def at_type(self) -> bool:
        t = self.peek()
        return t.kind == "kw" and (t.text in _TYPE_KEYWORDS or t.text == "const")

    def parse_scalar_type(self) -> DType:
        words = []
        while self.peek().kind == "kw" and (
            self.peek().text in _TYPE_KEYWORDS or self.peek().text == "const"
        ):
            w = self.next().text
            if w in ("const", "signed"):
                continue
            words.append(w)
        if not words:
            raise self.error("expected a type")
        return dtype_from_name(" ".join(words))

    # -- kernels ---------------------------------------------------------------
    def parse_unit(self) -> list[Kernel]:
        kernels = []
        while self.peek().kind != "eof":
            if self.at("__global__"):
                kernels.append(self.parse_kernel())
            else:
                t = self.peek()
                raise ParseError(
                    f"only __global__ kernel definitions are supported at top "
                    f"level, found {t.text!r}",
                    t.line,
                    t.col,
                )
        return kernels

    def parse_kernel(self) -> Kernel:
        self.expect("__global__")
        self.expect("void")
        name_tok = self.next()
        if name_tok.kind != "ident":
            raise ParseError(
                f"expected kernel name, found {name_tok.text!r}",
                name_tok.line,
                name_tok.col,
            )
        self.expect("(")
        params: list[KernelParam] = []
        self.push_scope()
        if not self.at(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept(","):
                    break
        self.expect(")")
        for p in params:
            self.declare(p.name, p.type)
        self.expect("{")
        body: list[Stmt] = []
        self.push_scope()
        while not self.accept("}"):
            self.parse_stmt(body)
        self.pop_scope()
        self.pop_scope()
        kernel = Kernel(name_tok.text, params, body)
        validate_kernel(kernel)
        return kernel

    def parse_param(self) -> KernelParam:
        base = self.parse_scalar_type()
        is_ptr = False
        while self.accept("*"):
            if is_ptr:
                raise self.error("pointer-to-pointer parameters not supported")
            is_ptr = True
        while self.peek().text in ("const", "__restrict__"):
            self.next()
        t = self.next()
        if t.kind != "ident":
            raise ParseError(f"expected parameter name, found {t.text!r}", t.line, t.col)
        type_: DType | PointerType = (
            PointerType(base, AddressSpace.GLOBAL) if is_ptr else base
        )
        return KernelParam(t.name if hasattr(t, "name") else t.text, type_)

    # -- statements -------------------------------------------------------------
    def parse_stmt(self, out: list[Stmt]) -> None:
        start = len(out)
        line = self.peek().line
        self._parse_stmt_inner(out)
        # stamp the source line on every statement this call produced;
        # nested statements were stamped by their own parse_stmt calls
        for s in out[start:]:
            if s.loc is None:
                s.loc = line

    def _parse_stmt_inner(self, out: list[Stmt]) -> None:
        t = self.peek()
        if t.text == ";":
            self.next()
            return
        if t.text == "{":
            self.next()
            self.push_scope()
            while not self.accept("}"):
                self.parse_stmt(out)
            self.pop_scope()
            return
        if t.text == "__shared__":
            out.append(self.parse_shared_decl())
            return
        if t.text == "if":
            out.append(self.parse_if())
            return
        if t.text == "for":
            out.append(self.parse_for())
            return
        if t.text == "while":
            out.append(self.parse_while())
            return
        if t.text == "do":
            out.append(self.parse_do_while())
            return
        if t.text == "return":
            self.next()
            if not self.accept(";"):
                raise self.error("kernels return void; 'return <expr>' invalid")
            out.append(Return())
            return
        if t.text == "break":
            self.next()
            self.expect(";")
            out.append(Break())
            return
        if t.text == "continue":
            self.next()
            self.expect(";")
            out.append(Continue())
            return
        if t.text == "__syncthreads":
            self.next()
            self.expect("(")
            self.expect(")")
            self.expect(";")
            out.append(SyncThreads())
            return
        if self.at_type():
            self.parse_decl(out)
            self.expect(";")
            return
        # expression statement: assignment, ++/--, or atomic call
        out.append(self.parse_expr_stmt())
        self.expect(";")

    def parse_shared_decl(self) -> AllocShared:
        self.expect("__shared__")
        elem = self.parse_scalar_type()
        name = self.next()
        if name.kind != "ident":
            raise ParseError(
                f"expected shared array name, found {name.text!r}",
                name.line,
                name.col,
            )
        self.expect("[")
        size = self.parse_expr()
        self.expect("]")
        if self.at("["):
            raise self.error(
                "multi-dimensional __shared__ arrays not supported; linearize"
            )
        self.expect(";")
        self.declare(name.text, PointerType(elem, AddressSpace.SHARED))
        return AllocShared(name.text, elem, size)

    def parse_decl(self, out: list[Stmt]) -> None:
        base = self.parse_scalar_type()
        while True:
            if self.at("*"):
                raise self.error("local pointer declarations not supported")
            t = self.next()
            if t.kind != "ident":
                raise ParseError(
                    f"expected variable name, found {t.text!r}", t.line, t.col
                )
            if self.at("["):
                # per-thread local array: `float acc[8];`
                self.expect("[")
                size = self.parse_expr()
                self.expect("]")
                if self.at("["):
                    raise self.error(
                        "multi-dimensional local arrays not supported; linearize"
                    )
                if self.at("="):
                    raise self.error("local array initializers not supported")
                self.declare(t.text, PointerType(base, AddressSpace.LOCAL))
                out.append(AllocLocal(t.text, base, size))
                if not self.accept(","):
                    break
                continue
            if self.accept("="):
                value = self.parse_assign_rhs()
            else:
                value = Const(0, base) if not base.is_float else Const(0.0, base)
            value = _coerce(value, base)
            self.declare(t.text, base)
            out.append(Assign(t.text, value, type=base, declare=True))
            if not self.accept(","):
                break

    def parse_if(self) -> If:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body: list[Stmt] = []
        self.push_scope()
        self.parse_stmt(then_body)
        self.pop_scope()
        else_body: list[Stmt] = []
        if self.accept("else"):
            self.push_scope()
            self.parse_stmt(else_body)
            self.pop_scope()
        return If(cond, then_body, else_body)

    def parse_while(self) -> While:
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body: list[Stmt] = []
        self.push_scope()
        self.parse_stmt(body)
        self.pop_scope()
        return While(cond, body)

    def parse_do_while(self) -> While:
        """``do { body } while (cond);`` desugars to
        ``while (true) { body; if (!cond) break; }`` — body executes at
        least once, no statement duplication."""
        self.expect("do")
        body: list[Stmt] = []
        self.push_scope()
        self.parse_stmt(body)
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        self.pop_scope()
        body.append(If(UnOp("!", cond), [Break()], []))
        return While(Const(True, BOOL), body)

    def parse_for(self) -> For:
        self.expect("for")
        self.expect("(")
        self.push_scope()
        # init: declaration `int i = e` or assignment `i = e`
        if self.at_type():
            base = self.parse_scalar_type()
            var_tok = self.next()
            var = var_tok.text
            self.expect("=")
            start = _coerce(self.parse_expr(), base)
            self.declare(var, base)
        else:
            var_tok = self.next()
            var = var_tok.text
            declared = self.lookup(var)
            if declared is None or isinstance(declared, PointerType):
                raise ParseError(
                    f"loop variable {var!r} is not a declared integer",
                    var_tok.line,
                    var_tok.col,
                )
            self.expect("=")
            start = _coerce(self.parse_expr(), declared)
        self.expect(";")
        # condition: var </<=/>/>= bound
        cond_var = self.next()
        if cond_var.text != var:
            raise ParseError(
                f"for-loop condition must test the loop variable {var!r}",
                cond_var.line,
                cond_var.col,
            )
        rel = self.next().text
        if rel not in ("<", "<=", ">", ">="):
            raise self.error("for-loop condition must be a comparison")
        bound = self.parse_expr()
        self.expect(";")
        # increment: var++ / var-- / var += e / var -= e / var = var + e
        inc_var = self.next()
        if inc_var.text != var:
            raise ParseError(
                f"for-loop increment must update {var!r}", inc_var.line, inc_var.col
            )
        t = self.next()
        one = Const(1, I32)
        if t.text == "++":
            step: Expr = one
        elif t.text == "--":
            step = UnOp("-", one)
        elif t.text == "+=":
            step = self.parse_expr()
        elif t.text == "-=":
            step = UnOp("-", self.parse_expr())
        elif t.text == "=":
            e = self.parse_expr()
            step = _extract_step(e, var)
            if step is None:
                raise ParseError(
                    f"unsupported for-loop increment for {var!r}", t.line, t.col
                )
        else:
            raise ParseError(
                f"unsupported for-loop increment {t.text!r}", t.line, t.col
            )
        self.expect(")")
        # normalize <= / >= bounds to the IR's exclusive convention
        if rel == "<=":
            stop: Expr = BinOp("+", bound, one)
        elif rel == ">=":
            stop = BinOp("-", bound, one)
        else:
            stop = bound
        body: list[Stmt] = []
        self.parse_stmt(body)
        self.pop_scope()
        return For(var, start, stop, step, body)

    def parse_expr_stmt(self) -> Stmt:
        t = self.peek()
        # atomic builtin as a statement
        if t.kind == "ident" and t.text in _ATOMICS:
            return self.parse_atomic(result=None)
        if t.kind != "ident":
            raise self.error("expected a statement")
        name = t.text
        nxt = self.peek(1).text
        if nxt == "[" or (self.lookup(name) is not None and not isinstance(
            self.lookup(name), PointerType
        )):
            pass  # fall through to target parsing
        # parse target: ident or ident[expr]
        self.next()
        declared = self.lookup(name)
        if declared is None:
            raise ParseError(
                f"assignment to undeclared variable {name!r}", t.line, t.col
            )
        if self.at("["):
            if not isinstance(declared, PointerType):
                raise ParseError(f"{name!r} is not indexable", t.line, t.col)
            self.expect("[")
            index = self.parse_expr()
            self.expect("]")
            ptr = self._name_ref(name, declared)
            op_tok = self.next()
            if op_tok.text == "=":
                value = self.parse_assign_rhs()
            elif op_tok.text in _ASSIGN_OPS:
                value = BinOp(
                    _ASSIGN_OPS[op_tok.text], Load(ptr, index), self.parse_assign_rhs()
                )
            elif op_tok.text == "++":
                value = BinOp("+", Load(ptr, index), Const(1, I32))
            elif op_tok.text == "--":
                value = BinOp("-", Load(ptr, index), Const(1, I32))
            else:
                raise ParseError(
                    f"expected assignment, found {op_tok.text!r}",
                    op_tok.line,
                    op_tok.col,
                )
            return Store(ptr, index, _coerce(value, declared.elem))
        # scalar variable target
        if isinstance(declared, PointerType):
            raise ParseError(
                f"cannot assign to pointer {name!r}", t.line, t.col
            )
        var = Var(name, declared)
        op_tok = self.next()
        if op_tok.text == "=":
            # maybe `old = atomicAdd(...)`
            if self.peek().kind == "ident" and self.peek().text in _ATOMICS:
                return self.parse_atomic(result=name)
            value = self.parse_assign_rhs()
        elif op_tok.text in _ASSIGN_OPS:
            value = BinOp(_ASSIGN_OPS[op_tok.text], var, self.parse_assign_rhs())
        elif op_tok.text == "++":
            value = BinOp("+", var, Const(1, I32))
        elif op_tok.text == "--":
            value = BinOp("-", var, Const(1, I32))
        else:
            raise ParseError(
                f"expected assignment, found {op_tok.text!r}", op_tok.line, op_tok.col
            )
        return Assign(name, _coerce(value, declared), type=declared, declare=False)

    def parse_atomic(self, result: str | None) -> Atomic:
        t = self.next()
        op = _ATOMICS[t.text]
        self.expect("(")
        self.expect("&")
        name_tok = self.next()
        declared = self.lookup(name_tok.text)
        if not isinstance(declared, PointerType):
            raise ParseError(
                f"atomic target {name_tok.text!r} is not an array",
                name_tok.line,
                name_tok.col,
            )
        ptr = self._name_ref(name_tok.text, declared)
        self.expect("[")
        index = self.parse_expr()
        self.expect("]")
        self.expect(",")
        compare = None
        if op == "cas":
            compare = self.parse_expr()
            self.expect(",")
        value = _coerce(self.parse_expr(), declared.elem)
        self.expect(")")
        if result is not None:
            self.declare(result, declared.elem)
        return Atomic(op, ptr, index, value, result=result, compare=compare)

    def parse_assign_rhs(self) -> Expr:
        return self.parse_expr()

    # -- expressions ------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            a = self.parse_ternary()
            self.expect(":")
            b = self.parse_ternary()
            return Select(cond, a, b)
        return cond

    def parse_binary(self, level: int) -> Expr:
        if level >= len(_BIN_LEVELS):
            return self.parse_unary()
        ops = _BIN_LEVELS[level]
        lhs = self.parse_binary(level + 1)
        while self.peek().text in ops:
            op = self.next().text
            rhs = self.parse_binary(level + 1)
            lhs = BinOp(op, lhs, rhs)
        return lhs

    def parse_unary(self) -> Expr:
        t = self.peek()
        if t.text == "-":
            self.next()
            return UnOp("-", self.parse_unary())
        if t.text == "!":
            self.next()
            return UnOp("!", self.parse_unary())
        if t.text == "~":
            self.next()
            return UnOp("~", self.parse_unary())
        if t.text == "+":
            self.next()
            return self.parse_unary()
        if t.text == "(":
            # cast or parenthesized expression
            nxt = self.peek(1)
            if nxt.kind == "kw" and nxt.text in _TYPE_KEYWORDS:
                self.next()
                ty = self.parse_scalar_type()
                if self.at("*"):
                    raise self.error("pointer casts not supported")
                self.expect(")")
                return Cast(ty, self.parse_unary())
            self.next()
            e = self.parse_expr()
            self.expect(")")
            return self.parse_postfix(e)
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        t = self.next()
        if t.kind == "int":
            text = t.text.rstrip("uUlL")
            value = int(text, 16) if text.lower().startswith("0x") else int(text)
            return Const(value, I32 if -(2**31) <= value < 2**31 else I64)
        if t.kind == "float":
            is_f32 = t.text[-1] in "fF"
            text = t.text.rstrip("fF")
            return Const(float(text), F32 if is_f32 else F64)
        if t.kind == "kw" and t.text in ("true", "false"):
            return Const(t.text == "true", BOOL)
        if t.kind != "ident":
            raise ParseError(f"unexpected token {t.text!r}", t.line, t.col)
        name = t.text
        # CUDA builtin registers
        if name in ("threadIdx", "blockIdx", "blockDim", "gridDim"):
            self.expect(".")
            axis = self.next()
            key = (name, axis.text)
            if key not in _SREGS:
                raise ParseError(
                    f"unknown builtin {name}.{axis.text}", axis.line, axis.col
                )
            return SReg(_SREGS[key])
        # intrinsic call
        if self.at("(") and name in _INTRINSIC_MAP:
            self.next()
            args = []
            if not self.at(")"):
                while True:
                    args.append(self.parse_expr())
                    if not self.accept(","):
                        break
            self.expect(")")
            return Call(_INTRINSIC_MAP[name], tuple(args))
        if self.at("(") and name in _ATOMICS:
            raise ParseError(
                f"{name} may only appear as a statement or the sole RHS of an "
                "assignment",
                t.line,
                t.col,
            )
        if self.at("("):
            raise ParseError(f"unknown function {name!r}", t.line, t.col)
        declared = self.lookup(name)
        if declared is None:
            raise ParseError(f"use of undeclared identifier {name!r}", t.line, t.col)
        ref = self._name_ref(name, declared)
        return self.parse_postfix(ref)

    def parse_postfix(self, e: Expr) -> Expr:
        while self.at("["):
            if not isinstance(getattr(e, "type", None), PointerType):
                raise self.error("only pointers can be indexed")
            self.next()
            index = self.parse_expr()
            self.expect("]")
            e = Load(e, index)
        return e

    def _name_ref(self, name: str, declared) -> Expr:
        """A reference expression for a declared name (Param or Var)."""
        if name in self.scopes[0]:
            return Param(name, declared)
        return Var(name, declared)


def _coerce(e: Expr, target: DType) -> Expr:
    """Implicit C conversion of an expression to a declared type."""
    if e.dtype == target:
        return e
    if isinstance(e, Const):
        if target.is_float:
            return Const(float(e.value), target)
        if not e.type.is_float:
            return Const(int(e.value), target)
    return Cast(target, e)


def _extract_step(e: Expr, var: str) -> Expr | None:
    """Extract the step from ``var = var + k`` / ``var = var - k`` forms."""
    if isinstance(e, BinOp) and e.op in ("+", "-"):
        if isinstance(e.lhs, Var) and e.lhs.name == var:
            return e.rhs if e.op == "+" else UnOp("-", e.rhs)
        if e.op == "+" and isinstance(e.rhs, Var) and e.rhs.name == var:
            return e.lhs
    return None


def parse_cuda(source: str) -> list[Kernel]:
    """Parse CUDA source containing one or more ``__global__`` kernels."""
    parser = _Parser(tokenize(source))
    kernels = parser.parse_unit()
    for k in kernels:
        k.source = source
    return kernels


def parse_kernel(source: str) -> Kernel:
    """Parse CUDA source expected to contain exactly one kernel."""
    kernels = parse_cuda(source)
    if len(kernels) != 1:
        raise ParseError(f"expected exactly 1 kernel, found {len(kernels)}")
    return kernels[0]

"""Python-embedded kernel DSL.

A decorator front-end over :class:`~repro.ir.builder.IRBuilder` for
defining kernels in Python instead of CUDA source — the workload library
uses it for kernels that are parameterized programmatically::

    from repro.frontend.dsl import kernel, ptr
    from repro.ir import F32, I32

    @kernel(src=ptr(F32), dest=ptr(F32), n=I32)
    def scale2(b, src, dest, n):
        gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
        with b.if_(gid < n):
            b.store(dest, gid, b.load(src, gid) * 2.0)

    # `scale2` is now a repro.ir.Kernel

The decorated function receives the builder plus one reference expression
per declared parameter, in declaration order; its name becomes the kernel
name (override with ``name=``).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import DSLError
from repro.ir.builder import IRBuilder
from repro.ir.stmt import Kernel
from repro.ir.types import AddressSpace, DType, PointerType

__all__ = ["kernel", "ptr"]


def ptr(elem: DType, space: AddressSpace = AddressSpace.GLOBAL) -> PointerType:
    """Shorthand for a global-memory pointer parameter type."""
    return PointerType(elem, space)


def kernel(name: str | None = None, **params: DType | PointerType):
    """Decorator: build a :class:`~repro.ir.stmt.Kernel` from a Python
    function that drives an :class:`~repro.ir.builder.IRBuilder`.

    Keyword arguments declare the kernel parameters in order.  The
    decorated function is invoked once at decoration time; the resulting
    IR kernel replaces it.
    """

    def decorate(fn: Callable) -> Kernel:
        kname = name or fn.__name__
        b = IRBuilder(kname)
        refs = []
        for pname, ptype in params.items():
            if isinstance(ptype, PointerType):
                refs.append(b.pointer_param(pname, ptype.elem, ptype.space))
            elif isinstance(ptype, DType):
                refs.append(b.scalar_param(pname, ptype))
            else:
                raise DSLError(
                    f"parameter {pname!r}: expected a DType or PointerType, "
                    f"got {ptype!r}"
                )
        result = fn(b, *refs)
        if result is not None:
            raise DSLError(
                f"kernel body {fn.__name__!r} must build via the IRBuilder "
                "and return None"
            )
        return b.finish()

    return decorate

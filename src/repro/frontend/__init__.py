"""Kernel frontends: the CUDA C subset parser and the Python DSL."""

from repro.frontend.dsl import kernel, ptr
from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse_cuda, parse_kernel

__all__ = ["parse_cuda", "parse_kernel", "tokenize", "Token", "kernel", "ptr"]

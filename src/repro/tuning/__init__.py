"""Collective autotuning: cost-model selection + empirical tuning cache.

The zoo in :mod:`repro.cluster.collectives` gives the runtime several
functionally identical Allgather algorithms with different modeled
costs.  This package decides which one to run:

* :func:`select_algorithm` — the cost-model selector: price every zoo
  member on the communicator's topology and take the argmin (stable
  tie-break: earlier entries of ``ALLGATHER_ALGOS`` win);
* :func:`autotune` — the empirical autotuner: run every algorithm
  through the real :class:`~repro.cluster.comm.Communicator` on the
  simulated cluster per payload bucket, verify the results are
  bit-identical, and record the measured winners;
* :class:`TuningCache` — the persistent JSON store of winners, keyed by
  (topology signature, node count, power-of-two payload bucket) and
  hot-loaded by ``"auto"`` resolution on the next run.
"""

from repro.tuning.autotune import autotune
from repro.tuning.cache import DEFAULT_CACHE_PATH, TuningCache, payload_bucket
from repro.tuning.select import select_algorithm

__all__ = [
    "TuningCache",
    "payload_bucket",
    "DEFAULT_CACHE_PATH",
    "select_algorithm",
    "autotune",
]

"""The persistent tuning cache.

One entry per ``(topology signature, node count, payload bucket)``:
the winning algorithm plus the per-algorithm costs that decided it.
Payloads are bucketed by power of two — bucket ``b`` covers
``(2**(b-1), 2**b]`` bytes — so one autotuning sweep generalizes to
nearby sizes, exactly how MPI tuning tables are keyed.

On-disk format (``version`` guards future schema changes)::

    {
      "version": 1,
      "entries": {
        "flat(a=2e-06,b=11)|n=4|b=20": {
          "algo": "recursive_doubling",
          "costs": {"ring": 3.1e-4, "recursive_doubling": 2.9e-4, ...}
        }
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.collectives import ALLGATHER_ALGOS
from repro.cluster.topology import Topology
from repro.errors import ClusterError
from repro.ioutil import atomic_write_text

__all__ = ["TuningCache", "payload_bucket", "DEFAULT_CACHE_PATH"]

SCHEMA_VERSION = 1

#: default cache file written by ``repro tune`` and read by ``repro run``
DEFAULT_CACHE_PATH = ".repro-tuning.json"


def payload_bucket(nbytes: float) -> int:
    """Power-of-two bucket index of a payload: ``2**(b-1) < nbytes <= 2**b``
    (bucket 0 holds everything up to one byte)."""
    n = int(nbytes)
    if n <= 1:
        return 0
    return (n - 1).bit_length()


class TuningCache:
    """In-memory view of the tuning table, JSON round-trippable."""

    def __init__(
        self,
        entries: dict[str, dict] | None = None,
        path: str | Path | None = None,
    ):
        self.entries: dict[str, dict] = dict(entries or {})
        self.path = Path(path) if path is not None else None

    # -- keying ---------------------------------------------------------
    @staticmethod
    def key(signature: str, n: int, nbytes: float) -> str:
        return f"{signature}|n={n}|b={payload_bucket(nbytes)}"

    # -- access ---------------------------------------------------------
    def lookup(self, topo: Topology, n: int, nbytes: float) -> str | None:
        """The cached winner for this bucket, or ``None`` on a miss (or
        when the cached name is no longer a known algorithm)."""
        entry = self.entries.get(self.key(topo.signature, n, nbytes))
        if entry is None:
            return None
        algo = entry.get("algo")
        return algo if algo in ALLGATHER_ALGOS else None

    def record(
        self,
        topo: Topology,
        n: int,
        nbytes: float,
        algo: str,
        costs: dict[str, float] | None = None,
    ) -> None:
        if algo not in ALLGATHER_ALGOS:
            raise ClusterError(f"cannot cache unknown algorithm {algo!r}")
        self.entries[self.key(topo.signature, n, nbytes)] = {
            "algo": algo,
            "costs": {k: float(v) for k, v in (costs or {}).items()},
        }

    def __len__(self) -> int:
        return len(self.entries)

    def merge(self, other: TuningCache) -> None:
        """Adopt every entry of ``other`` (theirs win on conflict)."""
        self.entries.update(other.entries)

    # -- persistence ----------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write the cache as JSON; returns the path written.

        The write is atomic (temp file + ``os.replace``, like ``.rckp``
        writes) so concurrent jobs sharing the cache never observe a
        torn file — a reader sees the old contents or the new, nothing
        in between.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ClusterError("tuning cache has no path to save to")
        atomic_write_text(
            target,
            json.dumps(
                {"version": SCHEMA_VERSION, "entries": self.entries},
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
        self.path = target
        return target

    @classmethod
    def load(cls, path: str | Path) -> TuningCache:
        """Read a cache file; a missing file yields an empty cache bound
        to the same path (so a later :meth:`save` creates it)."""
        p = Path(path)
        if not p.exists():
            return cls(path=p)
        try:
            doc = json.loads(p.read_text())
        except json.JSONDecodeError as e:
            raise ClusterError(f"tuning cache {p} is not valid JSON: {e}")
        if not isinstance(doc, dict) or doc.get("version") != SCHEMA_VERSION:
            raise ClusterError(
                f"tuning cache {p} has unsupported version "
                f"{doc.get('version') if isinstance(doc, dict) else doc!r}"
            )
        entries = doc.get("entries", {})
        if not isinstance(entries, dict):
            raise ClusterError(f"tuning cache {p}: entries must be an object")
        return cls(entries=entries, path=p)

    def __repr__(self) -> str:
        where = f" @ {self.path}" if self.path else ""
        return f"TuningCache({len(self)} entries{where})"

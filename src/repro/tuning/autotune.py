"""The empirical autotuner.

Benchmarks every zoo algorithm through the *real*
:class:`~repro.cluster.comm.Communicator` — scratch buffers, actual
schedule-driven data movement, modeled durations — per payload bucket on
the given cluster, verifies that every algorithm reproduces the exact
gathered bytes, and records the measured winners in a
:class:`~repro.tuning.cache.TuningCache`.

Tuning is side-effect-free on the cluster: simulated clocks, traffic
accounting and the fault injector are snapshotted and restored, and the
scratch buffers are freed, so a tuning sweep never perturbs a subsequent
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.collectives import ALLGATHER_ALGOS
from repro.errors import ClusterError
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanKind
from repro.tuning.cache import TuningCache

__all__ = ["autotune", "DEFAULT_PAYLOADS"]

#: default payload sweep: 1 KiB .. 4 MiB total Allgather bytes
DEFAULT_PAYLOADS = tuple(1 << k for k in range(10, 23, 2))

_SCRATCH = "__tuning_scratch__"


def autotune(
    cluster,
    payloads: tuple[int, ...] | None = None,
    algorithms: tuple[str, ...] = ALLGATHER_ALGOS,
    cache: TuningCache | None = None,
    verify: bool = True,
    flow_log=None,
) -> TuningCache:
    """Measure every algorithm per payload and cache the winners.

    ``payloads`` are *total* Allgather bytes (defaults to
    :data:`DEFAULT_PAYLOADS`); each is rounded down to a whole number of
    bytes per rank.  Returns the (possibly given) ``cache`` with one
    entry per payload bucket; ties break toward earlier ``algorithms``
    entries.  With ``verify`` (default), a functional mismatch between
    any algorithm's gathered bytes and the expected concatenation raises
    :class:`~repro.errors.ClusterError` — tuning must never trade
    correctness for speed.

    ``flow_log`` (a path) attaches a fresh
    :class:`~repro.obs.netflow.NetFlowLedger` to every trial and writes
    one ``kind="tune"`` netflow document: per payload and algorithm,
    the measured duration, the selector's modeled cost, the exact
    alpha / serialization / contention decomposition, and the hottest
    links — the evidence ``repro netview --explain-tune`` renders to
    show why the winner won and what the rejected algorithms would
    have done to the wires.
    """
    comm = cluster.comm
    n = comm.size
    if cache is None:
        cache = TuningCache()
    if n <= 1:
        return cache  # nothing to gather, nothing to tune
    payloads = tuple(payloads if payloads is not None else DEFAULT_PAYLOADS)

    saved_clocks = [nd.clock.now for nd in comm.nodes]
    saved_seconds = comm.comm_seconds
    saved_bytes = comm.comm_bytes
    saved_injector = comm.injector
    comm.injector = None  # faults target experiments, not tuning sweeps
    # trial collectives replay at restored clock times and their traffic
    # is not experiment traffic: detach the communicator's tracer and
    # metrics for the sweep, and lay the trials out on a synthetic
    # sequential timeline of their own instead
    tracer = comm.tracer
    comm.tracer = NULL_TRACER
    saved_metrics = comm.metrics
    comm.metrics = MetricsRegistry(enabled=False)
    # an experiment's flow ledger must not see sweep traffic either;
    # flow_log trials get their own throwaway ledgers
    saved_netflow = comm.netflow
    comm.netflow = None
    cursor = 0.0
    flow_entries: list[dict] = []

    def restore_accounting() -> None:
        for nd, t in zip(comm.nodes, saved_clocks):
            nd.clock.reset(t)
        comm.comm_seconds = saved_seconds
        comm.comm_bytes = saved_bytes

    try:
        for payload in payloads:
            per_rank = max(1, int(payload) // n)
            total = per_rank * n
            expected = np.concatenate(
                [_pattern(nd.born_rank, per_rank) for nd in comm.nodes]
            )
            measured: dict[str, float] = {}
            flow_trials: dict[str, dict] = {}
            for algo in algorithms:
                for r, nd in enumerate(comm.nodes):
                    buf = nd.alloc(_SCRATCH, total, np.uint8)
                    buf[r * per_rank : (r + 1) * per_rank] = _pattern(
                        nd.born_rank, per_rank
                    )
                if flow_log is not None:
                    from repro.obs.netflow import NetFlowLedger

                    comm.netflow = NetFlowLedger()
                duration = comm.allgather_in_place(
                    _SCRATCH, 0, per_rank, algo=algo
                )
                if flow_log is not None:
                    flow_trials[algo] = _flow_trial(comm.netflow, duration)
                    comm.netflow = None
                if verify:
                    for nd in comm.nodes:
                        if not np.array_equal(nd.buffer(_SCRATCH), expected):
                            raise ClusterError(
                                f"autotune: {algo!r} produced wrong bytes on "
                                f"rank {nd.rank} at {total} B over {n} ranks"
                            )
                for nd in comm.nodes:
                    nd.free(_SCRATCH)
                measured[algo] = duration
                if tracer.enabled:
                    tracer.add(
                        f"trial {algo} {total}B",
                        SpanKind.TUNE,
                        cursor,
                        cursor + duration,
                        algo=algo,
                        payload=total,
                        dur_s=duration,
                    )
                    cursor += duration
                METRICS.inc("tuning.autotune_trials", algo=algo)
                restore_accounting()
            winner = min(measured, key=measured.__getitem__)
            cache.record(comm.topology, n, total, winner, measured)
            if flow_log is not None:
                from repro.tuning.select import algorithm_costs

                modeled = algorithm_costs(
                    comm.topology, float(total),
                    positions=comm._positions(), algorithms=algorithms,
                )
                for algo, entry in flow_trials.items():
                    entry["modeled_s"] = modeled.get(algo)
                    entry["chosen"] = algo == winner
                flow_entries.append({
                    "payload_bytes": total,
                    "per_rank_bytes": per_rank,
                    "winner": winner,
                    "trials": flow_trials,
                })
    finally:
        comm.injector = saved_injector
        comm.tracer = tracer
        comm.metrics = saved_metrics
        comm.netflow = saved_netflow
        for nd in comm.nodes:
            if nd.has_buffer(_SCRATCH):
                nd.free(_SCRATCH)
        restore_accounting()
    if flow_log is not None:
        _write_flow_log(flow_log, comm, n, flow_entries)
    return cache


def _flow_trial(ledger, duration: float) -> dict:
    """One trial's ledger distilled for the tune document."""
    colls = ledger.collectives()
    c = colls[0] if colls else None
    links = sorted(
        ledger.links().items(),
        key=lambda kv: (-kv[1]["bytes"], kv[0]),
    )
    return {
        "measured_s": duration,
        "alpha_s": c.alpha_s if c else 0.0,
        "serial_s": c.serial_s if c else 0.0,
        "contention_s": c.contention_s if c else 0.0,
        "rounds": c.rounds if c else 0,
        "bytes": c.nbytes if c else 0,
        "links": {
            label: {
                "kind": e["kind"], "bytes": e["bytes"], "msgs": e["msgs"],
                "queue_s": e["queue_s"],
            }
            for label, e in links[:8]
        },
    }


def _write_flow_log(flow_log, comm, n: int, entries: list[dict]) -> None:
    import json

    from repro.ioutil import atomic_write_text
    from repro.obs.netflow import NETFLOW_FORMAT_VERSION

    doc = {
        "netflow_format_version": NETFLOW_FORMAT_VERSION,
        "kind": "tune",
        "nodes": n,
        "topology": comm.topology.signature,
        "payloads": entries,
    }
    atomic_write_text(flow_log, json.dumps(doc, indent=1, sort_keys=True)
                      + "\n")


def _pattern(born_rank: int, per_rank: int) -> np.ndarray:
    """Deterministic, rank-distinguishing byte pattern."""
    return (
        np.arange(per_rank, dtype=np.int64) * 131 + 17 * (born_rank + 1)
    ).astype(np.uint8)

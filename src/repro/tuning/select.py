"""Cost-model-driven algorithm selection (the ``"auto"`` resolution)."""

from __future__ import annotations

from repro.cluster.collectives import ALLGATHER_ALGOS, allgather_algo_cost
from repro.cluster.topology import Topology
from repro.obs.metrics import METRICS

__all__ = ["select_algorithm", "algorithm_costs"]


def algorithm_costs(
    topo: Topology,
    nbytes: float,
    positions: tuple[int, ...] | None = None,
    algorithms: tuple[str, ...] = ALLGATHER_ALGOS,
) -> dict[str, float]:
    """Modeled balanced-Allgather cost of every candidate algorithm, in
    candidate order (which is also the selector's tie-break order)."""
    return {
        a: allgather_algo_cost(a, topo, nbytes, positions) for a in algorithms
    }


def select_algorithm(
    topo: Topology,
    nbytes: float,
    positions: tuple[int, ...] | None = None,
    cache=None,
    algorithms: tuple[str, ...] = ALLGATHER_ALGOS,
) -> str:
    """The algorithm ``"auto"`` resolves to for this payload.

    A :class:`~repro.tuning.cache.TuningCache` hit wins outright (the
    empirical measurement trumps the model); otherwise the cost model
    prices every candidate on ``topo`` and the cheapest wins, earlier
    ``algorithms`` entries breaking ties (ring first, so a fabric where
    nothing beats the seed's ring keeps it).
    """
    n = len(positions) if positions is not None else topo.num_nodes
    if n <= 1:
        return algorithms[0]
    if cache is not None:
        hit = cache.lookup(topo, n, nbytes)
        if hit is not None and hit in algorithms:
            METRICS.inc("tuning.cache_hits")
            return hit
        METRICS.inc("tuning.cache_misses")
    costs = algorithm_costs(topo, nbytes, positions, algorithms)
    return min(costs, key=costs.__getitem__)

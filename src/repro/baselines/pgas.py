"""PGAS (UPC++-style) migration baseline — the paper's sections 3.1 / 7.3.

The PGAS migration of a GPU kernel (paper Listing 3) keeps the
block-wrapped CPU code, but:

* buffers the kernel *writes* become PGAS global arrays.  Listing 3
  allocates them in one place (``pgas::global_ptr<char> dest(N)`` —
  affinity on rank 0), so every store becomes a fine-grained
  ``remote_put`` whose payload lands on rank 0: an *incast* that
  serializes at the owner's injection rate.  This is the naive but
  faithful migration the paper evaluates — "Listing 3 introduces 1200
  remote memory accesses, where each access is only 1 byte";
* read-only buffers stay ordinary replicated local arrays (Listing 3
  passes ``src`` as a plain ``char*``), costing nothing extra;
* loads from a written global array also go through the runtime.

Two structural consequences drive the gap the paper reports: the
per-element **fragmentation** of the communication (vs. one collective),
and the owner-side serialization that does **not** shrink as nodes are
added — which is why the CuCC/PGAS ratio grows with cluster size
(Figure 10) and why some PGAS workloads slow down at scale (Figure 4).

Functionally the global arrays are a real shared address space (that is
what PGAS provides), so results are exact; ownership only affects cost
accounting, which the instrumented executor measures from the actual
accesses each node issued.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.writes import collect_writes
from repro.cluster.cluster import Cluster
from repro.errors import LaunchError, DeviceMemoryError
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams, cpu_node_time
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.machine import BlockExecutor
from repro.ir.expr import Expr
from repro.ir.stmt import Kernel
from repro.obs.tracer import NULL_TRACER, SpanKind, Tracer
from repro.transform.vectorize import analyze_vectorizability

__all__ = ["PGASRuntime", "PGASLaunchRecord", "PGAS_LOCAL_ACCESS_S"]

#: software cost of one *local-affinity* global-array access through the
#: PGAS runtime (pointer translation + affinity check), per core
PGAS_LOCAL_ACCESS_S = 2.0e-8


class _PGASBlockExecutor(BlockExecutor):
    """Block executor that meters accesses to PGAS global arrays.

    ``global_buffers`` maps each global (written) buffer's *parameter
    name* to its owner rank; accesses from other ranks are remote.
    """

    def __init__(
        self, *args, rank: int, global_params: dict[str, int], **kwargs
    ):
        super().__init__(*args, **kwargs)
        self._rank = rank
        self._globals = global_params
        self.local_ops = 0.0
        self.remote_ops = 0.0
        self.remote_bytes = 0.0

    def _on_global_access(self, ptr: Expr, idx, mask, is_store, elem_size) -> None:
        owner = self._globals.get(getattr(ptr, "name", None))
        if owner is None:
            return  # read-only replicated buffer: plain local access
        n_active = float(np.count_nonzero(mask))
        if owner == self._rank:
            self.local_ops += n_active
        else:
            self.remote_ops += n_active
            self.remote_bytes += n_active * elem_size


@dataclass
class PGASLaunchRecord:
    """Trace entry for one PGAS kernel launch."""

    kernel_name: str
    config: LaunchConfig
    time: float
    per_node_compute: list[float]
    local_ops: float
    remote_ops: float
    remote_bytes: float
    incast_time: float

    @property
    def comm_fraction(self) -> float:
        return self.incast_time / self.time if self.time > 0 else 0.0


class PGASRuntime:
    """UPC++-style distributed execution of migrated GPU kernels.

    GPU blocks are split in contiguous ranges across nodes (paper
    Listing 3 lines 16-19); written buffers are global arrays with
    affinity on rank 0.
    """

    def __init__(
        self,
        cluster: Cluster,
        params: ModelParams = DEFAULT_PARAMS,
        bounds_check: bool = True,
        trace: bool | Tracer = False,
    ):
        self.cluster = cluster
        self.params = params
        self.bounds_check = bounds_check
        #: span tracer (see repro.obs); shared with the communicator so
        #: the final barrier shows up as a collective span
        self.tracer: Tracer = (
            trace if isinstance(trace, Tracer)
            else (Tracer() if trace else NULL_TRACER)
        )
        cluster.comm.tracer = self.tracer
        self.launches: list[PGASLaunchRecord] = []
        self._memory: dict[str, np.ndarray] = {}

    # -- global heap --------------------------------------------------------
    def alloc(self, name: str, size: int, dtype) -> str:
        if name in self._memory:
            raise DeviceMemoryError(f"buffer {name!r} already allocated")
        self._memory[name] = np.zeros(int(size), dtype=np.dtype(dtype))
        return name

    def free(self, name: str) -> None:
        if name not in self._memory:
            raise DeviceMemoryError(f"unknown buffer {name!r}")
        del self._memory[name]

    def memcpy_h2d(self, name: str, host: np.ndarray) -> None:
        buf = self._buffer(name)
        host = np.ascontiguousarray(host).reshape(-1)
        if host.dtype != buf.dtype or host.size != buf.size:
            raise DeviceMemoryError(f"memcpy_h2d {name!r}: shape/dtype mismatch")
        buf[:] = host

    def memcpy_d2h(self, name: str) -> np.ndarray:
        return self._buffer(name).copy()

    def _buffer(self, name: str) -> np.ndarray:
        try:
            return self._memory[name]
        except KeyError:
            raise DeviceMemoryError(f"unknown buffer {name!r}") from None

    # -- launch ----------------------------------------------------------------
    def launch(
        self, kernel: Kernel, grid, block, args: dict[str, object]
    ) -> PGASLaunchRecord:
        config = LaunchConfig.make(grid, block)
        n = self.cluster.num_nodes
        run_args: dict[str, object] = {}
        buffer_params: list[str] = []
        for p in kernel.params:
            if p.name not in args:
                raise LaunchError(f"missing argument {p.name!r}")
            v = args[p.name]
            if p.is_pointer:
                if not isinstance(v, str):
                    raise LaunchError(
                        f"pointer argument {p.name!r} must be a buffer name"
                    )
                run_args[p.name] = self._buffer(v)
                buffer_params.append(p.name)
            else:
                run_args[p.name] = v

        # written buffers become rank-0-affinity global arrays
        written = {rec.buffer for rec in collect_writes(kernel)}
        global_params = {name: 0 for name in buffer_params if name in written}
        vectorized = analyze_vectorizability(kernel).vectorizable

        B = config.num_blocks
        q = math.ceil(B / n)
        net = self.cluster.network
        start = max(node.clock.now for node in self.cluster.nodes)
        lspan = (
            self.tracer.begin(f"launch {kernel.name}", SpanKind.LAUNCH, start)
            if self.tracer.enabled
            else None
        )
        per_node_compute: list[float] = []
        tot_local = tot_remote = tot_rbytes = 0.0
        for node in self.cluster.nodes:
            node.clock.wait_until(start)
            lo, hi = node.rank * q, min((node.rank + 1) * q, B)
            counters = OpCounters()
            ex = _PGASBlockExecutor(
                kernel,
                config,
                run_args,
                counters,
                bounds_check=self.bounds_check,
                rank=node.rank,
                global_params=global_params,
            )
            ex.run_blocks(range(lo, hi))
            nblocks = hi - lo
            compute = cpu_node_time(
                node.spec,
                counters,
                nblocks,
                vectorized=vectorized,
                params=self.params,
            )
            local_t = ex.local_ops * PGAS_LOCAL_ACCESS_S / max(1, node.spec.cores)
            if lspan is not None:
                t0 = node.clock.now
                self.tracer.add(
                    f"pgas rank {node.born_rank}",
                    SpanKind.EXEC,
                    t0,
                    t0 + compute + local_t,
                    rank=node.born_rank,
                    phase="pgas",
                    blocks=nblocks,
                    dur_s=compute + local_t,
                )
            node.clock.advance(compute + local_t)
            per_node_compute.append(compute)
            tot_local += ex.local_ops
            tot_remote += ex.remote_ops
            tot_rbytes += ex.remote_bytes

        # incast: every remote access serializes at the owner's NIC
        incast = (
            tot_remote / net.rma_rate_per_node
            + tot_rbytes / net.beta_bytes_per_s
            + (net.rma_alpha_s if tot_remote else 0.0)
        )
        if incast:
            end_compute = max(node.clock.now for node in self.cluster.nodes)
            if lspan is not None:
                self.tracer.add(
                    "incast",
                    SpanKind.COLLECTIVE,
                    end_compute,
                    end_compute + incast,
                    remote_ops=tot_remote,
                    remote_bytes=tot_rbytes,
                    dur_s=incast,
                )
            for node in self.cluster.nodes:
                node.clock.wait_until(end_compute + incast)
            self.cluster.comm.comm_seconds += incast
            self.cluster.comm.comm_bytes += int(tot_rbytes)
        self.cluster.comm.barrier()
        end = max(node.clock.now for node in self.cluster.nodes)
        if lspan is not None:
            lspan.args.update(
                kernel=kernel.name,
                dur_s=end - start,
                remote_ops=tot_remote,
                remote_bytes=tot_rbytes,
            )
            self.tracer.end(lspan, end)
        record = PGASLaunchRecord(
            kernel_name=kernel.name,
            config=config,
            time=end - start,
            per_node_compute=per_node_compute,
            local_ops=tot_local,
            remote_ops=tot_remote,
            remote_bytes=tot_rbytes,
            incast_time=incast,
        )
        self.launches.append(record)
        return record

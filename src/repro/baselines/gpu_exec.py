"""GPU execution baseline.

Executes the *original* (untransformed) GPU kernel functionally with the
SPMD interpreter over a single memory space, and models its runtime with
the GPU roofline/wave model.  This is the comparison side of the paper's
Figures 11 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.simtime import SimClock
from repro.errors import LaunchError, DeviceMemoryError
from repro.hw.gpu import GPUSpec
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams, gpu_time
from repro.interp.counters import OpCounters
from repro.interp.grid import LaunchConfig
from repro.interp.machine import BlockExecutor
from repro.ir.stmt import Kernel

__all__ = ["GPUDevice", "GPULaunchRecord"]


@dataclass
class GPULaunchRecord:
    """Trace entry for one GPU kernel launch."""

    kernel_name: str
    config: LaunchConfig
    time: float
    counters: OpCounters


class GPUDevice:
    """A simulated GPU: one memory space, wave-scheduled blocks."""

    def __init__(
        self,
        spec: GPUSpec,
        params: ModelParams = DEFAULT_PARAMS,
        bounds_check: bool = True,
    ):
        self.spec = spec
        self.params = params
        self.bounds_check = bounds_check
        self.clock = SimClock()
        self.launches: list[GPULaunchRecord] = []
        self._memory: dict[str, np.ndarray] = {}

    # -- memory API --------------------------------------------------------
    def alloc(self, name: str, size: int, dtype) -> str:
        if name in self._memory:
            raise DeviceMemoryError(f"buffer {name!r} already allocated")
        self._memory[name] = np.zeros(int(size), dtype=np.dtype(dtype))
        return name

    def free(self, name: str) -> None:
        if name not in self._memory:
            raise DeviceMemoryError(f"unknown buffer {name!r}")
        del self._memory[name]

    def memcpy_h2d(self, name: str, host: np.ndarray) -> None:
        buf = self._buffer(name)
        host = np.ascontiguousarray(host).reshape(-1)
        if host.dtype != buf.dtype or host.size != buf.size:
            raise DeviceMemoryError(f"memcpy_h2d {name!r}: shape/dtype mismatch")
        buf[:] = host

    def memcpy_d2h(self, name: str) -> np.ndarray:
        return self._buffer(name).copy()

    def _buffer(self, name: str) -> np.ndarray:
        try:
            return self._memory[name]
        except KeyError:
            raise DeviceMemoryError(f"unknown buffer {name!r}") from None

    # -- launch --------------------------------------------------------------
    def launch(
        self, kernel: Kernel, grid, block, args: dict[str, object]
    ) -> GPULaunchRecord:
        """Run all blocks of a launch; advance the device clock."""
        config = LaunchConfig.make(grid, block)
        run_args: dict[str, object] = {}
        working_set = 0
        for p in kernel.params:
            if p.name not in args:
                raise LaunchError(f"missing argument {p.name!r}")
            v = args[p.name]
            if p.is_pointer:
                if not isinstance(v, str):
                    raise LaunchError(
                        f"pointer argument {p.name!r} must be a buffer name"
                    )
                buf = self._buffer(v)
                run_args[p.name] = buf
                working_set += buf.nbytes
            else:
                run_args[p.name] = v
        counters = OpCounters()
        ex = BlockExecutor(
            kernel, config, run_args, counters, bounds_check=self.bounds_check
        )
        ex.run_blocks(range(config.num_blocks))
        t = gpu_time(
            self.spec,
            counters,
            config.num_blocks,
            config.threads_per_block,
            working_set_bytes=working_set,
            params=self.params,
        )
        self.clock.advance(t)
        record = GPULaunchRecord(
            kernel_name=kernel.name, config=config, time=t, counters=counters
        )
        self.launches.append(record)
        return record

"""Single-CPU migration baseline (CuPBoP-equivalent).

The paper builds CuCC on top of CuPBoP and uses CuPBoP's single-node
execution as the baseline: all GPU blocks run on one CPU node with the
same block-wrapping transformation, no communication.  Here this is
exactly the CuCC runtime on a one-node cluster — which is also how the
paper frames it ("the single-node performance is equivalent to that of
CuPBoP", section 5).
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.hw.cpu import CPUSpec
from repro.hw.perfmodel import DEFAULT_PARAMS, ModelParams
from repro.hw.specs import INFINIBAND_100G
from repro.obs.tracer import Tracer
from repro.runtime.cucc import CuCCRuntime

__all__ = ["SingleCPURuntime"]


class SingleCPURuntime(CuCCRuntime):
    """CuPBoP-style execution of a migrated GPU program on one CPU node."""

    def __init__(
        self,
        node_spec: CPUSpec,
        params: ModelParams = DEFAULT_PARAMS,
        simd_enabled: bool = True,
        bounds_check: bool = True,
        sanitize: bool = False,
        trace: bool | Tracer = False,
    ):
        cluster = Cluster(
            node_spec, 1, network=INFINIBAND_100G,
            name=f"single {node_spec.name}",
        )
        super().__init__(
            cluster,
            params=params,
            simd_enabled=simd_enabled,
            bounds_check=bounds_check,
            sanitize=sanitize,
            trace=trace,
        )

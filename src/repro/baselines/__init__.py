"""Baselines the paper compares CuCC against: single-CPU (CuPBoP),
PGAS (UPC++), and GPU execution."""

from repro.baselines.gpu_exec import GPUDevice, GPULaunchRecord
from repro.baselines.pgas import PGASLaunchRecord, PGASRuntime
from repro.baselines.single_cpu import SingleCPURuntime

__all__ = [
    "GPUDevice",
    "GPULaunchRecord",
    "PGASRuntime",
    "PGASLaunchRecord",
    "SingleCPURuntime",
]

"""Structural validation of kernel IR.

Checks the invariants the rest of the pipeline assumes, so that malformed
kernels fail loudly at construction time rather than mysteriously inside
the interpreter or the analysis:

* every local variable is declared (assigned, loop-bound, shared-alloc'd,
  or an atomic result) before use;
* parameter references match the declared parameter list;
* ``break``/``continue`` appear only inside loops;
* shared-memory extents do not depend on thread/block indices or locals;
* a name is not simultaneously a parameter and a local.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.expr import Expr, Param, SReg, Var
from repro.ir.stmt import (
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Stmt,
    While,
)
from repro.ir.visitor import walk_expr

__all__ = ["validate_kernel"]


def validate_kernel(kernel: Kernel) -> None:
    """Raise :class:`~repro.errors.IRError` if the kernel is malformed."""
    param_types = {p.name: p.type for p in kernel.params}
    if len(param_types) != len(kernel.params):
        raise IRError(f"kernel {kernel.name!r}: duplicate parameter names")
    _check_block(kernel, kernel.body, set(param_types), set(), in_loop=False)


def _check_expr(kernel: Kernel, e: Expr, params: set[str], defined: set[str]) -> None:
    for node in walk_expr(e):
        if isinstance(node, Param):
            declared = kernel.param(node.name).type if node.name in params else None
            if declared is None:
                raise IRError(
                    f"kernel {kernel.name!r}: reference to undeclared parameter "
                    f"{node.name!r}"
                )
            if declared != node.type:
                raise IRError(
                    f"kernel {kernel.name!r}: parameter {node.name!r} referenced "
                    f"with type {node.type!r}, declared {declared!r}"
                )
        elif isinstance(node, Var):
            if node.name not in defined:
                raise IRError(
                    f"kernel {kernel.name!r}: use of undefined variable "
                    f"{node.name!r}"
                )


def _check_block(
    kernel: Kernel,
    body: list[Stmt],
    params: set[str],
    defined: set[str],
    in_loop: bool,
) -> set[str]:
    """Validate a statement list; returns the set of names it defines.

    Definitions are treated flow-insensitively *within* a block but blocks
    do not leak definitions upward out of loops/branches conservatively —
    we allow them (C scoping is looser than this in practice and both
    frontends only read what they wrote), except that a variable defined
    only in a branch may be read later; that matches C where the
    declaration would be hoisted.
    """
    defined = set(defined)
    for s in body:
        for e in s.exprs():
            # For Assign the RHS may legally reference the LHS only if the
            # LHS is already defined; handled by ordering below.
            _check_expr(kernel, e, params, defined)
        if isinstance(s, Assign):
            if s.name in params:
                raise IRError(
                    f"kernel {kernel.name!r}: local {s.name!r} shadows a parameter"
                )
            defined.add(s.name)
        elif isinstance(s, (AllocShared, AllocLocal)):
            what = "shared" if isinstance(s, AllocShared) else "local"
            for node in walk_expr(s.size):
                if isinstance(node, (Var,)) or (
                    isinstance(node, SReg)
                    and (node.kind.is_thread_index or node.kind.is_block_index)
                ):
                    raise IRError(
                        f"kernel {kernel.name!r}: {what} array {s.name!r} "
                        "extent must be launch-invariant"
                    )
            defined.add(s.name)
        elif isinstance(s, Atomic):
            if s.result is not None:
                defined.add(s.result)
        elif isinstance(s, If):
            then_defs = _check_block(kernel, s.then_body, params, defined, in_loop)
            else_defs = _check_block(kernel, s.else_body, params, defined, in_loop)
            # names assigned on either side become visible after the if, as
            # they would be with a hoisted C declaration
            defined |= then_defs | else_defs
        elif isinstance(s, For):
            inner = defined | {s.var}
            _check_block(kernel, s.body, params, inner, in_loop=True)
        elif isinstance(s, While):
            _check_block(kernel, s.body, params, defined, in_loop=True)
        elif isinstance(s, (Break, Continue)) and not in_loop:
            raise IRError(
                f"kernel {kernel.name!r}: {type(s).__name__.lower()} outside a loop"
            )
    return defined

"""Pretty-printer: kernel IR back to readable CUDA-like C source.

Used for diagnostics, examples, and the generated-module listings that
mirror the paper's Figure 6.  The output round-trips through the frontend
for the constructs the frontend supports, which the test suite checks.
"""

from __future__ import annotations

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    UnOp,
    Var,
)
from repro.ir.stmt import (
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.ir.types import BOOL, PointerType

__all__ = ["print_expr", "print_stmt", "print_kernel"]

# C operator precedence (higher binds tighter); used to minimize parens.
_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PREC = 11


def print_expr(e: Expr, parent_prec: int = 0) -> str:
    """Render an expression as C source."""
    if isinstance(e, Const):
        if e.type is BOOL:
            return "true" if e.value else "false"
        if e.type.is_float:
            s = repr(float(e.value))
            return s + ("f" if e.type.name == "float" else "")
        return str(e.value)
    if isinstance(e, SReg):
        return e.kind.value
    if isinstance(e, (Param, Var)):
        return e.name
    if isinstance(e, BinOp):
        p = _PREC[e.op]
        s = f"{print_expr(e.lhs, p)} {e.op} {print_expr(e.rhs, p + 1)}"
        return f"({s})" if p < parent_prec else s
    if isinstance(e, UnOp):
        s = f"{e.op}{print_expr(e.operand, _UNARY_PREC)}"
        return f"({s})" if _UNARY_PREC < parent_prec else s
    if isinstance(e, Cast):
        return f"({e.type.name}){print_expr(e.value, _UNARY_PREC)}"
    if isinstance(e, Load):
        return f"{print_expr(e.ptr, _UNARY_PREC)}[{print_expr(e.index)}]"
    if isinstance(e, Call):
        args = ", ".join(print_expr(a) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, Select):
        s = (
            f"{print_expr(e.cond, 1)} ? {print_expr(e.if_true, 1)}"
            f" : {print_expr(e.if_false, 1)}"
        )
        return f"({s})"
    raise TypeError(f"cannot print {type(e).__name__}")  # pragma: no cover


def _body(stmts: list[Stmt], indent: int) -> list[str]:
    lines: list[str] = []
    for s in stmts:
        lines.extend(print_stmt(s, indent))
    return lines


def print_stmt(s: Stmt, indent: int = 0) -> list[str]:
    """Render a statement as a list of indented C source lines."""
    pad = "    " * indent
    if isinstance(s, Assign):
        prefix = f"{s.type.name} " if s.declare and s.type is not None else ""
        return [f"{pad}{prefix}{s.name} = {print_expr(s.value)};"]
    if isinstance(s, Store):
        target = f"{print_expr(s.ptr, _UNARY_PREC)}[{print_expr(s.index)}]"
        return [f"{pad}{target} = {print_expr(s.value)};"]
    if isinstance(s, If):
        lines = [f"{pad}if ({print_expr(s.cond)}) {{"]
        lines += _body(s.then_body, indent + 1)
        if s.else_body:
            lines.append(f"{pad}}} else {{")
            lines += _body(s.else_body, indent + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(s, For):
        step = print_expr(s.step)
        header = (
            f"for (int {s.var} = {print_expr(s.start)}; "
            f"{s.var} < {print_expr(s.stop)}; {s.var} += {step})"
        )
        lines = [f"{pad}{header} {{"]
        lines += _body(s.body, indent + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(s, While):
        lines = [f"{pad}while ({print_expr(s.cond)}) {{"]
        lines += _body(s.body, indent + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(s, Return):
        return [f"{pad}return;"]
    if isinstance(s, Break):
        return [f"{pad}break;"]
    if isinstance(s, Continue):
        return [f"{pad}continue;"]
    if isinstance(s, SyncThreads):
        return [f"{pad}__syncthreads();"]
    if isinstance(s, Atomic):
        call = (
            f"atomic{s.op.capitalize()}(&{print_expr(s.ptr, _UNARY_PREC)}"
            f"[{print_expr(s.index)}], {print_expr(s.value)})"
        )
        if s.result:
            return [f"{pad}{s.result} = {call};"]
        return [f"{pad}{call};"]
    if isinstance(s, AllocShared):
        return [f"{pad}__shared__ {s.elem.name} {s.name}[{print_expr(s.size)}];"]
    if isinstance(s, AllocLocal):
        return [f"{pad}{s.elem.name} {s.name}[{print_expr(s.size)}];"]
    raise TypeError(f"cannot print {type(s).__name__}")  # pragma: no cover


def _param_sig(name: str, type_) -> str:
    if isinstance(type_, PointerType):
        return f"{type_.elem.name} *{name}"
    return f"{type_.name} {name}"


def print_kernel(k: Kernel) -> str:
    """Render a whole kernel as CUDA source text."""
    sig = ", ".join(_param_sig(p.name, p.type) for p in k.params)
    lines = [f"__global__ void {k.name}({sig}) {{"]
    lines += _body(k.body, 1)
    lines.append("}")
    return "\n".join(lines)

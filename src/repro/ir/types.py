"""Type system for the kernel IR.

The IR is deliberately small: the scalar C types CUDA kernels actually use
plus typed pointers into one of the three GPU address spaces.  Pointers are
opaque — there is no pointer arithmetic at the IR level; loads and stores
take a (pointer, element-index) pair, which is what the Allgather
distributable analysis reasons about (paper section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import IRTypeError

__all__ = [
    "DType",
    "PointerType",
    "AddressSpace",
    "BOOL",
    "I8",
    "I16",
    "I32",
    "I64",
    "U8",
    "U16",
    "U32",
    "U64",
    "F32",
    "F64",
    "SCALAR_TYPES",
    "dtype_from_name",
    "common_type",
    "is_pointer",
]


class AddressSpace(enum.Enum):
    """GPU address space of a pointer.

    Only ``GLOBAL`` memory needs cross-node communication after migration;
    ``SHARED`` and ``LOCAL`` are private to a GPU block / thread, which CuCC
    always schedules onto a single CPU node (paper footnote 1).
    """

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"


@dataclass(frozen=True)
class DType:
    """A scalar machine type.

    Attributes:
        name: C-like spelling (``"float"``, ``"int"``, ...).
        np: the corresponding NumPy dtype used by the interpreter.
        size: width in bytes (drives ``unit_size`` metadata / comm volume).
        is_float: floating-point flag (drives FLOP counting).
        is_signed: signedness for integer division/shift semantics.
    """

    name: str
    np: np.dtype
    size: int
    is_float: bool
    is_signed: bool

    @property
    def is_int(self) -> bool:
        return not self.is_float and self.name != "bool"

    @property
    def is_bool(self) -> bool:
        return self.name == "bool"

    def __repr__(self) -> str:  # concise in IR dumps
        return self.name


def _dt(name: str, np_name: str, size: int, is_float: bool, is_signed: bool) -> DType:
    return DType(name, np.dtype(np_name), size, is_float, is_signed)


BOOL = _dt("bool", "bool", 1, False, False)
I8 = _dt("char", "int8", 1, False, True)
I16 = _dt("short", "int16", 2, False, True)
I32 = _dt("int", "int32", 4, False, True)
I64 = _dt("long", "int64", 8, False, True)
U8 = _dt("uchar", "uint8", 1, False, False)
U16 = _dt("ushort", "uint16", 2, False, False)
U32 = _dt("uint", "uint32", 4, False, False)
U64 = _dt("ulong", "uint64", 8, False, False)
F32 = _dt("float", "float32", 4, True, True)
F64 = _dt("double", "float64", 8, True, True)

SCALAR_TYPES: dict[str, DType] = {
    t.name: t for t in (BOOL, I8, I16, I32, I64, U8, U16, U32, U64, F32, F64)
}

#: Alternative C spellings accepted by the frontend.
_ALIASES = {
    "unsigned": U32,
    "unsigned int": U32,
    "unsigned char": U8,
    "unsigned short": U16,
    "unsigned long": U64,
    "long long": I64,
    "unsigned long long": U64,
    "size_t": U64,
    "int8_t": I8,
    "int16_t": I16,
    "int32_t": I32,
    "int64_t": I64,
    "uint8_t": U8,
    "uint16_t": U16,
    "uint32_t": U32,
    "uint64_t": U64,
}


def dtype_from_name(name: str) -> DType:
    """Resolve a C type spelling to a :class:`DType`.

    Raises :class:`IRTypeError` for unknown spellings.
    """
    name = " ".join(name.split())
    if name in SCALAR_TYPES:
        return SCALAR_TYPES[name]
    if name in _ALIASES:
        return _ALIASES[name]
    raise IRTypeError(f"unknown scalar type {name!r}")


@dataclass(frozen=True)
class PointerType:
    """A typed pointer into one of the GPU address spaces."""

    elem: DType
    space: AddressSpace = AddressSpace.GLOBAL

    def __repr__(self) -> str:
        suffix = "" if self.space is AddressSpace.GLOBAL else f"[{self.space.value}]"
        return f"{self.elem.name}*{suffix}"


def is_pointer(t: object) -> bool:
    return isinstance(t, PointerType)


# Promotion rank roughly mirroring C usual arithmetic conversions; bool is
# promoted to int in arithmetic contexts.
_RANK = {
    "bool": 0,
    "char": 1,
    "uchar": 1,
    "short": 2,
    "ushort": 2,
    "int": 3,
    "uint": 3,
    "long": 4,
    "ulong": 4,
    "float": 5,
    "double": 6,
}


def common_type(a: DType, b: DType) -> DType:
    """Usual arithmetic conversion of two scalar types.

    Ints of equal rank with mixed signedness promote to the unsigned type,
    matching C.  Bool promotes to ``int``.
    """
    if a.is_bool:
        a = I32
    if b.is_bool:
        b = I32
    if a == b:
        return a
    ra, rb = _RANK[a.name], _RANK[b.name]
    if ra == rb:
        # same rank, differing signedness: unsigned wins (C semantics)
        return a if not a.is_signed else b
    return a if ra > rb else b

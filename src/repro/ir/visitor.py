"""Generic traversal utilities over the kernel IR.

Provides iterative walkers (no recursion-depth concerns for generated
kernels), an expression-rewriting transformer, and a handful of common
queries shared by the analyses: which special registers an expression
reads, which local variables it uses, and whether a statement list
contains a given construct.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
)
from repro.ir.stmt import Kernel, Stmt

__all__ = [
    "walk_expr",
    "walk_stmts",
    "iter_stmts",
    "iter_exprs",
    "map_expr",
    "sregs_used",
    "vars_used",
    "params_used",
    "contains",
    "count_nodes",
]


def walk_expr(e: Expr) -> Iterator[Expr]:
    """Yield ``e`` and every sub-expression (pre-order, iterative)."""
    stack = [e]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def iter_stmts(body: list[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, recursing into nested blocks."""
    stack: list[Stmt] = list(reversed(body))
    while stack:
        s = stack.pop()
        yield s
        for block in reversed(s.blocks()):
            stack.extend(reversed(block))


def walk_stmts(body: list[Stmt]) -> Iterator[tuple[Stmt, tuple[Stmt, ...]]]:
    """Yield ``(stmt, enclosing_path)`` pairs for every statement.

    ``enclosing_path`` is the chain of ancestor statements (outermost
    first) whose nested blocks contain ``stmt``.  The distributable
    analysis uses this to find the conditionals enclosing each global
    store (section 6.2, condition 2).
    """
    stack: list[tuple[Stmt, tuple[Stmt, ...]]] = [(s, ()) for s in reversed(body)]
    while stack:
        s, path = stack.pop()
        yield s, path
        child_path = path + (s,)
        for block in reversed(s.blocks()):
            stack.extend((c, child_path) for c in reversed(block))


def iter_exprs(body: list[Stmt]) -> Iterator[Expr]:
    """Yield every expression (including sub-expressions) in ``body``."""
    for s in iter_stmts(body):
        for e in s.exprs():
            yield from walk_expr(e)


def map_expr(e: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Rewrite an expression bottom-up.

    ``fn`` is called on each (already rewritten) node; returning ``None``
    keeps the node, returning an expression replaces it.
    """
    children = e.children()
    if children:
        new_children = tuple(map_expr(c, fn) for c in children)
        if new_children != children:
            e = _rebuild(e, new_children)
    out = fn(e)
    return e if out is None else out


def _rebuild(e: Expr, children: tuple[Expr, ...]) -> Expr:
    if isinstance(e, BinOp):
        return BinOp(e.op, children[0], children[1])
    if isinstance(e, UnOp):
        return UnOp(e.op, children[0])
    if isinstance(e, Cast):
        return Cast(e.type, children[0])
    if isinstance(e, Load):
        return Load(children[0], children[1])
    if isinstance(e, Call):
        return Call(e.name, children)
    if isinstance(e, Select):
        return Select(children[0], children[1], children[2])
    raise TypeError(f"cannot rebuild {type(e).__name__}")  # pragma: no cover


def sregs_used(e: Expr) -> set[SRegKind]:
    """Special registers read anywhere inside ``e``."""
    return {n.kind for n in walk_expr(e) if isinstance(n, SReg)}


def vars_used(e: Expr) -> set[str]:
    """Local variable names read anywhere inside ``e``."""
    return {n.name for n in walk_expr(e) if isinstance(n, Var)}


def params_used(e: Expr) -> set[str]:
    """Kernel parameter names read anywhere inside ``e``."""
    return {n.name for n in walk_expr(e) if isinstance(n, Param)}


def contains(body: list[Stmt], kind: type) -> bool:
    """Whether any statement (or expression, if ``kind`` is an Expr type)
    of the given class appears in ``body``."""
    if issubclass(kind, Expr):
        return any(isinstance(e, kind) for e in iter_exprs(body))
    return any(isinstance(s, kind) for s in iter_stmts(body))


def count_nodes(kernel: Kernel) -> int:
    """Total IR node count (statements + expressions) — used in reports."""
    n = 0
    for s in iter_stmts(kernel.body):
        n += 1
        for e in s.exprs():
            n += sum(1 for _ in walk_expr(e))
    return n

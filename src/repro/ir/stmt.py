"""Statement nodes of the kernel IR, and the :class:`Kernel` container.

A kernel body is a list of statements.  Statements own sub-statement lists
(``If.then_body`` etc.) so the IR is a plain tree; generic traversal lives
in :mod:`repro.ir.visitor`.

Semantics notes
---------------
* ``For`` iterates ``var = start; var < stop; var += step`` (``step`` > 0)
  or ``var > stop; var += step`` (``step`` < 0), matching the canonical C
  loops the frontend produces.
* ``Return`` retires the executing *thread* (CUDA early-exit idiom
  ``if (id >= n) return;``) — it does not return a value.
* ``AllocShared`` declares a ``__shared__`` array; its extent must be
  block-invariant.
* ``Atomic`` covers CUDA's read-modify-write builtins; the old value can be
  bound to a local variable (``result``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRTypeError
from repro.ir.expr import Expr
from repro.ir.types import AddressSpace, DType, PointerType

__all__ = [
    "Stmt",
    "Assign",
    "Store",
    "If",
    "For",
    "While",
    "Return",
    "Break",
    "Continue",
    "SyncThreads",
    "Atomic",
    "AllocShared",
    "AllocLocal",
    "KernelParam",
    "Kernel",
    "ATOMIC_OPS",
]


@dataclass
class Stmt:
    """Abstract base of every IR statement.

    ``loc`` is the 1-based source line the statement came from, stamped
    by the CUDA frontend (``None`` for DSL-built or synthesized IR).  It
    is a plain (unannotated) class attribute rather than a dataclass
    field so subclass field ordering is unaffected; passes that rebuild
    statements copy it explicitly.
    """

    loc = None  # int | None — deliberately unannotated (not a field)

    def exprs(self) -> tuple[Expr, ...]:
        """Direct sub-expressions of this statement."""
        return ()

    def blocks(self) -> tuple[list["Stmt"], ...]:
        """Nested statement lists (bodies) of this statement."""
        return ()


@dataclass
class Assign(Stmt):
    """``name = value`` — write a kernel-local variable.

    ``declare`` marks the first (declaring) assignment; ``type`` is the
    declared type and coerces the RHS on every subsequent write.
    """

    name: str
    value: Expr
    type: DType | None = None
    declare: bool = False

    def exprs(self) -> tuple[Expr, ...]:
        return (self.value,)


@dataclass
class Store(Stmt):
    """``ptr[index] = value`` — write one element through a pointer."""

    ptr: Expr
    index: Expr
    value: Expr

    def __post_init__(self) -> None:
        if not isinstance(getattr(self.ptr, "type", None), PointerType):
            raise IRTypeError("Store pointer operand must be pointer-typed")
        if self.index.dtype.is_float:
            raise IRTypeError("Store index must be integral")

    def exprs(self) -> tuple[Expr, ...]:
        return (self.ptr, self.index, self.value)

    @property
    def ptr_type(self) -> PointerType:
        return self.ptr.type  # type: ignore[union-attr]

    @property
    def is_global(self) -> bool:
        return self.ptr_type.space is AddressSpace.GLOBAL


@dataclass
class If(Stmt):
    """``if (cond) { then_body } else { else_body }``."""

    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)

    def blocks(self) -> tuple[list[Stmt], ...]:
        return (self.then_body, self.else_body)


@dataclass
class For(Stmt):
    """Counted loop ``for (int var = start; var </> stop; var += step)``."""

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.start, self.stop, self.step)

    def blocks(self) -> tuple[list[Stmt], ...]:
        return (self.body,)


@dataclass
class While(Stmt):
    """``while (cond) { body }``."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)

    def blocks(self) -> tuple[list[Stmt], ...]:
        return (self.body,)


@dataclass
class Return(Stmt):
    """Retire the executing thread (CUDA kernels return void)."""


@dataclass
class Break(Stmt):
    """Break out of the innermost loop."""


@dataclass
class Continue(Stmt):
    """Skip to the next iteration of the innermost loop."""


@dataclass
class SyncThreads(Stmt):
    """``__syncthreads()`` — intra-block barrier."""


ATOMIC_OPS = ("add", "sub", "min", "max", "exch", "cas")


@dataclass
class Atomic(Stmt):
    """CUDA atomic read-modify-write: ``old = atomicOp(&ptr[index], value)``.

    ``result`` optionally names a local variable that receives the old
    value.  ``compare`` is only used by ``cas``.
    """

    op: str
    ptr: Expr
    index: Expr
    value: Expr
    result: str | None = None
    compare: Expr | None = None

    def __post_init__(self) -> None:
        if self.op not in ATOMIC_OPS:
            raise IRTypeError(f"unknown atomic op {self.op!r}")
        if not isinstance(getattr(self.ptr, "type", None), PointerType):
            raise IRTypeError("Atomic pointer operand must be pointer-typed")

    def exprs(self) -> tuple[Expr, ...]:
        extra = (self.compare,) if self.compare is not None else ()
        return (self.ptr, self.index, self.value) + extra

    @property
    def ptr_type(self) -> PointerType:
        return self.ptr.type  # type: ignore[union-attr]

    @property
    def is_global(self) -> bool:
        return self.ptr_type.space is AddressSpace.GLOBAL


@dataclass
class AllocShared(Stmt):
    """``__shared__ elem name[size]`` — per-block scratch memory."""

    name: str
    elem: DType
    size: Expr

    def exprs(self) -> tuple[Expr, ...]:
        return (self.size,)


@dataclass
class AllocLocal(Stmt):
    """``elem name[size]`` — per-thread (stack) array.

    Local arrays never need cross-node communication (paper footnote 1);
    the interpreter gives each lane its own segment.
    """

    name: str
    elem: DType
    size: Expr

    def exprs(self) -> tuple[Expr, ...]:
        return (self.size,)


@dataclass(frozen=True)
class KernelParam:
    """A formal kernel parameter: scalar or typed pointer."""

    name: str
    type: DType | PointerType

    @property
    def is_pointer(self) -> bool:
        return isinstance(self.type, PointerType)


@dataclass
class Kernel:
    """A complete ``__global__`` function.

    Attributes:
        name: kernel symbol name.
        params: formal parameters in declaration order.
        body: top-level statement list.
        source: optional original source text (for diagnostics / printing).
    """

    name: str
    params: list[KernelParam]
    body: list[Stmt]
    source: str | None = None

    def param(self, name: str) -> KernelParam:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name!r} has no parameter {name!r}")

    @property
    def pointer_params(self) -> list[KernelParam]:
        return [p for p in self.params if p.is_pointer]

    @property
    def scalar_params(self) -> list[KernelParam]:
        return [p for p in self.params if not p.is_pointer]

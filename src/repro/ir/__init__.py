"""Typed kernel IR: the contract between frontends, analyses and backends.

The IR plays the role LLVM IR plays in the paper's toolchain: both the
CUDA-subset parser and the Python DSL lower to it, the Allgather
distributable analysis inspects it, and the vectorized SPMD interpreter
executes it.
"""

from repro.ir.builder import IRBuilder
from repro.ir.expr import (
    ARITH_OPS,
    BIT_OPS,
    CMP_OPS,
    INTRINSICS,
    LOGIC_OPS,
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
    const,
)
from repro.ir.printer import print_expr, print_kernel, print_stmt
from repro.ir.stmt import (
    ATOMIC_OPS,
    AllocLocal,
    AllocShared,
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    KernelParam,
    Return,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    SCALAR_TYPES,
    U8,
    U16,
    U32,
    U64,
    AddressSpace,
    DType,
    PointerType,
    common_type,
    dtype_from_name,
    is_pointer,
)
from repro.ir.validate import validate_kernel
from repro.ir.visitor import (
    contains,
    count_nodes,
    iter_exprs,
    iter_stmts,
    map_expr,
    params_used,
    sregs_used,
    vars_used,
    walk_expr,
    walk_stmts,
)

__all__ = [
    # types
    "DType", "PointerType", "AddressSpace", "common_type", "dtype_from_name",
    "is_pointer", "SCALAR_TYPES",
    "BOOL", "I8", "I16", "I32", "I64", "U8", "U16", "U32", "U64", "F32", "F64",
    # expressions
    "Expr", "Const", "SReg", "SRegKind", "Param", "Var", "BinOp", "UnOp",
    "Cast", "Load", "Call", "Select", "const",
    "ARITH_OPS", "CMP_OPS", "LOGIC_OPS", "BIT_OPS", "INTRINSICS",
    # statements
    "Stmt", "Assign", "Store", "If", "For", "While", "Return", "Break",
    "Continue", "SyncThreads", "Atomic", "AllocShared", "AllocLocal",
    "ATOMIC_OPS",
    "Kernel", "KernelParam",
    # tools
    "IRBuilder", "validate_kernel",
    "print_expr", "print_stmt", "print_kernel",
    "walk_expr", "walk_stmts", "iter_stmts", "iter_exprs", "map_expr",
    "sregs_used", "vars_used", "params_used", "contains", "count_nodes",
]

"""Expression nodes of the kernel IR.

Expressions are immutable, hashable dataclasses.  Every node exposes

- ``dtype``   — its scalar result type, and
- ``children()`` — sub-expressions, for generic traversal.

Design notes
------------
* There is no pointer arithmetic: memory is accessed through
  :class:`Load` / ``Store`` which take a pointer-typed expression plus an
  *element index* expression.  This keeps the write-index affine analysis
  (paper section 6.2) a pure expression-level problem.
* Special registers (:class:`SReg`) carry the CUDA builtins ``threadIdx``,
  ``blockIdx``, ``blockDim``, ``gridDim`` — the symbols the distributable
  analysis treats alternately as variables and constants (conditions 1 and
  3 of section 6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import IRTypeError
from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    DType,
    PointerType,
    common_type,
)

__all__ = [
    "Expr",
    "Const",
    "SReg",
    "SRegKind",
    "Param",
    "Var",
    "BinOp",
    "UnOp",
    "Cast",
    "Load",
    "Call",
    "Select",
    "ARITH_OPS",
    "CMP_OPS",
    "LOGIC_OPS",
    "BIT_OPS",
    "INTRINSICS",
    "const",
]


class SRegKind(enum.Enum):
    """CUDA special registers (PTX naming: tid/ctaid/ntid/nctaid)."""

    TID_X = "threadIdx.x"
    TID_Y = "threadIdx.y"
    TID_Z = "threadIdx.z"
    CTAID_X = "blockIdx.x"
    CTAID_Y = "blockIdx.y"
    CTAID_Z = "blockIdx.z"
    NTID_X = "blockDim.x"
    NTID_Y = "blockDim.y"
    NTID_Z = "blockDim.z"
    NCTAID_X = "gridDim.x"
    NCTAID_Y = "gridDim.y"
    NCTAID_Z = "gridDim.z"

    @property
    def is_thread_index(self) -> bool:
        return self in (SRegKind.TID_X, SRegKind.TID_Y, SRegKind.TID_Z)

    @property
    def is_block_index(self) -> bool:
        return self in (SRegKind.CTAID_X, SRegKind.CTAID_Y, SRegKind.CTAID_Z)


@dataclass(frozen=True)
class Expr:
    """Abstract base of every IR expression."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    @property
    def dtype(self) -> DType:  # pragma: no cover - abstract
        raise NotImplementedError

    # Operator sugar so analyses/tests can build IR tersely -------------
    def _bin(self, op: str, other: object, swap: bool = False) -> "BinOp":
        o = other if isinstance(other, Expr) else const(other)
        return BinOp(op, o, self) if swap else BinOp(op, self, o)

    def __add__(self, o):  # noqa: D105
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, swap=True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, swap=True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, swap=True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __mod__(self, o):
        return self._bin("%", o)

    def __lshift__(self, o):
        return self._bin("<<", o)

    def __rshift__(self, o):
        return self._bin(">>", o)

    def __and__(self, o):
        return self._bin("&", o)

    def __or__(self, o):
        return self._bin("|", o)

    def __xor__(self, o):
        return self._bin("^", o)

    def __lt__(self, o):
        return self._bin("<", o)

    def __le__(self, o):
        return self._bin("<=", o)

    def __gt__(self, o):
        return self._bin(">", o)

    def __ge__(self, o):
        return self._bin(">=", o)

    def eq(self, o) -> "BinOp":
        """Equality comparison (``==`` is reserved for dataclass identity)."""
        return self._bin("==", o)

    def ne(self, o) -> "BinOp":
        return self._bin("!=", o)

    def logical_and(self, o) -> "BinOp":
        return self._bin("&&", o)

    def logical_or(self, o) -> "BinOp":
        return self._bin("||", o)

    def __neg__(self) -> "UnOp":
        return UnOp("-", self)


@dataclass(frozen=True)
class Const(Expr):
    """A literal scalar constant."""

    value: float | int | bool
    type: DType = I32

    def __post_init__(self) -> None:
        if self.type.is_float and not isinstance(self.value, float):
            object.__setattr__(self, "value", float(self.value))
        if self.type.is_int and isinstance(self.value, bool):
            object.__setattr__(self, "value", int(self.value))

    @property
    def dtype(self) -> DType:
        return self.type


def const(value: object, dtype: DType | None = None) -> Const:
    """Build a :class:`Const`, inferring the type from the Python value."""
    if dtype is None:
        if isinstance(value, bool):
            dtype = BOOL
        elif isinstance(value, int):
            dtype = I32 if -(2**31) <= value < 2**31 else I64
        elif isinstance(value, float):
            dtype = F32
        else:
            raise IRTypeError(f"cannot make a constant from {value!r}")
    return Const(value, dtype)


@dataclass(frozen=True)
class SReg(Expr):
    """Read of a CUDA special register (threadIdx.x, blockDim.x, ...)."""

    kind: SRegKind

    @property
    def dtype(self) -> DType:
        return I32


@dataclass(frozen=True)
class Param(Expr):
    """Read of a kernel parameter (scalar value or pointer)."""

    name: str
    type: DType | PointerType

    @property
    def dtype(self) -> DType:
        if isinstance(self.type, PointerType):
            raise IRTypeError(
                f"pointer parameter {self.name!r} has no scalar dtype; "
                "use it as the pointer operand of Load/Store"
            )
        return self.type

    @property
    def is_pointer(self) -> bool:
        return isinstance(self.type, PointerType)


@dataclass(frozen=True)
class Var(Expr):
    """Read of a kernel-local variable.

    A ``Var`` may also be pointer-typed: that is how ``__shared__`` arrays
    declared by ``AllocShared`` are referenced in loads and stores.
    """

    name: str
    type: DType | PointerType

    @property
    def dtype(self) -> DType:
        if isinstance(self.type, PointerType):
            raise IRTypeError(
                f"pointer variable {self.name!r} has no scalar dtype; "
                "use it as the pointer operand of Load/Store"
            )
        return self.type

    @property
    def is_pointer(self) -> bool:
        return isinstance(self.type, PointerType)


ARITH_OPS = ("+", "-", "*", "/", "%")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGIC_OPS = ("&&", "||")
BIT_OPS = ("&", "|", "^", "<<", ">>")
_ALL_OPS = frozenset(ARITH_OPS + CMP_OPS + LOGIC_OPS + BIT_OPS)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation with C-style result typing."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _ALL_OPS:
            raise IRTypeError(f"unknown binary operator {self.op!r}")
        if self.op in BIT_OPS and (self.lhs.dtype.is_float or self.rhs.dtype.is_float):
            raise IRTypeError(f"bitwise {self.op!r} applied to float operands")
        if self.op == "%" and self.lhs.dtype.is_float:
            # fmod is expressed via the intrinsic, keep `%` integral
            raise IRTypeError("'%' on floats; use Call('fmod', ...)")

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    @property
    def dtype(self) -> DType:
        if self.op in CMP_OPS or self.op in LOGIC_OPS:
            return BOOL
        if self.op in ("<<", ">>"):
            return self.lhs.dtype if not self.lhs.dtype.is_bool else I32
        return common_type(self.lhs.dtype, self.rhs.dtype)


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary negation / logical not / bitwise not."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "!", "~"):
            raise IRTypeError(f"unknown unary operator {self.op!r}")
        if self.op == "~" and self.operand.dtype.is_float:
            raise IRTypeError("'~' applied to a float operand")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    @property
    def dtype(self) -> DType:
        if self.op == "!":
            return BOOL
        return self.operand.dtype


@dataclass(frozen=True)
class Cast(Expr):
    """An explicit conversion to another scalar type."""

    type: DType
    value: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.value,)

    @property
    def dtype(self) -> DType:
        return self.type


@dataclass(frozen=True)
class Load(Expr):
    """``ptr[index]`` — read one element through a typed pointer."""

    ptr: Expr
    index: Expr

    def __post_init__(self) -> None:
        if not isinstance(getattr(self.ptr, "type", None), PointerType):
            raise IRTypeError("Load pointer operand must be pointer-typed")
        if self.index.dtype.is_float:
            raise IRTypeError("Load index must be integral")

    def children(self) -> tuple[Expr, ...]:
        return (self.ptr, self.index)

    @property
    def ptr_type(self) -> PointerType:
        return self.ptr.type  # type: ignore[union-attr]

    @property
    def dtype(self) -> DType:
        return self.ptr_type.elem


#: Intrinsic table: name -> (arity, result rule).  Result rules:
#:   "float"  — promote to f32 unless any argument is f64,
#:   "same"   — type of the first argument,
#:   "f64"    — always double.
INTRINSICS: dict[str, tuple[int, str]] = {
    "sqrt": (1, "float"),
    "rsqrt": (1, "float"),
    "exp": (1, "float"),
    "exp2": (1, "float"),
    "log": (1, "float"),
    "log2": (1, "float"),
    "sin": (1, "float"),
    "cos": (1, "float"),
    "tanh": (1, "float"),
    "erf": (1, "float"),
    "fabs": (1, "float"),
    "floor": (1, "float"),
    "ceil": (1, "float"),
    "pow": (2, "float"),
    "fmod": (2, "float"),
    "abs": (1, "same"),
    "min": (2, "same"),
    "max": (2, "same"),
}


@dataclass(frozen=True)
class Call(Expr):
    """A call to a math intrinsic (sqrtf, expf, min, ...)."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.name not in INTRINSICS:
            raise IRTypeError(f"unknown intrinsic {self.name!r}")
        arity = INTRINSICS[self.name][0]
        if len(self.args) != arity:
            raise IRTypeError(
                f"intrinsic {self.name!r} takes {arity} args, got {len(self.args)}"
            )

    def children(self) -> tuple[Expr, ...]:
        return self.args

    @property
    def dtype(self) -> DType:
        rule = INTRINSICS[self.name][1]
        if rule == "f64":
            return F64
        if rule == "same":
            if len(self.args) == 2:
                return common_type(self.args[0].dtype, self.args[1].dtype)
            return self.args[0].dtype
        # "float": math promotes integral args to f32, keeps f64
        if any(a.dtype == F64 for a in self.args):
            return F64
        return F32


@dataclass(frozen=True)
class Select(Expr):
    """C ternary ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    @property
    def dtype(self) -> DType:
        return common_type(self.if_true.dtype, self.if_false.dtype)

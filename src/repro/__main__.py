"""``python -m repro`` — the CuCC command-line driver (see repro.cli)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

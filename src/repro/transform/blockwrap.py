"""GPU-block-to-CPU-function transformation (paper Listing 1 -> 2).

Renders the CPU *kernel module*: the GPU kernel body wrapped in a
function that takes the block index as a parameter and iterates the
block's threads in a (SIMD-annotated) loop.  Execution in this repo is
performed by the vectorized interpreter, which implements exactly these
semantics; the generated C source is the human-readable contract, used by
examples, docs and golden tests.
"""

from __future__ import annotations

from repro.ir.printer import print_stmt
from repro.ir.stmt import Kernel
from repro.ir.types import PointerType
from repro.transform.vectorize import Vectorization

__all__ = ["generate_kernel_module"]


def _param_sig(name: str, type_) -> str:
    if isinstance(type_, PointerType):
        return f"{type_.elem.name} *{name}"
    return f"{type_.name} {name}"


def generate_kernel_module(
    kernel: Kernel, vect: Vectorization, block_dim_x: int | str = "block_dim_x"
) -> str:
    """Render the wrapped CPU block function as C source.

    The thread loop covers ``threadIdx.x`` for a 1-D block (the display
    form; the interpreter handles full 3-D blocks).  A ``return`` in the
    CUDA source becomes ``continue`` in the thread loop — retiring one
    thread, not the whole block.
    """
    sig = ", ".join(_param_sig(p.name, p.type) for p in kernel.params)
    sep = ", " if sig else ""
    lines = [
        f"void {kernel.name}_block({sig}{sep}int block_idx_x, int block_dim_x,"
        " int grid_dim_x) {",
    ]
    if vect.vectorizable:
        lines.append("#pragma omp simd")
    else:
        lines.append(f"    /* not vectorized: {'; '.join(vect.reasons)} */")
    lines.append(
        f"    for (int thread_idx_x = 0; thread_idx_x < {block_dim_x}; "
        "thread_idx_x++) {"
    )
    for s in kernel.body:
        for line in print_stmt(s, 2):
            lines.append(_rewrite_cuda_builtins(line))
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _rewrite_cuda_builtins(line: str) -> str:
    """Map CUDA builtins to the wrapped function's parameters/loop vars."""
    out = (
        line.replace("threadIdx.x", "thread_idx_x")
        .replace("blockIdx.x", "block_idx_x")
        .replace("blockDim.x", "block_dim_x")
        .replace("gridDim.x", "grid_dim_x")
    )
    # a CUDA `return` retires one GPU thread -> skip to the next iteration
    return out.replace("return;", "continue; /* thread retires */")

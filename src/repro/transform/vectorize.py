"""SIMD vectorizability analysis for the transformed CPU code.

After block wrapping (Listing 2), a GPU block becomes a CPU function
whose *thread loop* is the vectorization target.  Following the MCUDA /
CuPBoP compilation model, the thread loop is materialized by splitting
the kernel at barriers (loop fission): straight-line regions become
``#pragma omp simd`` loops over the block's threads.

The analysis below reproduces when that succeeds, per the failure modes
the paper reports (sections 7.4.1 / 8.3):

* a barrier **inside** a sequential loop defeats fission — the thread
  loop would have to live inside the sequential loop with live state
  carried across iterations through arrays, which the auto-vectorizer
  rejects (BinomialOption: "loop dependencies that cannot be parallelized
  with SIMD");
* data-dependent trip counts (``while``) and early loop exits
  (``break``/``continue``) make the per-thread control flow irreducible
  to a vector schedule (EP, GA: "for-loops that cannot be optimized with
  SIMD instructions");
* atomics serialize lanes.

Divergent ``if``/``return`` guarded by simple conditions vectorize fine
(masking), as do inner loops with thread-invariant bounds (FIR) and
gather/scatter memory access (Transpose's strided reads).

The verdict feeds the performance model: vectorized kernels run at a
fraction of SIMD peak, others at scalar-issue rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.stmt import (
    Atomic,
    Break,
    Continue,
    For,
    Kernel,
    Stmt,
    SyncThreads,
    While,
)
from repro.ir.visitor import iter_stmts, walk_stmts

__all__ = ["Vectorization", "analyze_vectorizability"]


@dataclass(frozen=True)
class Vectorization:
    """Verdict of the SIMD vectorizability analysis."""

    vectorizable: bool
    reasons: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.vectorizable:
            return "thread loop vectorizable (#pragma omp simd)"
        return "thread loop NOT vectorizable: " + "; ".join(self.reasons)


def analyze_vectorizability(kernel: Kernel) -> Vectorization:
    """Decide whether the wrapped block function's thread loop vectorizes."""
    reasons: list[str] = []
    for stmt, path in walk_stmts(kernel.body):
        in_loop = any(isinstance(p, (For, While)) for p in path)
        if isinstance(stmt, While):
            r = "data-dependent while loop"
            if r not in reasons:
                reasons.append(r)
        elif isinstance(stmt, (Break, Continue)):
            r = "early loop exit (break/continue)"
            if r not in reasons:
                reasons.append(r)
        elif isinstance(stmt, Atomic):
            r = "atomic read-modify-write serializes lanes"
            if r not in reasons:
                reasons.append(r)
        elif isinstance(stmt, SyncThreads) and in_loop:
            r = (
                "barrier inside a sequential loop prevents loop fission "
                "(state carried across barrier phases)"
            )
            if r not in reasons:
                reasons.append(r)
    return Vectorization(vectorizable=not reasons, reasons=tuple(reasons))

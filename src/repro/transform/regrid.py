"""Workload redistribution: adjustable block sizes (paper section 8.3).

The paper's first "future direction": GPU programs hard-code block sizes
tuned for an SM's resources, so a migrated program with (say) 512 blocks
cannot use the 768 cores of a 32-node cluster — and suggests compiler
transformations that adjust GPU block workloads to the CPU's shape.

This module implements that transformation for the (large, common) class
of kernels whose dependence on launch geometry is *exclusively through
the global linear thread id* ``blockIdx.x * blockDim.x + threadIdx.x``:

* every occurrence of the canonical gid expression is rewritten to read
  a fresh local computed from the **new** geometry;
* the body is wrapped in a guard against the original logical thread
  count (passed as an extra scalar parameter), so the logical iteration
  space is preserved exactly;
* kernels that use ``threadIdx``/``blockIdx``/``blockDim``/``gridDim``
  outside that pattern, shared memory, or barriers are *not* regriddable
  (block affinity matters to them) and are left untouched.

Because each original logical thread maps to exactly one new thread and
no intra-block state exists, the transformed kernel is observationally
equivalent under any geometry covering the logical range — including
geometries whose grid size is a multiple of the cluster's core count,
which is what :func:`choose_geometry` targets (the paper's "at least
C x T blocks" rule, section 8.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.ir.expr import BinOp, Expr, SReg, SRegKind, Var, const
from repro.ir.stmt import AllocShared, Assign, If, Kernel, KernelParam, Stmt, SyncThreads
from repro.ir.types import I32
from repro.ir.visitor import contains, iter_exprs, map_expr
from repro.ir.validate import validate_kernel

__all__ = [
    "GID_PARAM",
    "RegriddedKernel",
    "is_regriddable",
    "regrid_kernel",
    "choose_geometry",
    "regrid_workload",
]

#: name of the injected logical-thread-count parameter
GID_PARAM = "__logical_threads"
_GID_VAR = "__gid"


def _gid_forms() -> tuple[Expr, ...]:
    """The canonical spellings of the global linear thread id."""
    bid = SReg(SRegKind.CTAID_X)
    bdim = SReg(SRegKind.NTID_X)
    tid = SReg(SRegKind.TID_X)
    prods = (BinOp("*", bid, bdim), BinOp("*", bdim, bid))
    forms = []
    for p in prods:
        forms.append(BinOp("+", p, tid))
        forms.append(BinOp("+", tid, p))
    return tuple(forms)


_FORMS = _gid_forms()


def _rewrite_gid(e: Expr) -> Expr:
    gid = Var(_GID_VAR, I32)

    def visit(node: Expr) -> Expr | None:
        return gid if node in _FORMS else None

    return map_expr(e, visit)


def _rewrite_body(body: list[Stmt]) -> list[Stmt]:
    out: list[Stmt] = []
    for s in body:
        s = _rewrite_stmt(s)
        out.append(s)
    return out


def _rewrite_stmt(s: Stmt) -> Stmt:
    import dataclasses

    kwargs = {}
    for f in dataclasses.fields(s):
        v = getattr(s, f.name)
        if isinstance(v, Expr):
            kwargs[f.name] = _rewrite_gid(v)
        elif isinstance(v, list):
            kwargs[f.name] = _rewrite_body(v)
        else:
            kwargs[f.name] = v
    return dataclasses.replace(s, **kwargs)


@dataclass(frozen=True)
class RegriddedKernel:
    """A geometry-independent rewrite of a kernel.

    ``kernel`` has one extra trailing scalar parameter (:data:`GID_PARAM`)
    that callers must bind to the *original* logical thread count
    ``grid x block``.
    """

    kernel: Kernel
    original_name: str


def is_regriddable(kernel: Kernel) -> bool:
    """Whether the kernel's geometry dependence is gid-only."""
    if contains(kernel.body, AllocShared) or contains(kernel.body, SyncThreads):
        return False
    if any(p.name in (GID_PARAM, _GID_VAR) for p in kernel.params):
        return False
    rewritten = _rewrite_body(kernel.body)
    return not any(isinstance(e, SReg) for e in iter_exprs(rewritten))


def regrid_kernel(kernel: Kernel) -> RegriddedKernel | None:
    """Rewrite a kernel to be launch-geometry independent, or ``None``.

    The result computes ``__gid`` from the *launch* geometry and executes
    the original body (with gid occurrences substituted) only for
    ``__gid < __logical_threads``.
    """
    if not is_regriddable(kernel):
        return None
    rewritten = _rewrite_body(kernel.body)
    gid_expr = BinOp(
        "+",
        BinOp("*", SReg(SRegKind.CTAID_X), SReg(SRegKind.NTID_X)),
        SReg(SRegKind.TID_X),
    )
    logical = KernelParam(GID_PARAM, I32)
    guarded: list[Stmt] = [
        Assign(_GID_VAR, gid_expr, type=I32, declare=True),
        If(
            BinOp("<", Var(_GID_VAR, I32), _param_ref(logical)),
            rewritten,
            [],
        ),
    ]
    new = Kernel(
        name=f"{kernel.name}__regrid",
        params=list(kernel.params) + [logical],
        body=guarded,
        source=kernel.source,
    )
    validate_kernel(new)
    return RegriddedKernel(kernel=new, original_name=kernel.name)


def _param_ref(p: KernelParam):
    from repro.ir.expr import Param

    return Param(p.name, p.type)


def choose_geometry(
    logical_threads: int,
    total_cores: int,
    min_block: int = 32,
    max_block: int = 1024,
) -> tuple[int, int]:
    """Pick ``(grid, block)`` so the grid feeds every core (section 8.1).

    Targets a grid of at least ``total_cores`` blocks (ideally close to a
    small multiple of it) while keeping blocks within CUDA-legal sizes.
    """
    if logical_threads <= 0:
        raise ValueError("logical_threads must be positive")
    block = max(min_block, min(max_block, logical_threads // max(1, total_cores)))
    grid = math.ceil(logical_threads / block)
    if grid < total_cores and block > min_block:
        block = max(min_block, logical_threads // total_cores or min_block)
        grid = math.ceil(logical_threads / block)
    return grid, block


def regrid_workload(spec, total_cores: int):
    """Redistribute a :class:`~repro.workloads.base.WorkloadSpec` for a
    cluster with ``total_cores`` cores; returns a new spec or ``None``.

    The rewritten spec computes exactly the same outputs (same reference,
    same verification), only the launch geometry changes.

    Idempotent: a spec whose kernel already carries :data:`GID_PARAM`
    (i.e. one this function produced) is not rewritten again — only its
    geometry is recomputed for the new core count.  This is what grow
    recovery relies on to rebalance an already-regridded workload onto a
    restored cluster width.
    """
    from dataclasses import replace as dc_replace

    if any(p.name == GID_PARAM for p in spec.kernel.params):
        logical = int(spec.scalars[GID_PARAM])
        grid, block = choose_geometry(logical, total_cores)
        return dc_replace(spec, grid=grid, block=block)

    rg = regrid_kernel(spec.kernel)
    if rg is None:
        return None
    logical = spec.num_blocks * _block_threads(spec.block)
    grid, block = choose_geometry(logical, total_cores)
    scalars = dict(spec.scalars)
    scalars[GID_PARAM] = logical
    return dc_replace(
        spec,
        name=f"{spec.name}+regrid",
        kernel=rg.kernel,
        grid=grid,
        block=block,
        scalars=scalars,
    )


def _block_threads(block) -> int:
    if isinstance(block, tuple):
        n = 1
        for x in block:
            n *= x
        return n
    return int(block)
